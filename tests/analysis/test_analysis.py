"""Tests for the shared numerics: entropy, regression, traces."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.entropy import field_entropy, joint_entropy, quantize
from repro.analysis.regression import LinearModel, fit_linear, polynomial_features
from repro.analysis.traces import correlate, crest_indices, moving_average, pearson
from repro.errors import DefenseError, ReproError


class TestEntropy:
    def test_constant_field_zero_entropy(self):
        assert field_entropy([5, 5, 5, 5]) == 0.0

    def test_uniform_field_max_entropy(self):
        assert field_entropy([1, 2, 3, 4]) == pytest.approx(2.0)

    def test_empty_is_zero(self):
        assert field_entropy([]) == 0.0

    def test_joint_entropy_sums_fields(self):
        fields = {"a": [1, 2, 3, 4], "b": [1, 1, 2, 2]}
        assert joint_entropy(fields) == pytest.approx(2.0 + 1.0)

    @given(st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=50))
    def test_entropy_bounds(self, values):
        h = field_entropy(values)
        assert 0.0 <= h <= math.log2(len(values)) + 1e-9

    def test_quantize_constant(self):
        assert quantize([3.0, 3.0, 3.0]) == [0, 0, 0]

    def test_quantize_range(self):
        buckets = quantize([0.0, 50.0, 100.0], bins=4)
        assert buckets[0] == 0
        assert buckets[-1] == 3

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1, max_size=50))
    def test_quantize_in_bounds(self, values):
        assert all(0 <= b < 64 for b in quantize(values))


class TestRegression:
    def test_exact_linear_recovery(self):
        features = [[1.0, 2.0], [2.0, 1.0], [3.0, 5.0], [0.0, 0.0]]
        targets = [3.0 * x + 2.0 * y + 1.0 for x, y in features]
        model = fit_linear(features, targets)
        assert model.weights[0] == pytest.approx(3.0)
        assert model.weights[1] == pytest.approx(2.0)
        assert model.intercept == pytest.approx(1.0)
        assert model.r_squared == pytest.approx(1.0)

    def test_predict(self):
        model = LinearModel(weights=(2.0,), intercept=1.0, r_squared=1.0)
        assert model.predict([3.0]) == 7.0

    def test_predict_dimension_checked(self):
        model = LinearModel(weights=(2.0,), intercept=1.0, r_squared=1.0)
        with pytest.raises(DefenseError):
            model.predict([1.0, 2.0])

    def test_empty_fit_rejected(self):
        with pytest.raises(DefenseError):
            fit_linear([], [])

    def test_underdetermined_rejected(self):
        with pytest.raises(DefenseError):
            fit_linear([[1.0, 2.0]], [3.0])

    def test_polynomial_features_degrees(self):
        assert polynomial_features(2.0, 3.0, 1) == [2.0, 3.0]
        assert polynomial_features(2.0, 3.0, 2) == [2.0, 3.0, 4.0, 6.0, 9.0]
        assert len(polynomial_features(2.0, 3.0, 3)) == 9

    def test_bad_degree_rejected(self):
        with pytest.raises(DefenseError):
            polynomial_features(1.0, 1.0, 0)


class TestTraces:
    def test_pearson_perfect_correlation(self):
        assert pearson([1, 2, 3], [2, 4, 6]) == pytest.approx(1.0)

    def test_pearson_anticorrelation(self):
        assert pearson([1, 2, 3], [3, 2, 1]) == pytest.approx(-1.0)

    def test_pearson_constant_pairs(self):
        assert pearson([5, 5], [5, 5]) == 1.0
        assert pearson([5, 5], [6, 6]) == 0.0

    def test_pearson_length_mismatch(self):
        with pytest.raises(ReproError):
            pearson([1, 2], [1, 2, 3])

    def test_correlate_ignores_offsets(self):
        a = [100, 110, 105, 120, 118]
        b = [900, 910, 905, 920, 918]  # same movements, different base
        assert correlate(a, b) == pytest.approx(1.0)

    def test_correlate_uncorrelated_low(self):
        a = [1, 5, 2, 8, 3, 9, 4]
        b = [9, 2, 8, 1, 9, 2, 7]
        assert correlate(a, b) < 0.5

    def test_correlate_needs_three_samples(self):
        with pytest.raises(ReproError):
            correlate([1, 2], [1, 2])

    def test_crest_indices(self):
        values = [0, 1, 2, 10, 2, 1, 9, 0]
        crests = crest_indices(values, threshold_fraction=0.8)
        assert crests == [3, 6]

    def test_crest_flat_series_empty(self):
        assert crest_indices([5, 5, 5]) == []

    def test_crest_threshold_validated(self):
        with pytest.raises(ReproError):
            crest_indices([1, 2], threshold_fraction=1.5)

    def test_moving_average(self):
        assert moving_average([2, 4, 6, 8], window=2) == [2.0, 3.0, 5.0, 7.0]

    def test_moving_average_bad_window(self):
        with pytest.raises(ReproError):
            moving_average([1], window=0)
