"""Tests for the downtime-shaded ASCII power timeline."""

import pytest

from repro.analysis.plotting import (
    BLOCKS,
    DOWNTIME_GLYPH,
    EMPTY_GLYPH,
    downtime_summary,
    power_glyphs,
    render_power_timeline,
)
from repro.datacenter.simulation import PowerTrace
from repro.errors import SimulationError


def gapped_trace():
    """100 s of 1 Hz samples with a wholly-dark 20 s stretch.

    Seconds 40-59 are down: the samples were *due* but missed, so they
    land as gap markers, exactly what a crashed machine produces.
    """
    trace = PowerTrace()
    for t in range(100):
        if 40 <= t < 60:
            trace.note_gap(float(t))
        else:
            trace.append(float(t), 100.0 + (t % 10))
    return trace


class TestPowerGlyphs:
    def test_ramp_spans_the_band(self):
        trace = PowerTrace()
        for t, w in enumerate([100.0, 150.0, 200.0]):
            trace.append(float(t) * 10.0, w)
        glyphs = power_glyphs(trace, 10.0)
        assert glyphs[0] == BLOCKS[0]
        assert glyphs[-1] == BLOCKS[-1]

    def test_flat_trace_renders_full_blocks(self):
        trace = PowerTrace()
        trace.append(0.0, 50.0)
        trace.append(10.0, 50.0)
        assert set(power_glyphs(trace, 10.0)) == {BLOCKS[-1]}

    def test_wholly_dark_windows_are_shaded(self):
        glyphs = power_glyphs(gapped_trace(), 10.0)
        # windows 4 and 5 (seconds 40-59) lost every sample to the crash
        assert glyphs[4] == DOWNTIME_GLYPH
        assert glyphs[5] == DOWNTIME_GLYPH
        assert all(
            g in BLOCKS for i, g in enumerate(glyphs) if i not in (4, 5)
        )

    def test_mostly_dark_window_is_shaded(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        for t in range(1, 9):
            trace.note_gap(float(t))  # 80% of the window missed
        trace.append(9.0, 100.0)
        trace.append(10.0, 100.0)
        glyphs = power_glyphs(trace, 10.0)
        assert glyphs[0] == DOWNTIME_GLYPH

    def test_partial_downtime_below_threshold_not_shaded(self):
        trace = PowerTrace()
        for t in range(10):
            trace.append(float(t), 100.0)
        trace.note_gap(2.5)  # 1 gap vs 10 samples: ~9% downtime
        assert DOWNTIME_GLYPH not in power_glyphs(trace, 10.0)

    def test_unscheduled_empty_windows_render_spaces(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        trace.append(35.0, 120.0)  # windows 1-2 empty, but nothing missed
        glyphs = power_glyphs(trace, 10.0)
        assert glyphs == [BLOCKS[0], EMPTY_GLYPH, EMPTY_GLYPH, BLOCKS[-1]]

    def test_empty_trace_renders_nothing(self):
        assert power_glyphs(PowerTrace(), 10.0) == []

    def test_threshold_validation(self):
        with pytest.raises(SimulationError):
            power_glyphs(PowerTrace(), 10.0, shade_threshold=0.0)


class TestRenderPowerTimeline:
    def test_caption_reports_band_and_downtime(self):
        text = render_power_timeline(
            gapped_trace(), window_s=10.0, label="server 3"
        )
        assert text.startswith("server 3: 10 x 10s windows")
        assert "2 dark" in text
        assert "fraction 0.200" in text
        assert DOWNTIME_GLYPH * 2 in text

    def test_fault_free_caption_omits_downtime(self):
        trace = PowerTrace()
        for t in range(30):
            trace.append(float(t), 100.0 + t)
        text = render_power_timeline(trace, window_s=10.0)
        assert "downtime" not in text

    def test_rows_wrap_at_width(self):
        trace = PowerTrace()
        for t in range(100):
            trace.append(float(t), 100.0)
        text = render_power_timeline(trace, window_s=1.0, width=40)
        rows = text.splitlines()[1:]
        assert [len(r) for r in rows] == [40, 40, 20]

    def test_empty_trace_renders_note(self):
        assert "no samples" in render_power_timeline(PowerTrace(), 10.0)

    def test_width_validation(self):
        with pytest.raises(SimulationError):
            render_power_timeline(gapped_trace(), 10.0, width=0)


class TestDowntimeSummary:
    def test_gapped_trace_summary(self):
        summary = downtime_summary(gapped_trace(), 10.0)
        assert summary["windows"] == 10
        assert summary["dark_windows"] == 2
        assert summary["partial_windows"] == 0
        assert summary["downtime_fraction"] == pytest.approx(0.2)

    def test_partial_windows_counted_separately(self):
        trace = PowerTrace()
        for t in range(10):
            trace.append(float(t), 100.0)
        trace.note_gap(3.5)
        summary = downtime_summary(trace, 10.0)
        assert summary["dark_windows"] == 0
        assert summary["partial_windows"] == 1
        assert summary["downtime_fraction"] == pytest.approx(1.0 / 11.0)

    def test_fault_free_trace_is_all_zero(self):
        trace = PowerTrace()
        for t in range(50):
            trace.append(float(t), 100.0)
        summary = downtime_summary(trace, 10.0)
        assert summary["dark_windows"] == 0
        assert summary["downtime_fraction"] == 0.0

    def test_empty_trace_summary(self):
        assert downtime_summary(PowerTrace(), 10.0) == {
            "windows": 0,
            "dark_windows": 0,
            "partial_windows": 0,
            "downtime_fraction": 0.0,
        }
