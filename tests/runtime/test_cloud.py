"""Tests for the multi-tenant cloud layer."""

import pytest

from repro.errors import CapacityError, CloudError, FileNotFoundPseudoError, PermissionDeniedError
from repro.runtime.benchmarks import power_virus
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud


@pytest.fixture
def cc1():
    return ContainerCloud(PROVIDER_PROFILES["CC1"], seed=7, servers=4)


class TestLaunch:
    def test_instance_launches_on_some_host(self, cc1):
        inst = cc1.launch_instance("tenant-a")
        assert 0 <= inst.host_index < 4
        assert inst.container.running

    def test_placement_is_opaque_but_bounded(self, cc1):
        # 16-core hosts, 4-core instances: at most 4 per host
        instances = [cc1.launch_instance("t") for _ in range(16)]
        per_host = {}
        for inst in instances:
            per_host[inst.host_index] = per_host.get(inst.host_index, 0) + 1
        assert all(count <= 4 for count in per_host.values())

    def test_capacity_exhaustion(self, cc1):
        for _ in range(16):
            cc1.launch_instance("t")
        with pytest.raises(CapacityError):
            cc1.launch_instance("t")

    def test_terminate_frees_capacity(self, cc1):
        instances = [cc1.launch_instance("t") for _ in range(16)]
        cc1.terminate_instance(instances[0])
        replacement = cc1.launch_instance("t")
        assert replacement.host_index == instances[0].host_index

    def test_double_terminate_rejected(self, cc1):
        inst = cc1.launch_instance("t")
        cc1.terminate_instance(inst)
        with pytest.raises(CloudError):
            cc1.terminate_instance(inst)

    def test_terminated_instance_cannot_read(self, cc1):
        inst = cc1.launch_instance("t")
        cc1.terminate_instance(inst)
        with pytest.raises(CloudError):
            inst.read("/proc/uptime")

    def test_instances_of_tracks_tenant(self, cc1):
        cc1.launch_instance("alice")
        cc1.launch_instance("alice")
        cc1.launch_instance("bob")
        assert len(cc1.instances_of("alice")) == 2

    def test_boot_skew_across_servers(self, cc1):
        uptimes = set()
        for host in cc1.hosts:
            uptimes.add(round(host.kernel.uptime_seconds, 3))
        assert len(uptimes) == 4  # staggered boots


class TestBilling:
    def test_idle_instance_bills_little(self, cc1):
        cc1.launch_instance("cheap")
        cc1.run(60)
        assert cc1.bill("cheap") < 0.001

    def test_virus_bills_by_cpu(self, cc1):
        inst = cc1.launch_instance("spender")
        for _ in range(4):
            inst.container.exec("virus", workload=power_virus())
        cc1.run(3600, dt=10.0)
        # 4 cores x 1 hour x $0.05
        assert cc1.bill("spender") == pytest.approx(0.2, rel=0.05)

    def test_monitoring_is_nearly_free(self, cc1):
        """Reading the RAPL channel costs (almost) no CPU: Section IV-B."""
        inst = cc1.launch_instance("watcher")
        for _ in range(100):
            inst.read("/sys/class/powercap/intel-rapl:0/energy_uj")
            cc1.run(1.0)
        assert inst.billed_cpu_seconds < 1.0


class TestProviderPolicies:
    def test_cc1_denies_sched_debug_only(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=1, servers=1)
        inst = cloud.launch_instance("t")
        with pytest.raises(PermissionDeniedError):
            inst.read("/proc/sched_debug")
        inst.read("/proc/timer_list")  # open
        inst.read("/proc/uptime")  # open

    def test_cc3_masks_sysctl_fs(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC3"], seed=1, servers=1)
        inst = cloud.launch_instance("t")
        with pytest.raises(PermissionDeniedError):
            inst.read("/proc/sys/fs/file-nr")
        with pytest.raises(PermissionDeniedError):
            inst.read("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")

    def test_cc4_lacks_rapl_hardware(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC4"], seed=1, servers=1)
        inst = cloud.launch_instance("t")
        with pytest.raises(FileNotFoundPseudoError):
            inst.read("/sys/class/powercap/intel-rapl:0/energy_uj")

    def test_cc5_partial_views(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC5"], seed=1, servers=1)
        inst = cloud.launch_instance("t")
        cloud.run(2)
        cpuinfo = inst.read("/proc/cpuinfo")
        assert cpuinfo.count("processor") == 4  # tenant cores only
        meminfo = inst.read("/proc/meminfo")
        assert "MemTotal:" in meminfo
        total_kb = int(meminfo.splitlines()[0].split()[1])
        assert total_kb == 4 * 1024 * 1024  # scaled to the 4GB limit
        with pytest.raises(PermissionDeniedError):
            inst.read("/proc/uptime")

    def test_cc5_partial_meminfo_still_tracks_host(self):
        """The ◐ cells: partial views still leak host fluctuations."""
        cloud = ContainerCloud(PROVIDER_PROFILES["CC5"], seed=1, servers=1)
        inst = cloud.launch_instance("t")
        host = cloud.hosts[0].kernel

        def memfree():
            for line in inst.read("/proc/meminfo").splitlines():
                if line.startswith("MemFree"):
                    return int(line.split()[1])
            raise AssertionError("no MemFree")

        before = memfree()
        from repro.runtime.workload import constant

        host.spawn("hog", workload=constant("hog", cpu_demand=0.2, rss_mb=4096))
        cloud.run(5)
        after = memfree()
        assert after < before  # host-side allocation visible through the scaling


class TestCloudRun:
    def test_run_advances_all_hosts(self, cc1):
        before = [h.kernel.uptime_seconds for h in cc1.hosts]
        cc1.run(30)
        for b, host in zip(before, cc1.hosts):
            assert host.kernel.uptime_seconds == pytest.approx(b + 30)

    def test_nonpositive_run_rejected(self, cc1):
        with pytest.raises(CloudError):
            cc1.run(0)

    def test_zero_servers_rejected(self):
        with pytest.raises(CloudError):
            ContainerCloud(PROVIDER_PROFILES["CC1"], seed=1, servers=0)
