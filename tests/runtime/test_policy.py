"""Tests for masking policies."""

import pytest

from repro.errors import ContainerError
from repro.procfs.node import PseudoFile
from repro.runtime.policy import (
    Action,
    MaskingPolicy,
    Rule,
    docker_default_policy,
    first_field_only,
)


def node(name="x"):
    return PseudoFile(name=name, render=lambda ctx: "")


class TestRules:
    def test_exact_match(self):
        rule = Rule(pattern="/proc/meminfo", action=Action.DENY)
        assert rule.matches("/proc/meminfo")
        assert not rule.matches("/proc/meminfo2")

    def test_glob_match(self):
        rule = Rule(pattern="/proc/sys/fs/*", action=Action.DENY)
        assert rule.matches("/proc/sys/fs/file-nr")
        # fnmatch * crosses path separators, like Docker's masked-path globs
        assert rule.matches("/proc/sys/fs/epoll/max_user_watches")

    def test_partial_requires_transform(self):
        with pytest.raises(ContainerError):
            Rule(pattern="/x", action=Action.PARTIAL)


class TestPolicy:
    def test_default_allow(self):
        policy = MaskingPolicy()
        assert policy.check("/proc/meminfo", node()).action is Action.ALLOW

    def test_first_match_wins(self):
        policy = MaskingPolicy().allow("/proc/meminfo").deny("/proc/*")
        assert policy.check("/proc/meminfo", node()).action is Action.ALLOW
        assert policy.check("/proc/stat", node()).denied

    def test_deny_and_hide_differ(self):
        policy = MaskingPolicy().deny("/a").hide("/b")
        assert policy.check("/a", node()).denied
        assert not policy.check("/a", node()).hidden
        assert policy.check("/b", node()).hidden

    def test_chaining_returns_policy(self):
        policy = MaskingPolicy().deny("/a").hide("/b").allow("/c")
        assert len(policy.rules) == 3

    def test_copy_is_independent(self):
        policy = MaskingPolicy().deny("/a")
        clone = policy.copy()
        clone.deny("/b")
        assert len(policy.rules) == 1
        assert len(clone.rules) == 2

    def test_partial_transform_returned(self):
        policy = MaskingPolicy().partial("/x", first_field_only)
        decision = policy.check("/x", node())
        assert decision.transform is first_field_only


class TestDockerDefault:
    def test_masks_none_of_the_papers_channels(self):
        """The paper's point: Docker's defaults leave Table I open."""
        policy = docker_default_policy()
        for path in ("/proc/meminfo", "/proc/uptime", "/proc/timer_list",
                     "/sys/class/powercap/intel-rapl:0/energy_uj"):
            assert policy.check(path, node()).action is Action.ALLOW

    def test_masks_historical_paths(self):
        policy = docker_default_policy()
        assert policy.check("/proc/kcore", node()).hidden


class TestTransforms:
    def test_first_field_only(self):
        text = "eth0 100 200\nlo 1 2\n"
        assert first_field_only(text, None) == "eth0\nlo\n"
