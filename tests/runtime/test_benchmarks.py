"""Tests for benchmark profiles."""

import pytest

from repro.errors import SimulationError
from repro.runtime.benchmarks import (
    MODELING_BENCHMARKS,
    SPEC_BENCHMARKS,
    UNIXBENCH_TESTS,
    get_profile,
    power_virus,
)


class TestProfiles:
    def test_modeling_set_matches_paper(self):
        # "idle loop written in C, prime, 462.libquantum, and stress"
        assert {"idle-loop", "prime", "libquantum"} <= set(MODELING_BENCHMARKS)
        assert any(name.startswith("stress") for name in MODELING_BENCHMARKS)

    def test_spec_set_disjoint_from_modeling(self):
        assert not set(SPEC_BENCHMARKS) & set(MODELING_BENCHMARKS)

    def test_spec_includes_bzip2(self):
        # Figure 9 uses 401.bzip2
        assert "401.bzip2" in SPEC_BENCHMARKS

    def test_profiles_span_miss_rate_space(self):
        rates = [p.cache_miss_per_kinst for p in MODELING_BENCHMARKS.values()]
        assert max(rates) / max(min(rates), 1e-9) > 100

    def test_workload_instantiation(self):
        w = MODELING_BENCHMARKS["prime"].workload(duration=10.0)
        assert w.demand() == 1.0
        assert not w.finished

    def test_get_profile_lookup(self):
        assert get_profile("prime").name == "prime"
        assert get_profile("429.mcf").name == "429.mcf"
        with pytest.raises(SimulationError):
            get_profile("nonexistent")


class TestPowerVirus:
    def test_virus_outdraws_prime(self):
        """The virus must consume more power than Prime per core."""
        from repro.kernel.kernel import Machine
        from repro.kernel.rapl import unwrap_delta

        def joules(workload_factory):
            m = Machine(seed=1, spawn_daemons=False)
            m.kernel.spawn("w", workload=workload_factory())
            pkg = m.kernel.rapl.package(0).package
            before = pkg.energy_uj
            m.run(10, dt=1.0)
            return unwrap_delta(pkg.energy_uj, before)

        virus_j = joules(power_virus)
        prime_j = joules(lambda: MODELING_BENCHMARKS["prime"].workload())
        assert virus_j > prime_j * 1.3


class TestUnixBenchTests:
    def test_twelve_tests(self):
        assert len(UNIXBENCH_TESTS) == 12

    def test_names_match_table3(self):
        names = [t.name for t in UNIXBENCH_TESTS]
        assert "Pipe-based Context Switching" in names
        assert "Execl Throughput" in names
        assert "System Call Overhead" in names

    def test_pipe_test_switch_heavy(self):
        pipe = next(t for t in UNIXBENCH_TESTS if "Context Switching" in t.name)
        assert pipe.switches_per_op > 0

    def test_spawn_tests_marked(self):
        spawny = [t.name for t in UNIXBENCH_TESTS if t.spawns_per_op > 0]
        assert "Execl Throughput" in spawny
        assert "Process Creation" in spawny

    def test_file_copy_miss_heavy(self):
        fc = next(t for t in UNIXBENCH_TESTS if "File Copy 256" in t.name)
        dhry = next(t for t in UNIXBENCH_TESTS if "Dhrystone" in t.name)
        assert fc.cache_miss_per_kinst > dhry.cache_miss_per_kinst * 50
