"""Lifecycle and churn tests for cloud instances and containers."""

import pytest

from repro.errors import CapacityError
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.workload import constant, idle


@pytest.fixture
def cloud():
    return ContainerCloud(PROVIDER_PROFILES["CC1"], seed=271, servers=2)


class TestChurn:
    def test_heavy_launch_terminate_cycling(self, cloud):
        """The orchestrator's access pattern: hundreds of create/destroy
        cycles must not leak cores, tasks, or namespaces."""
        for round_ in range(50):
            instance = cloud.launch_instance("churner")
            instance.container.exec("w", workload=idle())
            cloud.run(1.0)
            cloud.terminate_instance(instance)
        # all capacity restored
        assert all(h.engine.free_cores == 16 for h in cloud.hosts)
        # only boot daemons remain in the process tables
        for host in cloud.hosts:
            names = {t.name for t in host.kernel.processes}
            assert not any(n.startswith("i-") or n == "sh" for n in names)

    def test_pid_counters_strictly_grow_across_churn(self):
        # pid counters are per host kernel: pin to a single-server cloud
        single = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=272, servers=1)
        first = single.launch_instance("a")
        first_pid = first.container.init_task.pid
        single.terminate_instance(first)
        second = single.launch_instance("a")
        assert second.container.init_task.pid > first_pid

    def test_net_namespaces_isolated_across_generations(self, cloud):
        first = cloud.launch_instance("a")
        ns_first = first.container.namespaces
        cloud.terminate_instance(first)
        second = cloud.launch_instance("a")
        from repro.kernel.namespaces import NamespaceType

        assert (
            second.container.namespaces[NamespaceType.NET]
            is not ns_first[NamespaceType.NET]
        )

    def test_capacity_error_leaves_cloud_consistent(self, cloud):
        instances = []
        while True:
            try:
                instances.append(cloud.launch_instance("filler"))
            except CapacityError:
                break
        assert len(instances) == 8  # 2 hosts x 16 cores / 4
        cloud.run(1.0)
        for instance in instances:
            cloud.terminate_instance(instance)
        assert cloud.launch_instance("filler").container.running


class TestBillingAcrossLifecycle:
    def test_terminated_instances_leave_the_bill(self, cloud):
        instance = cloud.launch_instance("payer")
        for _ in range(4):
            instance.container.exec("w", workload=constant("w", cpu_demand=1.0))
        cloud.run(600, dt=10.0)
        assert cloud.bill("payer") > 0.0
        cloud.terminate_instance(instance)
        # live-instance billing: a terminated instance no longer accrues
        assert cloud.bill("payer") == 0.0

    def test_billed_cpu_seconds_monotone(self, cloud):
        instance = cloud.launch_instance("payer")
        instance.container.exec("w", workload=constant("w", cpu_demand=0.5))
        previous = 0.0
        for _ in range(5):
            cloud.run(10)
            current = instance.billed_cpu_seconds
            assert current >= previous
            previous = current
