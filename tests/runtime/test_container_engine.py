"""Tests for containers and the engine."""

import pytest

from repro.errors import ContainerError, PermissionDeniedError
from repro.kernel.namespaces import NamespaceType
from repro.runtime.policy import MaskingPolicy
from repro.runtime.workload import constant, idle


class TestEngineCreate:
    def test_container_gets_fresh_namespaces(self, engine):
        c = engine.create(name="c1")
        for ns_type in (NamespaceType.PID, NamespaceType.NET, NamespaceType.MNT,
                        NamespaceType.UTS, NamespaceType.IPC, NamespaceType.CGROUP):
            assert not c.namespaces[ns_type].is_root

    def test_user_namespace_stays_root(self, engine):
        # Docker of the paper's era: no user namespaces by default
        c = engine.create(name="c1")
        assert c.namespaces[NamespaceType.USER].is_root

    def test_container_cgroups_created(self, engine):
        c = engine.create(name="c1")
        assert c.cgroup_set["cpuacct"].path == f"/docker/{c.container_id}"

    def test_init_task_is_pid_one_inside(self, engine):
        c = engine.create(name="c1")
        inner_pid = c.init_task.pid_in(c.namespaces[NamespaceType.PID])
        assert inner_pid == 1
        assert c.init_task.pid > 1  # host pid is global

    def test_hostname_is_container_id(self, engine):
        c = engine.create(name="webapp")
        assert c.read("/proc/sys/kernel/hostname").strip() == c.container_id

    def test_duplicate_name_rejected(self, engine):
        engine.create(name="dup")
        with pytest.raises(ContainerError):
            engine.create(name="dup")

    def test_dedicated_cpuset_allocation(self, engine):
        a = engine.create(name="a", cpus=4)
        b = engine.create(name="b", cpus=4)
        assert len(a.cpus) == 4
        assert not (a.cpus & b.cpus)
        assert engine.free_cores == 0

    def test_over_allocation_rejected(self, engine):
        engine.create(name="a", cpus=8)
        with pytest.raises(ContainerError):
            engine.create(name="b", cpus=1)

    def test_memory_limit_applied(self, engine):
        c = engine.create(name="c1", memory_mb=512)
        assert c.cgroup_set["memory"].state.limit_bytes == 512 * 1024 * 1024

    def test_remove_frees_cores(self, engine):
        c = engine.create(name="a", cpus=8)
        engine.remove(c)
        assert engine.free_cores == 8
        assert not c.running

    def test_creation_listener_fires(self, engine):
        seen = []
        engine.container_created_listeners.append(seen.append)
        c = engine.create(name="c1")
        assert seen == [c]


class TestContainerExec:
    def test_exec_joins_container_namespaces(self, engine):
        c = engine.create(name="c1")
        task = c.exec("worker", workload=idle())
        assert task.namespaces[NamespaceType.PID] is c.namespaces[NamespaceType.PID]

    def test_exec_joins_cgroups(self, engine, kernel):
        c = engine.create(name="c1")
        task = c.exec("worker", workload=idle())
        assert kernel.cgroups.hierarchy("cpuacct").cgroup_of(task).path == (
            f"/docker/{c.container_id}"
        )

    def test_cpuset_confines_tasks(self, machine, engine):
        c = engine.create(name="c1", cpus=2)
        task = c.exec("worker", workload=constant("w", cpu_demand=1.0))
        assert machine.kernel.scheduler.placement_of(task) in c.cpus

    def test_taskset_within_cpuset(self, engine, machine):
        c = engine.create(name="c1", cpus=4)
        core = min(c.cpus)
        task = c.exec("pinned", workload=constant("w"), affinity=frozenset([core]))
        assert machine.kernel.scheduler.placement_of(task) == core

    def test_taskset_escape_rejected(self, engine):
        c = engine.create(name="c1", cpus=2)
        outside = frozenset(range(8)) - c.cpus
        with pytest.raises(ContainerError):
            c.exec("escape", workload=idle(), affinity=outside)

    def test_exec_on_stopped_container_rejected(self, engine):
        c = engine.create(name="c1")
        engine.remove(c)
        with pytest.raises(ContainerError):
            c.exec("late", workload=idle())

    def test_cpu_usage_accumulates(self, machine, engine):
        c = engine.create(name="c1")
        c.exec("burn", workload=constant("w", cpu_demand=1.0))
        machine.run(5, dt=1.0)
        assert c.cpu_usage_ns >= 4.9e9

    def test_stop_kills_all_tasks(self, machine, engine):
        c = engine.create(name="c1")
        c.exec("w1", workload=constant("a"))
        c.exec("w2", workload=constant("b"))
        count_before = len(machine.kernel.processes)
        engine.remove(c)
        assert len(machine.kernel.processes) == count_before - 3  # 2 + init

    def test_reap_finished(self, machine, engine):
        c = engine.create(name="c1")
        c.exec("short", workload=constant("s", duration=2.0))
        machine.run(3, dt=1.0)
        assert c.reap_finished() == 1
        assert len(c.tasks) == 1  # init remains


class TestContainerPseudoReads:
    def test_policy_denial_surfaces_as_eacces(self, engine):
        policy = MaskingPolicy(name="t").deny("/proc/meminfo")
        c = engine.create(name="c1", policy=policy)
        with pytest.raises(PermissionDeniedError):
            c.read("/proc/meminfo")

    def test_arm_timer_implants_host_visible_entry(self, machine, engine):
        c1 = engine.create(name="c1")
        c2 = engine.create(name="c2")
        c1.arm_timer("sigzzz", delay_seconds=100)
        assert "sigzzz" in c2.read("/proc/timer_list")

    def test_take_lock_implants_entry(self, machine, engine):
        c1 = engine.create(name="c1")
        c2 = engine.create(name="c2")
        c1.take_lock(inode=424242)
        assert ":424242 " in c2.read("/proc/locks")

    def test_set_net_prio_is_cgroup_local(self, engine):
        c1 = engine.create(name="c1")
        c2 = engine.create(name="c2")
        c1.set_net_prio("eth1", 5)
        assert "eth1 5" in c1.read("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
        assert "eth1 0" in c2.read("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")

    def test_list_pseudo_files_excludes_hidden(self, engine):
        policy = MaskingPolicy(name="t").hide("/proc/timer_list")
        c = engine.create(name="c1", policy=policy)
        assert "/proc/timer_list" not in c.list_pseudo_files()
        # denied (not hidden) paths stay listed
        policy2 = MaskingPolicy(name="t2").deny("/proc/timer_list")
        c2 = engine.create(name="c2", policy=policy2)
        assert "/proc/timer_list" in c2.list_pseudo_files()
