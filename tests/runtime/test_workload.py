"""Tests for the workload phase model."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.kernel.activity import ActivitySample
from repro.runtime.workload import Workload, WorkloadPhase, constant, idle

FREQ = 3.4e9


class TestWorkloadPhase:
    def test_demand_bounds_enforced(self):
        with pytest.raises(SimulationError):
            WorkloadPhase(cpu_demand=1.5)
        with pytest.raises(SimulationError):
            WorkloadPhase(cpu_demand=-0.1)

    def test_nonpositive_ipc_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadPhase(ipc=0.0)

    def test_negative_miss_rates_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadPhase(cache_miss_per_kinst=-1.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(SimulationError):
            WorkloadPhase(duration=0.0)


class TestWorkload:
    def test_needs_at_least_one_phase(self):
        with pytest.raises(SimulationError):
            Workload([])

    def test_consume_produces_expected_counts(self):
        w = constant("w", ipc=2.0, cache_miss_per_kinst=10.0,
                     branch_miss_per_kinst=5.0)
        sample = w.consume(1.0, 1.0, FREQ)
        assert sample.cycles == int(FREQ)
        assert sample.instructions == int(FREQ * 2.0)
        assert sample.cache_misses == int(FREQ * 2.0 * 0.01)
        assert sample.branch_misses == int(FREQ * 2.0 * 0.005)

    def test_zero_grant_produces_zero_activity(self):
        w = constant("w")
        sample = w.consume(0.0, 1.0, FREQ)
        assert sample.instructions == 0

    def test_cannot_consume_more_than_tick(self):
        w = constant("w")
        with pytest.raises(SimulationError):
            w.consume(2.0, 1.0, FREQ)

    def test_phase_progression_by_wall_time(self):
        phases = [
            WorkloadPhase(duration=2.0, cpu_demand=1.0),
            WorkloadPhase(duration=3.0, cpu_demand=0.5),
        ]
        w = Workload(phases)
        w.consume(1.0, 1.0, FREQ)
        w.consume(1.0, 1.0, FREQ)
        assert w.demand() == 0.5  # second phase
        for _ in range(3):
            w.consume(0.5, 1.0, FREQ)
        assert w.finished
        assert w.demand() == 0.0

    def test_finished_workload_yields_nothing(self):
        w = constant("w", duration=1.0)
        w.consume(1.0, 1.0, FREQ)
        sample = w.consume(1.0, 1.0, FREQ)
        assert sample.instructions == 0

    def test_stop_terminates_immediately(self):
        w = constant("w")
        w.stop()
        assert w.finished

    def test_totals_accumulate(self):
        w = constant("w", ipc=1.0)
        for _ in range(5):
            w.consume(1.0, 1.0, FREQ)
        assert w.total.instructions == 5 * int(FREQ)
        assert w.total.cpu_ns == 5 * int(1e9)

    def test_idle_workload_is_nearly_free(self):
        w = idle()
        assert w.demand() < 0.01

    @given(st.floats(min_value=0.01, max_value=1.0),
           st.floats(min_value=0.1, max_value=4.0))
    def test_instructions_scale_with_grant_and_ipc(self, grant, ipc):
        w = constant("w", ipc=ipc)
        sample = w.consume(grant, 1.0, FREQ)
        assert sample.instructions == int(int(grant * FREQ) * ipc)


class TestActivitySample:
    def test_addition_sums_counters(self):
        a = ActivitySample(cycles=10, instructions=20, cache_misses=1,
                           work_units=1.0)
        b = ActivitySample(cycles=5, instructions=10, cache_misses=2,
                           work_units=0.5)
        total = a + b
        assert total.cycles == 15
        assert total.instructions == 30
        assert total.cache_misses == 3
        assert total.work_units == 1.5

    def test_addition_takes_max_rss(self):
        a = ActivitySample(rss_bytes=100)
        b = ActivitySample(rss_bytes=300)
        assert (a + b).rss_bytes == 300
