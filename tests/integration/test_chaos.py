"""The chaos harness: the paper's pipelines under a hostile substrate.

Every test here runs a Figure 2 (fleet trace) or Figure 3 (attack) style
pipeline with a seeded :class:`FaultSchedule` installed and asserts the
three contract layers of ``docs/faults.md``:

1. **Survival** — the pipeline completes end-to-end with zero unhandled
   exceptions.
2. **Quantified degradation** — what was lost is visible in counters
   (fault report, trace gaps, monitor degradation), never silent.
3. **Determinism** — identical seeds and schedules yield bit-identical
   traces and campaign results, on both the base-``dt`` and the
   ``coalesce=True`` drivers.
"""

import pytest

from repro.attack.monitor import CrestDetector
from repro.attack.strategies import SynergisticAttack
from repro.coresidence.orchestrator import CoResidenceOrchestrator
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile
from repro.errors import TransientReadError
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule
from repro.sim.rng import DeterministicRNG

pytestmark = pytest.mark.chaos

FLEET_WINDOW_S = 3600.0


def fleet_schedule(servers: int, racks: int) -> FaultSchedule:
    """The harness schedule: Poisson families at elevated rates plus one
    pinned event per windowed family, so every fault kind provably fires
    inside the one-hour test window."""
    sched = FaultSchedule.generate(
        77,
        FLEET_WINDOW_S,
        servers=servers,
        racks=racks,
        rapl_per_day=400.0,
        eio_per_day=400.0,
        crashes_per_week=0.0,
        oom_per_day=150.0,
        jitter_per_day=0.0,
        breaker_trips_per_week=0.0,
    )
    sched.add(
        FaultEvent(at=900.0, kind=FaultKind.MACHINE_CRASH, duration_s=300.0, server=1)
    )
    sched.add(
        FaultEvent(
            at=1800.0, kind=FaultKind.CLOCK_JITTER, duration_s=600.0, magnitude=0.2
        )
    )
    sched.add(
        FaultEvent(at=2700.0, kind=FaultKind.BREAKER_TRIP, duration_s=300.0, server=0)
    )
    return sched


def run_fleet(coalesce: bool) -> DatacenterSimulation:
    sim = DatacenterSimulation(servers=4, seed=211, sample_interval_s=30.0)
    sim.install_faults(fleet_schedule(4, len(sim.racks)))
    sim.run(FLEET_WINDOW_S, dt=1.0, coalesce=coalesce)
    return sim


class TestFleetUnderChaos:
    """Figure 2 style: the fleet trace pipeline survives the schedule."""

    def test_completes_and_degradation_is_quantified(self):
        sim = run_fleet(coalesce=True)
        report = sim.fault_report()
        # survival: a full hour of samples landed
        assert len(sim.aggregate_trace) >= FLEET_WINDOW_S / 30.0
        # every family injected...
        assert report["injected:machine-crash"] == 1
        assert report["injected:clock-jitter"] == 1
        assert report["injected:breaker-trip"] == 1
        assert report.get("injected:oom-kill", 0) >= 1
        assert (
            sum(n for k, n in report.items() if k.startswith("injected:rapl-")) >= 1
        )
        assert report.get("injected:pseudo-eio", 0) >= 1
        # ...and quantified: the crash left a 300 s hole in server 1's
        # trace (10 samples at 30 s), never a fake zero
        assert report["trace-gap-samples"] == 10
        assert len(sim.server_traces[1].gaps) == 10
        assert report["samples-jittered"] >= 1
        assert report["machine-restarts"] == 1
        assert report["breaker-recloses"] == 1
        # the trace statistics still compute over the gapped data
        assert sim.aggregate_trace.peak > 0.0

    @pytest.mark.parametrize("coalesce", [False, True])
    def test_identical_seeds_are_bit_identical(self, coalesce):
        a = run_fleet(coalesce)
        b = run_fleet(coalesce)
        assert a.aggregate_trace.times == b.aggregate_trace.times
        assert a.aggregate_trace.watts == b.aggregate_trace.watts
        for i in a.server_traces:
            assert a.server_traces[i].times == b.server_traces[i].times
            assert a.server_traces[i].watts == b.server_traces[i].watts
            assert a.server_traces[i].gaps == b.server_traces[i].gaps
        assert a.fault_report() == b.fault_report()

    def test_empty_schedule_matches_fault_free_run(self):
        """Installing a zero-event injector must not perturb anything."""
        plain = DatacenterSimulation(servers=2, seed=31, sample_interval_s=30.0)
        plain.run(1800.0, dt=1.0, coalesce=True)
        chaotic = DatacenterSimulation(servers=2, seed=31, sample_interval_s=30.0)
        chaotic.install_faults(FaultSchedule([], seed=0))
        chaotic.run(1800.0, dt=1.0, coalesce=True)
        assert chaotic.aggregate_trace.times == plain.aggregate_trace.times
        assert chaotic.aggregate_trace.watts == plain.aggregate_trace.watts
        assert chaotic.fault_report() == {"trace-gap-samples": 0}


ATTACK_TENANTS = DiurnalProfile(
    base_cores=1.0,
    peak_cores=1.5,
    bursts_per_day=200.0,
    burst_cores=5.0,
    burst_duration_s=45.0,
    noise=0.05,
)

ATTACK_WINDOW_S = 1200.0


def attack_schedule(servers: int, racks: int) -> FaultSchedule:
    sched = FaultSchedule.generate(
        55,
        600.0 + ATTACK_WINDOW_S,
        servers=servers,
        racks=racks,
        rapl_per_day=300.0,
        eio_per_day=300.0,
        crashes_per_week=0.0,
        oom_per_day=100.0,
        jitter_per_day=0.0,
        breaker_trips_per_week=0.0,
    )
    # pin one RAPL outage inside the attack window so the monitors
    # provably exercise the gap/backoff path
    sched.add(
        FaultEvent(at=800.0, kind=FaultKind.RAPL_DROP, duration_s=60.0, server=0)
    )
    return sched


def run_attack():
    sim = DatacenterSimulation(
        servers=4, seed=105, sample_interval_s=1.0, tenant_profile=ATTACK_TENANTS
    )
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < 4:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.install_faults(attack_schedule(4, len(sim.racks)))
    sim.run(600.0, dt=1.0)
    attack = SynergisticAttack(
        sim,
        instances,
        burst_s=30.0,
        cooldown_s=300.0,
        max_trials=2,
        learn_s=300.0,
        detector_factory=lambda: CrestDetector(
            window=2000, threshold_fraction=0.88, min_band_watts=30.0
        ),
    )
    return attack.run(ATTACK_WINDOW_S), attack


class TestAttackUnderChaos:
    """Figure 3 style: the synergistic attack survives a flaky substrate."""

    def test_completes_and_reports_degradation(self):
        outcome, attack = run_attack()
        assert outcome.peak_watts > 0.0
        # the pinned RAPL outage forced the monitor degradation path
        assert outcome.degradation["monitor-faulted-reads"] >= 1
        assert outcome.degradation["monitor-gap-count"] >= 1
        assert outcome.degradation["monitor-gap-seconds"] > 0.0
        # fleet-wide fault counters ride along on the outcome
        assert any(k.startswith("injected:") for k in outcome.degradation)
        per_monitor = [
            m.degradation() for m in attack.monitors.values()
        ]
        assert sum(d["faulted_reads"] for d in per_monitor) >= 1

    def test_campaign_results_are_deterministic(self):
        a, _ = run_attack()
        b, _ = run_attack()
        assert a.trials == b.trials
        assert a.peak_watts == b.peak_watts
        assert a.spike_watts == b.spike_watts
        assert a.attacker_cpu_seconds == b.attacker_cpu_seconds
        assert a.degradation == b.degradation


def fleet_trace_snapshot(sim):
    return {
        "agg": (
            tuple(sim.aggregate_trace.times),
            tuple(sim.aggregate_trace.watts),
            tuple(sim.aggregate_trace.gaps),
        ),
        "servers": {
            i: (tuple(t.times), tuple(t.watts), tuple(t.gaps))
            for i, t in sim.server_traces.items()
        },
        "faults": sim.fault_report(),
        "trip_log": sim.trip_log(),
    }


def build_chaos_fleet(checkpoint_dir=None, **resilience):
    sim = DatacenterSimulation(servers=4, seed=211, sample_interval_s=30.0)
    sim.install_faults(fleet_schedule(4, len(sim.racks)))
    if checkpoint_dir is not None or resilience:
        sim.enable_resilience(
            checkpoint_dir=checkpoint_dir, checkpoint_every=600.0, **resilience
        )
    return sim


def attack_outcome_snapshot(outcome):
    return (
        outcome.trials,
        tuple(outcome.spike_watts),
        outcome.peak_watts,
        outcome.attacker_cpu_seconds,
        outcome.bill_dollars,
        tuple(sorted(outcome.degradation.items())),
    )


def build_chaos_attack(parallel=0, checkpoint_dir=None, resume=False):
    """The ``run_attack`` pipeline, optionally sharded and checkpointed."""
    sim = DatacenterSimulation(
        servers=4, seed=105, sample_interval_s=1.0, tenant_profile=ATTACK_TENANTS
    )
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < 4:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.install_faults(attack_schedule(4, len(sim.racks)))
    if checkpoint_dir is not None:
        sim.enable_resilience(
            checkpoint_dir=checkpoint_dir, checkpoint_every=300.0
        )
    sim.run(600.0, dt=1.0, parallel=parallel, resume=resume)
    attack = SynergisticAttack(
        sim,
        instances,
        burst_s=30.0,
        cooldown_s=300.0,
        max_trials=2,
        learn_s=300.0,
        detector_factory=lambda: CrestDetector(
            window=2000, threshold_fraction=0.88, min_band_watts=30.0
        ),
        resume_key="synergistic" if checkpoint_dir is not None else None,
    )
    return sim, attack


def crash_after(sim, at, shard):
    """Wrap ``sim.run`` so one shard dies the first time ``now`` passes
    ``at`` — a mid-campaign kill from the strategy's own run sequence."""
    original = sim.run
    fired = []

    def hooked(*args, **kwargs):
        original(*args, **kwargs)
        if not fired and sim._parallel is not None and sim.now >= at:
            fired.append(True)
            sim._parallel.debug_crash_worker(shard)

    sim.run = hooked


class TestSelfHealingFleetUnderChaos:
    """docs/resilience.md under the hostile fleet schedule: a shard killed
    mid-run is healed in place, and a killed campaign resumes from disk —
    both bit-identical to the serial golden run."""

    def test_supervised_kill_matches_serial_golden(self, tmp_path):
        golden = run_fleet(coalesce=True)
        sim = build_chaos_fleet(checkpoint_dir=str(tmp_path), max_restarts=1)
        sim.run(1800.0, dt=1.0, coalesce=True, parallel=2)
        sim._parallel.debug_crash_worker(0)
        sim.run(1800.0, dt=1.0, coalesce=True, parallel=2)
        try:
            assert fleet_trace_snapshot(golden) == fleet_trace_snapshot(sim)
            assert sim._parallel.res_metrics.restarts == 1
        finally:
            sim.close()

    def test_resume_matches_serial_golden(self, tmp_path):
        golden = run_fleet(coalesce=True)
        part = build_chaos_fleet(checkpoint_dir=str(tmp_path))
        part.run(1800.0, dt=1.0, coalesce=True, parallel=2)
        part.close()  # killed here
        res = build_chaos_fleet(checkpoint_dir=str(tmp_path))
        res.run(1800.0, dt=1.0, coalesce=True, parallel=2, resume=True)
        res.run(1800.0, dt=1.0, coalesce=True, parallel=2)
        try:
            assert fleet_trace_snapshot(golden) == fleet_trace_snapshot(res)
        finally:
            res.close()


class TestSelfHealingAttackUnderChaos:
    """The Figure 3 campaign on a flaky substrate survives a shard kill
    mid-campaign and a full process kill + resume, bit-identically."""

    def test_supervised_kill_mid_campaign_matches_serial_golden(self, tmp_path):
        golden_outcome, _ = run_attack()
        sim, attack = build_chaos_attack(
            parallel=2, checkpoint_dir=str(tmp_path)
        )
        # kill shard 0 the first time the campaign clock passes t=1100
        crash_after(sim, at=1100.0, shard=0)
        try:
            outcome = attack.run(ATTACK_WINDOW_S)
            assert attack_outcome_snapshot(golden_outcome) == attack_outcome_snapshot(
                outcome
            )
            assert sim._parallel.res_metrics.restarts == 1
        finally:
            sim.close()

    def test_resume_mid_campaign_matches_serial_golden(self, tmp_path):
        golden_outcome, _ = run_attack()
        part_sim, part_attack = build_chaos_attack(
            parallel=2, checkpoint_dir=str(tmp_path)
        )
        part_attack.run(700.0)  # killed ~700 s into the campaign
        part_sim.close()
        res_sim, res_attack = build_chaos_attack(
            parallel=2, checkpoint_dir=str(tmp_path), resume=True
        )
        try:
            outcome = res_attack.run(ATTACK_WINDOW_S)
            assert attack_outcome_snapshot(golden_outcome) == attack_outcome_snapshot(
                outcome
            )
        finally:
            res_sim.close()


class TestOrchestratorUnderChaos:
    def test_faulting_verifier_counts_and_recycles(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=61, servers=2)

        def flaky_verifier(cloud_, pivot, candidate):
            candidate.read("/proc/uptime")  # faulted reads raise here
            import repro.coresidence.orchestrator as orch

            return orch.fingerprint_verifier(cloud_, pivot, candidate)

        orchestrator = CoResidenceOrchestrator(
            cloud, verifier=flaky_verifier, settle_s=1.0
        )
        # fault the verifier's channel for the first verification only
        from repro.sim.faults import KernelFaultState

        for host in cloud.hosts:
            state = KernelFaultState(DeterministicRNG(9))
            state.add_eio("/proc/uptime", until=3.0)
            host.kernel.faults = state
        result = orchestrator.aggregate(target=2, max_launches=30)
        assert result.achieved == 2
        assert result.verification_errors >= 1

    def test_transient_error_is_eio_flavored(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=61, servers=1)
        from repro.sim.faults import KernelFaultState

        state = KernelFaultState(DeterministicRNG(9))
        state.add_eio("/proc/uptime", until=10.0)
        cloud.hosts[0].kernel.faults = state
        with pytest.raises(TransientReadError, match="EIO"):
            cloud.hosts[0].engine.vfs.read("/proc/uptime")
