"""Edge-case coverage across module boundaries."""

import pytest

from repro import errors
from repro.attack.campaign import SynergisticCampaign
from repro.datacenter.simulation import DatacenterSimulation
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud


class TestErrorHierarchy:
    def test_all_errors_catchable_as_repro_error(self):
        leaf_classes = [
            errors.SimulationError,
            errors.KernelError,
            errors.PseudoFileError,
            errors.PermissionDeniedError,
            errors.FileNotFoundPseudoError,
            errors.ContainerError,
            errors.CloudError,
            errors.CapacityError,
            errors.DefenseError,
            errors.AttackError,
        ]
        for cls in leaf_classes:
            assert issubclass(cls, errors.ReproError), cls

    def test_permission_denied_carries_path(self):
        exc = errors.PermissionDeniedError("/proc/meminfo")
        assert exc.path == "/proc/meminfo"
        assert "permission denied" in str(exc)

    def test_capacity_is_a_cloud_error(self):
        assert issubclass(errors.CapacityError, errors.CloudError)


class TestCampaignOnHardenedProviders:
    def test_reconnaissance_fails_loudly_when_uptime_masked(self):
        """On a CC5-style provider the uptime channel is gone; the
        campaign's recon step surfaces that as an AttackError instead of
        silently proceeding with no intelligence."""
        sim = DatacenterSimulation(
            profile=PROVIDER_PROFILES["CC5"], servers=2, seed=251,
            sample_interval_s=1.0,
        )
        campaign = SynergisticCampaign(sim)
        # CC5 masks boot_id? No: boot_id stays open on CC5, so coverage
        # still works; only the uptime recon is blocked.
        instances = campaign.cover_servers(target_servers=2, max_launches=40)
        with pytest.raises(errors.AttackError):
            campaign.reconnoiter(instances)

    def test_synergistic_campaign_impossible_on_cc4(self):
        """No RAPL hardware: the strike phase cannot even arm."""
        sim = DatacenterSimulation(
            profile=PROVIDER_PROFILES["CC4"], servers=2, seed=252,
            sample_interval_s=1.0,
        )
        campaign = SynergisticCampaign(sim)
        with pytest.raises(errors.AttackError):
            campaign.execute(
                target_servers=2, attack_duration_s=60.0, settle_s=1.0,
                max_launches=40,
            )


class TestProviderDiversity:
    def test_boot_ids_unique_across_all_providers(self):
        seen = set()
        for name, profile in PROVIDER_PROFILES.items():
            cloud = ContainerCloud(profile, seed=253, servers=2)
            for host in cloud.hosts:
                boot_id = host.kernel.random.boot_id
                assert boot_id not in seen
                seen.add(boot_id)

    def test_cc5_cpuinfo_renumbers_processors(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC5"], seed=254, servers=1)
        instance = cloud.launch_instance("t")
        cloud.run(1)
        content = instance.read("/proc/cpuinfo")
        lines = [ln for ln in content.splitlines() if ln.startswith("processor")]
        numbers = [int(ln.split(":")[1]) for ln in lines]
        assert numbers == list(range(len(numbers)))  # 0..n-1, renumbered

    def test_all_profiles_have_distinct_policies(self):
        names = {p.policy_factory().name for p in PROVIDER_PROFILES.values()}
        assert len(names) == 5
