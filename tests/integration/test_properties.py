"""Property-based tests over cross-cutting invariants (hypothesis)."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.datacenter.breaker import CircuitBreaker
from repro.datacenter.simulation import PowerTrace
from repro.kernel.kernel import Machine
from repro.kernel.rapl import MAX_ENERGY_RANGE_UJ, RaplDomain, unwrap_delta
from repro.runtime.policy import MaskingPolicy
from repro.runtime.workload import constant

# keep hypothesis example counts modest: each example boots a simulator
SIM_SETTINGS = settings(
    max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


class TestSchedulerConservation:
    @SIM_SETTINGS
    @given(
        demands=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=12
        ),
        seconds=st.integers(min_value=2, max_value=10),
    )
    def test_cpu_time_never_exceeds_capacity(self, demands, seconds):
        """Σ granted CPU time <= cores × wall time, for any demand mix."""
        machine = Machine(seed=1, spawn_daemons=False)
        tasks = [
            machine.kernel.spawn(
                f"t{i}", workload=constant(f"t{i}", cpu_demand=demand)
            )
            for i, demand in enumerate(demands)
        ]
        machine.run(seconds, dt=1.0)
        total_cpu_s = sum(t.cpu_time_ns for t in tasks) / 1e9
        capacity = machine.kernel.config.total_cores * seconds
        assert total_cpu_s <= capacity * 1.001

    @SIM_SETTINGS
    @given(
        demands=st.lists(
            st.floats(min_value=0.05, max_value=1.0), min_size=1, max_size=8
        )
    )
    def test_busy_plus_idle_equals_wall_time(self, demands):
        """Per CPU: busy + idle always sums to elapsed wall time."""
        machine = Machine(seed=2, spawn_daemons=False)
        for i, demand in enumerate(demands):
            machine.kernel.spawn(
                f"t{i}", workload=constant(f"t{i}", cpu_demand=demand)
            )
        machine.run(5, dt=1.0)
        for stat in machine.kernel.scheduler.cpu_stats.values():
            busy_idle_s = (stat.user_ns + stat.system_ns + stat.idle_ns) / 1e9
            assert busy_idle_s == pytest.approx(5.0, abs=0.02)

    @SIM_SETTINGS
    @given(quota=st.floats(min_value=0.5, max_value=6.0))
    def test_quota_always_respected(self, quota):
        machine = Machine(seed=3, spawn_daemons=False)
        groups = machine.kernel.cgroups.create_group_set("q")
        groups["cpu"].state.set_quota(quota)
        tasks = [
            machine.kernel.spawn(
                f"t{i}", workload=constant(f"t{i}", cpu_demand=1.0),
                cgroup_set=groups,
            )
            for i in range(8)
        ]
        machine.run(5, dt=1.0)
        total_s = sum(t.cpu_time_ns for t in tasks) / 1e9
        assert total_s <= min(quota, 8.0) * 5 * 1.01


class TestEnergyInvariants:
    @SIM_SETTINGS
    @given(
        mixes=st.lists(
            st.tuples(
                st.floats(min_value=0.1, max_value=1.0),  # demand
                st.floats(min_value=0.3, max_value=4.0),  # ipc
                st.floats(min_value=0.0, max_value=40.0),  # cmpki
            ),
            min_size=0,
            max_size=6,
        )
    )
    def test_rapl_counters_never_regress(self, mixes):
        machine = Machine(seed=4, spawn_daemons=False)
        for i, (demand, ipc, cmpki) in enumerate(mixes):
            machine.kernel.spawn(
                f"w{i}",
                workload=constant(
                    f"w{i}", cpu_demand=demand, ipc=ipc,
                    cache_miss_per_kinst=cmpki,
                ),
            )
        pkg = machine.kernel.rapl.package(0)
        previous = [d.energy_uj for d in pkg.domains()]
        for _ in range(5):
            machine.run(1, dt=1.0)
            current = [d.energy_uj for d in pkg.domains()]
            for before, after in zip(previous, current):
                assert unwrap_delta(after, before) >= 0
            previous = current

    @SIM_SETTINGS
    @given(
        demand=st.floats(min_value=0.0, max_value=1.0),
        ipc=st.floats(min_value=0.2, max_value=4.0),
    )
    def test_power_at_least_idle_floor(self, demand, ipc):
        machine = Machine(seed=5, spawn_daemons=False)
        if demand > 0:
            machine.kernel.spawn(
                "w", workload=constant("w", cpu_demand=demand, ipc=ipc)
            )
        machine.run(3, dt=1.0)
        floor = machine.kernel.power.idle_package_watts()
        assert machine.kernel.host_package_watts() >= floor * 0.999


class TestRaplArithmetic:
    @given(
        start=st.integers(min_value=0, max_value=MAX_ENERGY_RANGE_UJ - 1),
        increment_j=st.floats(min_value=0.0, max_value=100_000.0),
    )
    def test_unwrap_recovers_any_single_wrap_delta(self, start, increment_j):
        domain = RaplDomain(name="x", sysfs_name="x")
        domain._energy_uj = float(start)
        before = domain.energy_uj
        domain.accumulate(increment_j)
        recovered = unwrap_delta(domain.energy_uj, before)
        assert recovered == pytest.approx(increment_j * 1e6, abs=2.0)


class TestBreakerProperties:
    @given(
        rated=st.floats(min_value=100.0, max_value=10_000.0),
        load_fraction=st.floats(min_value=0.0, max_value=0.999),
    )
    def test_below_rating_never_trips(self, rated, load_fraction):
        breaker = CircuitBreaker(name="b", rated_watts=rated)
        for t in range(200):
            breaker.observe(rated * load_fraction, dt=10.0, now=float(t))
        assert not breaker.tripped

    @given(
        overload=st.floats(min_value=1.05, max_value=5.0),
    )
    def test_any_sustained_overload_eventually_trips(self, overload):
        breaker = CircuitBreaker(name="b", rated_watts=1000.0)
        t = 0.0
        while not breaker.tripped:
            breaker.observe(1000.0 * overload, dt=10.0, now=t)
            t += 10.0
            assert t < 1e5
        assert breaker.tripped


class TestPowerTraceProperties:
    @given(
        watts=st.lists(
            st.floats(min_value=0.0, max_value=5000.0), min_size=1, max_size=200
        ),
        window=st.floats(min_value=0.5, max_value=50.0),
    )
    def test_averaging_stays_within_envelope(self, watts, window):
        trace = PowerTrace()
        for t, w in enumerate(watts):
            trace.append(float(t), w)
        averaged = trace.averaged(window)
        assert len(averaged) >= 1
        assert averaged.peak <= trace.peak + 1e-9
        assert averaged.trough >= trace.trough - 1e-9

    @given(
        watts=st.lists(
            st.floats(min_value=1.0, max_value=5000.0), min_size=2, max_size=100
        )
    )
    def test_mean_between_extremes(self, watts):
        trace = PowerTrace()
        for t, w in enumerate(watts):
            trace.append(float(t), w)
        # allow a few ulps: float summation can round the mean just past
        # an extreme when all samples are (nearly) identical
        slack = 1e-9 * max(1.0, abs(trace.peak))
        assert trace.trough - slack <= trace.mean <= trace.peak + slack


class TestPolicyProperties:
    @given(
        paths=st.lists(
            st.sampled_from(
                ["/proc/meminfo", "/proc/stat", "/proc/uptime",
                 "/sys/class/net/eth0/statistics/rx_bytes"]
            ),
            min_size=0,
            max_size=4,
            unique=True,
        )
    )
    def test_denied_paths_denied_others_allowed(self, paths):
        from repro.procfs.node import PseudoFile

        policy = MaskingPolicy()
        for path in paths:
            policy.deny(path)
        probe = PseudoFile(name="x", render=lambda ctx: "")
        universe = ["/proc/meminfo", "/proc/stat", "/proc/uptime",
                    "/sys/class/net/eth0/statistics/rx_bytes", "/proc/version"]
        for path in universe:
            decision = policy.check(path, probe)
            assert decision.denied == (path in paths)
