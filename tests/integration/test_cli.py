"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_scan_defaults(self):
        args = build_parser().parse_args(["scan"])
        assert args.seed == 0
        assert not args.verbose

    def test_seed_after_subcommand(self):
        args = build_parser().parse_args(["scan", "--seed", "9"])
        assert args.seed == 9

    def test_inspect_providers_positional(self):
        args = build_parser().parse_args(["inspect", "CC1", "CC4"])
        assert args.providers == ["CC1", "CC4"]

    def test_attack_options(self):
        args = build_parser().parse_args(
            ["attack", "--servers", "2", "--duration", "600"]
        )
        assert args.servers == 2
        assert args.duration == 600.0

    def test_fleet_defaults(self):
        args = build_parser().parse_args(["fleet"])
        assert args.parallel == 0
        assert not args.coalesce
        assert args.rack_size == 8

    def test_fleet_parallel_flag(self):
        args = build_parser().parse_args(
            ["fleet", "--parallel", "4", "--servers", "16", "--rack-size", "4"]
        )
        assert args.parallel == 4
        assert args.servers == 16


class TestExecution:
    def test_scan_runs_and_reports(self, capsys):
        assert main(["scan", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "leaking channels: 31" in out
        assert "namespaced" in out

    def test_scan_verbose_lists_paths(self, capsys):
        assert main(["scan", "-v"]) == 0
        assert "LEAK /proc/meminfo" in capsys.readouterr().out

    def test_inspect_one_provider(self, capsys):
        assert main(["inspect", "CC4"]) == 0
        out = capsys.readouterr().out
        assert "CC4" in out
        assert "○" in out  # CC4 masks plenty

    def test_inspect_unknown_provider(self, capsys):
        assert main(["inspect", "CC9"]) == 2
        assert "unknown providers: CC9" in capsys.readouterr().err

    def test_rank_prints_table2(self, capsys):
        assert main(["rank", "--snapshots", "4"]) == 0
        out = capsys.readouterr().out
        assert "proc.sys.kernel.random.boot_id" in out
        assert "static-id" in out

    def test_fleet_serial_reports_trace(self, capsys):
        assert main(["fleet", "--duration", "120", "--servers", "4",
                     "--rack-size", "4"]) == 0
        out = capsys.readouterr().out
        assert "4 servers / 1 racks" in out
        assert "peak" in out and "swing" in out
        assert "ticks 120" in out

    def test_fleet_parallel_matches_serial_output(self, capsys):
        argv = ["fleet", "--duration", "90", "--servers", "4",
                "--rack-size", "2"]
        assert main(argv) == 0
        serial_out = capsys.readouterr().out
        assert main(argv + ["--parallel", "2"]) == 0
        parallel_out = capsys.readouterr().out
        # identical trace statistics line (determinism through the CLI)
        assert serial_out.splitlines()[1] == parallel_out.splitlines()[1]

    def test_defend_reports_accuracy(self, capsys):
        assert main(["defend"]) == 0
        out = capsys.readouterr().out
        assert "xi=" in out
