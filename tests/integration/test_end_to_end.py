"""End-to-end integration: the paper's storyline as executable scenarios.

Each test walks a full arc: discover leaks → exploit them (co-residence,
synergistic power attack) → deploy the defense → verify the attack dies.
"""

import pytest

from repro.attack.monitor import RaplPowerMonitor
from repro.coresidence.orchestrator import CoResidenceOrchestrator
from repro.defense.masking import generate_masking_policy, verify_masking
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.detection.crossvalidate import CrossValidator
from repro.errors import AttackError, PermissionDeniedError
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant


class TestDiscoveryToExploit:
    def test_detector_finds_the_attack_channel(self):
        """The RAPL channel the attack needs is discoverable by the tool."""
        machine = Machine(seed=91)
        engine = ContainerEngine(machine.kernel)
        probe = engine.create(name="probe")
        machine.run(3, dt=1.0)
        report = CrossValidator(engine.vfs, probe).run()
        assert "sys.class.powercap.energy_uj" in report.leaking_channels()

    def test_coresidence_then_monitoring(self):
        """Aggregate instances, then watch host power through the leak."""
        cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=92, servers=4)
        result = CoResidenceOrchestrator(cloud, tenant="attacker").aggregate(
            target=2, max_launches=60
        )
        monitor = RaplPowerMonitor(result.instances[0])
        monitor.sample(cloud.clock.now)
        cloud.run(10)
        watts = monitor.sample(cloud.clock.now)
        assert watts > 5.0  # a live power reading of the shared host


class TestDefenseKillsTheAttack:
    def test_stage1_masking_blocks_monitoring(self):
        machine = Machine(seed=93)
        engine = ContainerEngine(machine.kernel)
        probe = engine.create(name="probe")
        machine.run(3, dt=1.0)
        policy = generate_masking_policy(CrossValidator(engine.vfs, probe).run())
        attacker = engine.create(name="attacker", policy=policy)
        with pytest.raises(PermissionDeniedError):
            attacker.read("/sys/class/powercap/intel-rapl:0/energy_uj")
        assert verify_masking(engine.vfs, attacker) == []

    def test_stage2_power_namespace_blinds_the_monitor(self):
        """With the power namespace, the attacker's monitor only sees its
        own activity: benign crests become invisible, so there is nothing
        to synchronize with."""
        harness = TrainingHarness(seed=94, window_s=5.0, windows_per_benchmark=8)
        harness.run_all()
        model = PowerModeler(form="paper").fit(harness)

        machine = Machine(seed=95)
        engine = ContainerEngine(machine.kernel)
        driver = PowerNamespaceDriver(machine.kernel, model)
        driver.watch_engine(engine)

        attacker = engine.create(name="attacker", cpus=2)
        victim = engine.create(name="victim", cpus=4)
        machine.run(10, dt=1.0)

        path = "/sys/class/powercap/intel-rapl:0/energy_uj"

        def attacker_watts(seconds):
            before = int(attacker.read(path))
            machine.run(seconds, dt=1.0)
            return unwrap_delta(int(attacker.read(path)), before) / 1e6 / seconds

        quiet = attacker_watts(10)
        for i in range(4):
            victim.exec(f"spike-{i}", workload=constant("s", cpu_demand=1.0, ipc=2.5))
        during_crest = attacker_watts(10)
        # the benign crest is invisible through the attacker's interface
        assert during_crest == pytest.approx(quiet, rel=0.15)
        # ...even though the host genuinely surged
        assert machine.kernel.host_package_watts() > quiet * 2

    def test_vanilla_kernel_shows_the_crest_for_contrast(self):
        machine = Machine(seed=95)
        engine = ContainerEngine(machine.kernel)
        attacker = engine.create(name="attacker", cpus=2)
        victim = engine.create(name="victim", cpus=4)
        machine.run(10, dt=1.0)
        path = "/sys/class/powercap/intel-rapl:0/energy_uj"

        def attacker_watts(seconds):
            before = int(attacker.read(path))
            machine.run(seconds, dt=1.0)
            return unwrap_delta(int(attacker.read(path)), before) / 1e6 / seconds

        quiet = attacker_watts(10)
        for i in range(4):
            victim.exec(f"spike-{i}", workload=constant("s", cpu_demand=1.0, ipc=2.5))
        during_crest = attacker_watts(10)
        assert during_crest > quiet + 20.0  # the leak, plainly visible


class TestCoResidenceDefense:
    def test_masking_defeats_fingerprint_orchestration(self):
        """With boot_id and ifpriomap masked, the fingerprint verifier has
        no identifiers and aggregation cannot confirm anything."""
        profile = PROVIDER_PROFILES["CC1"]
        from dataclasses import replace

        def hardened_policy():
            policy = profile.policy_factory()
            policy.deny("/proc/sys/kernel/random/boot_id")
            policy.deny("/sys/fs/cgroup/net_prio/*")
            return policy

        hardened = replace(profile, policy_factory=hardened_policy)
        cloud = ContainerCloud(hardened, seed=96, servers=4)
        orchestrator = CoResidenceOrchestrator(cloud, tenant="attacker")
        with pytest.raises(AttackError):
            orchestrator.aggregate(target=2, max_launches=8)
