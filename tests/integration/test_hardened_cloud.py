"""Integration: hardening a provider end to end and re-inspecting it.

The operator's playbook, executed: take a CC1-style cloud, apply every
layer of the defense (stage-1 masking derived from the detector's own
report, the stage-2 namespace patches, and the power namespace), then
re-run the paper's inspection and attack tooling to confirm the provider
no longer leaks anything actionable.
"""

import pytest

from repro.attack.monitor import RaplPowerMonitor
from repro.coresidence.fingerprint import fingerprint_instance
from repro.coresidence.implant import ImplantVerifier
from repro.defense.kernel_patches import apply_all_patches
from repro.defense.masking import generate_masking_policy
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.detection.inspector import CloudInspector
from repro.kernel.kernel import Machine
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.engine import ContainerEngine
from repro.detection.crossvalidate import CrossValidator


@pytest.fixture(scope="module")
def model():
    harness = TrainingHarness(seed=221, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    return PowerModeler(form="paper").fit(harness)


@pytest.fixture
def hardened_cloud(model):
    """A CC1 cloud with the full defense stack deployed on every host."""
    # derive the masking policy once, from a staging host
    staging = Machine(seed=222)
    staging_engine = ContainerEngine(staging.kernel)
    probe = staging_engine.create(name="probe")
    staging.run(3, dt=1.0)
    report = CrossValidator(staging_engine.vfs, probe).run()
    policy = generate_masking_policy(report, name="hardened")

    from dataclasses import replace

    profile = replace(
        PROVIDER_PROFILES["CC1"], policy_factory=lambda: policy.copy()
    )
    cloud = ContainerCloud(profile, seed=223, servers=2)
    for host in cloud.hosts:
        apply_all_patches(host.engine.vfs)
        driver = PowerNamespaceDriver(host.kernel, model)
        driver.watch_engine(host.engine)
    return cloud


class TestHardenedProvider:
    def test_inspection_shows_everything_closed(self, hardened_cloud):
        report = CloudInspector().inspect(hardened_cloud)
        # every actionable channel is masked or serves private data; the
        # availability matrix shows no fully-open host-global channel
        open_channels = report.available_channels()
        assert open_channels == []

    def test_fingerprinting_fails(self, hardened_cloud):
        a = hardened_cloud.launch_instance("attacker")
        b = hardened_cloud.launch_instance("attacker")
        assert fingerprint_instance(a).empty
        assert not fingerprint_instance(a).matches(fingerprint_instance(b))

    def test_implantation_fails(self, hardened_cloud):
        # find two truly co-resident instances provider-side, then show
        # the tenant-side verification can no longer confirm it
        first = hardened_cloud.launch_instance("attacker")
        second = None
        while second is None:
            candidate = hardened_cloud.launch_instance("attacker")
            if candidate.host_index == first.host_index:
                second = candidate
            else:
                hardened_cloud.terminate_instance(candidate)
        for channel in ("timer_list", "locks", "sched_debug"):
            verifier = ImplantVerifier(channel)
            implant = verifier.plant(first.container)
            hardened_cloud.run(1.0)
            assert not verifier.probe(second, implant), channel

    def test_power_monitoring_is_blind(self, hardened_cloud):
        """The masking layer denies RAPL outright on this profile."""
        instance = hardened_cloud.launch_instance("attacker")
        monitor = RaplPowerMonitor(instance)
        assert not monitor.available()

    def test_tenants_keep_namespaced_files(self, hardened_cloud):
        instance = hardened_cloud.launch_instance("tenant")
        assert instance.read("/proc/sys/kernel/hostname")
        assert instance.read("/proc/net/dev")
        assert instance.read("/proc/self/cgroup")
