"""Golden-trace equivalence for the columnar host engine.

``hosts="columnar"`` must be observationally invisible: the vectorized
cold-host tick path, the lazy hot-host materialization, and the
column→object→column round trips have to reproduce the per-object
``Kernel.tick`` reference float-for-float — same trace timestamps, same
watts, same fault counters, same attack outcomes (`docs/hostengine.md`).
The scenarios mirror the paper's figure substrates: the Figure 2 fleet
trace (fine and coalesced), the Figure 3 attack campaign, and chaos
schedules that force materialization mid-run.
"""

import pytest

from repro.attack.monitor import CrestDetector
from repro.attack.strategies import SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import SimulationError
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule

SEED = 7


def build(hosts, schedule=None, servers=8, rack_size=4, tenants=3,
          interval=1.0):
    sim = DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=SEED,
        sample_interval_s=interval, tenants_per_host=tenants,
        population="columnar", hosts=hosts,
    )
    if schedule is not None:
        sim.install_faults(schedule)
    return sim


def snapshot(sim):
    """Everything the golden-trace contract covers, as plain tuples."""
    return {
        "agg": (
            tuple(sim.aggregate_trace.times),
            tuple(sim.aggregate_trace.watts),
            tuple(sim.aggregate_trace.gaps),
        ),
        "servers": {
            i: (tuple(t.times), tuple(t.watts), tuple(t.gaps))
            for i, t in sim.server_traces.items()
        },
        "ticks": sim.metrics.ticks,
        "samples": sim.metrics.samples,
        "now": sim.now,
        "faults": sim.fault_report(),
        "trip_log": sim.trip_log(),
    }


def chaos_schedule():
    """Every trace-visible fault family, incl. host-scoped RAPL kinds."""
    return FaultSchedule(
        [
            FaultEvent(at=30.0, kind=FaultKind.MACHINE_CRASH,
                       duration_s=120.0, server=3),
            FaultEvent(at=45.0, kind=FaultKind.BREAKER_TRIP,
                       duration_s=180.0, server=1),
            FaultEvent(at=60.0, kind=FaultKind.CLOCK_JITTER,
                       duration_s=240.0, magnitude=0.2),
            FaultEvent(at=90.0, kind=FaultKind.OOM_KILL, server=5),
            FaultEvent(at=120.0, kind=FaultKind.RAPL_DROP,
                       duration_s=60.0, server=0),
        ],
        seed=13,
    )


class TestConstruction:
    def test_requires_columnar_population(self):
        with pytest.raises(SimulationError, match="columnar population"):
            DatacenterSimulation(
                servers=4, rack_size=2, seed=SEED,
                population="objects", hosts="columnar",
            )

    def test_unknown_mode_rejected(self):
        with pytest.raises(SimulationError, match="hosts must be"):
            DatacenterSimulation(servers=4, rack_size=2, hosts="rows")

    def test_whole_fleet_adopts_cold(self):
        sim = build("columnar")
        assert sim.host_engine.cold_count() == 8
        assert sim.host_engine.stats()["materializations"] == 0


class TestSerialGolden:
    def test_fine_bit_identical(self):
        ref = build("objects")
        ref.run(300.0, dt=1.0, coalesce=False)
        col = build("columnar")
        col.run(300.0, dt=1.0, coalesce=False)
        assert snapshot(ref) == snapshot(col)
        assert col.host_engine.cold_count() == 8
        assert col.host_engine.stats()["materializations"] == 0

    def test_coalesced_bit_identical(self):
        ref = build("objects", interval=60.0)
        ref.run(4 * 3600.0, dt=1.0, coalesce=True)
        col = build("columnar", interval=60.0)
        col.run(4 * 3600.0, dt=1.0, coalesce=True)
        assert snapshot(ref) == snapshot(col)
        # coalescing must engage on the cold path too
        assert col.metrics.ticks < 4 * 3600

    def test_faulted_coalesced_bit_identical(self):
        ref = build("objects", chaos_schedule())
        ref.run(600.0, dt=1.0, coalesce=True)
        col = build("columnar", chaos_schedule())
        col.run(600.0, dt=1.0, coalesce=True)
        assert snapshot(ref) == snapshot(col)
        # host-scoped faults (crash, OOM, RAPL) materialized their hosts
        assert col.host_engine.stats()["materializations"] > 0

    def test_timings_materialize_all(self):
        ref = build("objects")
        ref.enable_subsystem_timings()
        ref.run(120.0, dt=1.0, coalesce=False)
        col = build("columnar")
        col.enable_subsystem_timings()
        assert col.host_engine.cold_count() == 0  # timings need objects
        col.run(120.0, dt=1.0, coalesce=False)
        assert snapshot(ref) == snapshot(col)


class TestMaterializationLifecycle:
    def test_observe_materializes_terminate_demotes(self):
        ref = build("objects")
        inst_r = ref.cloud.launch_instance("attacker")
        ref.run(120.0, dt=1.0)
        leak_r = inst_r.container.read(
            "/sys/class/powercap/intel-rapl:0/energy_uj"
        )
        ref.cloud.terminate_instance(inst_r)
        ref.run(120.0, dt=1.0)

        col = build("columnar")
        he = col.host_engine
        inst_c = col.cloud.launch_instance("attacker")
        assert not he.is_cold(inst_c.host_index)  # launch pins it hot
        col.run(120.0, dt=1.0)
        leak_c = inst_c.container.read(
            "/sys/class/powercap/intel-rapl:0/energy_uj"
        )
        col.cloud.terminate_instance(inst_c)
        assert he.is_cold(inst_c.host_index)  # last tenant out: demoted
        assert he.demotions >= 1
        col.run(120.0, dt=1.0)

        assert leak_c == leak_r
        assert snapshot(ref) == snapshot(col)

    def test_container_id_sequence_survives_deferral(self):
        ref = build("objects")
        ref.run(60.0, dt=1.0)
        a = ref.cloud.launch_instance("alice")
        b = ref.cloud.launch_instance("bob")
        ref_ids = (a.container.container_id, b.container.container_id)

        col = build("columnar")
        col.run(60.0, dt=1.0)  # deferred ticks queue container replays
        a = col.cloud.launch_instance("alice")
        b = col.cloud.launch_instance("bob")
        assert (a.container.container_id, b.container.container_id) == ref_ids

    def test_wall_cache_cold_routing_and_invalidation(self):
        col = build("columnar")
        cache = col.power_cache
        he = col.host_engine
        col.run(60.0, dt=1.0)
        kernel = col.cloud.hosts[0].kernel

        # cold: answered from the wall column, no memo entry, no tick
        before = cache.cold_hits
        cold_watts = cache.watts(kernel)
        assert cache.cold_hits == before + 1
        assert id(kernel) not in cache._entries
        assert cold_watts == he.wall_watts(0)

        # materialize: the replayed kernel computes the same number and
        # the memo takes over, keyed on ticks_taken
        he.ensure_hot(0)
        misses = cache.misses
        hot_watts = cache.watts(kernel)
        assert hot_watts == cold_watts
        assert cache.misses == misses + 1
        hits = cache.hits
        assert cache.watts(kernel) == hot_watts
        assert cache.hits == hits + 1

        # a new tick invalidates the memo entry: the sampler's refresh
        # re-keys it on the advanced tick count
        tick_key = cache._entries[id(kernel)][0]
        col.run(1.0, dt=1.0)
        assert cache._entries[id(kernel)][0] > tick_key
        assert cache._entries[id(kernel)][0] == kernel.ticks_taken

        # demote: back to the cold column, bitwise consistent
        assert he.maybe_demote(0)
        before = cache.cold_hits
        assert cache.watts(kernel) == he.wall_watts(0)
        assert cache.cold_hits == before + 1

    def test_dark_hosts_skip_column_ticks(self):
        schedule = FaultSchedule(
            [FaultEvent(at=30.0, kind=FaultKind.BREAKER_TRIP,
                        duration_s=120.0, server=0)],
            seed=13,
        )
        ref = build("objects", schedule)
        ref.run(240.0, dt=1.0, coalesce=False)
        col = build("columnar", schedule)
        col.run(240.0, dt=1.0, coalesce=False)
        assert snapshot(ref) == snapshot(col)
        # dark hosts stay cold (a trip is rack-scoped, not per-object)
        # and their tick mirror froze during the outage
        he = col.host_engine
        assert he.is_cold(0)
        assert he.ticks_taken(0) < he.ticks_taken(7)


class TestParallelGolden:
    def test_parallel_columnar_bit_identical(self):
        ref = build("objects", chaos_schedule())
        ref.run(600.0, dt=1.0, coalesce=True)
        golden = snapshot(ref)
        par = build("columnar", chaos_schedule())
        par.run(600.0, dt=1.0, coalesce=True, parallel=2)
        try:
            assert snapshot(par) == golden
        finally:
            par.close()

    def test_attack_campaign_bit_identical(self):
        def campaign(hosts, parallel):
            sim = build(hosts, tenants=2)
            covered, instances = set(), []
            while len(covered) < 2:
                inst = sim.cloud.launch_instance("attacker")
                if inst.host_index in covered:
                    sim.cloud.terminate_instance(inst)
                else:
                    covered.add(inst.host_index)
                    instances.append(inst)
            sim.run(120.0, dt=1.0, parallel=parallel)
            outcome = SynergisticAttack(
                sim, instances,
                detector_factory=lambda: CrestDetector(
                    window=60, threshold_fraction=0.7, min_band_watts=5.0
                ),
                burst_s=20.0, cooldown_s=60.0, learn_s=30.0,
            ).run(300.0)
            result = (
                outcome.trials, tuple(outcome.spike_watts),
                outcome.peak_watts, outcome.attacker_cpu_seconds,
                outcome.bill_dollars, outcome.degradation,
                tuple(sim.aggregate_trace.times),
                tuple(sim.aggregate_trace.watts),
            )
            sim.close()
            return result

        golden = campaign("objects", 0)
        assert campaign("columnar", 0) == golden
        assert campaign("columnar", 2) == golden

    def test_resume_bit_identical(self, tmp_path):
        golden = build("columnar", chaos_schedule())
        golden.run(600, parallel=2, coalesce=True)
        g = snapshot(golden)
        golden.close()

        part = build("columnar", chaos_schedule())
        part.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        part.run(300, parallel=2, coalesce=True)
        part.close()

        res = build("columnar", chaos_schedule())
        res.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        res.run(300, parallel=2, coalesce=True, resume=True)
        res.run(300, parallel=2, coalesce=True)
        r = snapshot(res)
        res.close()
        assert g == r

    def test_resume_host_mode_must_match(self, tmp_path):
        part = build("columnar")
        part.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=60.0
        )
        part.run(120, parallel=2, coalesce=True)
        part.close()

        other = build("objects")
        other.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=60.0
        )
        try:
            with pytest.raises(SimulationError, match="hosts="):
                other.run(120, parallel=2, coalesce=True, resume=True)
        finally:
            other.close()
