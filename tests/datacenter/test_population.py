"""Columnar tenant population: golden equivalence and bugfix pins.

Three families of tests:

- **Golden traces**: the columnar :class:`TenantPopulation` must
  reproduce the per-object :class:`DiurnalTenantDriver` fleet bit for
  bit — power traces, worker counts, container names — fine-ticked,
  coalesced, and under the parallel engine.
- **Regression pins** for the three demand-drift bugs this engine's
  contract depends on: missed adjustment boundaries under coarse
  stepping, visit-order-dependent day factors, and
  ``next_event_time`` handing the coalescing engine a zero-length
  horizon at a boundary.
- **OOM pruning**: fault-injected OOM kills must land in the columnar
  bookkeeping (dirty-mask prune) exactly as they land in the scalar
  driver's worker list.
"""

from __future__ import annotations

import pytest

from repro.datacenter.population import TenantPopulation, container_name_for
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile, DiurnalTenantDriver
from repro.errors import SimulationError
from repro.sim.fastforward import DecisionGrid
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule
from repro.sim.rng import DeterministicRNG

#: a busy profile so equivalence tests exercise spawn/kill churn, bursts,
#: and multi-worker containers rather than a flat zero-worker fleet
CHURN = DiurnalProfile(
    base_cores=2.0, peak_cores=3.0, noise=0.2, bursts_per_day=40.0
)


def build(population, *, servers=4, K=1, schedule=None, seed=11):
    sim = DatacenterSimulation(
        servers=servers,
        rack_size=2,
        seed=seed,
        tenants_per_host=K,
        tenant_profile=CHURN,
        population=population,
    )
    if schedule is not None:
        sim.install_faults(schedule)
    return sim


def fingerprint(sim):
    return (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
        tuple(tuple(t.watts) for t in sim.server_traces.values()),
        tuple(t.worker_count for t in sim.tenants),
    )


def run_both(seconds, *, K=1, coalesce=False, dt=1.0, schedule=None,
             parallel=0):
    out = []
    for mode in ("objects", "columnar"):
        sim = build(mode, K=K, schedule=schedule)
        sim.run(seconds, dt=dt, coalesce=coalesce, parallel=parallel)
        fp = fingerprint(sim)
        sim.close()
        out.append(fp)
    return out


class TestGoldenTraces:
    def test_fine_ticked_equivalence(self):
        objects, columnar = run_both(1800.0, dt=1.0)
        assert objects == columnar

    def test_coalesced_equivalence(self):
        objects, columnar = run_both(4 * 3600.0, coalesce=True)
        assert objects == columnar

    def test_multi_tenant_hosts_equivalence(self):
        objects, columnar = run_both(3600.0, K=3, coalesce=True)
        assert objects == columnar

    def test_parallel_columnar_matches_serial(self):
        serial = build("columnar", K=2)
        serial.run(3600.0, coalesce=True)
        fp_serial = fingerprint(serial)
        serial.close()
        par = build("columnar", K=2)
        par.run(3600.0, coalesce=True, parallel=2)
        # worker counts live shard-side in parallel runs; compare traces
        assert fingerprint(par)[:3] == fp_serial[:3]
        par.close()

    def test_parallel_objects_matches_serial(self):
        serial = build("objects", K=2)
        serial.run(1800.0)
        fp_serial = fingerprint(serial)
        serial.close()
        par = build("objects", K=2)
        par.run(1800.0, parallel=2)
        assert fingerprint(par)[:3] == fp_serial[:3]
        par.close()

    def test_views_mirror_scalar_targets(self):
        sim = build("columnar")
        sim.run(900.0)
        ref = DatacenterSimulation(
            servers=4, rack_size=2, seed=11, tenant_profile=CHURN,
            population="objects",
        )
        ref.run(900.0)
        for view, driver in zip(sim.tenants, ref.tenants):
            for t in (0.0, 3600.0, 86400.0 + 1830.0):
                assert view.target_cores(t) == driver.target_cores(t)
            assert view.next_event_time(900.0) == driver.next_event_time(900.0)
        sim.close()
        ref.close()

    def test_container_names(self):
        assert container_name_for(0, 1) == "benign-tenant"
        assert container_name_for(0, 4) == "benign-tenant-0"
        assert container_name_for(3, 4) == "benign-tenant-3"


class TestMissedAdjustmentRegression:
    """Bug 1: coarse steps used to skip burst lotteries entirely."""

    def demand_driver(self, seed=3, profile=None):
        return DiurnalTenantDriver(
            kernel=None,
            rng=DeterministicRNG(seed).fork("tenant-0"),
            profile=profile or DiurnalProfile(bursts_per_day=48.0),
        )

    def burst_schedule(self, dt, horizon=6 * 3600.0):
        driver = self.demand_driver()
        # prime on a boundary every tested tick size lands on: a first
        # step at t adopts the current grid index without replaying
        # earlier history (the mid-sim-start semantics), so both runs
        # must share a grid origin — and an end boundary — to compare
        driver.step(900.0, 900.0)
        seen = [driver.burst_until]
        t = 900.0
        while t < horizon:
            t += dt
            driver.step(t, dt)
            if driver.burst_until != seen[-1]:
                seen.append(driver.burst_until)
        assert t == horizon
        return seen

    def test_coarse_steps_match_fine_burst_arrivals(self):
        # pre-fix: a 900 s step rolled one lottery instead of 15, so
        # coarse runs saw ~1/15th the burst arrivals
        assert self.burst_schedule(60.0) == self.burst_schedule(900.0)

    def test_single_jump_replays_every_boundary(self):
        fine = self.demand_driver()
        for k in range(1, 61):
            fine.step(k * 60.0, 60.0)
        coarse = self.demand_driver()
        coarse.step(60.0, 60.0)  # adopt the grid at the first boundary
        coarse.step(3600.0, 3540.0)
        assert coarse.burst_until == fine.burst_until

    def test_coalesced_population_burst_stats_match_fine(self):
        profile = DiurnalProfile(bursts_per_day=48.0)
        out = []
        horizon = 6 * 3600.0
        for dt in (60.0, 1800.0):
            pop = TenantPopulation.demand_only(
                DeterministicRNG(3), 200, profile=profile
            )
            # prime on a boundary both tick sizes land on, so both runs
            # adopt the same grid origin and end on the same boundary
            pop.step(1800.0, 1800.0)
            t = 1800.0
            while t < horizon:
                t += dt
                pop.step(t, dt)
            assert t == horizon
            out.append((pop.bursts_started, tuple(pop.burst_until)))
        assert out[0] == out[1]
        assert out[0][0] > 0  # the window actually saw bursts


class TestDayFactorRegression:
    """Bug 2: day factors used to depend on draw order."""

    def driver(self):
        return DiurnalTenantDriver(
            kernel=None, rng=DeterministicRNG(5).fork("tenant-0")
        )

    def test_day_factor_independent_of_visit_order(self):
        forward = self.driver()
        a = [forward._day_factor(d) for d in range(6)]
        backward = self.driver()
        b = [backward._day_factor(d) for d in reversed(range(6))]
        assert a == list(reversed(b))

    def test_probing_targets_does_not_perturb_the_process(self):
        probed, clean = self.driver(), self.driver()
        for t in (100.0, 90000.0, 400000.0):
            probed.target_cores(t)  # draws day factors out of order
        for t in (3600.0, 86400.0 * 3 + 7200.0):
            assert probed.target_cores(t) == clean.target_cores(t)


class TestNextEventTimeRegression:
    """Bug 3: ``next_event_time`` used to return ``now`` on a boundary."""

    def test_grid_next_boundary_is_strict(self):
        grid = DecisionGrid(60.0)
        assert grid.next_boundary(0.0) == 60.0
        assert grid.next_boundary(60.0) == 120.0
        assert grid.next_boundary(59.999) == 60.0

    def test_driver_horizon_strictly_ahead_at_boundary(self):
        driver = DiurnalTenantDriver(
            kernel=None, rng=DeterministicRNG(1).fork("tenant-0")
        )
        # pre-fix, a fresh driver advertised t=0 itself at now=0
        assert driver.next_event_time(0.0) > 0.0
        driver.step(60.0, 60.0)
        for now in (0.0, 60.0, 61.0, 119.0):
            assert driver.next_event_time(now) > now
        # pre-fix, probing exactly the advertised next adjustment
        # returned that same instant — a zero-length coalescing window
        boundary = driver.next_event_time(60.0)
        assert driver.next_event_time(boundary) > boundary

    def test_population_horizon_strictly_ahead_at_boundary(self):
        pop = TenantPopulation.demand_only(DeterministicRNG(1), 8)
        pop.step(60.0, 60.0)
        assert pop.next_event_time(60.0) > 60.0
        assert pop.next_event_time(60.0) == 120.0

    def test_coalescing_never_stalls_on_a_boundary(self):
        # pre-fix, a zero-length horizon at each boundary collapsed
        # coalesced runs back to base-dt stepping (sampling must be
        # coarse too — every pending sample is its own horizon)
        sim = DatacenterSimulation(
            servers=4, rack_size=2, seed=11, sample_interval_s=60.0
        )
        sim.run(4 * 3600.0, coalesce=True)
        assert sim.metrics.ticks < (4 * 3600) / 10
        sim.close()


class TestOomPruning:
    def oom_schedule(self):
        return FaultSchedule(
            [
                FaultEvent(at=120.0, kind=FaultKind.OOM_KILL, server=1),
                FaultEvent(at=240.0, kind=FaultKind.OOM_KILL, server=1),
                FaultEvent(at=300.0, kind=FaultKind.OOM_KILL, server=3),
            ],
            seed=2,
        )

    def test_oom_equivalence_objects_vs_columnar(self):
        objects, columnar = run_both(1800.0, schedule=self.oom_schedule())
        assert objects == columnar

    def test_oom_equivalence_with_multi_tenant_hosts(self):
        objects, columnar = run_both(
            1800.0, K=2, coalesce=True, schedule=self.oom_schedule()
        )
        assert objects == columnar

    def test_note_task_killed_prunes_and_reconciles(self):
        sim = build("columnar", schedule=self.oom_schedule())
        pop = sim.population
        sim.run(1800.0)
        assert pop.oom_pruned >= 1
        # after pruning, bookkeeping agrees with the live task lists
        for s, view in enumerate(sim.tenants):
            assert view.worker_count == sum(
                1 for t in pop._tasks[s] if t.alive
            )
        sim.close()

    def test_note_task_killed_ignores_foreign_tasks(self):
        pop = TenantPopulation.demand_only(DeterministicRNG(1), 4)

        class Stranger:
            alive = False

        assert pop.note_task_killed(Stranger()) is False


class TestValidation:
    def test_rejects_bad_tenants_per_host(self):
        with pytest.raises(SimulationError):
            DatacenterSimulation(servers=2, rack_size=2, tenants_per_host=0)

    def test_rejects_unknown_population_mode(self):
        with pytest.raises(SimulationError):
            DatacenterSimulation(servers=2, rack_size=2, population="sparse")

    def test_rejects_bad_grid(self):
        with pytest.raises(SimulationError):
            DecisionGrid(0.0)
