"""PowerTrace edge cases: empty/gap-only traces, non-divisor sampling
grids, averaged-window placement across skipped windows, and the O(1)
incremental statistics staying equal to recomputed-from-scratch values.
"""

import math

import pytest

from repro.datacenter.simulation import PowerTrace
from repro.errors import SimulationError


class TestEmptyAndGapOnly:
    def test_stats_raise_on_empty(self):
        trace = PowerTrace()
        for prop in ("peak", "trough", "mean", "swing_fraction"):
            with pytest.raises(SimulationError, match="empty"):
                getattr(trace, prop)

    def test_window_and_averaged_on_empty(self):
        trace = PowerTrace()
        assert len(trace.window(0.0, 100.0)) == 0
        assert len(trace.averaged(30.0)) == 0

    def test_gap_only_trace(self):
        trace = PowerTrace()
        for t in (0.0, 1.0, 2.0):
            trace.note_gap(t)
        assert len(trace) == 0
        assert len(trace.averaged(2.0)) == 0
        sub = trace.window(0.5, 10.0)
        assert sub.gaps == [1.0, 2.0]
        with pytest.raises(SimulationError, match="3 gap"):
            trace.mean

    def test_error_message_counts_gaps(self):
        trace = PowerTrace()
        trace.note_gap(4.0)
        with pytest.raises(SimulationError, match="1 gap"):
            trace.peak


class TestAveragedPlacement:
    def test_non_divisor_dt_vs_window(self):
        # 0.7 s cadence against a 2 s window: windows hold 3,3,3,... samples
        trace = PowerTrace()
        times = [round(i * 0.7, 10) for i in range(10)]  # 0 .. 6.3
        for t in times:
            trace.append(t, 100.0 + t)
        avg = trace.averaged(2.0)
        assert avg.times == [0.0, 2.0, 4.0, 6.0]
        # window [2, 4) holds t = 2.1, 2.8, 3.5
        expected = (102.1 + 102.8 + 103.5) / 3
        assert avg.watts[1] == pytest.approx(expected)
        assert avg.gaps == []

    def test_skipped_windows_keep_absolute_placement(self):
        # samples in window 0, then nothing until window 5: the late
        # sample must land at its own window's start, not slide earlier
        trace = PowerTrace()
        trace.append(0.0, 10.0)
        trace.append(1.0, 20.0)
        trace.append(50.0, 99.0)
        avg = trace.averaged(10.0)
        assert avg.times == [0.0, 50.0]
        assert avg.watts == [15.0, 99.0]
        # the wholly-empty interior windows are recorded as gaps
        assert avg.gaps == [10.0, 20.0, 30.0, 40.0]

    def test_consecutive_skips_accumulate_gaps(self):
        trace = PowerTrace()
        trace.append(0.0, 1.0)
        trace.append(35.0, 2.0)
        trace.append(71.0, 3.0)
        avg = trace.averaged(10.0)
        assert avg.times == [0.0, 30.0, 70.0]
        assert avg.watts == [1.0, 2.0, 3.0]
        assert avg.gaps == [10.0, 20.0, 40.0, 50.0, 60.0]

    def test_window_anchor_is_first_sample(self):
        trace = PowerTrace()
        trace.append(5.0, 1.0)
        trace.append(14.9, 3.0)
        trace.append(15.1, 5.0)
        avg = trace.averaged(10.0)
        assert avg.times == [5.0, 15.0]
        assert avg.watts == [2.0, 5.0]


class TestAveragedDowntime:
    def test_fully_observed_windows_report_zero(self):
        trace = PowerTrace()
        for i in range(6):
            trace.append(float(i), 10.0)
        avg = trace.averaged(3.0)
        assert avg.downtime == [0.0, 0.0]

    def test_fractional_downtime_per_window(self):
        # window 0: 2 samples + 1 missed → 1/3 down; window 1: all seen
        trace = PowerTrace()
        trace.append(0.0, 10.0)
        trace.note_gap(1.0)
        trace.append(2.0, 20.0)
        for t in (3.0, 4.0, 5.0):
            trace.append(t, 30.0)
        avg = trace.averaged(3.0)
        assert avg.times == [0.0, 3.0]
        assert avg.watts == [15.0, 30.0]
        assert avg.downtime == [pytest.approx(1.0 / 3.0), 0.0]

    def test_gaps_do_not_shrink_the_divisor(self):
        # the missed sample must not drag the average: 27 live samples
        # of 100 W with 3 gaps average exactly 100 W at 0.1 downtime
        trace = PowerTrace()
        for i in range(30):
            t = float(i)
            if i in (5, 6, 7):
                trace.note_gap(t)
            else:
                trace.append(t, 100.0)
        avg = trace.averaged(30.0)
        assert avg.watts == [100.0]
        assert avg.downtime == [pytest.approx(0.1)]

    def test_trailing_gap_only_windows_become_gaps(self):
        trace = PowerTrace()
        trace.append(0.0, 10.0)
        trace.append(1.0, 20.0)
        for t in (10.0, 11.0, 21.0):
            trace.note_gap(t)
        avg = trace.averaged(10.0)
        assert avg.times == [0.0]
        assert avg.watts == [15.0]
        assert avg.gaps == [10.0, 20.0]
        assert avg.downtime == [0.0]

    def test_interior_gap_only_window_stays_single_marker(self):
        # a wholly-dark interior window stays one output gap marker even
        # when several source samples were missed inside it
        trace = PowerTrace()
        trace.append(0.0, 10.0)
        for t in (10.0, 12.0, 14.0):
            trace.note_gap(t)
        trace.append(20.0, 30.0)
        avg = trace.averaged(10.0)
        assert avg.times == [0.0, 20.0]
        assert avg.gaps == [10.0]
        assert avg.downtime == [0.0, 0.0]

    def test_markers_before_first_sample_dropped(self):
        trace = PowerTrace()
        trace.note_gap(0.0)
        trace.append(10.0, 5.0)
        avg = trace.averaged(10.0)
        assert avg.times == [10.0]
        assert avg.gaps == []
        assert avg.downtime == [0.0]


class TestIncrementalStats:
    def test_matches_recompute_after_long_append_sequence(self):
        trace = PowerTrace()
        value = 750.0
        for i in range(5000):
            # deterministic wobble with spikes and dips
            value = 900.0 + 250.0 * math.sin(i * 0.37) + (i % 97) * 0.83
            trace.append(float(i), value)
        assert trace.peak == max(trace.watts)
        assert trace.trough == min(trace.watts)
        assert trace.mean == sum(trace.watts) / len(trace.watts)
        swing = (max(trace.watts) - min(trace.watts)) / min(trace.watts)
        assert trace.swing_fraction == swing

    def test_prefilled_trace_folds_existing_samples(self):
        trace = PowerTrace(times=[0.0, 1.0, 2.0], watts=[5.0, 1.0, 9.0])
        assert trace.peak == 9.0
        assert trace.trough == 1.0
        assert trace.mean == 5.0
        trace.append(3.0, 0.5)
        assert trace.trough == 0.5
        assert trace.mean == pytest.approx(15.5 / 4)

    def test_derived_traces_keep_stats_consistent(self):
        trace = PowerTrace()
        for i in range(100):
            trace.append(float(i), 100.0 + (i % 7))
        for derived in (trace.window(10.0, 60.0), trace.averaged(7.0)):
            assert derived.peak == max(derived.watts)
            assert derived.trough == min(derived.watts)
            assert derived.mean == sum(derived.watts) / len(derived.watts)

    def test_decreasing_timestamp_rejected(self):
        trace = PowerTrace()
        trace.append(10.0, 1.0)
        with pytest.raises(SimulationError, match="decrease"):
            trace.append(9.0, 1.0)
