"""Tests for the circuit breaker trip model."""

import pytest

from repro.datacenter.breaker import BreakerState, CircuitBreaker
from repro.errors import SimulationError


@pytest.fixture
def breaker():
    return CircuitBreaker(name="b", rated_watts=1000.0)


class TestTripping:
    def test_under_rating_never_trips(self, breaker):
        for t in range(10_000):
            breaker.observe(999.0, dt=1.0, now=float(t))
        assert not breaker.tripped

    def test_instant_trip_on_gross_overload(self, breaker):
        breaker.observe(2000.0, dt=1.0, now=0.0)
        assert breaker.tripped
        assert breaker.tripped_at == 0.0

    def test_thermal_trip_strength_duration_tradeoff(self):
        """A stronger spike trips faster: the Section II-C condition."""

        def time_to_trip(watts):
            b = CircuitBreaker(name="b", rated_watts=1000.0)
            t = 0.0
            while not b.tripped:
                b.observe(watts, dt=1.0, now=t)
                t += 1.0
                assert t < 10_000
            return t

        assert time_to_trip(1500.0) < time_to_trip(1200.0) < time_to_trip(1100.0)

    def test_seconds_to_trip_prediction(self, breaker):
        predicted = breaker.seconds_to_trip(1250.0)
        t = 0.0
        while not breaker.tripped:
            breaker.observe(1250.0, dt=1.0, now=t)
            t += 1.0
        assert t == pytest.approx(predicted, abs=1.5)

    def test_seconds_to_trip_infinite_under_rating(self, breaker):
        assert breaker.seconds_to_trip(900.0) == float("inf")

    def test_short_spike_survives_long_spike_trips(self):
        """The oversubscription gamble: brief coincident peaks are fine."""
        b = CircuitBreaker(name="b", rated_watts=1000.0)
        for t in range(30):  # 30 s at 25% overload: survives
            b.observe(1250.0, dt=1.0, now=float(t))
        assert not b.tripped
        for t in range(30, 300):  # sustained: trips
            b.observe(1250.0, dt=1.0, now=float(t))
        assert b.tripped

    def test_cooling_resets_thermal_state(self):
        b = CircuitBreaker(name="b", rated_watts=1000.0)
        for t in range(30):
            b.observe(1250.0, dt=1.0, now=float(t))
        hot = b.thermal_accumulator
        for t in range(30, 100):
            b.observe(500.0, dt=1.0, now=float(t))
        assert b.thermal_accumulator < hot

    def test_tripped_breaker_stays_tripped(self, breaker):
        breaker.observe(5000.0, dt=1.0, now=0.0)
        breaker.observe(100.0, dt=1.0, now=1.0)
        assert breaker.tripped

    def test_reset(self, breaker):
        breaker.observe(5000.0, dt=1.0, now=0.0)
        breaker.reset()
        assert breaker.state is BreakerState.CLOSED
        assert breaker.thermal_accumulator == 0.0
        assert breaker.trip_count == 1

    def test_reset_requires_tripped(self, breaker):
        with pytest.raises(SimulationError):
            breaker.reset()


class TestValidation:
    def test_bad_rating_rejected(self):
        with pytest.raises(SimulationError):
            CircuitBreaker(name="b", rated_watts=0.0)

    def test_bad_instant_ratio_rejected(self):
        with pytest.raises(SimulationError):
            CircuitBreaker(name="b", rated_watts=100.0, instant_trip_ratio=0.9)

    def test_negative_load_rejected(self, breaker):
        with pytest.raises(SimulationError):
            breaker.observe(-1.0, dt=1.0, now=0.0)

    def test_nonpositive_dt_rejected(self, breaker):
        with pytest.raises(SimulationError):
            breaker.observe(100.0, dt=0.0, now=0.0)
