"""Tests for outage consequences: a tripped breaker darkens its rack."""


from repro.attack.virus import power_virus
from repro.datacenter.simulation import DatacenterSimulation


def overload_rack(sim):
    """Provider-side: saturate every server with power viruses."""
    for host in sim.cloud.hosts:
        for _ in range(host.kernel.config.total_cores):
            host.kernel.spawn("virus", workload=power_virus())


class TestOutage:
    def test_sustained_overload_trips_and_darkens(self):
        sim = DatacenterSimulation(
            servers=4, rack_size=4, breaker_rated_watts=500.0, seed=151,
            sample_interval_s=1.0,
        )
        overload_rack(sim)
        sim.run(300, dt=1.0)
        assert sim.any_breaker_tripped()
        assert len(sim.trip_log()) == 1
        # after the trip, the rack draws nothing
        assert sim.aggregate_trace.watts[-1] == 0.0

    def test_dark_servers_stop_executing(self):
        sim = DatacenterSimulation(
            servers=2, rack_size=2, breaker_rated_watts=300.0, seed=152,
            sample_interval_s=1.0,
        )
        overload_rack(sim)
        sim.run(300, dt=1.0)
        assert sim.any_breaker_tripped()
        kernel = sim.cloud.hosts[0].kernel
        instructions_at_trip = kernel.perf.host_counters.instructions
        energy_at_trip = kernel.rapl.package(0).package.energy_uj
        sim.run(60, dt=1.0)
        # the kernel did not tick while dark: no instructions retired, no
        # energy consumed
        assert kernel.perf.host_counters.instructions == instructions_at_trip
        assert kernel.rapl.package(0).package.energy_uj == energy_at_trip

    def test_untouched_rack_stays_up(self):
        sim = DatacenterSimulation(
            servers=4, rack_size=2, breaker_rated_watts=460.0, seed=153,
            sample_interval_s=1.0,
        )
        # overload only the first rack's servers
        for host in sim.cloud.hosts[:2]:
            for _ in range(host.kernel.config.total_cores):
                host.kernel.spawn("virus", workload=power_virus())
        sim.run(400, dt=1.0)
        assert sim.racks[0].breaker.tripped
        assert not sim.racks[1].breaker.tripped
        # the second rack keeps serving (and drawing power)
        assert sim.server_traces[2].watts[-1] > 50.0

    def test_benign_fleet_never_trips(self):
        sim = DatacenterSimulation(servers=4, seed=154, sample_interval_s=30.0)
        sim.run(3600, dt=30.0)
        assert not sim.any_breaker_tripped()
