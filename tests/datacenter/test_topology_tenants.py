"""Tests for rack topology, wall power, and tenant drivers."""

import pytest

from repro.datacenter.breaker import CircuitBreaker
from repro.datacenter.tenants import DiurnalProfile, DiurnalTenantDriver
from repro.datacenter.topology import (
    PDU,
    Rack,
    ServerPowerConfig,
    package_power_watts,
    wall_power_watts,
)
from repro.errors import SimulationError
from repro.kernel.kernel import Machine
from repro.runtime.workload import constant
from repro.sim.rng import DeterministicRNG


class TestWallPower:
    def test_idle_wall_power(self):
        m = Machine(seed=1, spawn_daemons=False)
        m.run(5, dt=1.0)
        pkg = package_power_watts(m.kernel)
        wall = wall_power_watts(m.kernel)
        assert wall == pytest.approx(95.0 + pkg)

    def test_wall_power_before_first_tick(self):
        m = Machine(seed=1, spawn_daemons=False)
        assert wall_power_watts(m.kernel) == pytest.approx(
            95.0 + m.kernel.power.idle_package_watts()
        )

    def test_load_raises_wall_power(self):
        m = Machine(seed=1, spawn_daemons=False)
        m.run(5, dt=1.0)
        idle = wall_power_watts(m.kernel)
        m.kernel.spawn("w", workload=constant("w", cpu_demand=1.0, ipc=2.5))
        m.run(5, dt=1.0)
        assert wall_power_watts(m.kernel) > idle + 5

    def test_bad_power_config_rejected(self):
        with pytest.raises(SimulationError):
            ServerPowerConfig(platform_base_watts=-1.0)


class TestRack:
    def _rack(self, n=2, rated=500.0):
        machines = [Machine(seed=i, spawn_daemons=False) for i in range(n)]
        for m in machines:
            m.run(1, dt=1.0)
        rack = Rack(
            name="r0",
            kernels=[m.kernel for m in machines],
            breaker=CircuitBreaker(name="b0", rated_watts=rated),
        )
        return rack, machines

    def test_rack_power_sums_servers(self):
        rack, machines = self._rack(n=2)
        expected = sum(wall_power_watts(m.kernel) for m in machines)
        assert rack.wall_power() == pytest.approx(expected)

    def test_rack_observe_feeds_breaker(self):
        rack, _ = self._rack(n=2, rated=150.0)  # two idle servers overload it
        for t in range(600):
            rack.observe(dt=1.0, now=float(t))
        assert rack.breaker.tripped

    def test_oversubscription_ratio(self):
        rack, _ = self._rack(n=2, rated=300.0)
        # 2 servers x (95 + 13 idle + 20*8 peak) >> 300W
        assert rack.oversubscription_ratio > 1.5


class TestPDU:
    def test_pdu_aggregates_racks(self):
        m1 = Machine(seed=1, spawn_daemons=False)
        m2 = Machine(seed=2, spawn_daemons=False)
        for m in (m1, m2):
            m.run(1, dt=1.0)
        r1 = Rack(name="r1", kernels=[m1.kernel],
                  breaker=CircuitBreaker(name="b1", rated_watts=400))
        r2 = Rack(name="r2", kernels=[m2.kernel],
                  breaker=CircuitBreaker(name="b2", rated_watts=400))
        pdu = PDU(name="p", racks=[r1, r2],
                  breaker=CircuitBreaker(name="bp", rated_watts=800))
        assert pdu.wall_power() == pytest.approx(r1.wall_power() + r2.wall_power())
        pdu.observe(dt=1.0, now=0.0)
        assert not pdu.breaker.tripped


class TestDiurnalTenants:
    def test_target_peaks_at_peak_hour(self):
        driver = DiurnalTenantDriver(
            kernel=Machine(seed=3, spawn_daemons=False).kernel,
            rng=DeterministicRNG(seed=3),
            profile=DiurnalProfile(noise=0.0, bursts_per_day=0.0),
        )
        driver._phase_shift = 0.0
        peak = driver.target_cores(14 * 3600.0)
        trough = driver.target_cores(2 * 3600.0)
        assert peak > trough * 2

    def test_day_factors_vary(self):
        driver = DiurnalTenantDriver(
            kernel=Machine(seed=3, spawn_daemons=False).kernel,
            rng=DeterministicRNG(seed=3),
        )
        factors = {driver._day_factor(d) for d in range(7)}
        assert len(factors) == 7

    def test_driver_spawns_workers_to_match_target(self):
        machine = Machine(seed=4, spawn_daemons=False)
        driver = DiurnalTenantDriver(
            kernel=machine.kernel,
            rng=DeterministicRNG(seed=4),
            profile=DiurnalProfile(base_cores=3.0, peak_cores=0.0, noise=0.0,
                                   bursts_per_day=0.0),
        )
        for _ in range(3):
            driver.step(machine.clock.now, 60.0)
            machine.run(60, dt=10.0)
        assert driver.worker_count == 3

    def test_driver_scales_down(self):
        machine = Machine(seed=4, spawn_daemons=False)
        profile = DiurnalProfile(base_cores=4.0, peak_cores=0.0, noise=0.0,
                                 bursts_per_day=0.0)
        driver = DiurnalTenantDriver(
            kernel=machine.kernel, rng=DeterministicRNG(seed=4), profile=profile
        )
        driver.step(0.0, 60.0)
        assert driver.worker_count == 4
        driver.profile = DiurnalProfile(base_cores=1.0, peak_cores=0.0, noise=0.0,
                                        bursts_per_day=0.0)
        machine.run(61, dt=1.0)
        driver.step(machine.clock.now, 60.0)
        assert driver.worker_count == 1

    def test_workers_run_in_container_when_engine_given(self):
        from repro.runtime.engine import ContainerEngine

        machine = Machine(seed=5, spawn_daemons=False)
        engine = ContainerEngine(machine.kernel)
        driver = DiurnalTenantDriver(
            kernel=machine.kernel,
            rng=DeterministicRNG(seed=5),
            profile=DiurnalProfile(base_cores=2.0, peak_cores=0.0, noise=0.0,
                                   bursts_per_day=0.0),
            engine=engine,
        )
        driver.step(0.0, 60.0)
        assert "benign-tenant" in [c.name for c in engine.list()]

    def test_step_requires_positive_dt(self):
        driver = DiurnalTenantDriver(
            kernel=Machine(seed=3, spawn_daemons=False).kernel,
            rng=DeterministicRNG(seed=3),
        )
        with pytest.raises(SimulationError):
            driver.step(0.0, 0.0)
