"""Tests for the fleet simulation and power traces."""

import pytest

from repro.datacenter.simulation import DatacenterSimulation, PowerTrace
from repro.errors import SimulationError


class TestPowerTrace:
    def test_append_and_stats(self):
        trace = PowerTrace()
        for t, w in enumerate([100.0, 150.0, 120.0]):
            trace.append(float(t), w)
        assert trace.peak == 150.0
        assert trace.trough == 100.0
        assert trace.mean == pytest.approx(123.333, rel=0.01)

    def test_swing_fraction(self):
        trace = PowerTrace()
        trace.append(0.0, 899.0)
        trace.append(1.0, 1199.0)
        assert trace.swing_fraction == pytest.approx(0.3337, rel=0.01)

    def test_timestamps_must_not_decrease(self):
        trace = PowerTrace()
        trace.append(5.0, 1.0)
        with pytest.raises(SimulationError):
            trace.append(4.0, 1.0)

    def test_averaged_windows(self):
        trace = PowerTrace()
        for t in range(60):
            trace.append(float(t), 100.0 if t < 30 else 200.0)
        avg = trace.averaged(30.0)
        assert len(avg) == 2
        assert avg.watts[0] == pytest.approx(100.0)
        assert avg.watts[1] == pytest.approx(200.0)

    def test_averaged_bad_window(self):
        with pytest.raises(SimulationError):
            PowerTrace().averaged(0.0)

    def test_window_slicing(self):
        trace = PowerTrace()
        for t in range(10):
            trace.append(float(t), float(t))
        sub = trace.window(3.0, 6.0)
        assert sub.times == [3.0, 4.0, 5.0]

    def test_averaged_with_multi_window_gap(self):
        """A gap spanning several windows must flush the open bucket once."""
        trace = PowerTrace()
        for t in range(10):
            trace.append(float(t), 100.0)
        for t in range(95, 100):
            trace.append(float(t), 200.0)
        avg = trace.averaged(30.0)
        assert avg.times == [0.0, 90.0]
        assert avg.watts[0] == pytest.approx(100.0)
        assert avg.watts[1] == pytest.approx(200.0)

    def test_averaged_gap_straddling_one_boundary(self):
        trace = PowerTrace()
        trace.append(0.0, 100.0)
        trace.append(29.0, 300.0)
        trace.append(61.0, 500.0)  # skips the [30, 60) window entirely
        avg = trace.averaged(30.0)
        assert avg.times == [0.0, 60.0]
        assert avg.watts == [pytest.approx(200.0), pytest.approx(500.0)]

    @pytest.mark.parametrize("stat", ["peak", "trough", "mean", "swing_fraction"])
    def test_empty_trace_stats_raise_descriptive_error(self, stat):
        with pytest.raises(SimulationError, match="empty power trace"):
            getattr(PowerTrace(), stat)

    def test_empty_trace_error_mentions_gaps(self):
        trace = PowerTrace()
        trace.note_gap(10.0)
        trace.note_gap(20.0)
        with pytest.raises(SimulationError, match=r"2 gap\(s\) recorded"):
            trace.peak

    def test_swing_fraction_zero_trough_raises(self):
        trace = PowerTrace()
        trace.append(0.0, 0.0)
        trace.append(1.0, 100.0)
        with pytest.raises(SimulationError, match="trough is 0"):
            trace.swing_fraction

    def test_window_carries_gaps_in_range(self):
        trace = PowerTrace()
        for t in range(10):
            trace.append(float(t), 100.0)
        trace.note_gap(4.5)
        trace.note_gap(8.5)
        sub = trace.window(3.0, 6.0)
        assert sub.gaps == [4.5]


class TestDatacenterSimulation:
    def test_traces_recorded(self):
        sim = DatacenterSimulation(servers=2, seed=1, sample_interval_s=10.0)
        sim.run(120, dt=10.0)
        assert len(sim.aggregate_trace) >= 12
        assert len(sim.server_traces[0]) == len(sim.aggregate_trace)

    def test_aggregate_is_sum_of_servers(self):
        sim = DatacenterSimulation(servers=3, seed=1, sample_interval_s=10.0)
        sim.run(60, dt=10.0)
        for i in range(len(sim.aggregate_trace)):
            total = sum(sim.server_traces[s].watts[i] for s in range(3))
            assert sim.aggregate_trace.watts[i] == pytest.approx(total)

    def test_benign_load_keeps_breakers_closed(self):
        sim = DatacenterSimulation(servers=4, seed=2, sample_interval_s=30.0)
        sim.run(1800, dt=30.0)
        assert not sim.any_breaker_tripped()
        assert sim.trip_log() == []

    def test_power_in_plausible_band(self):
        """Per-server wall power must sit in the Figure 2 regime."""
        sim = DatacenterSimulation(servers=2, seed=3, sample_interval_s=30.0)
        sim.run(1800, dt=30.0)
        per_server = sim.server_traces[0]
        assert 95.0 < per_server.trough < 130.0
        assert per_server.peak < 300.0

    def test_rack_grouping(self):
        sim = DatacenterSimulation(servers=8, rack_size=4, seed=1)
        assert len(sim.racks) == 2
        assert len(sim.racks[0].kernels) == 4

    def test_breaker_rating_scales_with_partial_rack(self):
        sim = DatacenterSimulation(
            servers=6, rack_size=4, breaker_rated_watts=1200.0, seed=1
        )
        assert sim.racks[0].breaker.rated_watts == pytest.approx(1200.0)
        assert sim.racks[1].breaker.rated_watts == pytest.approx(600.0)

    def test_zero_servers_rejected(self):
        with pytest.raises(SimulationError):
            DatacenterSimulation(servers=0)

    def test_nonpositive_run_rejected(self):
        sim = DatacenterSimulation(servers=1, seed=1)
        with pytest.raises(SimulationError):
            sim.run(0)

    def test_sampling_stays_on_exact_interval_multiples(self):
        """A dt that does not divide the interval must not drift the grid.

        Regression: the old driver re-armed the next sample at ``now +
        interval`` after the overshooting tick, so dt=0.3 with a 1 s
        interval produced samples at 1.2, 2.4, 3.6, ... instead of on the
        nominal 1 s cadence.
        """
        sim = DatacenterSimulation(servers=1, seed=1, sample_interval_s=1.0)
        sim.run(6.0, dt=0.3)
        assert sim.aggregate_trace.times == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0]

    def test_baseline_sample_recorded_at_t0(self):
        sim = DatacenterSimulation(servers=1, seed=1, sample_interval_s=10.0)
        sim.run(30.0, dt=10.0)
        assert sim.aggregate_trace.times[0] == 0.0
        assert len(sim.aggregate_trace) == 4

    def test_gap_outside_run_is_caught_up(self):
        """Clock advances outside run() must not shift the sample grid."""
        sim = DatacenterSimulation(servers=1, seed=1, sample_interval_s=1.0)
        sim.run(3.0, dt=1.0)
        sim.cloud.run(3.0)  # advances the clock without sampling
        sim.run(4.0, dt=1.0)
        assert sim.aggregate_trace.times == [float(t) for t in range(11)]

    def test_set_sample_interval_reanchors_at_now(self):
        sim = DatacenterSimulation(servers=1, seed=1, sample_interval_s=30.0)
        sim.run(60.0, dt=1.0)
        sim.set_sample_interval(1.0)
        assert sim.next_sample_time == pytest.approx(61.0)
        sim.run(5.0, dt=1.0)
        assert sim.aggregate_trace.times[-5:] == [61.0, 62.0, 63.0, 64.0, 65.0]

    def test_coalesced_run_keeps_the_sample_grid(self):
        ref = DatacenterSimulation(servers=1, seed=5, sample_interval_s=30.0)
        ref.run(600.0, dt=1.0)
        fast = DatacenterSimulation(servers=1, seed=5, sample_interval_s=30.0)
        fast.run(600.0, dt=1.0, coalesce=True)
        assert fast.aggregate_trace.times == ref.aggregate_trace.times

    def test_invalid_sample_interval_rejected(self):
        with pytest.raises(SimulationError):
            DatacenterSimulation(servers=1, sample_interval_s=0.0)
        sim = DatacenterSimulation(servers=1, seed=1)
        with pytest.raises(SimulationError):
            sim.set_sample_interval(-1.0)

    def test_determinism(self):
        def trace_of(seed):
            sim = DatacenterSimulation(servers=2, seed=seed, sample_interval_s=30.0)
            sim.run(600, dt=30.0)
            return sim.aggregate_trace.watts

        assert trace_of(11) == trace_of(11)
        # seeds differentiate the tenant demand process (short traces can
        # coincide in a flat trough, so compare the demand function itself)
        sim_a = DatacenterSimulation(servers=2, seed=11)
        sim_b = DatacenterSimulation(servers=2, seed=12)
        targets_a = [sim_a.tenants[0].target_cores(t * 3600.0) for t in range(24)]
        targets_b = [sim_b.tenants[0].target_cores(t * 3600.0) for t in range(24)]
        assert targets_a != targets_b
