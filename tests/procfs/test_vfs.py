"""Tests for the pseudo-VFS: resolution, policy enforcement, walking."""

import pytest

from repro.errors import FileNotFoundPseudoError, PermissionDeniedError
from repro.kernel.config import AMD_OPTERON, HostConfig
from repro.kernel.kernel import Machine
from repro.procfs.vfs import PseudoVFS
from repro.runtime.engine import ContainerEngine
from repro.runtime.policy import MaskingPolicy, first_field_only


class TestResolution:
    def test_read_host_context_default(self, kernel):
        vfs = PseudoVFS(kernel)
        assert vfs.read("/proc/version").startswith("Linux version")

    def test_missing_path_raises_enoent(self, kernel):
        vfs = PseudoVFS(kernel)
        with pytest.raises(FileNotFoundPseudoError):
            vfs.read("/proc/nonexistent")

    def test_directory_read_raises_enoent(self, kernel):
        vfs = PseudoVFS(kernel)
        with pytest.raises(FileNotFoundPseudoError):
            vfs.read("/proc/sys")

    def test_exists(self, kernel):
        vfs = PseudoVFS(kernel)
        assert vfs.exists("/proc/meminfo")
        assert vfs.exists("/proc/sys")  # directories exist too
        assert not vfs.exists("/proc/nope")

    def test_relative_path_rejected(self, kernel):
        vfs = PseudoVFS(kernel)
        with pytest.raises(FileNotFoundPseudoError):
            vfs.read("proc/meminfo")


class TestHardwareDependence:
    def test_no_rapl_tree_on_amd(self):
        machine = Machine(config=HostConfig(cpu=AMD_OPTERON), seed=1)
        vfs = PseudoVFS(machine.kernel)
        assert not vfs.exists("/sys/class/powercap")
        with pytest.raises(FileNotFoundPseudoError):
            vfs.read("/sys/class/powercap/intel-rapl:0/energy_uj")

    def test_no_coretemp_on_amd(self):
        machine = Machine(config=HostConfig(cpu=AMD_OPTERON), seed=1)
        vfs = PseudoVFS(machine.kernel)
        assert not vfs.exists("/sys/devices/platform/coretemp.0")

    def test_tree_scales_with_cpus(self):
        machine = Machine(config=HostConfig(), seed=1)
        vfs = PseudoVFS(machine.kernel)
        assert vfs.exists("/sys/devices/system/cpu/cpu7/cpuidle/state0/usage")
        assert not vfs.exists("/sys/devices/system/cpu/cpu8/cpuidle/state0/usage")

    def test_tree_scales_with_disks(self):
        machine = Machine(
            config=HostConfig(disks=("sda", "sdb")), seed=1
        )
        vfs = PseudoVFS(machine.kernel)
        assert vfs.exists("/proc/fs/ext4/sdb/mb_groups")


class TestPolicyEnforcement:
    def test_deny_raises_eacces(self, kernel):
        engine = ContainerEngine(kernel)
        c = engine.create(name="c1", policy=MaskingPolicy().deny("/proc/uptime"))
        with pytest.raises(PermissionDeniedError):
            engine.vfs.read("/proc/uptime", c.read_context())

    def test_hide_raises_enoent(self, kernel):
        engine = ContainerEngine(kernel)
        c = engine.create(name="c1", policy=MaskingPolicy().hide("/proc/uptime"))
        with pytest.raises(FileNotFoundPseudoError):
            engine.vfs.read("/proc/uptime", c.read_context())

    def test_partial_applies_transform(self, kernel):
        engine = ContainerEngine(kernel)
        policy = MaskingPolicy().partial("/proc/loadavg", first_field_only)
        c = engine.create(name="c1", policy=policy)
        content = engine.vfs.read("/proc/loadavg", c.read_context())
        assert len(content.split()) == 1

    def test_policy_not_applied_to_host(self, kernel):
        engine = ContainerEngine(kernel)
        engine.create(name="c1", policy=MaskingPolicy().deny("/proc/uptime"))
        assert engine.vfs.read("/proc/uptime")  # host read unaffected


class TestWalk:
    def test_walk_covers_both_trees(self, kernel):
        vfs = PseudoVFS(kernel)
        paths = [path for path, _ in vfs.walk()]
        assert any(p.startswith("/proc/") for p in paths)
        assert any(p.startswith("/sys/") for p in paths)
        assert len(paths) > 200

    def test_channel_files_tagged(self, kernel):
        vfs = PseudoVFS(kernel)
        tagged = vfs.leak_channel_files()
        channels = {node.channel for _, node in tagged}
        assert "proc.meminfo" in channels
        assert "sys.class.powercap.energy_uj" in channels
