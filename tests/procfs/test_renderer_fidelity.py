"""Deeper format-fidelity checks: parsers written for real Linux must work.

Each test parses a rendered pseudo-file the way common tooling does
(psutil-style splitting, column arithmetic) and cross-checks the values
against the owning subsystem.
"""

import re

import pytest

from repro.procfs.node import ReadContext
from repro.procfs.vfs import PseudoVFS
from repro.runtime.workload import constant


@pytest.fixture
def loaded(busy_machine):
    vfs = PseudoVFS(busy_machine.kernel)
    return busy_machine, vfs, ReadContext(kernel=busy_machine.kernel)


class TestProcStatFidelity:
    def test_psutil_style_cpu_percent_computation(self, loaded):
        """The (busy, idle) delta arithmetic every monitor uses."""
        machine, vfs, ctx = loaded

        def snapshot():
            first = vfs.read("/proc/stat", ctx).splitlines()[0]
            fields = [int(x) for x in first.split()[1:]]
            busy = fields[0] + fields[1] + fields[2]
            idle = fields[3] + fields[4]
            return busy, idle

        b0, i0 = snapshot()
        machine.run(10, dt=1.0)
        b1, i1 = snapshot()
        utilization = (b1 - b0) / max(1, (b1 - b0) + (i1 - i0))
        # one 8-core host with one saturated core => ~1/8 utilization
        assert utilization == pytest.approx(1.0 / 8.0, abs=0.04)

    def test_btime_is_stable_across_reads(self, loaded):
        machine, vfs, ctx = loaded
        def read_btime():
            return int(
                next(ln for ln in vfs.read("/proc/stat", ctx).splitlines()
                     if ln.startswith("btime")).split()[1]
            )
        first = read_btime()
        machine.run(30, dt=1.0)
        assert read_btime() == first

    def test_ctxt_monotone(self, loaded):
        machine, vfs, ctx = loaded
        def read_ctxt():
            return int(
                next(ln for ln in vfs.read("/proc/stat", ctx).splitlines()
                     if ln.startswith("ctxt")).split()[1]
            )
        first = read_ctxt()
        machine.run(10, dt=1.0)
        assert read_ctxt() >= first

    def test_intr_first_field_is_total(self, loaded):
        _, vfs, ctx = loaded
        intr = next(ln for ln in vfs.read("/proc/stat", ctx).splitlines()
                    if ln.startswith("intr")).split()
        total = int(intr[1])
        assert total == sum(int(x) for x in intr[2:])


class TestUptimeFidelity:
    def test_uptime_monotone_and_idle_bounded(self, loaded):
        machine, vfs, ctx = loaded
        ncpus = machine.kernel.config.total_cores

        def read():
            up, idle = vfs.read("/proc/uptime", ctx).split()
            return float(up), float(idle)

        up0, idle0 = read()
        machine.run(10, dt=1.0)
        up1, idle1 = read()
        assert up1 > up0
        assert idle1 >= idle0
        # aggregate idle can grow at most ncpus seconds per second
        assert idle1 - idle0 <= (up1 - up0) * ncpus + 0.01


class TestMeminfoFidelity:
    def test_free_parses_like_procps(self, loaded):
        """total = used + free + buff/cache must roughly balance."""
        _, vfs, ctx = loaded
        fields = {}
        for line in vfs.read("/proc/meminfo", ctx).splitlines():
            key, value = line.split(":")
            fields[key] = int(value.strip().split()[0])
        buff_cache = fields["Buffers"] + fields["Cached"] + fields["Slab"]
        reconstructed = fields["MemFree"] + buff_cache + fields["AnonPages"]
        # within the kernel-reserved fraction of the total
        assert reconstructed <= fields["MemTotal"]
        assert reconstructed > fields["MemTotal"] * 0.5


class TestInterruptsFidelity:
    def test_row_totals_match_subsystem(self, loaded):
        machine, vfs, ctx = loaded
        intr = machine.kernel.interrupts
        content = vfs.read("/proc/interrupts", ctx)
        ncpus = machine.kernel.config.total_cores
        loc_row = next(ln for ln in content.splitlines() if ln.startswith(" LOC:"))
        counts = [int(x) for x in loc_row.split()[1 : 1 + ncpus]]
        assert counts == intr.irq("LOC").per_cpu


class TestTimerListFidelity:
    def test_entry_count_matches_subsystem(self, loaded):
        machine, vfs, ctx = loaded
        from repro.runtime.workload import idle

        k = machine.kernel
        owner = k.spawn("towner", workload=idle())
        for _ in range(5):
            k.timers.arm(owner, delay_seconds=500)
        content = vfs.read("/proc/timer_list", ctx)
        rendered_entries = content.count("expires at")
        assert rendered_entries == len(k.timers.entries)


class TestZoneinfoFidelity:
    def test_watermark_ordering_in_rendering(self, loaded):
        _, vfs, ctx = loaded
        content = vfs.read("/proc/zoneinfo", ctx)
        for block in content.split("Node ")[1:]:
            min_ = int(re.search(r"min\s+(\d+)", block).group(1))
            low = int(re.search(r"low\s+(\d+)", block).group(1))
            high = int(re.search(r"high\s+(\d+)", block).group(1))
            assert min_ <= low <= high

    def test_pagesets_listed_per_cpu(self, loaded):
        machine, vfs, ctx = loaded
        content = vfs.read("/proc/zoneinfo", ctx)
        first_zone = content.split("Node 0, zone")[1]
        ncpus = machine.kernel.config.total_cores
        assert first_zone.count("cpu:") == ncpus


class TestSchedDebugFidelity:
    def test_running_tasks_listed_with_pids(self, busy_machine):
        vfs = PseudoVFS(busy_machine.kernel)
        k = busy_machine.kernel
        task = k.spawn("fid-probe", workload=constant("p", cpu_demand=0.5))
        busy_machine.run(2, dt=1.0)
        content = vfs.read("/proc/sched_debug")
        match = re.search(r"fid-probe\s+(\d+)", content)
        assert match is not None
        assert int(match.group(1)) == task.pid
