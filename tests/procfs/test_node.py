"""Tests for pseudo-filesystem tree nodes and path handling."""

import pytest

from repro.errors import FileNotFoundPseudoError, PseudoFileError
from repro.kernel.namespaces import NamespaceType
from repro.procfs.node import PseudoDir, ReadContext, split_path


class TestPseudoDir:
    def test_nested_dirs(self):
        root = PseudoDir("proc")
        root.dir("sys").dir("kernel").file("x", lambda ctx: "1\n")
        node = root.resolve(["sys", "kernel", "x"])
        assert node is not None
        assert node.name == "x"

    def test_dir_get_or_create(self):
        root = PseudoDir("proc")
        assert root.dir("a") is root.dir("a")

    def test_duplicate_file_rejected(self):
        root = PseudoDir("proc")
        root.file("x", lambda ctx: "")
        with pytest.raises(PseudoFileError):
            root.file("x", lambda ctx: "")

    def test_file_dir_name_collision_rejected(self):
        root = PseudoDir("proc")
        root.file("x", lambda ctx: "")
        with pytest.raises(PseudoFileError):
            root.dir("x")

    def test_resolve_missing_returns_none(self):
        root = PseudoDir("proc")
        assert root.resolve(["nope"]) is None
        root.file("x", lambda ctx: "")
        assert root.resolve(["x", "deeper"]) is None

    def test_walk_yields_all_files(self):
        root = PseudoDir("proc")
        root.file("a", lambda ctx: "")
        root.dir("d").file("b", lambda ctx: "")
        paths = {path for path, _ in root.walk("/proc")}
        assert paths == {"/proc/a", "/proc/d/b"}


class TestSplitPath:
    def test_absolute_paths(self):
        assert split_path("/proc/meminfo") == ["proc", "meminfo"]
        assert split_path("/") == []

    def test_relative_rejected(self):
        with pytest.raises(FileNotFoundPseudoError):
            split_path("proc/meminfo")


class TestReadContext:
    def test_host_context_uses_root_namespaces(self, kernel):
        ctx = ReadContext(kernel=kernel)
        assert ctx.namespace(NamespaceType.UTS).is_root
        assert not ctx.in_container

    def test_container_context_uses_container_namespaces(self, engine):
        c = engine.create(name="c1")
        ctx = c.read_context()
        assert ctx.in_container
        assert not ctx.namespace(NamespaceType.UTS).is_root

    def test_task_namespaces_win(self, engine, kernel):
        c = engine.create(name="c1")
        ctx = c.read_context()
        assert ctx.task is c.init_task
        assert ctx.namespaces is c.init_task.namespaces
