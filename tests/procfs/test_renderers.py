"""Tests for pseudo-file renderers: format fidelity and data correctness."""

import re

import pytest

from repro.procfs.node import ReadContext
from repro.runtime.workload import idle


@pytest.fixture
def ctx(busy_machine):
    return ReadContext(kernel=busy_machine.kernel)


@pytest.fixture
def vfs(busy_machine):
    from repro.procfs.vfs import PseudoVFS

    return PseudoVFS(busy_machine.kernel)


class TestProcCore:
    def test_uptime_format(self, vfs, ctx, busy_machine):
        content = vfs.read("/proc/uptime", ctx)
        up, idle_s = (float(x) for x in content.split())
        assert up == pytest.approx(busy_machine.kernel.uptime_seconds, abs=0.01)
        assert idle_s == pytest.approx(busy_machine.kernel.idle_seconds, abs=0.5)

    def test_version_format(self, vfs, ctx):
        content = vfs.read("/proc/version", ctx)
        assert content.startswith("Linux version 4.7.0")
        assert "gcc version" in content

    def test_loadavg_format(self, vfs, ctx):
        content = vfs.read("/proc/loadavg", ctx)
        match = re.match(
            r"^\d+\.\d{2} \d+\.\d{2} \d+\.\d{2} \d+/\d+ \d+\n$", content
        )
        assert match, content

    def test_stat_structure(self, vfs, ctx, busy_machine):
        lines = vfs.read("/proc/stat", ctx).splitlines()
        assert lines[0].startswith("cpu  ")
        ncpus = busy_machine.kernel.config.total_cores
        for cpu in range(ncpus):
            assert lines[1 + cpu].startswith(f"cpu{cpu} ")
        keys = {line.split()[0] for line in lines}
        assert {"intr", "ctxt", "btime", "processes", "softirq"} <= keys

    def test_stat_totals_are_sums(self, vfs, ctx):
        lines = vfs.read("/proc/stat", ctx).splitlines()
        total = [int(x) for x in lines[0].split()[1:]]
        per_cpu = [
            [int(x) for x in line.split()[1:]]
            for line in lines
            if re.match(r"^cpu\d+ ", line)
        ]
        summed = [sum(col) for col in zip(*per_cpu)]
        assert total[:7] == summed[:7]

    def test_meminfo_format_and_consistency(self, vfs, ctx, busy_machine):
        content = vfs.read("/proc/meminfo", ctx)
        fields = {}
        for line in content.splitlines():
            match = re.match(r"^(\w+):\s+(\d+) kB$", line)
            assert match, line
            fields[match.group(1)] = int(match.group(2))
        mem = busy_machine.kernel.memory
        assert fields["MemTotal"] == mem.mem_total_kb
        assert fields["MemFree"] < fields["MemTotal"]
        assert fields["MemAvailable"] >= fields["MemFree"]

    def test_zoneinfo_mentions_all_zones(self, vfs, ctx, busy_machine):
        content = vfs.read("/proc/zoneinfo", ctx)
        for node in busy_machine.kernel.memory.nodes:
            for zone in node.zones:
                assert f"zone {zone.name:>8}" in content
        assert "pagesets" in content

    def test_cpuinfo_lists_all_cpus(self, vfs, ctx, busy_machine):
        content = vfs.read("/proc/cpuinfo", ctx)
        ncpus = busy_machine.kernel.config.total_cores
        assert content.count("processor\t:") == ncpus
        assert "i7-6700" in content


class TestProcKernelTables:
    def test_sched_debug_lists_tasks_with_host_pids(self, vfs, busy_machine):
        ctx = ReadContext(kernel=busy_machine.kernel)
        content = vfs.read("/proc/sched_debug", ctx)
        assert "cruncher" in content
        task = busy_machine.kernel.processes.find_by_name("cruncher")[0]
        assert str(task.pid) in content

    def test_schedstat_version_header(self, vfs, ctx):
        lines = vfs.read("/proc/schedstat", ctx).splitlines()
        assert lines[0] == "version 15"
        assert lines[1].startswith("timestamp ")

    def test_timer_list_header_and_owner(self, vfs, busy_machine):
        k = busy_machine.kernel
        task = k.spawn("timerowner", workload=idle())
        k.timers.arm(task, delay_seconds=500)
        from repro.procfs.vfs import PseudoVFS

        content = PseudoVFS(k).read("/proc/timer_list")
        assert content.startswith("Timer List Version: v0.8")
        assert f"timerowner/{task.pid}" in content

    def test_locks_rows(self, busy_machine):
        from repro.procfs.vfs import PseudoVFS

        k = busy_machine.kernel
        task = k.spawn("locker", workload=idle())
        k.locks.acquire(task, inode=777)
        content = PseudoVFS(k).read("/proc/locks")
        assert re.search(rf"\d+: POSIX  ADVISORY  WRITE {task.pid} 08:01:777 0 EOF", content)

    def test_modules_rows(self, vfs, ctx):
        content = vfs.read("/proc/modules", ctx)
        assert re.search(r"^ext4 \d+ \d+ .* Live 0x[0-9a-f]{16}$", content, re.M)

    def test_interrupts_columns(self, vfs, ctx, busy_machine):
        lines = vfs.read("/proc/interrupts", ctx).splitlines()
        ncpus = busy_machine.kernel.config.total_cores
        assert lines[0].split() == [f"CPU{c}" for c in range(ncpus)]
        loc = next(ln for ln in lines if ln.startswith(" LOC:"))
        counts = loc.split()[1 : 1 + ncpus]
        assert all(int(c) >= 0 for c in counts)

    def test_softirqs_rows(self, vfs, ctx):
        content = vfs.read("/proc/softirqs", ctx)
        for name in ("TIMER:", "NET_RX:", "SCHED:", "RCU:"):
            assert name in content


class TestProcSys:
    def test_boot_id_is_uuid(self, vfs, ctx):
        content = vfs.read("/proc/sys/kernel/random/boot_id", ctx).strip()
        assert re.match(
            r"^[0-9a-f]{8}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{4}-[0-9a-f]{12}$",
            content,
        )

    def test_entropy_avail_in_range(self, vfs, ctx):
        value = int(vfs.read("/proc/sys/kernel/random/entropy_avail", ctx))
        assert 128 <= value <= 4096

    def test_uuid_changes_every_read(self, vfs, ctx):
        a = vfs.read("/proc/sys/kernel/random/uuid", ctx)
        b = vfs.read("/proc/sys/kernel/random/uuid", ctx)
        assert a != b

    def test_boot_id_stable_across_reads(self, vfs, ctx):
        a = vfs.read("/proc/sys/kernel/random/boot_id", ctx)
        b = vfs.read("/proc/sys/kernel/random/boot_id", ctx)
        assert a == b

    def test_fs_counters(self, vfs, ctx):
        dentry = vfs.read("/proc/sys/fs/dentry-state", ctx).split()
        assert len(dentry) == 6
        inode = vfs.read("/proc/sys/fs/inode-nr", ctx).split()
        assert len(inode) == 2
        file_nr = vfs.read("/proc/sys/fs/file-nr", ctx).split()
        assert len(file_nr) == 3

    def test_sched_domain_cost(self, vfs, ctx, busy_machine):
        value = int(
            vfs.read(
                "/proc/sys/kernel/sched_domain/cpu0/domain0/max_newidle_lb_cost", ctx
            )
        )
        assert value == busy_machine.kernel.scheduler.max_newidle_lb_cost[0]

    def test_mb_groups_table(self, vfs, ctx):
        content = vfs.read("/proc/fs/ext4/sda/mb_groups", ctx)
        lines = content.splitlines()
        assert lines[0].startswith("#group:")
        assert len(lines) == 17  # header + 16 groups


class TestSysfs:
    def test_ifpriomap_leaks_host_devices(self, engine):
        c = engine.create(name="c1")
        content = c.read("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
        names = [line.split()[0] for line in content.splitlines()]
        assert names == ["lo", "eth0", "eth1", "docker0"]

    def test_fixed_ifpriomap_is_namespaced(self, engine):
        from repro.procfs.render.sys_cgroup import render_ifpriomap_fixed

        c = engine.create(name="c1")
        content = render_ifpriomap_fixed(c.read_context())
        names = [line.split()[0] for line in content.splitlines()]
        assert names == ["lo", "eth0"]

    def test_numastat(self, vfs, ctx):
        content = vfs.read("/sys/devices/system/node/node0/numastat", ctx)
        assert re.search(r"^numa_hit \d+$", content, re.M)

    def test_cpuidle_files(self, vfs, ctx):
        usage = int(vfs.read("/sys/devices/system/cpu/cpu1/cpuidle/state4/usage", ctx))
        time_us = int(vfs.read("/sys/devices/system/cpu/cpu1/cpuidle/state4/time", ctx))
        name = vfs.read("/sys/devices/system/cpu/cpu1/cpuidle/state4/name", ctx).strip()
        assert name == "C6"
        assert usage > 0
        assert time_us > 0

    def test_coretemp_millidegrees(self, vfs, ctx, busy_machine):
        raw = int(
            vfs.read(
                "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_input", ctx
            )
        )
        assert 30_000 < raw < 80_000
        label = vfs.read(
            "/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp2_label", ctx
        ).strip()
        assert label == "Core 0"

    def test_rapl_energy_uj(self, vfs, ctx, busy_machine):
        raw = int(vfs.read("/sys/class/powercap/intel-rapl:0/energy_uj", ctx))
        assert raw == busy_machine.kernel.rapl.package(0).package.energy_uj
        name = vfs.read("/sys/class/powercap/intel-rapl:0/name", ctx).strip()
        assert name == "package-0"
        rng = int(vfs.read("/sys/class/powercap/intel-rapl:0/max_energy_range_uj", ctx))
        assert rng == 262_143_328_850

    def test_rapl_subdomains(self, vfs, ctx):
        core = vfs.read(
            "/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/name", ctx
        ).strip()
        dram = vfs.read(
            "/sys/class/powercap/intel-rapl:0/intel-rapl:0:1/name", ctx
        ).strip()
        assert (core, dram) == ("core", "dram")

    def test_class_net_statistics(self, vfs, ctx, busy_machine):
        raw = int(vfs.read("/sys/class/net/eth0/statistics/tx_bytes", ctx))
        assert raw > 0  # busy machine sends traffic


class TestNamespacedControls:
    def test_net_dev_namespaced(self, engine):
        c = engine.create(name="c1")
        inside = c.read("/proc/net/dev")
        assert "eth1" not in inside
        assert "docker0" not in inside
        outside = engine.vfs.read("/proc/net/dev")
        assert "docker0" in outside

    def test_self_cgroup_namespaced(self, engine):
        c = engine.create(name="c1")
        inside = c.read("/proc/self/cgroup")
        # CGROUP namespace hides the host-side /docker/<id> prefix
        assert f"/docker/{c.container_id}" not in inside
        assert ":/" in inside

    def test_ns_last_pid_namespaced(self, engine):
        c = engine.create(name="c1")
        inner = int(c.read("/proc/sys/kernel/ns_last_pid"))
        outer = int(engine.vfs.read("/proc/sys/kernel/ns_last_pid"))
        assert inner < outer
