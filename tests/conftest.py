"""Shared fixtures for the ContainerLeaks reproduction test suite."""

from __future__ import annotations

import pytest

from repro.kernel.kernel import Machine
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant


@pytest.fixture
def machine() -> Machine:
    """A booted single-host machine with default hardware."""
    return Machine(seed=1234)


@pytest.fixture
def kernel(machine):
    """The kernel of the default machine."""
    return machine.kernel


@pytest.fixture
def engine(kernel) -> ContainerEngine:
    """A container engine on the default machine."""
    return ContainerEngine(kernel)


@pytest.fixture
def busy_machine() -> Machine:
    """A machine that has run 30 s with a compute-heavy host workload."""
    m = Machine(seed=99)
    m.kernel.spawn(
        "cruncher",
        workload=constant(
            "cruncher",
            cpu_demand=1.0,
            ipc=2.0,
            cache_miss_per_kinst=1.0,
            branch_miss_per_kinst=2.0,
            io_ops_per_sec=50.0,
            net_kbps=800.0,
        ),
    )
    m.run(30, dt=1.0)
    return m


def make_cpu_workload(
    name: str = "cpu",
    demand: float = 1.0,
    duration=None,
):
    """A generic compute workload for tests."""
    return constant(
        name,
        cpu_demand=demand,
        ipc=2.0,
        cache_miss_per_kinst=0.5,
        branch_miss_per_kinst=1.0,
        duration=duration,
    )
