"""Tests for the power-virus workload family."""

import pytest

from repro.attack.virus import moderate_virus, power_virus, stress_ng_like
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta


def joules_for(workload_factory, seconds=10, seed=261):
    machine = Machine(seed=seed, spawn_daemons=False)
    machine.kernel.spawn("w", workload=workload_factory())
    pkg = machine.kernel.rapl.package(0).package
    before = pkg.energy_uj
    machine.run(seconds, dt=1.0)
    return unwrap_delta(pkg.energy_uj, before) / 1e6


class TestVirusFamily:
    def test_power_ordering(self):
        """The SYMPO claim: the virus beats both stress and prime."""
        virus = joules_for(power_virus)
        stress = joules_for(stress_ng_like)
        prime = joules_for(moderate_virus)
        assert virus > stress
        assert virus > prime

    def test_virus_roughly_doubles_prime(self):
        virus = joules_for(power_virus)
        prime = joules_for(moderate_virus)
        # minus the shared idle floor, the virus draws ~2x prime's power
        idle = joules_for(lambda: moderate_virus(duration=0.001), seconds=10)
        assert (virus - idle) / (prime - idle) == pytest.approx(2.0, rel=0.35)

    def test_durations_respected(self):
        machine = Machine(seed=262, spawn_daemons=False)
        task = machine.kernel.spawn("v", workload=power_virus(duration=5.0))
        machine.run(10, dt=1.0)
        assert task.workload.finished
        assert task.workload.total.cpu_ns == pytest.approx(5e9, rel=0.02)

    def test_moderate_virus_looks_like_prime(self):
        """Stealth: the moderate virus's activity vector is Prime95's."""
        from repro.runtime.benchmarks import MODELING_BENCHMARKS

        prime_profile = MODELING_BENCHMARKS["prime"]
        phase = moderate_virus().current_phase
        assert phase.ipc == prime_profile.ipc
        assert phase.cache_miss_per_kinst == prime_profile.cache_miss_per_kinst
