"""Tests for RAPL monitoring and crest detection."""

import pytest

from repro.attack.monitor import CrestDetector, RaplPowerMonitor
from repro.errors import AttackError
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.workload import constant


@pytest.fixture
def cloud():
    return ContainerCloud(PROVIDER_PROFILES["CC1"], seed=51, servers=1)


class TestRaplPowerMonitor:
    def test_first_sample_primes(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        assert monitor.sample(cloud.clock.now) is None

    def test_watts_track_host_power(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        cloud.run(5)
        idle_watts = monitor.sample(cloud.clock.now)
        host = cloud.hosts[0].kernel
        for _ in range(8):
            host.spawn("burn", workload=constant("b", cpu_demand=1.0, ipc=2.5))
        cloud.run(5)
        busy_watts = monitor.sample(cloud.clock.now)
        assert busy_watts > idle_watts + 40

    def test_available_detection(self, cloud):
        inst = cloud.launch_instance("t")
        assert RaplPowerMonitor(inst).available()
        cc4 = ContainerCloud(PROVIDER_PROFILES["CC4"], seed=1, servers=1)
        inst4 = cc4.launch_instance("t")
        assert not RaplPowerMonitor(inst4).available()

    def test_double_sample_same_instant_idempotent(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        cloud.run(1)
        watts = monitor.sample(cloud.clock.now)
        # a same-timestamp resample is a no-op returning the last value
        assert monitor.sample(cloud.clock.now) == watts
        assert len(monitor.watts) == 1

    def test_double_sample_same_instant_before_priming(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        now = cloud.clock.now
        assert monitor.sample(now) is None
        assert monitor.sample(now) is None  # still priming, still a no-op

    def test_time_going_backwards_rejected(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        cloud.run(5)
        monitor.sample(cloud.clock.now)
        with pytest.raises(AttackError):
            monitor.sample(cloud.clock.now - 2.0)

    def test_series_recorded(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        for _ in range(5):
            cloud.run(1)
            monitor.sample(cloud.clock.now)
        assert len(monitor.watts) == 5
        assert len(monitor.times) == 5


def _fault_rapl_channel(cloud, until, kind=None):
    """Install a fault state on host 0's kernel hitting the RAPL path."""
    from repro.sim.faults import FaultKind, KernelFaultState
    from repro.sim.rng import DeterministicRNG

    state = KernelFaultState(DeterministicRNG(3))
    kernel = cloud.hosts[0].kernel
    kernel.faults = state
    if kind is None:
        state.add_eio("/sys/class/powercap/*", until=until)
    else:
        state.fault_rapl(kind, until=until)
    return state


class TestMonitorDegradation:
    """The graceful-degradation contract of docs/faults.md."""

    def test_faulted_reads_open_a_gap_not_an_exception(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst, backoff_base_s=1.0)
        monitor.sample(cloud.clock.now)
        cloud.run(1)
        monitor.sample(cloud.clock.now)
        _fault_rapl_channel(cloud, until=cloud.clock.now + 10.0)
        for _ in range(10):
            cloud.run(1)
            assert monitor.sample(cloud.clock.now) is None
        # ride out the remaining exponential backoff (last retry at t=17)
        cloud.run(6)
        assert monitor.sample(cloud.clock.now) is not None
        summary = monitor.degradation()
        assert summary["faulted_reads"] >= 1
        assert summary["gap_count"] == 1
        assert summary["gap_seconds"] > 0.0
        assert len(monitor.gaps) == 1

    def test_backoff_skips_reads_between_retries(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst, backoff_base_s=4.0, max_backoff_s=30.0)
        monitor.sample(cloud.clock.now)
        _fault_rapl_channel(cloud, until=cloud.clock.now + 100.0)
        cloud.run(1)
        monitor.sample(cloud.clock.now)  # fails, schedules retry +4 s
        failed_after_first = monitor.faulted_reads
        assert failed_after_first == 1
        cloud.run(1)
        monitor.sample(cloud.clock.now)  # inside backoff: no read attempt
        assert monitor.faulted_reads == 1
        cloud.run(4)
        monitor.sample(cloud.clock.now)  # past the retry time: reads again
        assert monitor.faulted_reads == 2

    def test_long_gap_reprimes_instead_of_integrating(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst, max_gap_s=5.0, backoff_base_s=1.0)
        monitor.sample(cloud.clock.now)
        cloud.run(1)
        monitor.sample(cloud.clock.now)
        _fault_rapl_channel(cloud, until=cloud.clock.now + 20.0)
        for _ in range(20):
            cloud.run(1)
            monitor.sample(cloud.clock.now)
        cloud.run(12)  # past the last backed-off retry (t=33)
        # the outage outlived max_gap_s: the first good read re-primes
        assert monitor.sample(cloud.clock.now) is None
        assert monitor.discarded_samples == 1
        cloud.run(1)
        assert monitor.sample(cloud.clock.now) is not None

    def test_implausible_watts_discarded(self, cloud):
        from repro.sim.faults import FaultKind

        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        cloud.run(1)
        monitor.sample(cloud.clock.now)
        # a spurious wraparound displaces the counter by half the MSR
        # range: the implied ~131 kW is not physical power
        _fault_rapl_channel(cloud, until=0.0, kind=FaultKind.RAPL_WRAP)
        cloud.run(1)
        assert monitor.sample(cloud.clock.now) is None
        assert monitor.discarded_samples == 1
        assert len(monitor.watts) == 1


class TestCrestDetector:
    def test_needs_context_before_firing(self):
        detector = CrestDetector(window=100)
        assert not detector.observe(1000.0)

    def test_fires_on_crest(self):
        detector = CrestDetector(window=100, threshold_fraction=0.75)
        for _ in range(50):
            detector.observe(100.0)
        for _ in range(10):
            detector.observe(120.0)
        assert detector.observe(130.0)

    def test_quiet_band_never_fires(self):
        detector = CrestDetector(window=100, min_band_watts=5.0)
        fired = [detector.observe(100.0 + (i % 3)) for i in range(200)]
        assert not any(fired)

    def test_trough_does_not_fire(self):
        detector = CrestDetector(window=100)
        for i in range(100):
            detector.observe(100.0 + (i % 50))
        assert not detector.observe(101.0)

    def test_window_slides(self):
        detector = CrestDetector(window=20)
        for _ in range(30):
            detector.observe(1000.0)
        # old high samples age out; a new lower regime re-arms the detector
        for _ in range(25):
            detector.observe(100.0)
        assert detector.band[1] < 1000.0

    def test_band_accessor(self):
        detector = CrestDetector(window=10)
        assert detector.band == (0.0, 0.0)
        detector.observe(5.0)
        detector.observe(15.0)
        assert detector.band == (5.0, 15.0)
