"""Tests for RAPL monitoring and crest detection."""

import pytest

from repro.attack.monitor import CrestDetector, RaplPowerMonitor
from repro.errors import AttackError
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.workload import constant


@pytest.fixture
def cloud():
    return ContainerCloud(PROVIDER_PROFILES["CC1"], seed=51, servers=1)


class TestRaplPowerMonitor:
    def test_first_sample_primes(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        assert monitor.sample(cloud.clock.now) is None

    def test_watts_track_host_power(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        cloud.run(5)
        idle_watts = monitor.sample(cloud.clock.now)
        host = cloud.hosts[0].kernel
        for _ in range(8):
            host.spawn("burn", workload=constant("b", cpu_demand=1.0, ipc=2.5))
        cloud.run(5)
        busy_watts = monitor.sample(cloud.clock.now)
        assert busy_watts > idle_watts + 40

    def test_available_detection(self, cloud):
        inst = cloud.launch_instance("t")
        assert RaplPowerMonitor(inst).available()
        cc4 = ContainerCloud(PROVIDER_PROFILES["CC4"], seed=1, servers=1)
        inst4 = cc4.launch_instance("t")
        assert not RaplPowerMonitor(inst4).available()

    def test_double_sample_same_instant_rejected(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        cloud.run(1)
        monitor.sample(cloud.clock.now)
        with pytest.raises(AttackError):
            monitor.sample(cloud.clock.now)

    def test_series_recorded(self, cloud):
        inst = cloud.launch_instance("t")
        monitor = RaplPowerMonitor(inst)
        monitor.sample(cloud.clock.now)
        for _ in range(5):
            cloud.run(1)
            monitor.sample(cloud.clock.now)
        assert len(monitor.watts) == 5
        assert len(monitor.times) == 5


class TestCrestDetector:
    def test_needs_context_before_firing(self):
        detector = CrestDetector(window=100)
        assert not detector.observe(1000.0)

    def test_fires_on_crest(self):
        detector = CrestDetector(window=100, threshold_fraction=0.75)
        for _ in range(50):
            detector.observe(100.0)
        for _ in range(10):
            detector.observe(120.0)
        assert detector.observe(130.0)

    def test_quiet_band_never_fires(self):
        detector = CrestDetector(window=100, min_band_watts=5.0)
        fired = [detector.observe(100.0 + (i % 3)) for i in range(200)]
        assert not any(fired)

    def test_trough_does_not_fire(self):
        detector = CrestDetector(window=100)
        for i in range(100):
            detector.observe(100.0 + (i % 50))
        assert not detector.observe(101.0)

    def test_window_slides(self):
        detector = CrestDetector(window=20)
        for _ in range(30):
            detector.observe(1000.0)
        # old high samples age out; a new lower regime re-arms the detector
        for _ in range(25):
            detector.observe(100.0)
        assert detector.band[1] < 1000.0

    def test_band_accessor(self):
        detector = CrestDetector(window=10)
        assert detector.band == (0.0, 0.0)
        detector.observe(5.0)
        detector.observe(15.0)
        assert detector.band == (5.0, 15.0)
