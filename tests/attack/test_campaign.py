"""Tests for the full synergistic campaign (cover → recon → strike)."""

import pytest

from repro.attack.campaign import SynergisticCampaign
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile
from repro.errors import AttackError

FAST_TENANTS = DiurnalProfile(
    base_cores=1.0, peak_cores=1.0, bursts_per_day=150.0,
    burst_cores=4.0, burst_duration_s=60.0, noise=0.05,
)


@pytest.fixture
def sim():
    return DatacenterSimulation(
        servers=4, seed=171, sample_interval_s=1.0, tenant_profile=FAST_TENANTS
    )


class TestCoverage:
    def test_cover_servers_reaches_distinct_hosts(self, sim):
        campaign = SynergisticCampaign(sim)
        instances = campaign.cover_servers(target_servers=4, max_launches=80)
        assert len({i.host_index for i in instances}) == 4

    def test_cover_budget_enforced(self, sim):
        campaign = SynergisticCampaign(sim)
        with pytest.raises(AttackError):
            campaign.cover_servers(target_servers=4, max_launches=2)

    def test_reconnaissance_reads_uptime_everywhere(self, sim):
        campaign = SynergisticCampaign(sim)
        instances = campaign.cover_servers(target_servers=3, max_launches=80)
        recon = campaign.reconnoiter(instances)
        assert len(recon) == 3
        for uptime, idle in recon.values():
            assert uptime > 0
            assert idle >= 0


class TestExecution:
    def test_full_campaign_strikes_crests(self, sim):
        campaign = SynergisticCampaign(sim)
        result = campaign.execute(
            target_servers=4,
            attack_duration_s=900.0,
            burst_s=20.0,
            cooldown_s=120.0,
            settle_s=200.0,
        )
        assert result.servers_covered == 4
        assert result.attack is not None
        assert result.attack.trials >= 1
        assert result.attack.peak_watts > 0
        assert len(result.reconnaissance) == 4

    def test_campaign_can_cause_an_outage(self):
        """The end game: a tight rack rating + synchronized crest strike
        trips the breaker and darkens the rack."""
        sim = DatacenterSimulation(
            servers=4,
            rack_size=4,
            breaker_rated_watts=620.0,  # oversubscribed for 4 servers
            seed=172,
            sample_interval_s=1.0,
            tenant_profile=FAST_TENANTS,
        )
        campaign = SynergisticCampaign(sim)
        result = campaign.execute(
            target_servers=4,
            attack_duration_s=1200.0,
            burst_s=120.0,  # long enough to beat the thermal element
            cooldown_s=200.0,
            settle_s=200.0,
        )
        assert result.attack.breaker_tripped
        assert sim.any_breaker_tripped()
        # the outage is visible in the trace: the fleet went dark
        assert sim.aggregate_trace.watts[-1] == 0.0
