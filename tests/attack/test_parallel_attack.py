"""Golden-trace equivalence for sharded attack campaigns.

The paper's figure-3 comparison (periodic vs synergistic) must produce
bit-identical outcomes whether the fleet runs serially or sharded across
worker processes with shard-resident monitors — same trial counts, same
spike heights, same utilization bill, same degradation counters.
"""

import pytest

from repro.attack.monitor import CrestDetector
from repro.attack.strategies import PeriodicAttack, SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import AttackError
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule

SEED = 61
WARMUP_S = 120.0


def attack_faults():
    return FaultSchedule(
        [
            FaultEvent(at=150.0, kind=FaultKind.RAPL_DROP,
                       duration_s=60.0, server=0),
            FaultEvent(at=200.0, kind=FaultKind.CLOCK_JITTER,
                       duration_s=120.0, magnitude=0.2),
        ],
        seed=17,
    )


def build_campaign(parallel, servers=4, rack_size=2, faults=False):
    """One sim with an attacker instance per server, warmed up in-mode."""
    sim = DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=SEED,
        sample_interval_s=1.0,
    )
    if faults:
        sim.install_faults(attack_faults())
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < servers:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.run(WARMUP_S, dt=1.0, parallel=parallel)
    return sim, instances


def outcome_snapshot(outcome):
    return {
        "trials": outcome.trials,
        "spikes": tuple(outcome.spike_watts),
        "peak": outcome.peak_watts,
        "cpu_s": outcome.attacker_cpu_seconds,
        "bill": outcome.bill_dollars,
        "tripped": outcome.breaker_tripped,
        "degradation": outcome.degradation,
    }


def trace_snapshot(sim):
    return (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
        tuple(sim.aggregate_trace.gaps),
    )


def synergistic(sim, instances):
    return SynergisticAttack(
        sim, instances,
        detector_factory=lambda: CrestDetector(
            window=60, threshold_fraction=0.7, min_band_watts=5.0
        ),
        burst_s=20.0, cooldown_s=60.0, learn_s=30.0,
    )


class TestGoldenCampaign:
    @pytest.mark.parametrize("faults", [False, True], ids=["clean", "faulty"])
    def test_synergistic_bit_identical(self, faults):
        serial_sim, serial_inst = build_campaign(0, faults=faults)
        serial = synergistic(serial_sim, serial_inst).run(300.0)
        par_sim, par_inst = build_campaign(2, faults=faults)
        try:
            par = synergistic(par_sim, par_inst).run(300.0)
            assert outcome_snapshot(serial) == outcome_snapshot(par)
            assert trace_snapshot(serial_sim) == trace_snapshot(par_sim)
            assert serial.trials > 0  # the campaign actually struck
        finally:
            par_sim.close()

    def test_periodic_bit_identical(self):
        serial_sim, serial_inst = build_campaign(0)
        serial = PeriodicAttack(
            serial_sim, serial_inst, burst_s=10.0, period_s=60.0
        ).run(180.0)
        par_sim, par_inst = build_campaign(2)
        try:
            par = PeriodicAttack(
                par_sim, par_inst, burst_s=10.0, period_s=60.0
            ).run(180.0)
            assert outcome_snapshot(serial) == outcome_snapshot(par)
            assert trace_snapshot(serial_sim) == trace_snapshot(par_sim)
            assert serial.trials == 3
        finally:
            par_sim.close()

    def test_coalesced_periodic_bit_identical(self):
        serial_sim, serial_inst = build_campaign(0)
        serial = PeriodicAttack(
            serial_sim, serial_inst, burst_s=10.0, period_s=120.0
        ).run(360.0, coalesce=True)
        par_sim, par_inst = build_campaign(2)
        try:
            par = PeriodicAttack(
                par_sim, par_inst, burst_s=10.0, period_s=120.0
            ).run(360.0, coalesce=True)
            assert outcome_snapshot(serial) == outcome_snapshot(par)
            assert trace_snapshot(serial_sim) == trace_snapshot(par_sim)
        finally:
            par_sim.close()


class TestParallelPlumbing:
    def test_ipc_metrics_populated(self):
        sim, instances = build_campaign(2)
        try:
            synergistic(sim, instances).run(120.0)
            ipc = sim.metrics.ipc
            assert ipc is not None
            assert ipc.control_frames > 0
            assert ipc.shm_row_bytes > 0
            assert ipc.shm_observer_bytes > 0
            assert ipc.workers == 2
            assert ipc.barrier_wait_total_s >= 0.0
            assert "parallel IPC profile" in sim.metrics.render()
        finally:
            sim.close()

    def test_strategy_refuses_mode_switch(self):
        # a strategy wired for serial must not silently run against a
        # fleet that moved into shard workers since construction
        sim = DatacenterSimulation(
            servers=4, rack_size=2, seed=SEED, sample_interval_s=1.0
        )
        instances = [sim.cloud.launch_instance("attacker")]
        attack = PeriodicAttack(sim, instances, burst_s=10.0, period_s=60.0)
        sim.run(10.0, parallel=2)
        try:
            with pytest.raises(AttackError, match="execution mode"):
                attack.run(60.0)
        finally:
            sim.close()
