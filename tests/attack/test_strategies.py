"""Tests for the attack strategies (Figure 3's comparison, in miniature)."""

import pytest

from repro.attack.strategies import ContinuousAttack, PeriodicAttack, SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import AttackError
from repro.runtime.cloud import PROVIDER_PROFILES


def simulation_with_attacker(servers=2, seed=61, warmup_s=120.0):
    sim = DatacenterSimulation(servers=servers, seed=seed, sample_interval_s=1.0)
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < servers:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.run(warmup_s, dt=1.0)
    return sim, instances


class TestContinuous:
    def test_raises_power_for_whole_window(self):
        sim, instances = simulation_with_attacker()
        baseline = sim.aggregate_trace.mean
        attack = ContinuousAttack(sim, instances, burst_s=30.0)
        outcome = attack.run(120.0)
        # skip the boundary sample taken just before the first burst
        window = sim.aggregate_trace.window(sim.now - 118.0, sim.now + 1)
        assert window.trough > baseline + 50.0
        assert outcome.trials == 4  # back-to-back bursts
        assert outcome.attacker_cpu_seconds > 0.9 * 120 * len(instances) * 4

    def test_empty_instances_rejected(self):
        sim, _ = simulation_with_attacker()
        with pytest.raises(AttackError):
            ContinuousAttack(sim, [])


class TestPeriodic:
    def test_period_must_exceed_burst(self):
        sim, instances = simulation_with_attacker()
        with pytest.raises(AttackError):
            PeriodicAttack(sim, instances, burst_s=30.0, period_s=20.0)

    def test_fires_on_schedule(self):
        sim, instances = simulation_with_attacker()
        attack = PeriodicAttack(sim, instances, burst_s=10.0, period_s=60.0)
        outcome = attack.run(180.0)
        assert outcome.trials == 3
        assert len(outcome.spike_watts) == 3

    def test_cheaper_than_continuous(self):
        sim1, inst1 = simulation_with_attacker(seed=62)
        continuous = ContinuousAttack(sim1, inst1, burst_s=30.0).run(180.0)
        sim2, inst2 = simulation_with_attacker(seed=62)
        periodic = PeriodicAttack(sim2, inst2, burst_s=10.0, period_s=60.0).run(180.0)
        assert periodic.attacker_cpu_seconds < continuous.attacker_cpu_seconds / 2


class TestSynergistic:
    def test_needs_rapl_channel(self):
        sim = DatacenterSimulation(
            profile=PROVIDER_PROFILES["CC4"], servers=1, seed=63,
            sample_interval_s=1.0,
        )
        inst = sim.cloud.launch_instance("attacker")
        with pytest.raises(AttackError):
            SynergisticAttack(sim, [inst])

    def test_strikes_only_at_crests(self):
        sim, instances = simulation_with_attacker(seed=64, warmup_s=60.0)
        from repro.attack.monitor import CrestDetector

        attack = SynergisticAttack(
            sim,
            instances,
            burst_s=10.0,
            cooldown_s=60.0,
            max_trials=2,
            detector_factory=lambda: CrestDetector(
                window=120, threshold_fraction=0.6, min_band_watts=2.0
            ),
        )
        outcome = attack.run(600.0)
        assert outcome.trials <= 2
        # every recorded spike exceeds the benign mean
        benign_mean = sim.aggregate_trace.window(0, 60).mean
        for spike in outcome.spike_watts:
            assert spike > benign_mean

    def test_max_trials_caps_bursts(self):
        sim, instances = simulation_with_attacker(seed=65, warmup_s=60.0)
        from repro.attack.monitor import CrestDetector

        attack = SynergisticAttack(
            sim,
            instances,
            burst_s=5.0,
            cooldown_s=10.0,
            max_trials=1,
            detector_factory=lambda: CrestDetector(
                window=60, threshold_fraction=0.5, min_band_watts=1.0
            ),
        )
        outcome = attack.run(300.0)
        assert outcome.trials <= 1

    def test_outcome_records_billing(self):
        sim, instances = simulation_with_attacker(seed=66, warmup_s=30.0)
        attack = SynergisticAttack(sim, instances, burst_s=5.0, cooldown_s=30.0)
        outcome = attack.run(60.0)
        assert outcome.bill_dollars >= 0.0
        assert outcome.strategy == "synergistic"
