"""Tests for the Section VII-A utilization-based power estimator."""

import pytest

from repro.attack.estimator import UtilizationPowerEstimator
from repro.attack.monitor import CrestDetector
from repro.errors import AttackError
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.workload import constant


@pytest.fixture
def cc4():
    """The AMD provider: no RAPL, but /proc/stat and /proc/meminfo open."""
    return ContainerCloud(PROVIDER_PROFILES["CC4"], seed=141, servers=1)


class TestEstimator:
    def test_available_without_rapl(self, cc4):
        inst = cc4.launch_instance("t")
        estimator = UtilizationPowerEstimator(inst)
        assert estimator.available()

    def test_first_sample_primes(self, cc4):
        inst = cc4.launch_instance("t")
        estimator = UtilizationPowerEstimator(inst)
        assert estimator.sample(cc4.clock.now) is None

    def test_estimate_tracks_host_load(self, cc4):
        inst = cc4.launch_instance("t")
        estimator = UtilizationPowerEstimator(inst)
        estimator.sample(cc4.clock.now)
        cc4.run(10)
        quiet = estimator.sample(cc4.clock.now)
        host = cc4.hosts[0].kernel
        for _ in range(8):
            host.spawn("burn", workload=constant("b", cpu_demand=1.0, ipc=2.0))
        cc4.run(10)
        busy = estimator.sample(cc4.clock.now)
        assert busy > quiet + 0.3

    def test_estimate_bounded(self, cc4):
        inst = cc4.launch_instance("t")
        estimator = UtilizationPowerEstimator(inst)
        estimator.sample(cc4.clock.now)
        host = cc4.hosts[0].kernel
        for _ in range(16):
            host.spawn(
                "burn",
                workload=constant("b", cpu_demand=1.0, rss_mb=4096.0),
            )
        for _ in range(5):
            cc4.run(2)
            value = estimator.sample(cc4.clock.now)
            assert 0.0 <= value <= 1.0 + estimator.memory_churn_weight

    def test_double_sample_rejected(self, cc4):
        inst = cc4.launch_instance("t")
        estimator = UtilizationPowerEstimator(inst)
        estimator.sample(cc4.clock.now)
        cc4.run(1)
        estimator.sample(cc4.clock.now)
        with pytest.raises(AttackError):
            estimator.sample(cc4.clock.now)

    def test_masked_stat_raises(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC5"], seed=142, servers=1)
        inst = cloud.launch_instance("t")
        estimator = UtilizationPowerEstimator(inst)
        # CC5's partial stat strips the aggregate "cpu " line
        with pytest.raises(AttackError):
            estimator.sample(cloud.clock.now)

    def test_feeds_crest_detector(self, cc4):
        """The estimate drives the same crest machinery as RAPL watts."""
        inst = cc4.launch_instance("t")
        estimator = UtilizationPowerEstimator(inst)
        detector = CrestDetector(window=120, threshold_fraction=0.7,
                                 min_band_watts=0.2)
        estimator.sample(cc4.clock.now)
        host = cc4.hosts[0].kernel
        fired = False
        burners = []
        for step in range(120):
            cc4.run(1)
            if step == 90:  # a benign surge arrives
                for _ in range(10):
                    burners.append(
                        host.spawn("surge", workload=constant("s", cpu_demand=1.0))
                    )
            value = estimator.sample(cc4.clock.now)
            if value is not None and detector.observe(value):
                fired = True
        assert fired
