"""Tests for the covert channel over leaked pseudo-files."""

import pytest

from repro.coresidence.covert import (
    CovertConfig,
    CovertReceiver,
    CovertSender,
    loadavg_extractor,
    run_transfer,
)
from repro.errors import AttackError
from repro.kernel.kernel import Machine
from repro.runtime.engine import ContainerEngine
from repro.runtime.policy import MaskingPolicy


@pytest.fixture
def pair():
    """Two co-resident containers on a quiet host, plus a run() driver."""
    machine = Machine(seed=191, spawn_daemons=False)
    engine = ContainerEngine(machine.kernel)
    sender_c = engine.create(name="sender", cpus=4)
    receiver_c = engine.create(name="receiver", cpus=2)
    machine.run(5, dt=1.0)
    return machine, sender_c, receiver_c


class TestTransfer:
    def test_framed_byte_transferred(self, pair):
        machine, sender_c, receiver_c = pair
        bits = [1, 0, 1, 1, 0, 0, 1, 0]
        sender = CovertSender(sender_c)
        receiver = CovertReceiver(receiver_c)
        received = run_transfer(
            lambda s: machine.run(s, dt=1.0), sender, receiver, bits
        )
        assert received == bits

    def test_alternating_pattern(self, pair):
        machine, sender_c, receiver_c = pair
        bits = [1, 0] * 6
        received = run_transfer(
            lambda s: machine.run(s, dt=1.0),
            CovertSender(sender_c),
            CovertReceiver(receiver_c),
            bits,
        )
        assert received == bits

    def test_transfer_survives_moderate_background_noise(self, pair):
        machine, sender_c, receiver_c = pair
        from repro.runtime.workload import constant

        # one noisy neighbour task: below the 4-core carrier's swing
        machine.kernel.spawn(
            "noise", workload=constant("noise", cpu_demand=0.8, ipc=1.5)
        )
        bits = [1, 1, 0, 1, 0, 0]
        received = run_transfer(
            lambda s: machine.run(s, dt=1.0),
            CovertSender(sender_c),
            CovertReceiver(receiver_c),
            bits,
        )
        errors = sum(a != b for a, b in zip(bits, received))
        assert errors <= 1  # near-lossless against one noisy core

    def test_masked_channel_breaks_the_covert_channel(self, pair):
        """Stage-1 masking of the carrier file kills the channel."""
        machine, sender_c, _ = pair
        engine = sender_c.engine
        blind = engine.create(
            name="blind", policy=MaskingPolicy().deny("/proc/loadavg")
        )
        receiver = CovertReceiver(blind)
        with pytest.raises(AttackError):
            receiver.sample()


class TestComponents:
    def test_bad_bits_rejected(self, pair):
        machine, sender_c, _ = pair
        sender = CovertSender(sender_c)
        with pytest.raises(AttackError):
            sender.transmit([2], lambda s: machine.run(s, dt=1.0))

    def test_demodulate_needs_enough_samples(self, pair):
        _, _, receiver_c = pair
        receiver = CovertReceiver(receiver_c)
        with pytest.raises(AttackError):
            receiver.demodulate(4)

    def test_flat_samples_decode_to_zeros(self, pair):
        _, _, receiver_c = pair
        receiver = CovertReceiver(receiver_c)
        receiver.samples = [5.0] * 16
        assert receiver.demodulate(4) == [0, 0, 0, 0]

    def test_loadavg_extractor(self):
        assert loadavg_extractor("0.52 0.30 0.10 3/123 4567\n") == 3.0
        with pytest.raises(AttackError):
            loadavg_extractor("garbage")

    def test_bandwidth_reporting(self):
        config = CovertConfig(symbol_period_s=2.0)
        assert config.bits_per_second == 0.5
