"""Tests for the co-residence toolkit."""

import pytest

from repro.coresidence.fingerprint import HostFingerprint, fingerprint_instance
from repro.coresidence.implant import ImplantVerifier
from repro.coresidence.orchestrator import CoResidenceOrchestrator
from repro.coresidence.trace import TraceCorrelator, memfree_extractor
from repro.coresidence.uptime import boot_proximity, read_uptime
from repro.errors import AttackError
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud


@pytest.fixture
def cloud():
    return ContainerCloud(PROVIDER_PROFILES["CC1"], seed=41, servers=4)


def two_coresident(cloud, tenant="t"):
    """Provider-side helper: two instances guaranteed on one host."""
    first = cloud.launch_instance(tenant)
    while True:
        second = cloud.launch_instance(tenant)
        if second.host_index == first.host_index:
            return first, second
        cloud.terminate_instance(second)


def two_separated(cloud, tenant="t"):
    first = cloud.launch_instance(tenant)
    while True:
        second = cloud.launch_instance(tenant)
        if second.host_index != first.host_index:
            return first, second
        cloud.terminate_instance(second)


class TestFingerprint:
    def test_coresident_fingerprints_match(self, cloud):
        a, b = two_coresident(cloud)
        assert fingerprint_instance(a).matches(fingerprint_instance(b))

    def test_separated_fingerprints_differ(self, cloud):
        a, b = two_separated(cloud)
        assert not fingerprint_instance(a).matches(fingerprint_instance(b))

    def test_empty_fingerprints_never_match(self):
        empty = HostFingerprint(boot_id=None, interface_list=None)
        assert not empty.matches(empty)
        assert empty.empty

    def test_fingerprint_survives_partial_masking(self, cloud):
        """With ifpriomap masked, boot_id alone still fingerprints."""
        a, b = two_coresident(cloud)
        fp_a = fingerprint_instance(a)
        masked = HostFingerprint(boot_id=fp_a.boot_id, interface_list=None)
        assert masked.matches(fingerprint_instance(b))


class TestImplant:
    @pytest.mark.parametrize("channel", ["timer_list", "locks", "sched_debug"])
    def test_implant_found_by_coresident(self, channel):
        # CC3 leaves all three channels open
        cloud = ContainerCloud(PROVIDER_PROFILES["CC3"], seed=42, servers=4)
        a, b = two_coresident(cloud)
        verifier = ImplantVerifier(channel)
        implant = verifier.plant(a.container)
        cloud.run(1.0)
        assert verifier.probe(b, implant)

    @pytest.mark.parametrize("channel", ["timer_list", "locks", "sched_debug"])
    def test_implant_not_found_across_hosts(self, channel):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC3"], seed=43, servers=4)
        a, b = two_separated(cloud)
        verifier = ImplantVerifier(channel)
        implant = verifier.plant(a.container)
        cloud.run(1.0)
        assert not verifier.probe(b, implant)

    def test_unknown_channel_rejected(self):
        with pytest.raises(AttackError):
            ImplantVerifier("meminfo")

    def test_probe_handles_masked_channel(self, cloud):
        """On CC1 sched_debug is denied: probe returns False, not an error."""
        a, b = two_coresident(cloud)
        verifier = ImplantVerifier("sched_debug")
        implant = verifier.plant(a.container)
        assert not verifier.probe(b, implant)

    def test_signatures_unique_per_plant(self, cloud):
        a, _ = two_coresident(cloud)
        verifier = ImplantVerifier("timer_list")
        s1 = verifier.plant(a.container).signature
        s2 = verifier.plant(a.container).signature
        assert s1 != s2


class TestTraceCorrelation:
    def test_coresident_traces_match(self, cloud):
        a, b = two_coresident(cloud)
        correlator = TraceCorrelator(samples=20)
        assert correlator.verify(cloud, a, b)

    def test_separated_traces_do_not_match(self, cloud):
        a, b = two_separated(cloud)
        correlator = TraceCorrelator(samples=20)
        # independent hosts' MemFree movements are uncorrelated
        trace_a, trace_b = correlator.collect(cloud, a, b)
        assert correlator.score(trace_a, trace_b) < 0.9

    def test_memfree_extractor(self):
        assert memfree_extractor("MemTotal: 10 kB\nMemFree:    1234 kB\n") == 1234.0
        with pytest.raises(AttackError):
            memfree_extractor("nothing here")

    def test_masked_channel_raises(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC5"], seed=44, servers=2)
        a = cloud.launch_instance("t")
        b = cloud.launch_instance("t")
        correlator = TraceCorrelator(path="/proc/uptime", samples=5)
        with pytest.raises(AttackError):
            correlator.collect(cloud, a, b)

    def test_sample_count_validated(self):
        with pytest.raises(AttackError):
            TraceCorrelator(samples=2)


class TestUptime:
    def test_coresident_same_host(self, cloud):
        a, b = two_coresident(cloud)
        assert read_uptime(a).same_host(read_uptime(b))

    def test_separated_different_host(self, cloud):
        a, b = two_separated(cloud)
        assert not read_uptime(a).same_host(read_uptime(b))

    def test_boot_proximity_same_window(self, cloud):
        """Cloud servers boot within one maintenance window (<=120 s skew),
        so distinct servers show proximity — the rack-adjacency signal."""
        a, b = two_separated(cloud)
        assert boot_proximity(read_uptime(a), read_uptime(b), window_s=300.0)

    def test_boot_proximity_rejects_same_host(self, cloud):
        a, b = two_coresident(cloud)
        assert not boot_proximity(read_uptime(a), read_uptime(b))


class TestOrchestrator:
    def test_aggregation_reaches_target(self, cloud):
        result = CoResidenceOrchestrator(cloud, tenant="attacker").aggregate(
            target=3, max_launches=100
        )
        assert result.achieved == 3
        hosts = {i.host_index for i in result.instances}
        assert len(hosts) == 1  # ground truth: truly co-resident
        assert result.launches == result.terminations + 3

    def test_budget_exhaustion_raises(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=45, servers=8)
        orchestrator = CoResidenceOrchestrator(cloud, tenant="attacker")
        with pytest.raises(AttackError):
            orchestrator.aggregate(target=4, max_launches=3)

    def test_target_validation(self, cloud):
        with pytest.raises(AttackError):
            CoResidenceOrchestrator(cloud).aggregate(target=1)

    def test_custom_verifier_used(self, cloud):
        calls = []

        def never(cloud_, pivot, candidate):
            calls.append(candidate)
            return False

        orchestrator = CoResidenceOrchestrator(cloud, verifier=never)
        with pytest.raises(AttackError):
            orchestrator.aggregate(target=2, max_launches=5)
        assert len(calls) == 4  # every candidate went through the verifier
