"""Accuracy-regression harness for the tick-coalescing fast-forward engine.

The same :class:`DatacenterSimulation` seed is advanced twice over the
same window — once at the per-second reference ``dt``, once with
``coalesce=True`` — and the wall-power traces must agree sample for
sample. The safety invariants (see :mod:`repro.sim.fastforward`) make
every subsystem update linear in ``dt`` inside a coalesced window, so
agreement should be at float-associativity level; the statistics bound
here is the 1% acceptance criterion, with a much tighter per-sample
check to catch drift long before it reaches 1%.
"""

import pytest

from repro.datacenter.simulation import DatacenterSimulation

WINDOW_S = 7200.0
SAMPLE_S = 30.0


def _run(coalesce: bool) -> DatacenterSimulation:
    sim = DatacenterSimulation(servers=2, seed=7, sample_interval_s=SAMPLE_S)
    sim.run(WINDOW_S, dt=1.0, coalesce=coalesce)
    return sim


@pytest.fixture(scope="module")
def reference() -> DatacenterSimulation:
    return _run(False)


@pytest.fixture(scope="module")
def coalesced() -> DatacenterSimulation:
    return _run(True)


class TestTraceAgreement:
    def test_sample_grids_identical(self, reference, coalesced):
        assert coalesced.aggregate_trace.times == reference.aggregate_trace.times
        # both include the t=0 baseline and every 30 s multiple after it
        assert reference.aggregate_trace.times[0] == 0.0
        assert reference.aggregate_trace.times[-1] == WINDOW_S
        assert len(reference.aggregate_trace) == int(WINDOW_S / SAMPLE_S) + 1

    def test_per_sample_agreement(self, reference, coalesced):
        for ref_w, fast_w in zip(
            reference.aggregate_trace.watts, coalesced.aggregate_trace.watts
        ):
            assert fast_w == pytest.approx(ref_w, rel=1e-9)

    def test_per_server_traces_agree(self, reference, coalesced):
        for i in reference.server_traces:
            ref = reference.server_traces[i]
            fast = coalesced.server_traces[i]
            assert fast.times == ref.times
            for ref_w, fast_w in zip(ref.watts, fast.watts):
                assert fast_w == pytest.approx(ref_w, rel=1e-9)

    def test_figure2_statistics_within_one_percent(self, reference, coalesced):
        ref, fast = reference.aggregate_trace, coalesced.aggregate_trace
        assert fast.peak == pytest.approx(ref.peak, rel=0.01)
        assert fast.trough == pytest.approx(ref.trough, rel=0.01)
        assert fast.swing_fraction == pytest.approx(ref.swing_fraction, rel=0.01)


class TestTickEconomy:
    def test_reference_runs_per_second(self, reference):
        assert reference.metrics.ticks == int(WINDOW_S)
        assert reference.metrics.coalesced_ticks == 0
        assert reference.metrics.tick_reduction == pytest.approx(1.0)

    def test_coalescing_reduces_ticks_at_least_5x(self, coalesced):
        m = coalesced.metrics
        assert m.reference_ticks == pytest.approx(WINDOW_S)
        assert m.tick_reduction >= 5.0
        assert m.coalescing_fraction > 0.5

    def test_kernels_ticked_fewer_times(self, reference, coalesced):
        ref_ticks = reference.cloud.hosts[0].kernel.ticks_taken
        fast_ticks = coalesced.cloud.hosts[0].kernel.ticks_taken
        assert fast_ticks * 5 <= ref_ticks

    def test_same_virtual_time_reached(self, reference, coalesced):
        assert coalesced.now == pytest.approx(reference.now)
        assert coalesced.metrics.virtual_seconds == pytest.approx(WINDOW_S)
