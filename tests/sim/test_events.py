"""Tests for the discrete-event loop."""

import pytest

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock
from repro.sim.events import EventLoop


@pytest.fixture
def loop():
    return EventLoop(VirtualClock())


class TestEventLoop:
    def test_events_fire_in_time_order(self, loop):
        fired = []
        loop.schedule_at(5.0, lambda: fired.append("b"))
        loop.schedule_at(2.0, lambda: fired.append("a"))
        loop.schedule_at(9.0, lambda: fired.append("c"))
        count = loop.run_until(10.0)
        assert count == 3
        assert fired == ["a", "b", "c"]

    def test_ties_fire_in_scheduling_order(self, loop):
        fired = []
        loop.schedule_at(1.0, lambda: fired.append(1))
        loop.schedule_at(1.0, lambda: fired.append(2))
        loop.run_until(2.0)
        assert fired == [1, 2]

    def test_clock_lands_exactly_on_deadline(self, loop):
        loop.schedule_at(1.0, lambda: None)
        loop.run_until(7.5)
        assert loop.clock.now == 7.5

    def test_events_after_deadline_stay_queued(self, loop):
        fired = []
        loop.schedule_at(5.0, lambda: fired.append("late"))
        loop.run_until(3.0)
        assert fired == []
        assert loop.pending == 1
        loop.run_until(6.0)
        assert fired == ["late"]

    def test_schedule_in_is_relative(self, loop):
        loop.run_until(4.0)
        fired = []
        loop.schedule_in(2.0, lambda: fired.append(loop.clock.now))
        loop.run_until(10.0)
        assert fired == [6.0]

    def test_schedule_in_past_rejected(self, loop):
        with pytest.raises(SimulationError):
            loop.schedule_in(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self, loop):
        loop.run_until(5.0)
        with pytest.raises(SimulationError):
            loop.schedule_at(4.0, lambda: None)

    def test_run_until_past_rejected(self, loop):
        loop.run_until(5.0)
        with pytest.raises(SimulationError):
            loop.run_until(4.0)

    def test_cancelled_event_does_not_fire(self, loop):
        fired = []
        event = loop.schedule_at(1.0, lambda: fired.append("x"))
        event.cancel()
        loop.run_until(2.0)
        assert fired == []
        assert loop.pending == 0

    def test_repeating_event(self, loop):
        fired = []
        loop.schedule_every(1.0, lambda: fired.append(loop.clock.now))
        loop.run_until(5.5)
        assert fired == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_repeating_event_stops_on_stopiteration(self, loop):
        fired = []

        def action():
            fired.append(loop.clock.now)
            if len(fired) >= 3:
                raise StopIteration

        loop.schedule_every(1.0, action)
        loop.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]

    def test_repeating_with_first_delay(self, loop):
        fired = []
        loop.schedule_every(2.0, lambda: fired.append(loop.clock.now), first_delay=0.5)
        loop.run_until(5.0)
        assert fired == [0.5, 2.5, 4.5]

    def test_zero_interval_rejected(self, loop):
        with pytest.raises(SimulationError):
            loop.schedule_every(0.0, lambda: None)

    def test_event_scheduling_more_events(self, loop):
        fired = []

        def chain():
            fired.append(loop.clock.now)
            if loop.clock.now < 3.0:
                loop.schedule_in(1.0, chain)

        loop.schedule_at(1.0, chain)
        loop.run_until(10.0)
        assert fired == [1.0, 2.0, 3.0]
