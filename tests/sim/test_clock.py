"""Tests for the virtual clock."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import SimulationError
from repro.sim.clock import VirtualClock


class TestVirtualClock:
    def test_starts_at_zero_by_default(self):
        assert VirtualClock().now == 0.0

    def test_starts_at_given_time(self):
        assert VirtualClock(start=100.5).now == 100.5

    def test_negative_start_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock(start=-1.0)

    def test_advance_moves_forward(self):
        clock = VirtualClock()
        assert clock.advance(2.5) == 2.5
        assert clock.now == 2.5

    def test_advance_zero_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(0.0)

    def test_advance_negative_rejected(self):
        with pytest.raises(SimulationError):
            VirtualClock().advance(-0.1)

    def test_sleep_until_future(self):
        clock = VirtualClock(start=10.0)
        slept = clock.sleep_until(15.0)
        assert slept == 5.0
        assert clock.now == 15.0

    def test_sleep_until_now_is_noop(self):
        clock = VirtualClock(start=10.0)
        assert clock.sleep_until(10.0) == 0.0
        assert clock.now == 10.0

    def test_sleep_until_past_rejected(self):
        clock = VirtualClock(start=10.0)
        with pytest.raises(SimulationError):
            clock.sleep_until(9.0)

    @given(st.lists(st.floats(min_value=1e-6, max_value=1e6), min_size=1, max_size=50))
    def test_advance_accumulates(self, steps):
        clock = VirtualClock()
        total = 0.0
        for step in steps:
            total += step
            clock.advance(step)
        assert clock.now == pytest.approx(total)

    @given(
        st.floats(min_value=0, max_value=1e9),
        st.floats(min_value=0, max_value=1e6),
    )
    def test_monotonicity(self, start, dt):
        clock = VirtualClock(start=start)
        before = clock.now
        if dt > 0:
            clock.advance(dt)
        assert clock.now >= before
