"""Tests for the simulation instrumentation counters."""

import pytest

from repro.obs.registry import MetricRegistry
from repro.sim.metrics import IpcMetrics, SimMetrics, SubsystemTimings, WallTimer


class TestSimMetrics:
    def test_base_tick_accounting(self):
        m = SimMetrics()
        for _ in range(10):
            m.record_tick(1.0, 1.0)
        assert m.ticks == 10
        assert m.base_ticks == 10
        assert m.coalesced_ticks == 0
        assert m.virtual_seconds == pytest.approx(10.0)
        assert m.tick_reduction == pytest.approx(1.0)
        assert m.coalescing_fraction == 0.0

    def test_coalesced_tick_accounting(self):
        m = SimMetrics()
        m.record_tick(1.0, 1.0)
        m.record_tick(59.0, 1.0)
        assert m.ticks == 2
        assert m.base_ticks == 1
        assert m.coalesced_ticks == 1
        assert m.reference_ticks == pytest.approx(60.0)
        assert m.tick_reduction == pytest.approx(30.0)
        assert m.coalescing_fraction == pytest.approx(59.0 / 60.0)

    def test_fresh_metrics_report_neutral_reduction(self):
        assert SimMetrics().tick_reduction == 1.0
        assert SimMetrics().coalescing_fraction == 0.0

    def test_render_mentions_key_counters(self):
        m = SimMetrics()
        m.record_tick(30.0, 1.0)
        m.samples = 3
        text = m.render()
        assert "tick reduction" in text
        assert "30.0x" in text
        assert "samples recorded    3" in text

    def test_render_includes_subsystem_profile_when_enabled(self):
        m = SimMetrics()
        m.subsystem_timings = SubsystemTimings()
        m.subsystem_timings.add("scheduler", 0.5)
        assert "scheduler" in m.render()


class TestSubsystemTimings:
    def test_add_and_total(self):
        t = SubsystemTimings()
        t.add("scheduler", 0.2)
        t.add("scheduler", 0.3)
        t.add("power+rapl", 0.1)
        assert t.wall_s["scheduler"] == pytest.approx(0.5)
        assert t.total() == pytest.approx(0.6)

    def test_ranked_orders_by_cost(self):
        t = SubsystemTimings()
        t.add("cheap", 0.01)
        t.add("hot", 1.0)
        assert [name for name, _ in t.ranked()] == ["hot", "cheap"]

    def test_render_empty_and_nonempty(self):
        t = SubsystemTimings()
        assert "no subsystem timings" in t.render()
        t.add("scheduler", 0.75)
        assert "scheduler" in t.render()
        assert "100.0%" in t.render()


class TestIpcMetrics:
    def test_bytes_per_tick_zero_ticks_reports_zero(self):
        # metrics queried before the first barrier must not divide by 0
        ipc = IpcMetrics(control_bytes_sent=100, shm_row_bytes=50)
        assert ipc.bytes_per_tick(0) == 0.0
        assert ipc.bytes_per_tick(-3) == 0.0
        assert ipc.bytes_per_tick(10) == pytest.approx(15.0)

    def test_record_frame_and_totals(self):
        ipc = IpcMetrics(workers=2)
        ipc.record_frame(10, 20)
        ipc.record_frame(5, 5)
        assert ipc.control_frames == 2
        assert ipc.control_bytes == 40
        ipc.shm_observer_bytes += 8
        assert ipc.shm_bytes == 8

    def test_barrier_wait_per_shard(self):
        ipc = IpcMetrics()
        ipc.record_barrier_wait(0, 0.25)
        ipc.record_barrier_wait(1, 0.5)
        ipc.record_barrier_wait(0, 0.25)
        assert ipc.barrier_wait_s == {0: pytest.approx(0.5), 1: pytest.approx(0.5)}
        assert ipc.barrier_wait_total_s == pytest.approx(1.0)

    def test_render_with_no_traffic(self):
        text = IpcMetrics().render()
        assert "control frames      0" in text
        assert "0 shard(s)" in text

    def test_instruments_live_in_shared_registry(self):
        registry = MetricRegistry()
        ipc = IpcMetrics(workers=3, registry=registry)
        ipc.record_frame(7, 9)
        assert registry.get("ipc.control_frames").value == 1
        assert registry.get("ipc.workers").value == 3


class TestFacadeRegistry:
    def test_sim_metrics_counters_appear_in_registry(self):
        m = SimMetrics()
        m.record_tick(30.0, 1.0)
        m.samples = 5
        assert m.registry.get("sim.ticks").value == 1
        assert m.registry.get("sim.samples").value == 5
        hist = m.registry.get("sim.step_s")
        assert hist.count == 1
        assert hist.sum == pytest.approx(30.0)

    def test_settable_properties_round_trip(self):
        m = SimMetrics()
        m.wall_seconds = 1.5
        m.wall_seconds += 0.5
        assert m.wall_seconds == pytest.approx(2.0)
        assert m.registry.get("sim.wall_seconds").value == pytest.approx(2.0)

    def test_subsystem_timings_share_registry(self):
        m = SimMetrics()
        m.subsystem_timings = SubsystemTimings(registry=m.registry)
        m.subsystem_timings.add("scheduler", 0.25)
        counter = m.registry.get("subsystem.wall_s", subsystem="scheduler")
        assert counter.value == pytest.approx(0.25)

    def test_empty_registry_render_placeholder(self):
        assert "no instruments" in MetricRegistry().render()


class TestSubsystemTimingsEdgeCases:
    def test_empty_render_placeholder(self):
        assert SubsystemTimings().render() == "(no subsystem timings recorded)"

    def test_all_zero_profile_renders_placeholder(self):
        # registered-but-zero subsystems must not divide by a zero total
        t = SubsystemTimings()
        t.add("scheduler", 0.0)
        t.add("thermal", 0.0)
        assert t.render() == "(no subsystem timings recorded)"
        assert t.total() == 0.0


class TestWallTimer:
    def test_timer_accumulates_elapsed_wall_time(self):
        m = SimMetrics()
        with WallTimer(m):
            pass
        first = m.wall_seconds
        assert first >= 0.0
        with WallTimer(m):
            sum(range(1000))
        assert m.wall_seconds >= first
