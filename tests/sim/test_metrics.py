"""Tests for the simulation instrumentation counters."""

import pytest

from repro.sim.metrics import SimMetrics, SubsystemTimings, WallTimer


class TestSimMetrics:
    def test_base_tick_accounting(self):
        m = SimMetrics()
        for _ in range(10):
            m.record_tick(1.0, 1.0)
        assert m.ticks == 10
        assert m.base_ticks == 10
        assert m.coalesced_ticks == 0
        assert m.virtual_seconds == pytest.approx(10.0)
        assert m.tick_reduction == pytest.approx(1.0)
        assert m.coalescing_fraction == 0.0

    def test_coalesced_tick_accounting(self):
        m = SimMetrics()
        m.record_tick(1.0, 1.0)
        m.record_tick(59.0, 1.0)
        assert m.ticks == 2
        assert m.base_ticks == 1
        assert m.coalesced_ticks == 1
        assert m.reference_ticks == pytest.approx(60.0)
        assert m.tick_reduction == pytest.approx(30.0)
        assert m.coalescing_fraction == pytest.approx(59.0 / 60.0)

    def test_fresh_metrics_report_neutral_reduction(self):
        assert SimMetrics().tick_reduction == 1.0
        assert SimMetrics().coalescing_fraction == 0.0

    def test_render_mentions_key_counters(self):
        m = SimMetrics()
        m.record_tick(30.0, 1.0)
        m.samples = 3
        text = m.render()
        assert "tick reduction" in text
        assert "30.0x" in text
        assert "samples recorded    3" in text

    def test_render_includes_subsystem_profile_when_enabled(self):
        m = SimMetrics()
        m.subsystem_timings = SubsystemTimings()
        m.subsystem_timings.add("scheduler", 0.5)
        assert "scheduler" in m.render()


class TestSubsystemTimings:
    def test_add_and_total(self):
        t = SubsystemTimings()
        t.add("scheduler", 0.2)
        t.add("scheduler", 0.3)
        t.add("power+rapl", 0.1)
        assert t.wall_s["scheduler"] == pytest.approx(0.5)
        assert t.total() == pytest.approx(0.6)

    def test_ranked_orders_by_cost(self):
        t = SubsystemTimings()
        t.add("cheap", 0.01)
        t.add("hot", 1.0)
        assert [name for name, _ in t.ranked()] == ["hot", "cheap"]

    def test_render_empty_and_nonempty(self):
        t = SubsystemTimings()
        assert "no subsystem timings" in t.render()
        t.add("scheduler", 0.75)
        assert "scheduler" in t.render()
        assert "100.0%" in t.render()


class TestWallTimer:
    def test_timer_accumulates_elapsed_wall_time(self):
        m = SimMetrics()
        with WallTimer(m):
            pass
        first = m.wall_seconds
        assert first >= 0.0
        with WallTimer(m):
            sum(range(1000))
        assert m.wall_seconds >= first
