"""Shared-memory control plane: slot protocol, epoch batching, recovery.

Four contracts from ``docs/parallel.md``:

1. **Slot protocol** — the three steady-state frame shapes round-trip
   through the request/reply slots exactly (NaN hint encoding, bare
   commit/step fusing into one-tick epochs), and everything else refuses
   the slots (``post`` returns ``None``) so it ships pickled instead.
2. **Golden equivalence** — ``--control-plane shm`` is bit-identical to
   ``--control-plane pipe`` and to the serial driver, chaos included.
3. **Epoch batching** — steady state under shm posts *zero* pickled
   control frames, and batched epochs cut the barrier round-trip count
   well below one-per-tick.
4. **Recovery** — a worker killed under batched epochs is respawned and
   replayed (epoch frames included) bit-identically, and a checkpoint
   manifest pins the control-plane configuration across resumes.
"""

import os

import pytest

from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import SimulationError
from repro.sim import telemetry
from repro.sim.controlplane import ControlPlane
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule
from repro.sim.telemetry import TelemetryPlane

SEED = 7


def build(interval=1.0, servers=8, rack_size=4, schedule=None):
    sim = DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=SEED,
        sample_interval_s=interval,
    )
    if schedule is not None:
        sim.install_faults(schedule)
    return sim


def snapshot(sim):
    return {
        "agg": (
            tuple(sim.aggregate_trace.times),
            tuple(sim.aggregate_trace.watts),
            tuple(sim.aggregate_trace.gaps),
        ),
        "servers": {
            i: (tuple(t.times), tuple(t.watts), tuple(t.gaps))
            for i, t in sim.server_traces.items()
        },
        "ticks": sim.metrics.ticks,
        "samples": sim.metrics.samples,
        "now": sim.now,
        "faults": sim.fault_report(),
        "tripped": sim.any_breaker_tripped(),
        "trip_log": sim.trip_log(),
    }


def chaos_schedule():
    return FaultSchedule(
        [
            FaultEvent(at=30.0, kind=FaultKind.MACHINE_CRASH,
                       duration_s=120.0, server=3),
            FaultEvent(at=45.0, kind=FaultKind.BREAKER_TRIP,
                       duration_s=180.0, server=1),
            FaultEvent(at=60.0, kind=FaultKind.CLOCK_JITTER,
                       duration_s=240.0, magnitude=0.2),
            FaultEvent(at=90.0, kind=FaultKind.OOM_KILL, server=5),
            FaultEvent(at=120.0, kind=FaultKind.RAPL_DROP,
                       duration_s=60.0, server=0),
        ],
        seed=13,
    )


# ---------------------------------------------------------------------------
# slot protocol


class TestSlotProtocol:
    def make(self, host_counts=(3, 2), epoch_ticks=4):
        return ControlPlane.create(host_counts, epoch_ticks)

    def test_plan_round_trip(self):
        plane = self.make()
        try:
            posted = plane.post(1, ("plan", 2.5))
            assert posted is not None
            seq, nbytes = posted
            assert seq == 1 and nbytes > 0
            assert plane.req_seq(1) == 1
            assert plane.req_seq(0) == 0  # other shard untouched
            assert plane.read_request(1) == ("plan", 2.5)
            result = ((7, 8), (9,), (0.5, 0.25), True, 123.0)
            plane.write_reply(1, seq, "plan", result, wait_s=1e-4)
            assert plane.rsp_seq(1) == seq
            assert plane.reply_status(1) == ControlPlane.OK
            assert plane.reply_wait_s(1) == pytest.approx(1e-4)
            decoded, received = plane.read_reply(1, "plan")
            assert decoded == result
            assert received > 0
        finally:
            plane.unlink()

    def test_epoch_round_trip_restores_none_hints(self):
        plane = self.make()
        try:
            ticks = ((None, 1.0, 2, True), (3.5, 1.0, 3, False))
            seq, _ = plane.post(0, ("epoch", ticks))
            assert plane.read_request(0) == ("epoch", ticks)
            plane.write_reply(0, seq, "epoch", True, wait_s=0.0)
            changed, received = plane.read_reply(0, "epoch")
            assert changed is True
            assert received == 4 * 8
        finally:
            plane.unlink()

    def test_bare_commit_and_step_fuse_into_one_tick_epochs(self):
        plane = self.make()
        try:
            # commit has no plan half: hint None
            plane.post(0, ("commit", 1.0, 1, True, ()))
            assert plane.read_request(0) == ("epoch", ((None, 1.0, 1, True),))
            # step fuses plan+commit: hint == step
            plane.post(0, ("step", 2.0, 0, False, ()))
            assert plane.read_request(0) == ("epoch", ((2.0, 2.0, 0, False),))
        finally:
            plane.unlink()

    def test_begin_round_trip(self):
        plane = self.make()
        try:
            seq, _ = plane.post(1, ("begin", 1, True, ()))
            assert plane.read_request(1) == ("begin", 1, True, ())
            plane.write_reply(1, seq, "begin", False, wait_s=0.0)
            changed, _ = plane.read_reply(1, "begin")
            assert changed is False
        finally:
            plane.unlink()

    def test_slow_path_refusals_leave_doorbell_alone(self):
        plane = self.make(epoch_ticks=2)
        try:
            too_long = tuple((None, 1.0, 0, False) for _ in range(3))
            assert plane.post(0, ("epoch", too_long)) is None  # oversized
            assert plane.post(0, ("begin", 0, False, (("op",),))) is None
            assert plane.post(0, ("commit", 1.0, 0, False, (5,))) is None
            assert plane.post(0, ("step", 1.0, 0, False, (5,))) is None
            assert plane.post(0, ("state",)) is None
            assert plane.post(0, ("checkpoint", 1, "/tmp")) is None
            # a refused frame must not ring the doorbell: the pipe carries
            # it, and a phantom seq bump would wedge the worker poll loop
            assert plane.req_seq(0) == 0
        finally:
            plane.unlink()

    def test_non_ok_status_rides_the_slots(self):
        plane = self.make()
        try:
            seq, _ = plane.post(0, ("plan", 1.0))
            plane.write_status(0, seq, ControlPlane.PAYLOAD_PIPE, wait_s=0.5)
            assert plane.rsp_seq(0) == seq
            assert plane.reply_status(0) == ControlPlane.PAYLOAD_PIPE
            assert plane.reply_wait_s(0) == pytest.approx(0.5)
            plane.write_status(0, seq + 1, ControlPlane.ERROR, wait_s=0.0)
            assert plane.reply_status(0) == ControlPlane.ERROR
        finally:
            plane.unlink()

    def test_attach_shares_the_segment(self):
        owner = self.make()
        peer = None
        try:
            peer = ControlPlane.attach(
                owner.name, owner.host_counts, owner.epoch_ticks
            )
            seq, _ = owner.post(0, ("plan", 9.25))
            assert peer.req_seq(0) == seq
            assert peer.read_request(0) == ("plan", 9.25)
            peer.write_reply(
                0, seq, "plan", ((), (), (1.0, 2.0, 3.0), True, 42.0),
                wait_s=0.0,
            )
            decoded, _ = owner.read_reply(0, "plan")
            assert decoded == ((), (), (1.0, 2.0, 3.0), True, 42.0)
        finally:
            if peer is not None:
                peer.close()
            owner.unlink()

    def test_create_validation(self):
        with pytest.raises(SimulationError, match="host"):
            ControlPlane.create((), 4)
        with pytest.raises(SimulationError, match="host"):
            ControlPlane.create((2, 0), 4)
        with pytest.raises(SimulationError, match="epoch_ticks"):
            ControlPlane.create((2,), 0)

    def test_segment_named_for_stale_sweep(self):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        # control segments use the telemetry naming scheme, so a dead
        # driver's control segment is reclaimed by the same sweep that
        # engine startup runs (ControlPlane.create sweeps too)
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        stale = f"{telemetry.SEGMENT_PREFIX}-{pid}-c0ffee00"
        with open(os.path.join("/dev/shm", stale), "wb") as fh:
            fh.write(b"\0" * 64)
        plane = ControlPlane.create((2,), 4)
        try:
            assert telemetry._segment_owner_pid(plane.name) == os.getpid()
            assert not os.path.exists(os.path.join("/dev/shm", stale))
        finally:
            plane.unlink()


class TestBankFlip:
    def test_epoch_banks_do_not_overwrite_each_other(self):
        # batched epochs need epoch_ticks + 1 banks: every tick of an
        # epoch lands in its own bank, folded only after the one reply
        plane = TelemetryPlane.create(2, 1, banks=5)
        try:
            for bank in range(5):
                plane.write_wall(bank, 0, 100.0 + bank)
                plane.write_wall(bank, 1, None if bank == 2 else 200.0 + bank)
                plane.write_observer(bank, 0, 300.0 + bank)
            for bank in range(5):
                assert plane.read_wall(bank, 0) == 100.0 + bank
                if bank == 2:
                    assert plane.read_wall(bank, 1) is None
                else:
                    assert plane.read_wall(bank, 1) == 200.0 + bank
                assert plane.read_observer(bank, 0) == 300.0 + bank
        finally:
            plane.unlink()

    def test_bank_out_of_range_rejected(self):
        plane = TelemetryPlane.create(2, 0, banks=3)
        try:
            plane.write_wall(2, 0, 1.0)
            with pytest.raises(SimulationError, match="bank"):
                plane.write_wall(3, 0, 1.0)
        finally:
            plane.unlink()

    def test_engine_sizes_banks_for_epochs(self):
        shm = build(servers=4, rack_size=2)
        pipe = build(servers=4, rack_size=2)
        try:
            shm.run(10.0, parallel=2)
            pipe.run(10.0, parallel=2, control_plane="pipe")
            assert shm._parallel.plane.banks == shm._parallel._epoch_ticks + 1
            assert pipe._parallel.plane.banks == telemetry.BANKS
        finally:
            shm.close()
            pipe.close()


# ---------------------------------------------------------------------------
# golden equivalence


class TestShmGoldenTrace:
    def run_three(self, seconds, *, coalesce, interval=1.0, chaos=False,
                  dt=1.0):
        sims = []
        snaps = []
        try:
            for plane in (None, "pipe", "shm"):
                sim = build(
                    interval,
                    schedule=chaos_schedule() if chaos else None,
                )
                sims.append(sim)
                if plane is None:
                    sim.run(seconds, dt=dt, coalesce=coalesce)
                else:
                    sim.run(seconds, dt=dt, coalesce=coalesce, parallel=2,
                            control_plane=plane)
                snaps.append(snapshot(sim))
        finally:
            for sim in sims:
                sim.close()
        return snaps

    def test_base_ticks_bit_identical(self):
        serial, pipe, shm = self.run_three(120.0, coalesce=False)
        assert serial == pipe == shm

    def test_coalesced_chaos_bit_identical(self):
        serial, pipe, shm = self.run_three(
            900.0, coalesce=True, interval=30.0, chaos=True
        )
        assert serial == pipe == shm
        assert serial["faults"]["injected:machine-crash"] == 1
        assert serial["faults"]["samples-jittered"] > 0

    def test_chaos_base_ticks_bit_identical(self):
        serial, pipe, shm = self.run_three(420.0, coalesce=False, chaos=True)
        assert serial == pipe == shm
        assert serial["trip_log"] == shm["trip_log"]

    def test_invalid_mode_rejected(self):
        sim = build(servers=4, rack_size=2)
        with pytest.raises(SimulationError, match="control"):
            sim.run(10.0, parallel=2, control_plane="quantum")


# ---------------------------------------------------------------------------
# epoch batching


class TestEpochBatching:
    def test_steady_state_posts_zero_pipe_frames(self):
        sim = build(servers=4, rack_size=2)
        try:
            sim.run(120.0, parallel=2)
            ipc = sim.metrics.ipc
            # begin + every barrier of the run rode the slots
            assert ipc.pipe_control_frames == 0
            assert ipc.shm_control_frames > 0
            assert ipc.shm_control_bytes > 0
            # ...and the rare-path verbs still use the pipe
            sim.server_wall_watts(0)
            assert ipc.pipe_control_frames > 0
        finally:
            sim.close()

    def test_epochs_batch_barrier_round_trips(self):
        shm = build(servers=4, rack_size=2)
        pipe = build(servers=4, rack_size=2)
        try:
            shm.run(120.0, parallel=2)
            pipe.run(120.0, parallel=2, control_plane="pipe")
            shm_trips = (
                shm.metrics.ipc.shm_control_frames
                + shm.metrics.ipc.pipe_control_frames
            )
            pipe_trips = pipe.metrics.ipc.control_frames
            # 8-tick epochs: ~one barrier per 8 ticks instead of per tick
            assert shm_trips * 4 <= pipe_trips
            assert shm.metrics.ipc.shm_control_frames > 0
            assert pipe.metrics.ipc.shm_control_frames == 0
        finally:
            shm.close()
            pipe.close()

    def test_epoch_spans_carry_tick_counts(self):
        sim = build(servers=4, rack_size=2)
        sim.enable_tracing()
        try:
            sim.run(60.0, parallel=2)
            epochs = [
                dict(e.attrs) for e in sim.tracer.timeline()
                if e.name == "barrier.epoch"
            ]
            assert epochs
            assert any(attrs.get("ticks", 0) > 1 for attrs in epochs)
            assert all(attrs["shards"] == 2 for attrs in epochs)
        finally:
            sim.close()

    def test_pipe_mode_never_batches(self):
        sim = build(servers=4, rack_size=2)
        try:
            sim.enable_tracing()
            sim.run(60.0, parallel=2, control_plane="pipe")
            names = {e.name for e in sim.tracer.timeline()}
            assert "barrier.epoch" not in names
            assert sim._parallel._epoch_ticks == 1
        finally:
            sim.close()

    def test_barrier_latency_metrics_populated(self):
        sim = build(servers=4, rack_size=2)
        try:
            sim.run(120.0, parallel=2)
            ipc = sim.metrics.ipc
            assert ipc.round_trip_p50 > 0.0
            assert ipc.barrier_wait_skew >= 1.0
            rendered = sim.metrics.render()
            assert "shm control" in rendered
            assert "barrier p50/tick" in rendered
        finally:
            sim.close()


# ---------------------------------------------------------------------------
# recovery under batched epochs


@pytest.mark.chaos
class TestKillMidEpoch:
    def test_respawn_and_replay_bit_identical(self):
        golden = build(interval=30.0, servers=4, rack_size=2)
        golden.run(600, parallel=2, coalesce=True)
        golden_snap = snapshot(golden)
        golden.close()
        sim = build(interval=30.0, servers=4, rack_size=2)
        sim.enable_resilience(max_restarts=2)
        sim.run(300, parallel=2, coalesce=True)
        assert sim.metrics.ipc.shm_control_frames > 0  # epochs in the log
        sim._parallel.debug_crash_worker(1)
        sim.run(300, parallel=2, coalesce=True)
        sim_snap = snapshot(sim)
        sim.close()
        assert golden_snap == sim_snap
        metrics = sim._parallel.res_metrics
        assert metrics.restarts == 1
        # the replay walked the logical frame log (epoch frames included)
        # back through the pipe into the respawned worker
        assert metrics.replayed_frames > 0
        assert metrics.replayed_ticks > 0

    def test_kill_with_chaos_schedule_bit_identical(self):
        golden = build(interval=30.0, schedule=chaos_schedule())
        golden.run(900, parallel=2, coalesce=True)
        golden_snap = snapshot(golden)
        golden.close()
        sim = build(interval=30.0, schedule=chaos_schedule())
        sim.enable_resilience(max_restarts=2)
        sim.run(450, parallel=2, coalesce=True)
        sim._parallel.debug_crash_worker(0)
        sim.run(450, parallel=2, coalesce=True)
        sim_snap = snapshot(sim)
        sim.close()
        assert golden_snap == sim_snap
        assert sim._parallel.res_metrics.restarts == 1


class TestManifestPinsControlPlane:
    def test_resume_with_different_plane_rejected(self, tmp_path):
        part = build(interval=30.0, servers=4, rack_size=2)
        part.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        part.run(300, parallel=2, coalesce=True)
        part.close()
        res = build(interval=30.0, servers=4, rack_size=2)
        res.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        with pytest.raises(SimulationError, match="control-plane"):
            res.run(300, parallel=2, coalesce=True, resume=True,
                    control_plane="pipe")

    def test_resume_same_plane_accepted(self, tmp_path):
        golden = build(interval=30.0, servers=4, rack_size=2)
        golden.run(600, parallel=2, coalesce=True)
        golden_snap = snapshot(golden)
        golden.close()
        part = build(interval=30.0, servers=4, rack_size=2)
        part.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        part.run(300, parallel=2, coalesce=True)
        part.close()
        res = build(interval=30.0, servers=4, rack_size=2)
        res.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        res.run(300, parallel=2, coalesce=True, resume=True)
        res.run(300, parallel=2, coalesce=True)
        res_snap = snapshot(res)
        res.close()
        assert golden_snap == res_snap
