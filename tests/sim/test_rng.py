"""Tests for deterministic randomness."""

from hypothesis import given, strategies as st

from repro.sim.rng import DeterministicRNG


class TestDeterministicRNG:
    def test_same_seed_same_stream(self):
        a = DeterministicRNG(seed=42)
        b = DeterministicRNG(seed=42)
        assert [a.stream("x").random() for _ in range(10)] == [
            b.stream("x").random() for _ in range(10)
        ]

    def test_different_names_different_streams(self):
        rng = DeterministicRNG(seed=42)
        xs = [rng.stream("x").random() for _ in range(10)]
        ys = [rng.stream("y").random() for _ in range(10)]
        assert xs != ys

    def test_different_seeds_different_streams(self):
        a = DeterministicRNG(seed=1)
        b = DeterministicRNG(seed=2)
        assert a.stream("x").random() != b.stream("x").random()

    def test_stream_is_cached(self):
        rng = DeterministicRNG(seed=0)
        assert rng.stream("x") is rng.stream("x")

    def test_new_consumer_does_not_perturb_existing(self):
        """Adding a named stream must not change another stream's draws."""
        a = DeterministicRNG(seed=7)
        first = a.stream("stable").random()

        b = DeterministicRNG(seed=7)
        b.stream("newcomer").random()  # interleaved consumer
        second = b.stream("stable").random()
        assert first == second

    def test_fork_is_deterministic(self):
        a = DeterministicRNG(seed=5).fork("server-1")
        b = DeterministicRNG(seed=5).fork("server-1")
        assert a.stream("x").random() == b.stream("x").random()

    def test_fork_differs_from_parent(self):
        parent = DeterministicRNG(seed=5)
        child = parent.fork("server-1")
        assert parent.stream("x").random() != child.stream("x").random()

    def test_hex_token_shape(self):
        token = DeterministicRNG(seed=1).hex_token("boot", nbytes=16)
        assert len(token) == 32
        int(token, 16)  # must be valid hex

    @given(st.integers(min_value=0, max_value=2**32))
    def test_uniform_in_range(self, seed):
        value = DeterministicRNG(seed=seed).uniform("u", 3.0, 7.0)
        assert 3.0 <= value <= 7.0

    def test_gauss_reproducible(self):
        a = DeterministicRNG(seed=3).gauss("g", 0.0, 1.0)
        b = DeterministicRNG(seed=3).gauss("g", 0.0, 1.0)
        assert a == b
