"""Golden-trace equivalence: the parallel driver must be bit-identical
to the serial driver on equal seeds — same trace timestamps, same watts,
same gaps, same tick counts, same fault counters, same trip log. No
tolerance: float-for-float equality is the contract (`docs/parallel.md`).
"""

import pytest

from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import CloudError, SimulationError
from repro.sim.fastforward import DriverHorizon
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule

SEED = 7


def build(interval=1.0, servers=8, rack_size=4, schedule=None):
    sim = DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=SEED,
        sample_interval_s=interval,
    )
    if schedule is not None:
        sim.install_faults(schedule)
    return sim


def snapshot(sim):
    """Everything the golden-trace contract covers, as plain tuples."""
    return {
        "agg": (
            tuple(sim.aggregate_trace.times),
            tuple(sim.aggregate_trace.watts),
            tuple(sim.aggregate_trace.gaps),
        ),
        "servers": {
            i: (tuple(t.times), tuple(t.watts), tuple(t.gaps))
            for i, t in sim.server_traces.items()
        },
        "ticks": sim.metrics.ticks,
        "samples": sim.metrics.samples,
        "now": sim.now,
        "faults": sim.fault_report(),
        "tripped": sim.any_breaker_tripped(),
        "trip_log": sim.trip_log(),
    }


def chaos_schedule():
    """One fault of every trace-visible family, early and overlapping."""
    return FaultSchedule(
        [
            FaultEvent(at=30.0, kind=FaultKind.MACHINE_CRASH,
                       duration_s=120.0, server=3),
            FaultEvent(at=45.0, kind=FaultKind.BREAKER_TRIP,
                       duration_s=180.0, server=1),
            FaultEvent(at=60.0, kind=FaultKind.CLOCK_JITTER,
                       duration_s=240.0, magnitude=0.2),
            FaultEvent(at=90.0, kind=FaultKind.OOM_KILL, server=5),
            FaultEvent(at=120.0, kind=FaultKind.RAPL_DROP,
                       duration_s=60.0, server=0),
        ],
        seed=13,
    )


def run_pair(seconds, *, coalesce, interval=1.0, schedule=None, workers=2,
             servers=8, rack_size=4, dt=1.0):
    serial = build(interval, servers, rack_size,
                   schedule=None if schedule is None else chaos_schedule())
    serial.run(seconds, dt=dt, coalesce=coalesce)
    par = build(interval, servers, rack_size,
                schedule=None if schedule is None else chaos_schedule())
    par.run(seconds, dt=dt, coalesce=coalesce, parallel=workers)
    try:
        yield_pair = snapshot(serial), snapshot(par)
    finally:
        par.close()
    return yield_pair


class TestGoldenTrace:
    def test_base_ticks_bit_identical(self):
        serial, par = run_pair(90.0, coalesce=False)
        assert serial == par

    def test_coalesced_bit_identical(self):
        serial, par = run_pair(3600.0, coalesce=True, interval=30.0)
        assert serial == par

    def test_faults_base_ticks_bit_identical(self):
        serial, par = run_pair(420.0, coalesce=False, schedule="chaos")
        assert serial == par
        # the schedule actually exercised the interesting paths
        assert serial["faults"]["injected:machine-crash"] == 1
        assert serial["faults"]["trace-gap-samples"] > 0
        assert serial["tripped"] or serial["faults"]["breaker-recloses"] == 1
        assert serial["trip_log"] == par["trip_log"]

    def test_faults_coalesced_bit_identical(self):
        serial, par = run_pair(
            900.0, coalesce=True, interval=30.0, schedule="chaos"
        )
        assert serial == par
        assert serial["faults"]["samples-jittered"] > 0

    def test_single_worker_and_worker_surplus(self):
        # workers clamp to the rack count; both extremes stay identical
        serial, one = run_pair(60.0, coalesce=False, workers=1)
        assert serial == one
        serial2, many = run_pair(60.0, coalesce=False, workers=16)
        assert serial2 == many

    def test_multiple_runs_accumulate_identically(self):
        serial = build()
        serial.run(45.0)
        serial.run(45.0, coalesce=True)
        par = build()
        par.run(45.0, parallel=2)
        par.run(45.0, coalesce=True, parallel=2)
        try:
            assert snapshot(serial) == snapshot(par)
        finally:
            par.close()


class TestGuards:
    def test_parallel_after_serial_run_raises(self):
        sim = build()
        sim.run(10.0)
        with pytest.raises(SimulationError, match="fresh"):
            sim.run(10.0, parallel=2)

    def test_later_runs_inherit_parallel_mode(self):
        # attack strategies call sim.run() bare mid-campaign; those runs
        # must stay on the worker-held fleet, identical to an explicit
        # parallel=N continuation
        explicit = build()
        explicit.run(10.0, parallel=2)
        explicit.run(10.0, parallel=2)
        inherit = build()
        inherit.run(10.0, parallel=2)
        inherit.run(10.0)
        try:
            assert snapshot(explicit) == snapshot(inherit)
        finally:
            explicit.close()
            inherit.close()

    def test_on_tick_rejected_in_parallel(self):
        sim = build()
        with pytest.raises(SimulationError, match="on_tick"):
            sim.run(10.0, parallel=2, on_tick=lambda s: None)

    def test_install_faults_after_parallel_raises(self):
        sim = build()
        sim.run(10.0, parallel=2)
        try:
            with pytest.raises(SimulationError, match="before the first parallel"):
                sim.install_faults(chaos_schedule())
        finally:
            sim.close()

    def test_launches_replay_and_cloud_freezes(self):
        # instances launched before the first parallel run are replayed
        # into the shard workers; afterwards the driver-side cloud is
        # frozen, so a late launch fails loudly instead of diverging
        sim = build()
        sim.cloud.launch_instance("tenant-a")
        sim.run(10.0, parallel=2)
        try:
            with pytest.raises(CloudError, match="frozen"):
                sim.cloud.launch_instance("tenant-a")
        finally:
            sim.close()

    def test_bare_horizon_sources_block_parallel(self):
        # raw callables may close over driver-side host state; only
        # DriverHorizon-wrapped sources are allowed to cross into
        # parallel mode
        sim = build()
        sim.horizon_sources.append(lambda now: now + 5.0)
        with pytest.raises(SimulationError, match="horizon source"):
            sim.run(10.0, parallel=2)

    def test_driver_horizon_sources_fold_in_parallel(self):
        sim = build()
        sim.horizon_sources.append(DriverHorizon(lambda now: now + 5.0))
        try:
            sim.run(10.0, parallel=2, coalesce=True)
            assert sim.now == 10.0
        finally:
            sim.close()


class TestSchedulePartition:
    def test_partition_routes_and_remaps(self):
        schedule = chaos_schedule()
        shards, driver = schedule.partition(
            [[0, 1, 2, 3], [4, 5, 6, 7]], [[0], [1]],
            total_servers=8, total_racks=2,
        )
        assert [e.kind for e in driver] == [FaultKind.CLOCK_JITTER]
        # crash of server 3 stays local index 3 on shard 0
        kinds0 = {(e.kind, e.server) for e in shards[0]}
        assert (FaultKind.MACHINE_CRASH, 3) in kinds0
        assert (FaultKind.RAPL_DROP, 0) in kinds0
        # rack 1 and server 5 land on shard 1 remapped to local indices
        kinds1 = {(e.kind, e.server) for e in shards[1]}
        assert (FaultKind.BREAKER_TRIP, 0) in kinds1
        assert (FaultKind.OOM_KILL, 1) in kinds1
        assert all(s.seed == schedule.seed for s in shards + [driver])

    def test_partition_requires_full_cover(self):
        with pytest.raises(SimulationError, match="cover"):
            chaos_schedule().partition(
                [[0, 1]], [[0]], total_servers=8, total_racks=2
            )
