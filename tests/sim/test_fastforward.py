"""Unit tests for the fast-forward planner and its kernel-side helpers."""

import math

import pytest

from repro.errors import SimulationError
from repro.kernel.kernel import Machine
from repro.runtime.workload import constant
from repro.sim.fastforward import FastForwardEngine, StabilityTracker


class TestPlanStep:
    def test_unstable_returns_base_dt(self):
        engine = FastForwardEngine()
        assert engine.plan_step(0.0, 100.0, 1.0, stable=False) == 1.0

    def test_stable_no_horizon_coalesces_to_remaining(self):
        engine = FastForwardEngine()
        assert engine.plan_step(0.0, 100.0, 1.0) == 100.0

    def test_max_step_caps_the_window(self):
        engine = FastForwardEngine(max_step_s=60.0)
        assert engine.plan_step(0.0, 1e6, 1.0) == 60.0

    def test_horizon_is_absolute_and_not_crossed(self):
        engine = FastForwardEngine()
        assert engine.plan_step(10.0, 100.0, 1.0, horizon=25.0) == 15.0

    def test_grid_alignment_rounds_down_to_base_dt_multiple(self):
        engine = FastForwardEngine()
        # the horizon sits mid-grid: step to the last boundary before it
        assert engine.plan_step(0.0, 100.0, 1.0, horizon=5.5) == 5.0
        assert engine.plan_step(0.0, 100.0, 2.0, horizon=7.0) == 6.0

    def test_one_step_windows_fall_back_to_base(self):
        engine = FastForwardEngine()
        assert engine.plan_step(0.0, 100.0, 1.0, horizon=1.5) == 1.0
        # horizon already reached: never plan a zero or negative step
        assert engine.plan_step(0.0, 100.0, 1.0, horizon=0.0) == 1.0

    def test_short_remaining_truncates_base(self):
        engine = FastForwardEngine()
        assert engine.plan_step(0.0, 0.25, 1.0, stable=False) == 0.25
        assert engine.plan_step(0.0, 0.25, 1.0) == 0.25

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            FastForwardEngine(max_step_s=0.0)
        with pytest.raises(SimulationError):
            FastForwardEngine().plan_step(0.0, 10.0, 0.0)

    def test_min_horizon_helper(self):
        assert FastForwardEngine.min_horizon(5.0, [9.0, 7.0, math.inf]) == 7.0
        assert FastForwardEngine.min_horizon(5.0, []) == math.inf
        # never earlier than now
        assert FastForwardEngine.min_horizon(5.0, [3.0]) == 5.0


class TestStabilityTracker:
    def test_first_observation_is_unstable(self):
        tracker = StabilityTracker()
        assert not tracker.observe((1.0,))

    def test_repeat_observation_is_stable(self):
        tracker = StabilityTracker()
        tracker.observe((1.0,))
        assert tracker.observe((1.0,))

    def test_change_forces_one_stabilizing_observation(self):
        tracker = StabilityTracker()
        tracker.observe((1.0,))
        assert not tracker.observe((2.0,))
        assert tracker.observe((2.0,))

    def test_reset_forgets_history(self):
        tracker = StabilityTracker()
        tracker.observe((1.0,))
        tracker.reset()
        assert not tracker.observe((1.0,))


class TestKernelHelpers:
    def test_phase_horizon_tracks_bounded_workloads(self):
        m = Machine(seed=1, spawn_daemons=False)
        assert m.kernel.next_phase_boundary_s() == math.inf
        m.kernel.spawn("w", workload=constant("w", cpu_demand=1.0, duration=30.0))
        assert m.kernel.next_phase_boundary_s() == pytest.approx(30.0)
        m.run(10, dt=1.0)
        assert m.kernel.next_phase_boundary_s() == pytest.approx(20.0)

    def test_demand_fingerprint_moves_on_churn(self):
        m = Machine(seed=1, spawn_daemons=False)
        before = m.kernel.demand_fingerprint()
        task = m.kernel.spawn("w", workload=constant("w", cpu_demand=0.5))
        spawned = m.kernel.demand_fingerprint()
        assert spawned == pytest.approx(before + 0.5)
        m.kernel.kill(task)
        assert m.kernel.demand_fingerprint() == pytest.approx(before)


class TestMachineCoalescing:
    def _machine(self):
        m = Machine(seed=42, spawn_daemons=False)
        m.kernel.spawn(
            "burst",
            workload=constant("burst", cpu_demand=1.0, ipc=2.0, duration=120.0),
        )
        m.kernel.spawn("steady", workload=constant("steady", cpu_demand=0.5, ipc=1.5))
        return m

    def test_coalesced_run_matches_reference(self):
        ref, fast = self._machine(), self._machine()
        ref.run(600, dt=1.0)
        fast.run(600, dt=1.0, coalesce=True)
        assert fast.clock.now == pytest.approx(ref.clock.now)
        assert fast.kernel.host_package_watts() == pytest.approx(
            ref.kernel.host_package_watts(), rel=1e-9
        )
        assert fast.kernel.idle_seconds == pytest.approx(
            ref.kernel.idle_seconds, rel=1e-9
        )

    def test_coalesced_run_takes_far_fewer_ticks(self):
        fast = self._machine()
        fast.run(600, dt=1.0, coalesce=True)
        assert fast.kernel.ticks_taken * 5 <= 600
        assert fast.metrics.tick_reduction >= 5.0

    def test_phase_boundary_is_a_tick_boundary(self):
        fast = self._machine()
        boundaries = []
        fast.run(
            600,
            dt=1.0,
            coalesce=True,
            on_tick=lambda kernel, result: boundaries.append(kernel.clock.now),
        )
        # the bounded workload's 120 s phase end must be hit exactly
        assert any(t == pytest.approx(120.0) for t in boundaries)
