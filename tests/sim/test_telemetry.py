"""Shared-memory telemetry plane: geometry, encoding, double-buffer
reuse, and segment lifecycle (including cleanup after a worker crash).
"""

import math

import pytest
from multiprocessing import shared_memory

from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import SimulationError
from repro.sim.telemetry import BANKS, TelemetryPlane


def make_plane(servers=10, observers=4):
    plane = TelemetryPlane.create(servers, observers)
    return plane


class TestGeometry:
    def test_segment_sizing(self):
        plane = make_plane(servers=10, observers=4)
        try:
            assert plane.segment_bytes == BANKS * (10 + 4) * 8
            assert plane.row_bytes == 10 * 8
            # the OS may round the mapping up, never down
            assert plane._shm.size >= plane.segment_bytes
        finally:
            plane.unlink()

    def test_rejects_degenerate_shapes(self):
        with pytest.raises(SimulationError, match="server slot"):
            TelemetryPlane.create(0, 4)
        with pytest.raises(SimulationError, match="observer capacity"):
            TelemetryPlane.create(4, -1)

    def test_slot_range_checks(self):
        plane = make_plane(servers=3, observers=2)
        try:
            with pytest.raises(SimulationError, match="bank"):
                plane.write_wall(2, 0, 1.0)
            with pytest.raises(SimulationError, match="server index"):
                plane.read_wall(0, 3)
            with pytest.raises(SimulationError, match="observer slot"):
                plane.write_observer(1, 2, 1.0)
        finally:
            plane.unlink()


class TestEncoding:
    def test_starts_nan_everywhere(self):
        plane = make_plane(servers=4, observers=2)
        try:
            for bank in range(BANKS):
                assert all(plane.read_wall(bank, i) is None for i in range(4))
                assert all(
                    plane.read_observer(bank, s) is None for s in range(2)
                )
        finally:
            plane.unlink()

    def test_none_and_float_roundtrip(self):
        plane = make_plane(servers=4, observers=2)
        try:
            plane.write_wall(0, 1, 123.456)
            plane.write_wall(0, 2, 0.0)  # dark server, NOT a gap
            plane.write_wall(0, 3, None)  # crashed: trace gap
            assert plane.read_wall(0, 1) == 123.456
            assert plane.read_wall(0, 2) == 0.0
            assert plane.read_wall(0, 3) is None
            plane.write_observer(1, 0, math.pi)
            plane.write_observer(1, 1, None)
            assert plane.read_observer(1, 0) == math.pi
            assert plane.read_observer(1, 1) is None
        finally:
            plane.unlink()

    def test_banks_are_independent(self):
        plane = make_plane(servers=2, observers=1)
        try:
            plane.write_wall(0, 0, 1.0)
            plane.write_wall(1, 0, 2.0)
            assert plane.read_wall(0, 0) == 1.0
            assert plane.read_wall(1, 0) == 2.0
        finally:
            plane.unlink()

    def test_attach_sees_creator_writes(self):
        plane = make_plane(servers=3, observers=1)
        try:
            plane.write_wall(1, 2, 77.0)
            other = TelemetryPlane.attach(plane.name, 3, 1)
            try:
                assert other.read_wall(1, 2) == 77.0
                other.write_observer(0, 0, 5.5)
                assert plane.read_observer(0, 0) == 5.5
            finally:
                other.close()
        finally:
            plane.unlink()


class TestLifecycle:
    def test_close_is_idempotent_and_unlink_destroys(self):
        plane = make_plane()
        name = plane.name
        plane.close()
        plane.close()  # idempotent
        plane.unlink()
        plane.unlink()  # idempotent
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_attached_unlink_does_not_destroy(self):
        plane = make_plane(servers=2, observers=1)
        try:
            other = TelemetryPlane.attach(plane.name, 2, 1)
            other.unlink()  # non-owner: close only
            assert plane.read_wall(0, 0) is None  # still mapped and alive
        finally:
            plane.unlink()


def _segment_name(sim):
    return sim._parallel.plane.name


class TestEngineIntegration:
    def test_double_buffer_reuse_across_coalesced_steps(self):
        # a long coalesced run recycles the two banks far more times than
        # there are banks; the trace must still be bit-identical to serial
        serial = DatacenterSimulation(
            servers=8, rack_size=4, seed=7, sample_interval_s=30.0
        )
        serial.run(3600.0, coalesce=True)
        par = DatacenterSimulation(
            servers=8, rack_size=4, seed=7, sample_interval_s=30.0
        )
        par.run(3600.0, coalesce=True, parallel=2)
        try:
            assert par.metrics.samples > BANKS
            assert tuple(serial.aggregate_trace.watts) == tuple(
                par.aggregate_trace.watts
            )
            assert tuple(serial.aggregate_trace.times) == tuple(
                par.aggregate_trace.times
            )
        finally:
            par.close()

    def test_segment_unlinked_on_normal_close(self):
        sim = DatacenterSimulation(servers=6, rack_size=3, seed=7)
        sim.run(5.0, parallel=2)
        name = _segment_name(sim)
        sim.close()
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_segment_unlinked_after_worker_crash(self):
        sim = DatacenterSimulation(servers=6, rack_size=3, seed=7)
        sim.run(5.0, parallel=2)
        name = _segment_name(sim)
        sim._parallel.debug_crash_worker(0)
        with pytest.raises(SimulationError, match="died"):
            sim.run(60.0, parallel=2)
        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        sim.close()  # idempotent after the crash teardown

    def test_non_uniform_rack_sizes_map_slots_correctly(self):
        # 10 servers in racks of 4 → racks of 4, 4, and 2: global slot
        # indices are not shard-aligned, yet every server's trace matches
        serial = DatacenterSimulation(
            servers=10, rack_size=4, seed=7, sample_interval_s=1.0
        )
        serial.run(30.0)
        par = DatacenterSimulation(
            servers=10, rack_size=4, seed=7, sample_interval_s=1.0
        )
        par.run(30.0, parallel=3)
        try:
            for i in range(10):
                assert tuple(serial.server_traces[i].watts) == tuple(
                    par.server_traces[i].watts
                ), f"server {i} diverged"
        finally:
            par.close()
