"""Self-healing fleet: checkpoint/restore, supervision, hang-proof barriers.

Three contracts from ``docs/resilience.md``, all pinned bit-for-bit:

1. **Transparency** — enabling checkpointing must not perturb the golden
   trace: a checkpointed run equals an unadorned run float-for-float.
2. **Recovery** — a shard worker killed or hung mid-campaign is respawned
   from the latest snapshot and replayed forward, and the completed run
   is bit-identical to an uninterrupted one; exhausted budgets and
   unsupervised failures surface as descriptive errors naming the shard.
3. **Resume** — a fresh process pointed at the checkpoint directory with
   ``run(resume=True)`` completes the campaign bit-identically to the
   golden run, including the merged span timeline.
"""

import os
import pickle

import pytest

from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import SimulationError
from repro.sim import telemetry
from repro.sim.resilience import (
    ResilienceConfig,
    atomic_write,
    load_manifest,
    manifest_path,
    read_snapshot,
    shard_snapshot_path,
)

SEED = 7


def build(servers=4, rack_size=2, interval=30.0):
    return DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=SEED,
        sample_interval_s=interval,
    )


def snapshot(sim):
    return {
        "agg": (
            tuple(sim.aggregate_trace.times),
            tuple(sim.aggregate_trace.watts),
            tuple(sim.aggregate_trace.gaps),
        ),
        "servers": {
            i: (tuple(t.times), tuple(t.watts), tuple(t.gaps))
            for i, t in sim.server_traces.items()
        },
        "ticks": sim.metrics.ticks,
        "samples": sim.metrics.samples,
        "now": sim.now,
    }


def timeline_key(tracer):
    """The mode-independent view of a timeline (wall cost and per-process
    sequence numbers legitimately differ between golden and resumed)."""
    return [
        (e.kind, e.name, e.track, e.t0, e.t1, e.attrs)
        for e in tracer.timeline()
    ]


class TestConfig:
    def test_rejects_bad_values(self):
        with pytest.raises(SimulationError, match="checkpoint_every"):
            ResilienceConfig(checkpoint_every=0.0)
        with pytest.raises(SimulationError, match="barrier_timeout_s"):
            ResilienceConfig(barrier_timeout_s=-1.0)
        with pytest.raises(SimulationError, match="max_restarts"):
            ResilienceConfig(max_restarts=-1)

    def test_enable_after_parallel_rejected(self):
        sim = build()
        sim.run(30, parallel=2)
        try:
            with pytest.raises(SimulationError, match="before the first"):
                sim.enable_resilience()
        finally:
            sim.close()

    def test_serial_guards(self, tmp_path):
        sim = build()
        with pytest.raises(SimulationError, match="parallel"):
            sim.run(30, resume=True)
        sim2 = build()
        sim2.enable_resilience(checkpoint_dir=str(tmp_path))
        with pytest.raises(SimulationError, match="parallel engine"):
            sim2.run(30)

    def test_resume_needs_checkpoint_dir(self):
        sim = build()
        sim.enable_resilience()  # supervision only, no dir
        with pytest.raises(SimulationError, match="checkpoint_dir"):
            sim.run(30, parallel=2, resume=True)

    def test_resume_on_live_engine_rejected(self, tmp_path):
        sim = build()
        sim.enable_resilience(checkpoint_dir=str(tmp_path))
        sim.run(60, parallel=2)
        try:
            with pytest.raises(SimulationError, match="already live"):
                sim.run(30, parallel=2, resume=True)
        finally:
            sim.close()


class TestSnapshotFiles:
    def test_atomic_write_and_read(self, tmp_path):
        path = shard_snapshot_path(str(tmp_path), 3, 12)
        assert path.endswith("shard-03-000012.ckpt")
        atomic_write(path, pickle.dumps({"version": 1, "x": 1}))
        assert read_snapshot(path)["x"] == 1
        assert not [p for p in os.listdir(tmp_path) if p.endswith(".tmp")]

    def test_missing_snapshot_is_descriptive(self, tmp_path):
        with pytest.raises(SimulationError, match="missing"):
            read_snapshot(str(tmp_path / "nope.ckpt"))

    def test_version_mismatch_rejected(self, tmp_path):
        path = str(tmp_path / "bad.ckpt")
        atomic_write(path, pickle.dumps({"version": 99}))
        with pytest.raises(SimulationError, match="version"):
            read_snapshot(path)

    def test_missing_manifest_names_resume(self, tmp_path):
        with pytest.raises(SimulationError, match="nothing to resume"):
            load_manifest(str(tmp_path))


class TestCheckpointTransparency:
    def test_checkpointing_preserves_golden_trace(self, tmp_path):
        plain = build()
        plain.run(600, parallel=2, coalesce=True)
        plain.close()
        ckpt = build()
        ckpt.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        ckpt.run(600, parallel=2, coalesce=True)
        ckpt.close()
        assert snapshot(plain) == snapshot(ckpt)
        metrics = ckpt._parallel.res_metrics
        assert metrics.checkpoints >= 4
        assert metrics.checkpoint_bytes > 0
        # only the latest checkpoint generation is kept on disk
        manifest = load_manifest(str(tmp_path))
        kept = sorted(p for p in os.listdir(tmp_path) if p.startswith("shard-"))
        assert kept == [
            os.path.basename(shard_snapshot_path(str(tmp_path), i, manifest["seq"]))
            for i in range(2)
        ]


class TestSupervisedRecovery:
    def test_crash_recovery_without_snapshots(self):
        golden = build()
        golden.run(600, parallel=2, coalesce=True)
        golden.close()
        sim = build()
        sim.enable_resilience(max_restarts=2)
        sim.run(300, parallel=2, coalesce=True)
        sim._parallel.debug_crash_worker(1)
        sim.run(300, parallel=2, coalesce=True)
        sim.close()
        assert snapshot(golden) == snapshot(sim)
        metrics = sim._parallel.res_metrics
        assert metrics.restarts == 1
        assert metrics.replayed_frames > 0
        assert metrics.recovery_wall_s > 0.0

    def test_crash_recovery_from_snapshot_replays_less(self, tmp_path):
        golden = build()
        golden.run(600, parallel=2, coalesce=True)
        golden.close()
        full = build()
        full.enable_resilience(max_restarts=1)
        full.run(300, parallel=2, coalesce=True)
        full._parallel.debug_crash_worker(0)
        full.run(300, parallel=2, coalesce=True)
        full.close()
        snap = build()
        snap.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0, max_restarts=1
        )
        snap.run(300, parallel=2, coalesce=True)
        snap._parallel.debug_crash_worker(0)
        snap.run(300, parallel=2, coalesce=True)
        snap.close()
        assert snapshot(golden) == snapshot(full) == snapshot(snap)
        # the snapshot bounds the replay: frames since the last
        # checkpoint, not since the start of the run
        assert (
            snap._parallel.res_metrics.replayed_frames
            < full._parallel.res_metrics.replayed_frames
        )

    def test_hang_recovery(self):
        golden = build()
        golden.run(600, parallel=2, coalesce=True)
        golden.close()
        sim = build()
        sim.enable_resilience(barrier_timeout_s=2.0, max_restarts=1)
        sim.run(300, parallel=2, coalesce=True)
        sim._parallel.debug_hang_worker(0, 8.0)
        sim.run(300, parallel=2, coalesce=True)
        sim.close()
        assert snapshot(golden) == snapshot(sim)
        assert sim._parallel.res_metrics.restarts == 1

    def test_unsupervised_hang_is_descriptive(self):
        sim = build()
        sim.enable_resilience(barrier_timeout_s=2.0, supervise=False)
        sim.run(60, parallel=2)
        sim._parallel.debug_hang_worker(1, 8.0)
        with pytest.raises(SimulationError) as err:
            sim.run(60, parallel=2)
        message = str(err.value)
        assert "shard worker 1 hung" in message
        assert "barrier_timeout_s" in message
        assert "last reply" in message
        assert "barrier_wait_s" in message
        # the engine tore itself down; nothing leaked
        assert sim._parallel._closed

    def test_exhausted_budget_is_descriptive(self):
        sim = build()
        sim.enable_resilience(max_restarts=0)
        sim.run(60, parallel=2)
        sim._parallel.debug_crash_worker(1)
        with pytest.raises(SimulationError, match="restart budget exhausted"):
            sim.run(60, parallel=2)
        assert sim._parallel._closed


class TestResume:
    def test_fleet_resume_bit_identical(self, tmp_path):
        golden = build()
        golden.run(600, parallel=2, coalesce=True)
        golden.close()
        part = build()
        part.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        part.run(300, parallel=2, coalesce=True)
        part.close()  # "the process died here"
        res = build()
        res.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        res.run(300, parallel=2, coalesce=True, resume=True)
        res.run(300, parallel=2, coalesce=True)
        res.close()
        assert snapshot(golden) == snapshot(res)

    def test_straddling_window_resume(self, tmp_path):
        """A resumed caller window that straddles the checkpoint time
        runs only its uncovered tail, but reports the full window."""
        golden = build()
        golden.run(600, parallel=2, coalesce=True)
        golden.close()
        part = build()
        part.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        part.run(250, parallel=2, coalesce=True)
        part.close()
        res = build()
        res.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        res.run(600, parallel=2, coalesce=True, resume=True)
        res.close()
        assert snapshot(golden) == snapshot(res)

    def test_resume_traced_timeline_matches_golden(self, tmp_path):
        # the golden run issues the same caller windows the resumed run
        # will reissue (spans record caller windows, so the sequence of
        # run() calls is part of the timeline contract)
        golden = build()
        golden.enable_tracing()
        golden.enable_resilience(
            checkpoint_dir=str(tmp_path / "g"), checkpoint_every=120.0
        )
        golden.run(300, parallel=2, coalesce=True)
        golden.run(300, parallel=2, coalesce=True)
        golden.close()
        part = build()
        part.enable_tracing()
        part.enable_resilience(
            checkpoint_dir=str(tmp_path / "r"), checkpoint_every=120.0
        )
        part.run(300, parallel=2, coalesce=True)
        part.close()
        res = build()
        res.enable_tracing()
        res.enable_resilience(
            checkpoint_dir=str(tmp_path / "r"), checkpoint_every=120.0
        )
        res.run(300, parallel=2, coalesce=True, resume=True)
        res.run(300, parallel=2, coalesce=True)
        res.close()
        assert snapshot(golden) == snapshot(res)
        assert timeline_key(golden.tracer) == timeline_key(res.tracer)

    def test_manifest_worker_count_pinned(self, tmp_path):
        part = build()
        part.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        part.run(300, parallel=2, coalesce=True)
        part.close()
        res = build()
        res.enable_resilience(
            checkpoint_dir=str(tmp_path), checkpoint_every=120.0
        )
        with pytest.raises(SimulationError, match="worker"):
            res.run(300, parallel=1, coalesce=True, resume=True)


class TestStaleSegmentSweep:
    def test_dead_pid_segment_swept_live_kept(self, tmp_path, monkeypatch):
        if not os.path.isdir("/dev/shm"):
            pytest.skip("no /dev/shm on this platform")
        # a pid that provably does not exist: fork-and-reap one
        pid = os.fork()
        if pid == 0:
            os._exit(0)
        os.waitpid(pid, 0)
        dead = f"{telemetry.SEGMENT_PREFIX}-{pid}-deadbeef"
        live = f"{telemetry.SEGMENT_PREFIX}-{os.getpid()}-cafecafe"
        other = "unrelated-segment"
        for name in (dead, live, other):
            with open(os.path.join("/dev/shm", name), "wb") as fh:
                fh.write(b"\0" * 8)
        try:
            removed = telemetry.sweep_stale_segments()
            assert dead in removed
            assert not os.path.exists(os.path.join("/dev/shm", dead))
            assert os.path.exists(os.path.join("/dev/shm", live))
            assert os.path.exists(os.path.join("/dev/shm", other))
        finally:
            for name in (live, other):
                try:
                    os.unlink(os.path.join("/dev/shm", name))
                except FileNotFoundError:
                    pass

    def test_segment_names_carry_owner_pid(self):
        plane = telemetry.TelemetryPlane.create(2, 2)
        try:
            assert telemetry._segment_owner_pid(plane.name) == os.getpid()
        finally:
            plane.unlink()


class TestPopulationPickle:
    def test_round_trip_preserves_task_info(self):
        sim = build(servers=2, rack_size=2)
        pop = sim.population
        state = pickle.loads(pickle.dumps(pop))
        assert state.host_demand(0) == pop.host_demand(0)
        assert len(state._task_info) == len(pop._task_info)
        # the restored mapping is keyed on the *restored* task objects
        for row in state._tasks:
            for task in row:
                if id(task) in state._task_info:
                    shard, demand = state._task_info[id(task)]
                    assert demand is not None
