"""Tests for the deterministic fault-injection subsystem."""

import math

import pytest

from repro.errors import SimulationError, TransientReadError
from repro.kernel.kernel import Machine
from repro.runtime.engine import ContainerEngine
from repro.sim.faults import (
    DEFAULT_EIO_PATHS,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    FaultStats,
    KernelFaultState,
)
from repro.sim.rng import DeterministicRNG
from tests.conftest import make_cpu_workload

DAY_S = 86400.0


class TestFaultEvent:
    def test_windowed_kind_needs_duration(self):
        with pytest.raises(SimulationError):
            FaultEvent(at=10.0, kind=FaultKind.RAPL_DROP)

    def test_pseudo_eio_needs_glob(self):
        with pytest.raises(SimulationError):
            FaultEvent(at=10.0, kind=FaultKind.PSEUDO_EIO, duration_s=5.0)

    def test_negative_time_rejected(self):
        with pytest.raises(SimulationError):
            FaultEvent(at=-1.0, kind=FaultKind.OOM_KILL)

    def test_until(self):
        e = FaultEvent(at=10.0, kind=FaultKind.RAPL_STUCK, duration_s=30.0)
        assert e.until == 40.0

    def test_one_shot_kinds_need_no_duration(self):
        FaultEvent(at=0.0, kind=FaultKind.RAPL_WRAP)
        FaultEvent(at=0.0, kind=FaultKind.OOM_KILL)


class TestFaultSchedule:
    def test_events_sorted(self):
        sched = FaultSchedule(
            [
                FaultEvent(at=20.0, kind=FaultKind.OOM_KILL),
                FaultEvent(at=5.0, kind=FaultKind.RAPL_WRAP),
            ]
        )
        assert [e.at for e in sched] == [5.0, 20.0]
        sched.add(FaultEvent(at=1.0, kind=FaultKind.OOM_KILL))
        assert [e.at for e in sched] == [1.0, 5.0, 20.0]

    def test_events_between_and_next(self):
        sched = FaultSchedule(
            [
                FaultEvent(at=5.0, kind=FaultKind.RAPL_WRAP),
                FaultEvent(at=20.0, kind=FaultKind.OOM_KILL),
            ]
        )
        assert len(sched.events_between(0.0, 10.0)) == 1
        assert sched.next_event_time(6.0) == 20.0
        assert sched.next_event_time(21.0) == math.inf

    def test_generate_is_deterministic(self):
        a = FaultSchedule.generate(42, 3 * DAY_S, servers=4, racks=2)
        b = FaultSchedule.generate(42, 3 * DAY_S, servers=4, racks=2)
        assert a.events == b.events
        assert len(a) > 0

    def test_generate_seed_sensitivity(self):
        a = FaultSchedule.generate(42, 3 * DAY_S, servers=4)
        b = FaultSchedule.generate(43, 3 * DAY_S, servers=4)
        assert a.events != b.events

    def test_generated_events_snap_to_grid(self):
        sched = FaultSchedule.generate(7, 2 * DAY_S, servers=2, grid_s=1.0)
        for event in sched:
            assert event.at == round(event.at)
            assert event.duration_s == round(event.duration_s)
            assert 0 < event.at < 2 * DAY_S

    def test_standard_covers_every_family(self):
        sched = FaultSchedule.standard(11, 60 * DAY_S, servers=4, racks=2)
        kinds = {e.kind for e in sched}
        assert FaultKind.BREAKER_TRIP in kinds
        assert FaultKind.MACHINE_CRASH in kinds
        assert FaultKind.PSEUDO_EIO in kinds
        assert kinds & {
            FaultKind.RAPL_STUCK,
            FaultKind.RAPL_DROP,
            FaultKind.RAPL_GARBAGE,
            FaultKind.RAPL_WRAP,
        }

    def test_generate_validation(self):
        with pytest.raises(SimulationError):
            FaultSchedule.generate(1, -5.0)
        with pytest.raises(SimulationError):
            FaultSchedule.generate(1, 100.0, servers=0)


class TestFaultStats:
    def test_counting(self):
        stats = FaultStats()
        stats.count("injected:oom-kill")
        stats.count("injected:oom-kill")
        stats.count("reads-failed:pseudo-eio", 3)
        assert stats.get("injected:oom-kill") == 2
        assert stats.total_injected == 2
        assert stats.as_dict()["reads-failed:pseudo-eio"] == 3
        assert "oom-kill" in stats.render()

    def test_empty_render(self):
        assert "no faults" in FaultStats().render()


class _StubDomain:
    sysfs_name = "intel-rapl:0"
    max_energy_range_uj = 1000


class TestKernelFaultState:
    def _state(self):
        return KernelFaultState(DeterministicRNG(5))

    def test_drop_raises_then_clears(self):
        state = self._state()
        state.fault_rapl(FaultKind.RAPL_DROP, until=10.0)
        with pytest.raises(TransientReadError):
            state.filter_energy_uj(5.0, _StubDomain(), 500)
        assert state.filter_energy_uj(10.0, _StubDomain(), 500) == 500

    def test_stuck_freezes_first_value(self):
        state = self._state()
        state.fault_rapl(FaultKind.RAPL_STUCK, until=10.0)
        assert state.filter_energy_uj(1.0, _StubDomain(), 111) == 111
        assert state.filter_energy_uj(2.0, _StubDomain(), 222) == 111

    def test_garbage_is_bounded_and_deterministic(self):
        a, b = self._state(), self._state()
        for state in (a, b):
            state.fault_rapl(FaultKind.RAPL_GARBAGE, until=10.0)
        va = a.filter_energy_uj(1.0, _StubDomain(), 500)
        vb = b.filter_energy_uj(1.0, _StubDomain(), 500)
        assert va == vb
        assert 0 <= va < _StubDomain.max_energy_range_uj

    def test_wrap_is_one_shot(self):
        state = self._state()
        state.fault_rapl(FaultKind.RAPL_WRAP, until=0.0)
        displaced = state.filter_energy_uj(1.0, _StubDomain(), 100)
        assert displaced == (100 + 500) % 1000
        assert state.filter_energy_uj(2.0, _StubDomain(), 100) == 100

    def test_pseudo_eio_glob_and_expiry(self):
        state = self._state()
        state.add_eio("/proc/upt*", until=10.0)
        with pytest.raises(TransientReadError):
            state.check_pseudo_read(5.0, "/proc/uptime")
        state.check_pseudo_read(5.0, "/proc/stat")  # no match, no raise
        state.check_pseudo_read(11.0, "/proc/uptime")  # expired

    def test_next_change_tracks_window_ends(self):
        state = self._state()
        state.fault_rapl(FaultKind.RAPL_DROP, until=10.0)
        state.add_eio("/proc/stat", until=7.0)
        assert state.next_change(0.0) == 7.0
        assert state.next_change(8.0) == 10.0
        assert state.next_change(11.0) == math.inf


class TestFaultInjectorOnMachine:
    def test_install_twice_rejected(self):
        machine = Machine(seed=3)
        sched = FaultSchedule([], seed=1)
        machine.install_faults(sched)
        with pytest.raises(Exception):
            machine.install_faults(sched)

    def test_rapl_drop_hits_driver_read_path(self):
        machine = Machine(seed=3)
        sched = FaultSchedule(
            [FaultEvent(at=5.0, kind=FaultKind.RAPL_DROP, duration_s=10.0)],
            seed=1,
        )
        machine.install_faults(sched)
        domain = machine.kernel.rapl.package(0).package
        machine.run(6.0, dt=1.0)
        with pytest.raises(TransientReadError):
            machine.kernel.read_energy_uj(domain)
        machine.run(10.0, dt=1.0)
        assert machine.kernel.read_energy_uj(domain) >= 0

    def test_crash_stops_ticks_and_restarts(self):
        machine = Machine(seed=3)
        sched = FaultSchedule(
            [FaultEvent(at=10.0, kind=FaultKind.MACHINE_CRASH, duration_s=30.0)],
            seed=1,
        )
        injector = machine.install_faults(sched)
        domain = machine.kernel.rapl.package(0).package
        machine.run(11.0, dt=1.0)
        assert injector.crashed_now() == frozenset({0})
        mark = machine.kernel.read_energy_uj(domain)
        machine.run(20.0, dt=1.0)  # still down: no ticks, no energy accrued
        assert machine.kernel.read_energy_uj(domain) == mark
        machine.run(20.0, dt=1.0)  # past t=40: rebooted
        assert injector.crashed_now() == frozenset()
        assert machine.kernel.boot_time == pytest.approx(40.0, abs=1.5)
        assert injector.stats.get("machine-restarts") == 1

    def test_crash_is_a_barrier_for_coalescing(self):
        sched = FaultSchedule(
            [FaultEvent(at=600.0, kind=FaultKind.MACHINE_CRASH, duration_s=120.0)],
            seed=1,
        )
        base = Machine(seed=3)
        base.install_faults(sched)
        base.run(1800.0, dt=1.0)
        fast = Machine(seed=3)
        fast.install_faults(sched)
        fast.run(1800.0, dt=1.0, coalesce=True)
        # both paths reboot at the same virtual time and agree on accrued
        # energy within the engine's 1% acceptance bound (the crash cut
        # exactly 120 s of accrual out of both)
        assert base.kernel.boot_time == fast.kernel.boot_time == 720.0
        domain_b = base.kernel.rapl.package(0).package
        domain_f = fast.kernel.rapl.package(0).package
        assert fast.kernel.read_energy_uj(domain_f) == pytest.approx(
            base.kernel.read_energy_uj(domain_b), rel=0.01
        )
        assert fast.metrics.ticks < 1800

    def test_oom_kill_removes_newest_task(self):
        machine = Machine(seed=3)
        engine = ContainerEngine(machine.kernel)
        container = engine.create(name="victim")
        task = container.exec("worker", workload=make_cpu_workload())
        sched = FaultSchedule(
            [FaultEvent(at=5.0, kind=FaultKind.OOM_KILL)], seed=1
        )
        injector = FaultInjector(
            sched, kernels=[machine.kernel], engines=[engine]
        )
        machine.fault_injector = injector
        machine.run(6.0, dt=1.0)
        assert not task.alive
        assert container.init_task.alive
        assert injector.stats.get("oom-kills") == 1

    def test_oom_without_engine_is_noop(self):
        machine = Machine(seed=3)
        sched = FaultSchedule(
            [FaultEvent(at=2.0, kind=FaultKind.OOM_KILL)], seed=1
        )
        injector = machine.install_faults(sched)
        machine.run(5.0, dt=1.0)
        assert injector.stats.get("oom-noop") == 1

    def test_next_barrier_sees_events_and_window_ends(self):
        machine = Machine(seed=3)
        sched = FaultSchedule(
            [
                FaultEvent(at=5.0, kind=FaultKind.RAPL_DROP, duration_s=10.0),
                FaultEvent(at=100.0, kind=FaultKind.OOM_KILL),
            ],
            seed=1,
        )
        injector = machine.install_faults(sched)
        assert injector.next_barrier(0.0) == 5.0
        machine.run(6.0, dt=1.0)
        assert injector.next_barrier(machine.kernel.clock.now) == 15.0
        machine.run(10.0, dt=1.0)
        assert injector.next_barrier(machine.kernel.clock.now) == 100.0

    def test_jittered_time_bounded_and_floored(self):
        machine = Machine(seed=3)
        sched = FaultSchedule(
            [
                FaultEvent(
                    at=0.0,
                    kind=FaultKind.CLOCK_JITTER,
                    duration_s=2000.0,
                    magnitude=0.3,
                )
            ],
            seed=1,
        )
        injector = machine.install_faults(sched)
        injector.advance(0.0)
        last = 0.0
        for k in range(1, 50):
            when = injector.jittered_time(30.0 * k, 30.0, floor=last)
            assert abs(when - 30.0 * k) <= 0.45 * 30.0 + 1e-9
            assert when >= last
            last = when
        assert injector.stats.get("samples-jittered") == 49
        # outside the window: no displacement, no draw
        assert injector.jittered_time(2000.0, 30.0, floor=last) == 2000.0

    def test_pseudo_eio_default_paths_are_globs_over_real_files(self):
        machine = Machine(seed=3)
        vfs_paths = [p for p, _ in __import__(
            "repro.procfs.vfs", fromlist=["PseudoVFS"]
        ).PseudoVFS(machine.kernel).walk()]
        import fnmatch
        for glob in DEFAULT_EIO_PATHS:
            assert any(fnmatch.fnmatchcase(p, glob) for p in vfs_paths), glob
