"""Tests for the cross-validation leak detector (Figure 1, left)."""

import pytest

from repro.detection.crossvalidate import CrossValidator, LeakClass
from repro.runtime.policy import MaskingPolicy


@pytest.fixture
def validated(machine, engine):
    c = engine.create(name="probe")
    machine.run(5, dt=1.0)
    return CrossValidator(engine.vfs, c).run()


class TestClassification:
    def test_host_global_files_classified_as_leaks(self, validated):
        for path in ("/proc/meminfo", "/proc/uptime", "/proc/stat",
                     "/proc/timer_list", "/proc/sched_debug",
                     "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
                     "/sys/class/powercap/intel-rapl:0/energy_uj"):
            assert validated.verdict_for(path).leak_class is LeakClass.LEAK, path

    def test_namespaced_files_not_leaks(self, validated):
        for path in ("/proc/sys/kernel/hostname", "/proc/net/dev",
                     "/proc/self/cgroup", "/proc/sys/kernel/ns_last_pid"):
            assert validated.verdict_for(path).leak_class is LeakClass.NAMESPACED, path

    def test_per_read_random_files_marked_volatile(self, validated):
        verdict = validated.verdict_for("/proc/sys/kernel/random/uuid")
        assert verdict.leak_class is LeakClass.VOLATILE

    def test_detector_verdicts_match_renderer_ground_truth(
        self, machine, engine
    ):
        """The behavioural detector must rediscover the namespaced flags."""
        c = engine.create(name="probe")
        machine.run(3, dt=1.0)
        report = CrossValidator(engine.vfs, c).run()
        for path, node in engine.vfs.walk():
            verdict = report.verdict_for(path).leak_class
            if verdict is LeakClass.VOLATILE:
                continue  # per-read randomness is outside the flag's scope
            if node.namespaced:
                assert verdict is LeakClass.NAMESPACED, path
            else:
                assert verdict is LeakClass.LEAK, path

    def test_leaking_channels_cover_table1(self, validated):
        channels = set(validated.leaking_channels())
        expected = {
            "proc.locks", "proc.zoneinfo", "proc.modules", "proc.timer_list",
            "proc.sched_debug", "proc.softirqs", "proc.uptime", "proc.version",
            "proc.stat", "proc.meminfo", "proc.loadavg", "proc.interrupts",
            "proc.cpuinfo", "proc.schedstat",
            "sys.fs.cgroup.net_prio.ifpriomap",
            "sys.class.powercap.energy_uj",
        }
        assert expected <= channels


class TestPolicyInteraction:
    def test_masked_paths_reported_masked(self, machine, engine):
        policy = MaskingPolicy(name="m").deny("/proc/meminfo").hide("/proc/uptime")
        c = engine.create(name="masked", policy=policy)
        report = CrossValidator(engine.vfs, c).run()
        assert report.verdict_for("/proc/meminfo").leak_class is LeakClass.MASKED
        assert report.verdict_for("/proc/uptime").leak_class is LeakClass.HOST_ONLY
        assert "/proc/meminfo" not in report.leaks

    def test_paths_subset_can_be_given(self, machine, engine):
        c = engine.create(name="probe")
        report = CrossValidator(engine.vfs, c).run(paths=["/proc/meminfo"])
        assert list(report.verdicts) == ["/proc/meminfo"]

    def test_paths_in_accessor_sorted(self, validated):
        leaks = validated.paths_in(LeakClass.LEAK)
        assert leaks == sorted(leaks)
