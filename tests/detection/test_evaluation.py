"""NDCG-ranked evaluation of the detector's channel-severity ranking.

Uses a synthetic Table-II-shaped channel set (the real assessor is
exercised in ``benchmarks/bench_table2_ranking.py``): the detector's
rank key orders the uniqueness groups exactly by their ground-truth
severity grades, so the unperturbed paper-faithful profile must score
a perfect NDCG, and the randomized sweep must degrade only through the
modelled perturbations (masking, noise, misclassification).
"""

import pytest

from repro.detection.evaluation import (
    ChannelSignal,
    EvaluationService,
    dcg,
    ndcg_at_k,
    rank_key,
)
from repro.detection.metrics import UniquenessGroup


def synthetic_signals():
    """A Table-II-shaped cloud: every group populated, plus inert files."""
    signals = [
        ChannelSignal("boot_id", UniquenessGroup.STATIC_ID, False, 16.0, 0.0),
        ChannelSignal("ifpriomap", UniquenessGroup.STATIC_ID, False, 8.0, 0.0),
        ChannelSignal(
            "sched_debug", UniquenessGroup.IMPLANTABLE, True, 12.0, 0.0
        ),
        ChannelSignal(
            "timer_list", UniquenessGroup.IMPLANTABLE, True, 9.0, 0.0
        ),
        ChannelSignal("locks", UniquenessGroup.IMPLANTABLE, True, 6.0, 0.0),
        ChannelSignal("uptime", UniquenessGroup.ACCUMULATOR, True, 5.0, 2.0),
        ChannelSignal("stat", UniquenessGroup.ACCUMULATOR, True, 5.5, 1.4),
        ChannelSignal(
            "energy_uj", UniquenessGroup.ACCUMULATOR, True, 7.0, 0.9
        ),
        ChannelSignal("zoneinfo", UniquenessGroup.NOT_UNIQUE, True, 4.0, 0.0),
        ChannelSignal("meminfo", UniquenessGroup.NOT_UNIQUE, True, 3.0, 0.0),
        ChannelSignal("loadavg", UniquenessGroup.NOT_UNIQUE, True, 2.0, 0.0),
    ]
    signals += [
        ChannelSignal(
            f"inert_{i}", UniquenessGroup.NOT_UNIQUE, False, 0.0, 0.0
        )
        for i in range(5)
    ]
    return signals


@pytest.fixture()
def service():
    return EvaluationService(synthetic_signals())


class TestNdcgMetric:
    def test_dcg_discounts_by_position(self):
        assert dcg([1.0]) == pytest.approx(1.0)
        assert dcg([0.0, 1.0]) == pytest.approx(1.0 / 1.5849625007211562)

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            ndcg_at_k(["a"], {"a": 1.0}, 0)

    def test_empty_ideal_is_vacuously_perfect(self):
        assert ndcg_at_k(["a", "b"], {}, 5) == 1.0
        assert ndcg_at_k([], {"a": 0.0}, 5) == 1.0

    def test_ideal_order_scores_one(self):
        relevance = {"a": 3.0, "b": 2.0, "c": 1.0}
        assert ndcg_at_k(["a", "b", "c"], relevance, 3) == pytest.approx(1.0)

    def test_burying_the_beacon_costs_most(self):
        relevance = {"beacon": 5.0, "x": 1.0, "y": 1.0}
        swap_tail = ndcg_at_k(["beacon", "y", "x"], relevance, 3)
        bury_beacon = ndcg_at_k(["x", "y", "beacon"], relevance, 3)
        assert swap_tail == pytest.approx(1.0)  # equal grades, same NDCG
        assert bury_beacon < 0.75


class TestRankKeyGroundTruthAlignment:
    def test_group_order_is_monotone_in_relevance(self, service):
        # the detector's primary sort (group order) never inverts the
        # ground-truth grades -- this is why the paper profile is perfect
        ranked = sorted(
            service.signals,
            key=lambda s: rank_key(s.group, s.varies, s.entropy, s.growth_rate),
        )
        grades = [s.relevance for s in ranked]
        assert grades == sorted(grades, reverse=True)

    def test_inert_channels_grade_zero(self):
        inert = ChannelSignal(
            "version", UniquenessGroup.NOT_UNIQUE, False, 0.0, 0.0
        )
        assert inert.relevance == 0.0
        assert rank_key(inert.group, inert.varies, 0.0, 0.0) == (4, 0.0)


class TestProfiles:
    def test_paper_profile_is_perfect(self, service):
        paper = service.paper_profile()
        assert paper.masked == ()
        assert paper.misclassified == ()
        for k in (5, 10):
            assert service.score(paper, k=k) == 1.0

    def test_profiles_are_deterministic_per_seed(self, service):
        assert service.profile(42) == service.profile(42)
        assert service.profile(42) != service.profile(43)

    def test_masked_channels_leave_the_ideal_too(self):
        # a profile that masks channels but misclassifies nothing still
        # scores 1.0: the detector is not penalized for channels the
        # cloud's masking policy removed
        clean = EvaluationService(
            synthetic_signals(), mask_probability=0.5,
            misclassify_probability=0.0, signal_noise=0.0,
        )
        for seed in range(20):
            profile = clean.profile(seed)
            if profile.masked:
                break
        assert profile.masked
        assert set(profile.masked) & set(s.channel_id for s in clean.signals)
        assert clean.score(profile, k=10) == 1.0

    def test_misclassification_degrades_the_score(self):
        noisy = EvaluationService(
            synthetic_signals(), mask_probability=0.0,
            misclassify_probability=1.0, signal_noise=0.0,
        )
        profile = noisy.profile(1)
        # every unique channel degraded to varying-not-unique: the
        # ranking falls back to entropy order, which inverts at least
        # one group boundary in this channel set
        assert "boot_id" in profile.misclassified
        assert noisy.score(profile, k=10) < 1.0

    def test_noise_alone_cannot_break_group_order(self):
        jittered = EvaluationService(
            synthetic_signals(), mask_probability=0.0,
            misclassify_probability=0.0, signal_noise=1.0,
        )
        # noise only perturbs intra-group tiebreaks, which carry equal
        # grades -- NDCG stays perfect however large the jitter
        for seed in range(10):
            assert jittered.score(jittered.profile(seed), k=10) == 1.0


class TestSweep:
    def test_report_shape_and_gates(self, service):
        report = service.sweep(profiles=200, k=10)
        assert report.profiles == 200
        assert report.k == 10
        assert 0.0 < report.mean <= 1.0
        assert set(report.percentiles) == {
            "p5", "p25", "p50", "p75", "min", "max"
        }
        assert report.percentiles["min"] <= report.mean
        assert report.percentiles["max"] <= 1.0
        assert 0.0 <= report.perfect_fraction <= 1.0
        assert len(report.worst) == 10
        worst_scores = [w["ndcg"] for w in report.worst]
        assert worst_scores == sorted(worst_scores)
        assert report.percentiles["min"] == worst_scores[0]

    def test_sweep_is_deterministic(self, service):
        a = service.sweep(profiles=50, k=10)
        b = service.sweep(profiles=50, k=10)
        assert a.as_dict() == b.as_dict()

    def test_as_dict_is_json_shaped(self, service):
        import json

        payload = service.sweep(profiles=20, k=5).as_dict()
        assert json.loads(json.dumps(payload)) == payload
        assert payload["k"] == 5
        assert "mean_ndcg" in payload
        assert "worst_profiles" in payload

    def test_rejects_empty_sweep_and_signals(self, service):
        with pytest.raises(ValueError):
            service.sweep(profiles=0)
        with pytest.raises(ValueError):
            EvaluationService([])
