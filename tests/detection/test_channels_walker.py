"""Tests for the channel registry and the pseudo-file walker."""

import pytest

from repro.detection.channels import (
    CHANNELS,
    channel_by_id,
    channels_for_path,
    representative_paths,
)
from repro.detection.walker import PseudoWalker, ReadOutcome
from repro.procfs.node import ReadContext
from repro.runtime.policy import MaskingPolicy


class TestRegistry:
    def test_table1_row_count(self):
        # Table I has 21 rows; several rows expand to multiple concrete
        # channels here (e.g. /proc/sys/fs/* covers three files)
        assert len(CHANNELS) >= 21

    def test_ids_unique(self):
        ids = [c.channel_id for c in CHANNELS]
        assert len(ids) == len(set(ids))

    def test_lookup(self):
        assert channel_by_id("proc.meminfo").table_label == "/proc/meminfo"
        with pytest.raises(KeyError):
            channel_by_id("bogus")

    def test_vulnerability_flags_match_table1(self):
        # spot-check some Table I cells
        assert not channel_by_id("proc.modules").coresidence
        assert channel_by_id("proc.softirqs").dos
        assert channel_by_id("proc.meminfo").dos
        assert not channel_by_id("proc.uptime").dos
        assert all(c.info_leak for c in CHANNELS)

    def test_path_matching(self):
        matches = channels_for_path(
            "/sys/class/powercap/intel-rapl:0/energy_uj"
        )
        assert [c.channel_id for c in matches] == ["sys.class.powercap.energy_uj"]

    def test_rapl_channel_requires_hardware_flag(self):
        assert channel_by_id("sys.class.powercap.energy_uj").requires_rapl
        assert channel_by_id(
            "sys.devices.platform.coretemp.temp_input"
        ).requires_dts

    def test_representative_paths_exist_on_default_host(self, engine):
        for channel in CHANNELS:
            paths = representative_paths(engine.vfs, channel)
            assert paths, channel.channel_id

    def test_representative_paths_absent_without_hardware(self):
        from repro.kernel.config import AMD_OPTERON, HostConfig
        from repro.kernel.kernel import Machine
        from repro.procfs.vfs import PseudoVFS

        machine = Machine(config=HostConfig(cpu=AMD_OPTERON), seed=1)
        vfs = PseudoVFS(machine.kernel)
        rapl = channel_by_id("sys.class.powercap.energy_uj")
        assert representative_paths(vfs, rapl) == []


class TestWalker:
    def test_walk_reads_everything(self, machine, engine):
        walker = PseudoWalker(engine.vfs, ReadContext(kernel=machine.kernel))
        entries = walker.walk()
        assert all(e.outcome is ReadOutcome.OK for e in entries.values())
        assert len(entries) > 200

    def test_denied_recorded_not_raised(self, machine, engine):
        policy = MaskingPolicy(name="m").deny("/proc/meminfo")
        c = engine.create(name="c1", policy=policy)
        walker = PseudoWalker(engine.vfs, c.read_context())
        entry = walker.read_one("/proc/meminfo")
        assert entry.outcome is ReadOutcome.DENIED
        assert entry.content is None
        assert entry.channel == "proc.meminfo"

    def test_hidden_recorded_as_absent(self, machine, engine):
        policy = MaskingPolicy(name="m").hide("/proc/meminfo")
        c = engine.create(name="c1", policy=policy)
        walker = PseudoWalker(engine.vfs, c.read_context())
        assert walker.read_one("/proc/meminfo").outcome is ReadOutcome.ABSENT

    def test_missing_path_absent(self, machine, engine):
        walker = PseudoWalker(engine.vfs, ReadContext(kernel=machine.kernel))
        assert walker.read_one("/proc/bogus").outcome is ReadOutcome.ABSENT


class TestWalkerUnderFaults:
    """Satellite: tree walks tolerate masked and transiently-faulted files."""

    def _fault(self, machine, glob, until=1e9):
        from repro.sim.faults import KernelFaultState
        from repro.sim.rng import DeterministicRNG

        state = KernelFaultState(DeterministicRNG(1))
        state.add_eio(glob, until=until)
        machine.kernel.faults = state
        return state

    def test_transient_eio_recorded_as_error(self, machine, engine):
        self._fault(machine, "/proc/uptime")
        walker = PseudoWalker(engine.vfs, ReadContext(kernel=machine.kernel))
        entry = walker.read_one("/proc/uptime")
        assert entry.outcome is ReadOutcome.ERROR
        assert entry.content is None
        assert entry.channel == "proc.uptime"

    def test_full_walk_completes_over_faulted_tree(self, machine, engine):
        state = self._fault(machine, "/proc/*")
        walker = PseudoWalker(engine.vfs, ReadContext(kernel=machine.kernel))
        entries = walker.walk()
        outcomes = {e.outcome for e in entries.values()}
        assert ReadOutcome.ERROR in outcomes  # top-level /proc files fault
        assert ReadOutcome.OK in outcomes  # /sys and nested files still read
        assert state.stats.get("reads-failed:pseudo-eio") > 0

    def test_masked_and_faulted_tree_walk(self, machine, engine):
        """Policy masks and transient faults coexist in one walk."""
        self._fault(machine, "/proc/uptime")
        policy = MaskingPolicy(name="m").deny("/proc/meminfo").hide("/proc/stat")
        c = engine.create(name="c1", policy=policy)
        walker = PseudoWalker(engine.vfs, c.read_context())
        entries = walker.walk(
            ["/proc/uptime", "/proc/meminfo", "/proc/stat", "/proc/loadavg"]
        )
        assert entries["/proc/uptime"].outcome is ReadOutcome.ERROR
        assert entries["/proc/meminfo"].outcome is ReadOutcome.DENIED
        assert entries["/proc/stat"].outcome is ReadOutcome.ABSENT
        assert entries["/proc/loadavg"].outcome is ReadOutcome.OK

    def test_expired_fault_window_reads_ok(self, machine, engine):
        self._fault(machine, "/proc/uptime", until=5.0)
        machine.run(10.0, dt=1.0)
        walker = PseudoWalker(engine.vfs, ReadContext(kernel=machine.kernel))
        assert walker.read_one("/proc/uptime").outcome is ReadOutcome.OK
