"""Tests for cloud inspection (the Table I matrix)."""

import pytest

from repro.detection.channels import CHANNELS
from repro.detection.inspector import (
    Availability,
    CloudInspector,
    format_table1,
    inspect_all,
)
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud


@pytest.fixture(scope="module")
def reports():
    clouds = {
        name: ContainerCloud(profile, seed=31, servers=1)
        for name, profile in PROVIDER_PROFILES.items()
    }
    return inspect_all(clouds)


class TestInspection:
    def test_every_channel_has_a_cell_per_provider(self, reports):
        for report in reports.values():
            assert set(report.cells) == {c.channel_id for c in CHANNELS}

    def test_cc1_leaves_most_channels_open(self, reports):
        cc1 = reports["CC1"]
        assert len(cc1.available_channels()) >= 20
        assert "proc.sched_debug" in cc1.masked_channels()
        assert "proc.uptime" in cc1.available_channels()

    def test_cc3_masks_fs_and_netprio(self, reports):
        cc3 = reports["CC3"]
        masked = cc3.masked_channels()
        assert "proc.sys.fs.file-nr" in masked
        assert "sys.fs.cgroup.net_prio.ifpriomap" in masked

    def test_cc4_lacks_hardware_channels(self, reports):
        cc4 = reports["CC4"]
        masked = cc4.masked_channels()
        assert "sys.class.powercap.energy_uj" in masked
        assert "sys.devices.platform.coretemp.temp_input" in masked

    def test_cc5_partial_cells(self, reports):
        cc5 = reports["CC5"]
        assert cc5.cells["proc.meminfo"] is Availability.PARTIAL
        assert cc5.cells["proc.cpuinfo"] is Availability.PARTIAL
        assert cc5.cells["proc.stat"] is Availability.PARTIAL
        assert cc5.cells["proc.uptime"] is Availability.MASKED

    def test_version_and_modules_open_everywhere(self, reports):
        """Table I: /proc/modules and /proc/version are ● in all clouds."""
        for report in reports.values():
            assert report.cells["proc.modules"] is Availability.FULL
            assert report.cells["proc.version"] is Availability.FULL

    def test_rapl_open_on_intel_clouds(self, reports):
        for name in ("CC1", "CC2", "CC3"):
            assert reports[name].cells["sys.class.powercap.energy_uj"] is (
                Availability.FULL
            )

    def test_inspection_cleans_up_probe_instance(self):
        cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=5, servers=1)
        CloudInspector().inspect(cloud)
        assert cloud.instances_of("inspector") == []


class TestFormatting:
    def test_format_table1_renders_all_rows(self, reports):
        table = format_table1(reports)
        for channel in CHANNELS:
            assert channel.table_label in table
        for provider in PROVIDER_PROFILES:
            assert provider in table
        assert "●" in table and "○" in table and "◐" in table
