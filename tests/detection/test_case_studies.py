"""The paper's two root-cause case studies, as executable tests.

Case Study I — ``net_prio.ifpriomap``: the read handler iterates
``init_net`` instead of the reader's NET namespace.

Case Study II — RAPL in containers: ``get_energy_counter`` returns the
host's MSR-backed counter to any reader.
"""


from repro.kernel.namespaces import NamespaceType
from repro.runtime.workload import constant


class TestCaseStudyNetPrio:
    def test_container_net_namespace_has_only_veth(self, engine):
        """The container's own NET namespace is correctly small..."""
        c = engine.create(name="c1")
        ns = c.namespaces[NamespaceType.NET]
        devices = [d.name for d in engine.kernel.netdev.devices_in(ns)]
        assert devices == ["lo", "eth0"]

    def test_ifpriomap_reads_init_net_regardless(self, engine):
        """...but ifpriomap walks init_net — the leak."""
        c = engine.create(name="c1")
        content = c.read("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
        leaked = [line.split()[0] for line in content.splitlines()]
        assert "eth1" in leaked  # a physical host interface
        assert "docker0" in leaked  # the host bridge

    def test_priorities_are_per_cgroup_but_names_are_global(self, engine):
        c1 = engine.create(name="c1")
        c2 = engine.create(name="c2")
        c1.set_net_prio("eth0", 7)
        map_1 = c1.read("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
        map_2 = c2.read("/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
        assert "eth0 7" in map_1
        assert "eth0 0" in map_2
        def names(text):
            return [ln.split()[0] for ln in text.splitlines()]

        assert names(map_1) == names(map_2)  # same leaked device list

    def test_patched_handler_closes_the_leak(self, engine):
        from repro.procfs.render.sys_cgroup import render_ifpriomap_fixed

        c = engine.create(name="c1")
        fixed = render_ifpriomap_fixed(c.read_context())
        assert "eth1" not in fixed
        assert "docker0" not in fixed


class TestCaseStudyRapl:
    PATH = "/sys/class/powercap/intel-rapl:0/energy_uj"

    def test_container_reads_host_counter(self, machine, engine):
        c = engine.create(name="c1")
        machine.run(5, dt=1.0)
        inside = int(c.read(self.PATH))
        host = machine.kernel.rapl.package(0).package.energy_uj
        assert inside == host

    def test_counter_reflects_other_tenants_load(self, machine, engine):
        """The energy_raw pointer refers to the host's data: a busy
        neighbour is visible to an idle container."""
        observer = engine.create(name="observer")
        victim = engine.create(name="victim")

        def watts_over(seconds):
            before = int(observer.read(self.PATH))
            machine.run(seconds, dt=1.0)
            return (int(observer.read(self.PATH)) - before) / 1e6 / seconds

        baseline = watts_over(10)
        victim.exec("burn", workload=constant("burn", cpu_demand=1.0, ipc=2.5))
        loaded = watts_over(10)
        assert loaded > baseline + 5.0

    def test_two_containers_read_identical_energy(self, machine, engine):
        c1 = engine.create(name="c1")
        c2 = engine.create(name="c2")
        machine.run(3, dt=1.0)
        assert c1.read(self.PATH) == c2.read(self.PATH)
