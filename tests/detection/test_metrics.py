"""Tests for the U/V/M metrics and Table II ranking.

The assessor is expensive to build (it runs live probes), so one
module-scoped instance backs all assertions.
"""

import pytest

from repro.detection.metrics import (
    ChannelAssessor,
    Manipulation,
    UniquenessGroup,
)


@pytest.fixture(scope="module")
def assessments():
    assessor = ChannelAssessor(seed=17, snapshots=8, interval_s=5.0)
    rows = assessor.assess_all()
    return {a.channel_id: a for a in rows}, rows


class TestUniqueness:
    def test_boot_id_is_static_unique(self, assessments):
        by_id, _ = assessments
        a = by_id["proc.sys.kernel.random.boot_id"]
        assert a.unique
        assert a.group is UniquenessGroup.STATIC_ID
        assert not a.varies

    def test_ifpriomap_is_static_unique(self, assessments):
        by_id, _ = assessments
        assert by_id["sys.fs.cgroup.net_prio.ifpriomap"].group is (
            UniquenessGroup.STATIC_ID
        )

    def test_implantable_group(self, assessments):
        by_id, _ = assessments
        for cid in ("proc.sched_debug", "proc.timer_list", "proc.locks"):
            assert by_id[cid].group is UniquenessGroup.IMPLANTABLE, cid
            assert by_id[cid].manipulation is Manipulation.DIRECT

    def test_accumulator_group(self, assessments):
        by_id, _ = assessments
        for cid in ("proc.uptime", "proc.stat", "proc.schedstat",
                    "proc.softirqs", "proc.interrupts",
                    "sys.devices.system.node.numastat",
                    "sys.class.powercap.energy_uj",
                    "sys.devices.system.cpu.cpuidle.usage",
                    "sys.devices.system.cpu.cpuidle.time",
                    "proc.sys.fs.file-nr"):
            assert by_id[cid].group is UniquenessGroup.ACCUMULATOR, cid
            assert by_id[cid].unique

    def test_not_unique_group(self, assessments):
        by_id, _ = assessments
        for cid in ("proc.zoneinfo", "proc.meminfo", "proc.loadavg",
                    "proc.fs.ext4.mb_groups",
                    "sys.devices.platform.coretemp.temp_input",
                    "proc.sys.kernel.random.entropy_avail"):
            assert not by_id[cid].unique, cid
            assert by_id[cid].varies, cid

    def test_inert_channels(self, assessments):
        """Table II's bottom group: modules, cpuinfo, version."""
        by_id, _ = assessments
        for cid in ("proc.modules", "proc.cpuinfo", "proc.version"):
            a = by_id[cid]
            assert not a.unique and not a.varies, cid
            assert a.manipulation is Manipulation.NONE, cid


class TestManipulation:
    def test_direct_channels(self, assessments):
        by_id, _ = assessments
        assert by_id["proc.timer_list"].manipulation is Manipulation.DIRECT

    def test_indirect_channels(self, assessments):
        by_id, _ = assessments
        for cid in ("proc.stat", "proc.meminfo",
                    "sys.class.powercap.energy_uj",
                    "sys.devices.platform.coretemp.temp_input"):
            assert by_id[cid].manipulation is Manipulation.INDIRECT, cid

    def test_static_ids_not_manipulable(self, assessments):
        by_id, _ = assessments
        assert by_id["proc.sys.kernel.random.boot_id"].manipulation is (
            Manipulation.NONE
        )


class TestRanking:
    def test_table2_group_ordering(self, assessments):
        _, rows = assessments
        order = [a.channel_id for a in rows]
        # static ids first
        assert order[0] in ("proc.sys.kernel.random.boot_id",
                            "sys.fs.cgroup.net_prio.ifpriomap")
        assert order[1] in ("proc.sys.kernel.random.boot_id",
                            "sys.fs.cgroup.net_prio.ifpriomap")
        # then the implantable trio, richest surface first
        assert order[2:5] == ["proc.sched_debug", "proc.timer_list", "proc.locks"]
        # inert channels dead last
        assert set(order[-3:]) == {"proc.modules", "proc.cpuinfo", "proc.version"}

    def test_unique_channels_rank_above_varying_only(self, assessments):
        _, rows = assessments
        order = [a.channel_id for a in rows]
        assert order.index("proc.uptime") < order.index("proc.meminfo")
        assert order.index("sys.class.powercap.energy_uj") < order.index(
            "proc.loadavg"
        )

    def test_v_group_ranked_by_entropy(self, assessments):
        _, rows = assessments
        v_group = [
            a for a in rows
            if a.group is UniquenessGroup.NOT_UNIQUE and a.varies
        ]
        entropies = [a.entropy for a in v_group]
        assert entropies == sorted(entropies, reverse=True)

    def test_zoneinfo_entropy_exceeds_loadavg(self, assessments):
        """Table II ranks zoneinfo far above loadavg in the V group."""
        by_id, _ = assessments
        assert by_id["proc.zoneinfo"].entropy > by_id["proc.loadavg"].entropy

    def test_accumulators_ranked_by_growth(self, assessments):
        _, rows = assessments
        acc = [a for a in rows if a.group is UniquenessGroup.ACCUMULATOR]
        rates = [a.growth_rate for a in acc]
        assert rates == sorted(rates, reverse=True)
