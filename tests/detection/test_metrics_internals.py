"""Unit tests for the metric assessor's internal analyses."""

import pytest

from repro.detection.metrics import (
    ChannelAssessment,
    ChannelAssessor,
    Manipulation,
    UniquenessGroup,
    _tokens,
)
from repro.errors import ReproError


def make_assessment(**overrides):
    defaults = dict(
        channel_id="x",
        unique=False,
        group=UniquenessGroup.NOT_UNIQUE,
        varies=True,
        manipulation=Manipulation.NONE,
        entropy=1.0,
        growth_rate=0.0,
    )
    defaults.update(overrides)
    return ChannelAssessment(**defaults)


class TestTokenizer:
    def test_integers_and_floats(self):
        assert _tokens("cpu 12 3.5 -7\n") == [12.0, 3.5, -7.0]

    def test_no_numbers(self):
        assert _tokens("hello world") == []

    def test_embedded_numbers(self):
        assert _tokens("eth0: 1024 bytes") == [0.0, 1024.0]


class TestAccumulatorStats:
    @pytest.fixture(scope="class")
    def assessor(self):
        # snapshots/interval only matter for series collection; internals
        # are exercised directly here
        return ChannelAssessor(seed=231, snapshots=4, interval_s=1.0)

    def test_monotone_series_detected(self, assessor):
        series = ["10 100", "12 100", "15 100", "19 100"]
        monotone, rate = assessor._accumulator_stats(series)
        assert monotone
        assert rate > 0

    def test_fluctuating_series_rejected(self, assessor):
        series = ["10 5", "12 3", "11 9", "13 2"]
        monotone, _ = assessor._accumulator_stats(series)
        assert not monotone

    def test_constant_series_rejected(self, assessor):
        monotone, rate = assessor._accumulator_stats(["5 5", "5 5", "5 5"])
        assert not monotone
        assert rate == 0.0

    def test_structure_change_rejected(self, assessor):
        monotone, _ = assessor._accumulator_stats(["1 2", "1 2 3", "1 2"])
        assert not monotone

    def test_mixed_majority_rule(self, assessor):
        # two monotone columns vs one fluctuating: majority monotone
        series = ["1 10 7", "2 11 3", "3 12 9", "4 13 1"]
        monotone, _ = assessor._accumulator_stats(series)
        assert monotone
        # one monotone vs two fluctuating: not an accumulator
        series = ["1 10 7", "2 4 3", "3 12 9", "4 2 1"]
        monotone, _ = assessor._accumulator_stats(series)
        assert not monotone


class TestEntropyInternals:
    @pytest.fixture(scope="class")
    def assessor(self):
        return ChannelAssessor(seed=232, snapshots=4, interval_s=1.0)

    def test_constant_channel_zero_entropy(self, assessor):
        assert assessor._entropy(["abc 1", "abc 1", "abc 1"]) == 0.0

    def test_more_changing_fields_more_entropy(self, assessor):
        one_field = ["1 5", "2 5", "3 5", "4 5"]
        two_fields = ["1 5", "2 6", "3 7", "4 8"]
        assert assessor._entropy(two_fields) > assessor._entropy(one_field)

    def test_structure_change_falls_back_to_hash(self, assessor):
        series = ["a 1", "b 1 2", "a 1", "c 1 2 3"]
        assert assessor._entropy(series) > 0.0


class TestFieldDeltas:
    def test_relative_deltas(self):
        deltas = ChannelAssessor._field_deltas("10 100", "20 100")
        assert deltas == [pytest.approx(0.5), 0.0]

    def test_structure_change_returns_none(self):
        assert ChannelAssessor._field_deltas("1 2", "1 2 3") is None

    def test_no_numbers_returns_none(self):
        assert ChannelAssessor._field_deltas("abc", "def") is None


class TestRankKey:
    def test_group_order(self):
        static = make_assessment(group=UniquenessGroup.STATIC_ID, unique=True)
        implant = make_assessment(group=UniquenessGroup.IMPLANTABLE, unique=True)
        acc = make_assessment(group=UniquenessGroup.ACCUMULATOR, unique=True)
        varying = make_assessment(group=UniquenessGroup.NOT_UNIQUE)
        inert = make_assessment(group=UniquenessGroup.NOT_UNIQUE, varies=False)
        keys = [a.rank_key for a in (static, implant, acc, varying, inert)]
        assert keys == sorted(keys)

    def test_accumulators_tiebreak_by_growth(self):
        fast = make_assessment(
            group=UniquenessGroup.ACCUMULATOR, unique=True, growth_rate=2.0
        )
        slow = make_assessment(
            group=UniquenessGroup.ACCUMULATOR, unique=True, growth_rate=0.1
        )
        assert fast.rank_key < slow.rank_key

    def test_v_group_tiebreak_by_entropy(self):
        rich = make_assessment(entropy=50.0)
        poor = make_assessment(entropy=2.0)
        assert rich.rank_key < poor.rank_key


class TestAssessorValidation:
    def test_too_few_snapshots_rejected(self):
        with pytest.raises(ReproError):
            ChannelAssessor(seed=1, snapshots=2)
