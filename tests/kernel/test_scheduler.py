"""Tests for the scheduler: allocation, accounting, loadavg, perf overhead."""

import pytest

from repro.errors import KernelError
from repro.kernel.kernel import Machine
from repro.runtime.workload import constant


def spawn_cpu_task(kernel, name="worker", demand=1.0, **kwargs):
    return kernel.spawn(
        name,
        workload=constant(
            name,
            cpu_demand=demand,
            ipc=2.0,
            cache_miss_per_kinst=0.5,
            branch_miss_per_kinst=1.0,
            **kwargs,
        ),
    )


@pytest.fixture
def quiet_machine():
    """A machine without boot daemons, for exact accounting checks."""
    return Machine(seed=5, spawn_daemons=False)


class TestAllocation:
    def test_single_task_gets_full_demand(self, quiet_machine):
        k = quiet_machine.kernel
        task = spawn_cpu_task(k)
        quiet_machine.run(10, dt=1.0)
        assert task.cpu_time_ns == pytest.approx(10e9, rel=0.01)

    def test_half_demand_gets_half_time(self, quiet_machine):
        k = quiet_machine.kernel
        task = spawn_cpu_task(k, demand=0.5)
        quiet_machine.run(10, dt=1.0)
        assert task.cpu_time_ns == pytest.approx(5e9, rel=0.01)

    def test_oversubscribed_cpu_shares_fairly(self, quiet_machine):
        k = quiet_machine.kernel
        cpu0 = frozenset([0])
        a = k.spawn("a", workload=constant("a", cpu_demand=1.0), affinity=cpu0)
        b = k.spawn("b", workload=constant("b", cpu_demand=1.0), affinity=cpu0)
        quiet_machine.run(10, dt=1.0)
        assert a.cpu_time_ns == pytest.approx(5e9, rel=0.02)
        assert b.cpu_time_ns == pytest.approx(5e9, rel=0.02)

    def test_tasks_spread_across_cpus(self, quiet_machine):
        k = quiet_machine.kernel
        tasks = [spawn_cpu_task(k, name=f"t{i}") for i in range(8)]
        placements = {k.scheduler.placement_of(t) for t in tasks}
        assert placements == set(range(8))

    def test_empty_cpu_mask_rejected(self, quiet_machine):
        k = quiet_machine.kernel
        with pytest.raises(KernelError):
            k.spawn("bad", workload=constant("bad"), affinity=frozenset())

    def test_affinity_respected(self, quiet_machine):
        k = quiet_machine.kernel
        task = k.spawn("pinned", workload=constant("p"), affinity=frozenset([3]))
        assert k.scheduler.placement_of(task) == 3


class TestAccounting:
    def test_idle_time_accumulates_on_idle_cpus(self, quiet_machine):
        quiet_machine.run(10, dt=1.0)
        k = quiet_machine.kernel
        assert k.idle_seconds == pytest.approx(80.0, rel=0.01)

    def test_busy_cpu_has_no_idle(self, quiet_machine):
        k = quiet_machine.kernel
        task = spawn_cpu_task(k)
        cpu = k.scheduler.placement_of(task)
        quiet_machine.run(10, dt=1.0)
        assert k.scheduler.cpu_stats[cpu].idle_ns == 0

    def test_instructions_follow_ipc(self, quiet_machine):
        k = quiet_machine.kernel
        task = spawn_cpu_task(k)
        quiet_machine.run(1, dt=1.0)
        freq = k.config.cpu.frequency_hz
        expected = freq * 2.0  # ipc = 2.0
        assert task.workload.total.instructions == pytest.approx(expected, rel=0.01)

    def test_context_switches_counted(self, quiet_machine):
        k = quiet_machine.kernel
        task = k.spawn(
            "switchy",
            workload=constant("s", cpu_demand=0.5, voluntary_switches_per_sec=100),
        )
        quiet_machine.run(10, dt=1.0)
        assert task.nvcsw == 1000
        assert k.scheduler.nr_switches_total >= 1000

    def test_utilization_reported(self, quiet_machine):
        k = quiet_machine.kernel
        task = spawn_cpu_task(k)
        cpu = k.scheduler.placement_of(task)
        result = k.scheduler.tick(1.0)
        assert result.utilization[cpu] == pytest.approx(1.0)
        other = (cpu + 1) % k.config.total_cores
        assert result.utilization[other] == 0.0


class TestLoadavg:
    def test_loadavg_rises_toward_running_count(self, quiet_machine):
        k = quiet_machine.kernel
        for i in range(4):
            spawn_cpu_task(k, name=f"l{i}")
        quiet_machine.run(120, dt=1.0)
        assert 3.0 < k.scheduler.loadavg_1 < 4.05
        # slower averages lag behind
        assert k.scheduler.loadavg_15 < k.scheduler.loadavg_1

    def test_loadavg_decays_when_idle(self, quiet_machine):
        k = quiet_machine.kernel
        spawn_cpu_task(k, name="burst", duration=10.0)
        quiet_machine.run(10, dt=1.0)
        peak = k.scheduler.loadavg_1
        quiet_machine.run(120, dt=1.0)
        assert k.scheduler.loadavg_1 < peak / 2


class TestSchedDomainCosts:
    def test_cost_rises_under_load(self, quiet_machine):
        k = quiet_machine.kernel
        before = dict(k.scheduler.max_newidle_lb_cost)
        task = spawn_cpu_task(k)
        cpu = k.scheduler.placement_of(task)
        quiet_machine.run(30, dt=1.0)
        assert k.scheduler.max_newidle_lb_cost[cpu] > before[cpu]

    def test_cost_decays_when_idle(self, quiet_machine):
        k = quiet_machine.kernel
        before = dict(k.scheduler.max_newidle_lb_cost)
        quiet_machine.run(60, dt=1.0)
        assert all(
            k.scheduler.max_newidle_lb_cost[c] <= before[c]
            for c in range(k.config.total_cores)
        )


class TestPerfOverhead:
    """The Table III mechanisms, at the scheduler level."""

    def _pipe_workload(self, name):
        return constant(
            name,
            cpu_demand=0.5,
            ipc=1.0,
            voluntary_switches_per_sec=100_000,
            syscalls_per_sec=200_000,
        )

    def test_no_overhead_without_monitoring(self, quiet_machine):
        k = quiet_machine.kernel
        groups = k.cgroups.create_group_set("docker/c1")
        task = k.spawn(
            "pipe", workload=self._pipe_workload("pipe"), cgroup_set=groups
        )
        quiet_machine.run(10, dt=1.0)
        # full useful time: work_units == granted cpu seconds
        assert task.workload.total.work_units == pytest.approx(5.0, rel=0.01)

    def test_inter_cgroup_switching_costs_time_when_monitored(self, quiet_machine):
        k = quiet_machine.kernel
        groups = k.cgroups.create_group_set("docker/c1")
        k.perf.enable(groups["perf_event"])
        task = k.spawn(
            "pipe", workload=self._pipe_workload("pipe"), cgroup_set=groups
        )
        quiet_machine.run(10, dt=1.0)
        # 100k switches/s, all inter-cgroup (idle neighbour), toggle 2us
        # => ~0.2s/s overhead against a 0.5s/s grant => ~40% work lost
        useful = task.workload.total.work_units
        assert useful < 3.5
        assert useful > 2.0

    def test_same_cgroup_peer_absorbs_switches(self, quiet_machine):
        k = quiet_machine.kernel
        groups = k.cgroups.create_group_set("docker/c1")
        k.perf.enable(groups["perf_event"])
        cpu0 = frozenset([0])
        a = k.spawn(
            "pipe-a",
            workload=self._pipe_workload("a"),
            affinity=cpu0,
            cgroup_set=groups,
        )
        b = k.spawn(
            "pipe-b",
            workload=self._pipe_workload("b"),
            affinity=cpu0,
            cgroup_set=groups,
        )
        quiet_machine.run(10, dt=1.0)
        # CPU fully occupied by same-cgroup tasks: p_inter == 0, only the
        # one-off spawn debt remains.
        assert a.workload.total.work_units == pytest.approx(5.0, rel=0.02)
        assert b.workload.total.work_units == pytest.approx(5.0, rel=0.02)

    def test_spawn_debt_charged_once(self, quiet_machine):
        k = quiet_machine.kernel
        groups = k.cgroups.create_group_set("docker/c1")
        k.perf.enable(groups["perf_event"])
        task = k.spawn(
            "calm",
            workload=constant(
                "calm",
                cpu_demand=1.0,
                voluntary_switches_per_sec=0,
                cache_miss_per_kinst=0.0,
                branch_miss_per_kinst=0.0,
            ),
            cgroup_set=groups,
        )
        quiet_machine.run(2, dt=1.0)
        lost = 2.0 - task.workload.total.work_units
        assert 0 < lost < 0.001  # 50us spawn debt only
