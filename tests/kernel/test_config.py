"""Tests for host configuration validation and derived properties."""

import pytest

from repro.errors import KernelError
from repro.kernel.config import (
    AMD_OPTERON,
    INTEL_PRE_SANDY_BRIDGE,
    INTEL_SKYLAKE,
    CpuSpec,
    HostConfig,
)


class TestCpuSpec:
    def test_default_is_the_papers_testbed(self):
        # The paper's evaluation machine: i7-6700 @ 3.40GHz, 8 cores.
        spec = INTEL_SKYLAKE
        assert "i7-6700" in spec.model_name
        assert spec.cores == 8
        assert spec.supports_rapl

    def test_frequency_conversion(self):
        assert CpuSpec(frequency_mhz=2000.0).frequency_hz == 2.0e9

    def test_pre_sandy_bridge_lacks_rapl(self):
        assert not INTEL_PRE_SANDY_BRIDGE.supports_rapl

    def test_amd_lacks_rapl_and_dts(self):
        assert not AMD_OPTERON.supports_rapl
        assert not AMD_OPTERON.supports_dts


class TestHostConfig:
    def test_defaults_are_valid(self):
        config = HostConfig()
        assert config.total_cores == 8
        assert config.has_rapl
        assert config.has_coretemp

    def test_total_cores_scales_with_packages(self):
        config = HostConfig(packages=2)
        assert config.total_cores == 16

    def test_memory_bytes(self):
        config = HostConfig(memory_mb=1024)
        assert config.memory_bytes == 1024 * 1024 * 1024

    def test_rapl_follows_cpu_support(self):
        config = HostConfig(cpu=AMD_OPTERON)
        assert not config.has_rapl

    def test_zero_packages_rejected(self):
        with pytest.raises(KernelError):
            HostConfig(packages=0)

    def test_tiny_memory_rejected(self):
        with pytest.raises(KernelError):
            HostConfig(memory_mb=32)

    def test_implausible_numa_rejected(self):
        with pytest.raises(KernelError):
            HostConfig(packages=1, numa_nodes=9)

    def test_boot_modules_present(self):
        config = HostConfig()
        names = [name for name, _, _ in config.modules]
        assert "intel_rapl" in names
        assert "ext4" in names
