"""Tests for interrupts, timers, locks, modules, RNG, filesystem, netdev,
cpuidle, and thermal subsystems."""

import pytest

from repro.errors import KernelError
from repro.kernel.kernel import Machine
from repro.kernel.namespaces import NamespaceType
from repro.runtime.workload import constant, idle


@pytest.fixture
def machine():
    return Machine(seed=11, spawn_daemons=False)


def run_with_worker(machine, **workload_kwargs):
    defaults = dict(cpu_demand=1.0, ipc=2.0)
    defaults.update(workload_kwargs)
    task = machine.kernel.spawn("worker", workload=constant("w", **defaults))
    machine.run(10, dt=1.0)
    return task


class TestInterrupts:
    def test_timer_interrupts_accumulate(self, machine):
        machine.run(10, dt=1.0)
        loc = machine.kernel.interrupts.irq("LOC")
        assert loc.total > 0

    def test_busy_cpu_takes_more_timer_interrupts(self, machine):
        task = run_with_worker(machine)
        k = machine.kernel
        busy_cpu = k.scheduler.placement_of(task)
        loc = k.interrupts.irq("LOC")
        idle_cpu = (busy_cpu + 1) % k.config.total_cores
        assert loc.per_cpu[busy_cpu] > loc.per_cpu[idle_cpu] * 3

    def test_network_traffic_raises_net_irqs(self, machine):
        run_with_worker(machine, net_kbps=100_000)
        k = machine.kernel
        net_rx = sum(k.interrupts.softirqs["NET_RX"])
        assert net_rx > 0

    def test_disk_io_raises_block_softirqs(self, machine):
        run_with_worker(machine, io_ops_per_sec=1000)
        assert sum(machine.kernel.interrupts.softirqs["BLOCK"]) > 0

    def test_totals_are_consistent(self, machine):
        machine.run(5, dt=1.0)
        intr = machine.kernel.interrupts
        assert intr.total_interrupts == sum(ln.total for ln in intr.lines)


class TestTimers:
    def test_arm_and_find(self, machine):
        k = machine.kernel
        task = k.spawn("sigtask", workload=idle())
        entry = k.timers.arm(task, delay_seconds=100)
        assert k.timers.find_by_name("sigtask") == [entry]
        assert entry.host_pid == task.pid

    def test_expired_timers_drop_out(self, machine):
        k = machine.kernel
        task = k.spawn("shortlived", workload=idle())
        k.timers.arm(task, delay_seconds=3)
        machine.run(5, dt=1.0)
        assert k.timers.find_by_name("shortlived") == []

    def test_nonpositive_delay_rejected(self, machine):
        k = machine.kernel
        task = k.spawn("t", workload=idle())
        with pytest.raises(KernelError):
            k.timers.arm(task, delay_seconds=0)

    def test_cancel(self, machine):
        k = machine.kernel
        task = k.spawn("t", workload=idle())
        entry = k.timers.arm(task, delay_seconds=100)
        k.timers.cancel(entry)
        assert k.timers.entries == []
        with pytest.raises(KernelError):
            k.timers.cancel(entry)


class TestLocks:
    def test_acquire_and_find(self, machine):
        k = machine.kernel
        task = k.spawn("locker", workload=idle())
        entry = k.locks.acquire(task, inode=987654)
        assert k.locks.find_by_inode(987654) == [entry]
        assert str(task.pid) in entry.render()

    def test_release(self, machine):
        k = machine.kernel
        task = k.spawn("locker", workload=idle())
        entry = k.locks.acquire(task, inode=1)
        k.locks.release(entry)
        assert k.locks.entries == []

    def test_locks_die_with_process(self, machine):
        k = machine.kernel
        task = k.spawn("locker", workload=idle())
        k.locks.acquire(task, inode=1)
        k.locks.acquire(task, inode=2)
        k.kill(task)
        assert k.locks.entries == []

    def test_bad_type_rejected(self, machine):
        k = machine.kernel
        task = k.spawn("locker", workload=idle())
        with pytest.raises(KernelError):
            k.locks.acquire(task, inode=1, lock_type="WEIRD")


class TestModules:
    def test_boot_modules_loaded(self, machine):
        assert machine.kernel.modules.find("ext4") is not None

    def test_load_unload(self, machine):
        mods = machine.kernel.modules
        mods.load("test_mod")
        assert mods.find("test_mod") is not None
        mods.unload("test_mod")
        assert mods.find("test_mod") is None

    def test_double_load_rejected(self, machine):
        mods = machine.kernel.modules
        with pytest.raises(KernelError):
            mods.load("ext4")

    def test_unload_in_use_rejected(self, machine):
        with pytest.raises(KernelError):
            machine.kernel.modules.unload("bridge")  # refcount 1


class TestRandom:
    def test_boot_id_is_stable(self, machine):
        r = machine.kernel.random
        assert r.boot_id == r.boot_id
        assert len(r.boot_id) == 36

    def test_boot_id_differs_across_machines(self):
        a = Machine(seed=1).kernel.random.boot_id
        b = Machine(seed=2).kernel.random.boot_id
        assert a != b

    def test_fresh_uuid_changes_per_read(self, machine):
        r = machine.kernel.random
        assert r.fresh_uuid() != r.fresh_uuid()

    def test_entropy_stays_in_bounds(self, machine):
        run_with_worker(machine, syscalls_per_sec=100_000)
        entropy = machine.kernel.random.entropy_avail
        assert 128 <= entropy <= 4096


class TestFilesystem:
    def test_vfs_counters_drift_with_io(self, machine):
        before = machine.kernel.filesystem.vfs.nr_dentry
        run_with_worker(machine, io_ops_per_sec=10_000)
        assert machine.kernel.filesystem.vfs.nr_dentry != before

    def test_ext4_groups_change_with_writes(self, machine):
        fs = machine.kernel.filesystem.ext4_for("sda")
        before = [g.free_blocks for g in fs.groups]
        run_with_worker(machine, io_ops_per_sec=10_000)
        after = [g.free_blocks for g in fs.groups]
        assert before != after

    def test_unknown_disk_rejected(self, machine):
        with pytest.raises(KernelError):
            machine.kernel.filesystem.ext4_for("nvme9")

    def test_ext4_free_blocks_bounded(self, machine):
        run_with_worker(machine, io_ops_per_sec=100_000)
        fs = machine.kernel.filesystem.ext4_for("sda")
        for g in fs.groups:
            assert 0 < g.free_blocks <= fs.BLOCKS_PER_GROUP


class TestNetdev:
    def test_root_devices_from_config(self, machine):
        devices = machine.kernel.netdev.for_each_netdev_init_net()
        assert [d.name for d in devices] == ["lo", "eth0", "eth1", "docker0"]

    def test_new_namespace_gets_lo_and_veth(self, machine):
        k = machine.kernel
        ns = k.namespaces.create(NamespaceType.NET)
        k.netdev.register_namespace(ns)
        assert [d.name for d in k.netdev.devices_in(ns)] == ["lo", "eth0"]

    def test_double_register_rejected(self, machine):
        k = machine.kernel
        ns = k.namespaces.create(NamespaceType.NET)
        k.netdev.register_namespace(ns)
        with pytest.raises(KernelError):
            k.netdev.register_namespace(ns)

    def test_traffic_charged_to_host_uplink(self, machine):
        run_with_worker(machine, net_kbps=8000)
        k = machine.kernel
        eth0 = k.netdev.device(k.netdev.init_net, "eth0")
        assert eth0.tx_bytes > 0


class TestCpuIdle:
    def test_idle_cpu_sleeps_deep(self, machine):
        machine.run(20, dt=1.0)
        states = {s.name: s for s in machine.kernel.cpuidle.cpu(1).states}
        assert states["C6"].time_us > states["C1"].time_us

    def test_busy_cpu_accumulates_no_idle_time(self, machine):
        task = run_with_worker(machine)
        cpu = machine.kernel.scheduler.placement_of(task)
        total_idle = sum(s.time_us for s in machine.kernel.cpuidle.cpu(cpu).states)
        assert total_idle == 0

    def test_unknown_cpu_rejected(self, machine):
        with pytest.raises(KernelError):
            machine.kernel.cpuidle.cpu(99)


class TestThermal:
    def test_idle_cores_near_ambient(self, machine):
        machine.run(60, dt=1.0)
        for sensor in machine.kernel.thermal.sensors:
            assert sensor.temp_c < 45.0

    def test_busy_core_heats_up(self, machine):
        task = run_with_worker(machine)
        machine.run(60, dt=1.0)
        k = machine.kernel
        busy = k.thermal.sensor(k.scheduler.placement_of(task)).temp_c
        # other cores heat a little through package coupling, but less
        others = [
            s.temp_c
            for s in k.thermal.sensors
            if s.core != k.scheduler.placement_of(task)
        ]
        assert busy > max(others) + 5

    def test_millidegree_rendering(self, machine):
        sensor = machine.kernel.thermal.sensor(0)
        assert sensor.millidegrees == int(sensor.temp_c * 1000)

    def test_absent_sensors_raise(self):
        m = Machine(seed=1)
        m.kernel.thermal.present = False
        with pytest.raises(KernelError):
            m.kernel.thermal.sensor(0)
