"""Tests for the ground-truth power model and RAPL counters."""

import pytest

from repro.errors import KernelError
from repro.kernel.config import AMD_OPTERON, HostConfig
from repro.kernel.kernel import Machine
from repro.kernel.rapl import MAX_ENERGY_RANGE_UJ, RaplDomain, unwrap_delta
from repro.runtime.workload import constant


def watts_over(machine, seconds=10.0, dt=1.0):
    """Average package watts over a window, via the RAPL counter."""
    pkg = machine.kernel.rapl.package(0).package
    before = pkg.energy_uj
    machine.run(seconds, dt=dt)
    return unwrap_delta(pkg.energy_uj, before) / 1e6 / seconds


class TestPowerModel:
    def test_idle_power_matches_params(self):
        m = Machine(seed=1, spawn_daemons=False)
        p = m.kernel.config.power
        expected = p.core_idle_watts + p.dram_idle_watts + p.uncore_watts
        assert watts_over(m) == pytest.approx(expected, rel=0.05)

    def test_busy_core_adds_power(self):
        m = Machine(seed=1, spawn_daemons=False)
        idle_watts = m.kernel.power.idle_package_watts()
        m.kernel.spawn(
            "prime",
            workload=constant(
                "prime", cpu_demand=1.0, ipc=2.2,
                cache_miss_per_kinst=0.2, branch_miss_per_kinst=0.5,
            ),
        )
        assert watts_over(m) > idle_watts + 5

    def test_power_scales_with_cores(self):
        def with_n_tasks(n):
            m = Machine(seed=1, spawn_daemons=False)
            for i in range(n):
                m.kernel.spawn(
                    f"w{i}",
                    workload=constant(f"w{i}", cpu_demand=1.0, ipc=2.0),
                )
            return watts_over(m)

        w1, w2, w4 = with_n_tasks(1), with_n_tasks(2), with_n_tasks(4)
        per_core = w2 - w1
        assert w4 - w2 == pytest.approx(2 * per_core, rel=0.1)

    def test_memory_bound_work_burns_dram_energy(self):
        def dram_joules(cmpki):
            m = Machine(seed=1, spawn_daemons=False)
            m.kernel.spawn(
                "w",
                workload=constant(
                    "w", cpu_demand=1.0, ipc=0.8, cache_miss_per_kinst=cmpki
                ),
            )
            dram = m.kernel.rapl.package(0).dram
            before = dram.energy_uj
            m.run(10, dt=1.0)
            return unwrap_delta(dram.energy_uj, before) / 1e6

        assert dram_joules(30.0) > dram_joules(0.5) * 2

    def test_energy_linear_in_instructions_within_workload(self):
        """The Figure 6 property: fixed workload => energy ∝ instructions."""
        m = Machine(seed=1, spawn_daemons=False)
        task = m.kernel.spawn(
            "bench",
            workload=constant("b", cpu_demand=1.0, ipc=2.0, cache_miss_per_kinst=1.0),
        )
        core = m.kernel.rapl.package(0).core
        points = []
        for _ in range(5):
            e0, i0 = core.energy_uj, task.workload.total.instructions
            m.run(10, dt=1.0)
            points.append(
                (
                    task.workload.total.instructions - i0,
                    unwrap_delta(core.energy_uj, e0),
                )
            )
        ratios = [e / i for i, e in points]
        spread = (max(ratios) - min(ratios)) / min(ratios)
        assert spread < 0.1  # near-constant energy per instruction

    def test_package_of_validates_cpu(self):
        m = Machine(seed=1)
        with pytest.raises(KernelError):
            m.kernel.power.package_of(99)


class TestRapl:
    def test_counter_monotone_modulo_wrap(self):
        m = Machine(seed=1, spawn_daemons=False)
        pkg = m.kernel.rapl.package(0).package
        readings = []
        for _ in range(10):
            m.run(1, dt=1.0)
            readings.append(pkg.energy_uj)
        deltas = [unwrap_delta(b, a) for a, b in zip(readings, readings[1:])]
        assert all(d > 0 for d in deltas)

    def test_counter_wraps(self):
        domain = RaplDomain(name="package-0", sysfs_name="intel-rapl:0",
                            max_energy_range_uj=1000)
        domain.accumulate(0.0009)  # 900 uJ
        domain.accumulate(0.0002)  # +200 -> wraps past 1000
        assert domain.energy_uj == 100

    def test_negative_energy_rejected(self):
        domain = RaplDomain(name="x", sysfs_name="x")
        with pytest.raises(KernelError):
            domain.accumulate(-1.0)

    def test_unwrap_delta(self):
        assert unwrap_delta(150, 100, max_range=1000) == 50
        assert unwrap_delta(50, 900, max_range=1000) == 150

    def test_absent_on_amd(self):
        m = Machine(config=HostConfig(cpu=AMD_OPTERON), seed=1)
        assert not m.kernel.rapl.present
        with pytest.raises(KernelError):
            m.kernel.rapl.package(0)
        with pytest.raises(KernelError):
            m.kernel.rapl.total_package_energy_uj()

    def test_core_dram_sum_below_package(self):
        m = Machine(seed=1, spawn_daemons=False)
        m.kernel.spawn("w", workload=constant("w", cpu_demand=1.0))
        m.run(20, dt=1.0)
        pkg = m.kernel.rapl.package(0)
        assert pkg.package.energy_uj > pkg.core.energy_uj
        assert pkg.package.energy_uj > pkg.dram.energy_uj

    def test_noise_does_not_break_monotonicity(self):
        m = Machine(seed=7, spawn_daemons=False)
        pkg = m.kernel.rapl.package(0).package
        previous = pkg.energy_uj
        for _ in range(50):
            m.run(1, dt=1.0)
            current = pkg.energy_uj
            assert unwrap_delta(current, previous) >= 0
            previous = current

    def test_max_energy_range_matches_hardware(self):
        m = Machine(seed=1)
        assert (
            m.kernel.rapl.package(0).package.max_energy_range_uj
            == MAX_ENERGY_RANGE_UJ
        )
