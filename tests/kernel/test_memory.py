"""Tests for the memory subsystem."""

import pytest

from repro.errors import KernelError
from repro.kernel.config import HostConfig
from repro.kernel.kernel import Machine
from repro.kernel.memory import PAGE_SIZE, MemorySubsystem
from repro.sim.rng import DeterministicRNG
from repro.runtime.workload import constant


@pytest.fixture
def memory():
    return MemorySubsystem(HostConfig(memory_mb=16384), DeterministicRNG(seed=1))


class TestLayout:
    def test_total_pages_match_config(self, memory):
        assert memory.total_pages == 16384 * 1024 * 1024 // PAGE_SIZE

    def test_node_zero_has_three_zones(self, memory):
        names = [z.name for z in memory.node(0).zones]
        assert names == ["DMA", "DMA32", "Normal"]

    def test_multi_node_layout(self):
        m = MemorySubsystem(
            HostConfig(memory_mb=16384, numa_nodes=2, packages=2),
            DeterministicRNG(seed=1),
        )
        assert len(m.nodes) == 2
        assert [z.name for z in m.node(1).zones] == ["Normal"]

    def test_unknown_node_rejected(self, memory):
        with pytest.raises(KernelError):
            memory.node(5)

    def test_watermarks_ordered(self, memory):
        for node in memory.nodes:
            for zone in node.zones:
                assert zone.min_pages <= zone.low_pages <= zone.high_pages


class TestAccounting:
    def test_memfree_below_total(self, memory):
        assert 0 < memory.mem_free_kb < memory.mem_total_kb

    def test_mem_available_at_least_free(self, memory):
        assert memory.mem_available_kb >= memory.mem_free_kb

    def test_task_rss_reduces_memfree(self):
        m = Machine(seed=2, spawn_daemons=False)
        before = m.kernel.memory.mem_free_kb
        m.kernel.spawn(
            "hog", workload=constant("hog", cpu_demand=0.1, rss_mb=2048)
        )
        m.run(5, dt=1.0)
        after = m.kernel.memory.mem_free_kb
        assert before - after > 1_900_000  # ~2GB in kB

    def test_memfree_recovers_after_task_death(self):
        m = Machine(seed=2, spawn_daemons=False)
        m.kernel.spawn(
            "hog", workload=constant("hog", cpu_demand=0.1, rss_mb=2048, duration=5)
        )
        m.run(5, dt=1.0)
        low = m.kernel.memory.mem_free_kb
        m.run(10, dt=1.0)
        assert m.kernel.memory.mem_free_kb > low

    def test_numa_counters_accumulate(self):
        m = Machine(seed=2, spawn_daemons=False)
        m.kernel.spawn("worker", workload=constant("w", cpu_demand=1.0))
        m.run(5, dt=1.0)
        node = m.kernel.memory.node(0)
        assert node.numa_hit > 0
        assert node.local_node > 0
        # local allocations dominate on a healthy host
        assert node.numa_hit > node.numa_miss

    def test_zone_free_pages_track_host_free(self, memory):
        total_zone_free = sum(z.free_pages for n in memory.nodes for z in n.zones)
        assert total_zone_free == pytest.approx(memory.free_pages, rel=0.05)

    def test_page_cache_bounded(self):
        m = Machine(seed=3, spawn_daemons=False)
        m.kernel.spawn(
            "io-heavy",
            workload=constant("io", cpu_demand=0.5, io_ops_per_sec=100_000),
        )
        m.run(100, dt=1.0)
        mem = m.kernel.memory
        assert mem.page_cache_pages <= mem.total_pages // 3
        assert mem.free_pages >= 0
