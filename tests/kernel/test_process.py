"""Tests for tasks and per-PID-namespace pid allocation."""

import pytest

from repro.errors import KernelError
from repro.kernel.namespaces import NamespaceRegistry, NamespaceType, root_namespace_set
from repro.kernel.process import ProcessTable, TaskState


@pytest.fixture
def registry():
    return NamespaceRegistry()


@pytest.fixture
def table():
    return ProcessTable()


def host_ns(registry):
    return root_namespace_set(registry)


def container_ns(registry):
    ns = root_namespace_set(registry)
    ns[NamespaceType.PID] = registry.create(NamespaceType.PID)
    return ns


class TestPidAllocation:
    def test_host_pids_are_sequential(self, registry, table):
        t1 = table.spawn("a", host_ns(registry), now=0.0)
        t2 = table.spawn("b", host_ns(registry), now=0.0)
        assert (t1.pid, t2.pid) == (1, 2)

    def test_container_task_has_two_pids(self, registry, table):
        ns = container_ns(registry)
        task = table.spawn("init", ns, now=0.0)
        inner = task.pid_in(ns[NamespaceType.PID])
        outer = task.pid_in(registry.root(NamespaceType.PID))
        assert inner == 1
        assert outer == task.pid
        assert outer != inner or task.pid == 1

    def test_two_containers_both_start_at_pid_one(self, registry, table):
        ns_a = container_ns(registry)
        ns_b = container_ns(registry)
        a = table.spawn("init-a", ns_a, now=0.0)
        b = table.spawn("init-b", ns_b, now=0.0)
        assert a.pid_in(ns_a[NamespaceType.PID]) == 1
        assert b.pid_in(ns_b[NamespaceType.PID]) == 1
        assert a.pid != b.pid

    def test_nested_pid_namespaces(self, registry, table):
        middle = registry.create(NamespaceType.PID)
        inner = registry.create(NamespaceType.PID, parent=middle)
        ns = root_namespace_set(registry)
        ns[NamespaceType.PID] = inner
        task = table.spawn("deep", ns, now=0.0)
        # one pid per level of the ancestry chain
        assert len(task.ns_pids) == 3

    def test_missing_pid_namespace_rejected(self, registry, table):
        ns = root_namespace_set(registry)
        del ns[NamespaceType.PID]
        with pytest.raises(KernelError):
            table.spawn("broken", ns, now=0.0)


class TestVisibility:
    def test_host_sees_container_task(self, registry, table):
        ns = container_ns(registry)
        task = table.spawn("inner", ns, now=0.0)
        root_pid_ns = registry.root(NamespaceType.PID)
        assert task.visible_from(root_pid_ns)
        assert task in table.tasks_visible_from(root_pid_ns)

    def test_container_does_not_see_host_task(self, registry, table):
        host_task = table.spawn("hostproc", host_ns(registry), now=0.0)
        ns = container_ns(registry)
        table.spawn("inner", ns, now=0.0)
        container_pid_ns = ns[NamespaceType.PID]
        assert not host_task.visible_from(container_pid_ns)
        visible = table.tasks_visible_from(container_pid_ns)
        assert host_task not in visible
        assert len(visible) == 1

    def test_sibling_containers_isolated(self, registry, table):
        ns_a = container_ns(registry)
        ns_b = container_ns(registry)
        a = table.spawn("a", ns_a, now=0.0)
        table.spawn("b", ns_b, now=0.0)
        assert a.pid_in(ns_b[NamespaceType.PID]) is None


class TestLifecycle:
    def test_reap_removes_task(self, registry, table):
        task = table.spawn("dying", host_ns(registry), now=0.0)
        table.reap(task)
        assert task.state is TaskState.DEAD
        assert len(table) == 0
        with pytest.raises(KernelError):
            table.get(task.pid)

    def test_double_reap_rejected(self, registry, table):
        task = table.spawn("dying", host_ns(registry), now=0.0)
        table.reap(task)
        with pytest.raises(KernelError):
            table.reap(task)

    def test_find_by_name(self, registry, table):
        table.spawn("worker", host_ns(registry), now=0.0)
        table.spawn("worker", host_ns(registry), now=0.0)
        table.spawn("other", host_ns(registry), now=0.0)
        assert len(table.find_by_name("worker")) == 2

    def test_pids_not_reused_after_reap(self, registry, table):
        t1 = table.spawn("a", host_ns(registry), now=0.0)
        table.reap(t1)
        t2 = table.spawn("b", host_ns(registry), now=0.0)
        assert t2.pid > t1.pid
