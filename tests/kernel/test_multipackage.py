"""Tests for multi-package (multi-socket) hosts."""

import pytest

from repro.kernel.config import HostConfig
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.procfs.vfs import PseudoVFS
from repro.runtime.workload import constant


@pytest.fixture
def dual_socket():
    return Machine(
        config=HostConfig(packages=2, numa_nodes=2, memory_mb=32768),
        seed=181,
        spawn_daemons=False,
    )


class TestTopology:
    def test_sixteen_cpus(self, dual_socket):
        assert dual_socket.kernel.config.total_cores == 16

    def test_package_mapping(self, dual_socket):
        power = dual_socket.kernel.power
        assert power.package_of(0) == 0
        assert power.package_of(7) == 0
        assert power.package_of(8) == 1
        assert power.package_of(15) == 1

    def test_two_rapl_packages(self, dual_socket):
        rapl = dual_socket.kernel.rapl
        assert len(rapl.packages) == 2
        assert rapl.package(1).package.sysfs_name == "intel-rapl:1"

    def test_sysfs_tree_has_both_packages(self, dual_socket):
        vfs = PseudoVFS(dual_socket.kernel)
        assert vfs.exists("/sys/class/powercap/intel-rapl:0/energy_uj")
        assert vfs.exists("/sys/class/powercap/intel-rapl:1/energy_uj")

    def test_two_numa_nodes_in_sysfs(self, dual_socket):
        vfs = PseudoVFS(dual_socket.kernel)
        assert vfs.exists("/sys/devices/system/node/node1/numastat")


class TestPerPackageEnergy:
    def test_load_lands_on_the_right_package(self, dual_socket):
        k = dual_socket.kernel
        # pin four hot tasks to package-1 cores
        for i in range(4):
            k.spawn(
                f"w{i}",
                workload=constant(f"w{i}", cpu_demand=1.0, ipc=2.5),
                affinity=frozenset(range(8, 16)),
            )
        p0 = k.rapl.package(0).package
        p1 = k.rapl.package(1).package
        before = (p0.energy_uj, p1.energy_uj)
        dual_socket.run(10, dt=1.0)
        delta0 = unwrap_delta(p0.energy_uj, before[0])
        delta1 = unwrap_delta(p1.energy_uj, before[1])
        assert delta1 > delta0 * 2  # the loaded socket burns far more

    def test_idle_packages_draw_idle_power(self, dual_socket):
        k = dual_socket.kernel
        p0 = k.rapl.package(0).package
        before = p0.energy_uj
        dual_socket.run(10, dt=1.0)
        watts = unwrap_delta(p0.energy_uj, before) / 1e7
        assert watts == pytest.approx(k.power.idle_package_watts(), rel=0.05)

    def test_total_package_energy_sums(self, dual_socket):
        k = dual_socket.kernel
        dual_socket.run(5, dt=1.0)
        total = k.rapl.total_package_energy_uj()
        assert total == (
            k.rapl.package(0).package.energy_uj
            + k.rapl.package(1).package.energy_uj
        )

    def test_cpuinfo_physical_ids(self, dual_socket):
        vfs = PseudoVFS(dual_socket.kernel)
        content = vfs.read("/proc/cpuinfo")
        assert "physical id\t: 0" in content
        assert "physical id\t: 1" in content
