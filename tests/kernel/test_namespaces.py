"""Tests for the namespace registry."""

import pytest

from repro.errors import KernelError
from repro.kernel.namespaces import (
    VANILLA_TYPES,
    NamespaceRegistry,
    NamespaceType,
    root_namespace_set,
)


@pytest.fixture
def registry():
    return NamespaceRegistry()


class TestNamespaceRegistry:
    def test_vanilla_kernel_supports_seven_types(self, registry):
        assert registry.supported_types == VANILLA_TYPES
        assert len(VANILLA_TYPES) == 7

    def test_power_not_supported_by_default(self, registry):
        assert NamespaceType.POWER not in registry.supported_types
        with pytest.raises(KernelError):
            registry.root(NamespaceType.POWER)
        with pytest.raises(KernelError):
            registry.create(NamespaceType.POWER)

    def test_enable_power_type(self, registry):
        root = registry.enable_type(NamespaceType.POWER)
        assert root.is_root
        assert registry.root(NamespaceType.POWER) is root
        child = registry.create(NamespaceType.POWER)
        assert child.parent is root

    def test_enable_type_idempotent(self, registry):
        first = registry.enable_type(NamespaceType.POWER)
        second = registry.enable_type(NamespaceType.POWER)
        assert first is second

    def test_roots_are_distinct_per_type(self, registry):
        inums = {registry.root(t).inum for t in VANILLA_TYPES}
        assert len(inums) == 7

    def test_create_child(self, registry):
        child = registry.create(NamespaceType.PID)
        assert not child.is_root
        assert child.parent is registry.root(NamespaceType.PID)
        assert child.inum != child.parent.inum

    def test_create_grandchild(self, registry):
        child = registry.create(NamespaceType.PID)
        grandchild = registry.create(NamespaceType.PID, parent=child)
        assert grandchild.parent is child

    def test_parent_type_mismatch_rejected(self, registry):
        net_child = registry.create(NamespaceType.NET)
        with pytest.raises(KernelError):
            registry.create(NamespaceType.PID, parent=net_child)

    def test_inum_looks_like_proc_ns_inode(self, registry):
        assert registry.root(NamespaceType.MNT).inum >= 4026531835

    def test_root_namespace_set_covers_supported_types(self, registry):
        ns_set = root_namespace_set(registry)
        assert set(ns_set) == VANILLA_TYPES
        assert all(ns.is_root for ns in ns_set.values())

    def test_payload_is_per_instance(self, registry):
        a = registry.create(NamespaceType.UTS)
        b = registry.create(NamespaceType.UTS)
        a.payload["hostname"] = "a"
        assert "hostname" not in b.payload
