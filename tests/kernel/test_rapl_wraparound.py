"""Edge-case tests for RAPL counter wraparound handling.

The hardware MSR is a wrapping microjoule accumulator; every consumer
(the attack monitor included) must survive a wrap between two readings.
"""

import pytest

from repro.attack.monitor import RaplPowerMonitor
from repro.kernel.kernel import Machine
from repro.kernel.rapl import MAX_ENERGY_RANGE_UJ, RaplDomain, unwrap_delta
from repro.runtime.workload import constant


class TestUnwrapDelta:
    def test_no_wrap_is_plain_difference(self):
        assert unwrap_delta(2_000_000, 500_000) == 1_500_000

    def test_wrap_with_default_range(self):
        before = MAX_ENERGY_RANGE_UJ - 1_000
        assert unwrap_delta(500, before) == 1_500

    def test_wrap_with_custom_range(self):
        # a 32-bit-style counter, far smaller than the Skylake default
        max_range = 2**32
        before = max_range - 100
        assert unwrap_delta(50, before, max_range) == 150

    def test_custom_range_no_wrap(self):
        assert unwrap_delta(900, 100, 1_000) == 800

    def test_identical_readings_are_zero(self):
        assert unwrap_delta(42, 42) == 0
        assert unwrap_delta(42, 42, 1_000) == 0


class TestRaplDomainWrap:
    def test_accumulate_wraps_at_max_range(self):
        domain = RaplDomain(
            name="package-0", sysfs_name="intel-rapl:0", max_energy_range_uj=10_000_000
        )
        domain.accumulate(9.0)  # 9 J = 9_000_000 uJ
        before = domain.energy_uj
        domain.accumulate(2.0)  # crosses the 10 J range
        after = domain.energy_uj
        assert after < before  # the raw counter wrapped...
        assert unwrap_delta(after, before, 10_000_000) == 2_000_000  # ...delta exact

    def test_counter_stays_within_range(self):
        domain = RaplDomain(
            name="package-0", sysfs_name="intel-rapl:0", max_energy_range_uj=1_000
        )
        for _ in range(50):
            domain.accumulate(0.0007)
        assert 0 <= domain.energy_uj < 1_000


class _WrappingInstance:
    """A stub instance serving a scripted sequence of counter readings."""

    def __init__(self, readings):
        self._readings = iter(readings)

    def read(self, path):
        return f"{next(self._readings)}\n"


class TestMonitorAcrossWrap:
    def test_sample_across_counter_wrap(self):
        before_wrap = MAX_ENERGY_RANGE_UJ - 1_000_000
        after_wrap = 500_000  # 1.5 J elapsed through the wrap
        monitor = RaplPowerMonitor(_WrappingInstance([before_wrap, after_wrap]))
        assert monitor.sample(0.0) is None  # primes
        watts = monitor.sample(1.0)
        assert watts == pytest.approx(1.5)

    def test_wrap_on_live_counter(self):
        """Drive a real kernel counter over its wrap point."""
        m = Machine(seed=1, spawn_daemons=False)
        m.kernel.spawn("w", workload=constant("w", cpu_demand=1.0, ipc=2.0))
        pkg = m.kernel.rapl.package(0).package
        # park the counter just below the range so the next ticks wrap it
        pkg._energy_uj = float(pkg.max_energy_range_uj - 10_000)
        before = pkg.energy_uj
        m.run(5, dt=1.0)
        after = pkg.energy_uj
        assert after < before
        watts = unwrap_delta(after, before, pkg.max_energy_range_uj) / 1e6 / 5.0
        # a busy core draws tens of watts; the wrap must not corrupt that
        assert 20.0 < watts < 500.0
