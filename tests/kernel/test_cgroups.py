"""Tests for cgroup hierarchies and controller state."""

import pytest

from repro.errors import KernelError
from repro.kernel.cgroups import (
    CONTROLLERS,
    CgroupManager,
    CpuAcctState,
    NetPrioState,
    PerfCounters,
    PerfEventState,
)
from repro.kernel.namespaces import NamespaceRegistry, root_namespace_set
from repro.kernel.process import ProcessTable


@pytest.fixture
def manager():
    return CgroupManager()


@pytest.fixture
def task():
    registry = NamespaceRegistry()
    return ProcessTable().spawn("t", root_namespace_set(registry), now=0.0)


class TestHierarchy:
    def test_all_controllers_exist(self, manager):
        for controller in CONTROLLERS:
            assert manager.hierarchy(controller).controller == controller

    def test_unknown_controller_rejected(self, manager):
        with pytest.raises(KernelError):
            manager.hierarchy("blkio")

    def test_create_nested_path(self, manager):
        cg = manager.hierarchy("cpuacct").create("/docker/c1")
        assert cg.path == "/docker/c1"
        assert cg.parent.path == "/docker"

    def test_create_is_idempotent(self, manager):
        h = manager.hierarchy("cpuacct")
        assert h.create("/a/b") is h.create("/a/b")

    def test_relative_path_rejected(self, manager):
        with pytest.raises(KernelError):
            manager.hierarchy("cpuacct").create("a/b")

    def test_lookup_missing_raises(self, manager):
        with pytest.raises(KernelError):
            manager.hierarchy("cpuacct").lookup("/nope")

    def test_walk_covers_subtree(self, manager):
        h = manager.hierarchy("memory")
        h.create("/a/b")
        h.create("/a/c")
        paths = {cg.path for cg in h.root.walk()}
        assert paths == {"/", "/a", "/a/b", "/a/c"}


class TestMembership:
    def test_task_defaults_to_root(self, manager, task):
        h = manager.hierarchy("cpuacct")
        assert h.cgroup_of(task) is h.root

    def test_attach_moves_task(self, manager, task):
        h = manager.hierarchy("cpuacct")
        cg = h.create("/docker/c1")
        h.attach(task, cg)
        assert h.cgroup_of(task) is cg
        assert task in cg.tasks

    def test_reattach_leaves_old_group(self, manager, task):
        h = manager.hierarchy("cpuacct")
        a = h.create("/a")
        b = h.create("/b")
        h.attach(task, a)
        h.attach(task, b)
        assert task not in a.tasks
        assert task in b.tasks

    def test_cross_controller_attach_rejected(self, manager, task):
        cg = manager.hierarchy("memory").create("/m")
        with pytest.raises(KernelError):
            manager.hierarchy("cpuacct").attach(task, cg)

    def test_create_group_set_spans_controllers(self, manager):
        groups = manager.create_group_set("docker/c9")
        assert set(groups) == set(CONTROLLERS)
        assert all(cg.path == "/docker/c9" for cg in groups.values())

    def test_attach_all_and_detach_all(self, manager, task):
        groups = manager.create_group_set("docker/c1")
        manager.attach_all(task, groups)
        for controller in CONTROLLERS:
            assert manager.hierarchy(controller).cgroup_of(task).path == "/docker/c1"
        manager.detach_all(task)
        for controller in CONTROLLERS:
            h = manager.hierarchy(controller)
            assert h.cgroup_of(task) is h.root


class TestControllerState:
    def test_cpuacct_charge(self):
        state = CpuAcctState()
        state.charge(cpu=0, ns=500)
        state.charge(cpu=1, ns=300)
        state.charge(cpu=0, ns=200)
        assert state.usage_ns == 1000
        assert state.per_cpu_ns == {0: 700, 1: 300}

    def test_perf_disabled_by_default(self):
        state = PerfEventState()
        state.charge(100, 200, 3, 4)
        assert state.counters.instructions == 0

    def test_perf_enabled_accumulates(self):
        state = PerfEventState()
        state.enabled = True
        state.charge(100, 200, 3, 4)
        state.charge(100, 200, 3, 4)
        assert state.counters.cycles == 200
        assert state.counters.instructions == 400
        assert state.counters.cache_misses == 6
        assert state.counters.branch_misses == 8

    def test_perf_counter_delta(self):
        counters = PerfCounters()
        counters.add(10, 20, 1, 2)
        snap = counters.snapshot()
        counters.add(5, 7, 1, 1)
        delta = counters.delta(snap)
        assert (delta.cycles, delta.instructions) == (5, 7)
        assert (delta.cache_misses, delta.branch_misses) == (1, 1)

    def test_net_prio_set(self):
        state = NetPrioState()
        state.set_prio("eth0", 3)
        assert state.prios == {"eth0": 3}

    def test_net_prio_negative_rejected(self):
        with pytest.raises(KernelError):
            NetPrioState().set_prio("eth0", -1)

    def test_memory_high_water_mark(self, manager):
        state = manager.hierarchy("memory").create("/m").state
        state.set_usage(100)
        state.set_usage(500)
        state.set_usage(50)
        assert state.usage_bytes == 50
        assert state.max_usage_bytes == 500
