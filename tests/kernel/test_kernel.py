"""Tests for the Kernel aggregate and Machine harness."""

import pytest

from repro.errors import KernelError
from repro.kernel.kernel import Machine
from repro.kernel.namespaces import NamespaceType
from repro.runtime.workload import constant, idle


class TestBoot:
    def test_daemons_spawned(self):
        k = Machine(seed=1).kernel
        names = {t.name for t in k.processes}
        assert {"systemd", "dockerd", "sshd"} <= names

    def test_no_daemons_option(self):
        k = Machine(seed=1, spawn_daemons=False).kernel
        assert len(k.processes) == 0

    def test_boot_time_recorded(self):
        m = Machine(seed=1, start_time=1000.0)
        assert m.kernel.btime == 1000
        m.run(5, dt=1.0)
        assert m.kernel.uptime_seconds == pytest.approx(5.0)

    def test_hostname_in_root_uts(self):
        k = Machine(seed=1).kernel
        uts = k.namespaces.root(NamespaceType.UTS)
        assert uts.payload["hostname"] == "host-0"


class TestLifecycle:
    def test_spawn_defaults_to_root_namespaces(self):
        k = Machine(seed=1, spawn_daemons=False).kernel
        task = k.spawn("t", workload=idle())
        assert all(ns.is_root for ns in task.namespaces.values())

    def test_kill_cleans_up_everywhere(self):
        m = Machine(seed=1, spawn_daemons=False)
        k = m.kernel
        task = k.spawn("t", workload=constant("t", cpu_demand=0.5))
        k.locks.acquire(task, inode=5)
        k.kill(task)
        assert len(k.processes) == 0
        assert k.scheduler.tasks == []
        assert k.locks.entries == []
        # killing twice is an error
        with pytest.raises(KernelError):
            k.kill(task)

    def test_dead_task_stops_consuming(self):
        m = Machine(seed=1, spawn_daemons=False)
        k = m.kernel
        task = k.spawn("t", workload=constant("t", cpu_demand=1.0))
        m.run(5, dt=1.0)
        k.kill(task)
        consumed = task.workload.total.cpu_ns
        m.run(5, dt=1.0)
        assert task.workload.total.cpu_ns == consumed


class TestTick:
    def test_tick_requires_positive_dt(self):
        k = Machine(seed=1).kernel
        with pytest.raises(KernelError):
            k.tick(0.0)

    def test_tick_listeners_called(self):
        m = Machine(seed=1, spawn_daemons=False)
        seen = []
        m.kernel.tick_listeners.append(lambda result: seen.append(result.dt))
        m.run(3, dt=1.0)
        assert seen == [1.0, 1.0, 1.0]

    def test_run_partial_final_step(self):
        m = Machine(seed=1, spawn_daemons=False)
        m.run(2.5, dt=1.0)
        assert m.clock.now == pytest.approx(2.5)
        assert m.kernel.uptime_seconds == pytest.approx(2.5)

    def test_run_rejects_nonpositive(self):
        m = Machine(seed=1)
        with pytest.raises(KernelError):
            m.run(0)

    def test_determinism_across_machines(self):
        def fingerprint(seed):
            m = Machine(seed=seed)
            m.kernel.spawn("w", workload=constant("w", cpu_demand=0.7))
            m.run(20, dt=1.0)
            k = m.kernel
            return (
                k.rapl.package(0).package.energy_uj,
                k.memory.mem_free_kb,
                k.random.entropy_avail,
                round(k.scheduler.loadavg_1, 6),
            )

        assert fingerprint(42) == fingerprint(42)
        assert fingerprint(42) != fingerprint(43)


class TestRaplReadPath:
    def test_vanilla_read_returns_host_counter(self):
        m = Machine(seed=1, spawn_daemons=False)
        m.run(5, dt=1.0)
        domain = m.kernel.rapl.package(0).package
        assert m.kernel.read_energy_uj(domain) == domain.energy_uj

    def test_hook_intercepts_reads(self):
        m = Machine(seed=1, spawn_daemons=False)
        domain = m.kernel.rapl.package(0).package
        m.kernel.rapl_read_hook = lambda reader, dom: 12345
        assert m.kernel.read_energy_uj(domain) == 12345

    def test_read_without_rapl_raises(self):
        from repro.kernel.config import AMD_OPTERON, HostConfig

        m = Machine(config=HostConfig(cpu=AMD_OPTERON), seed=1)
        from repro.kernel.rapl import RaplDomain

        with pytest.raises(KernelError):
            m.kernel.read_energy_uj(RaplDomain(name="x", sysfs_name="x"))
