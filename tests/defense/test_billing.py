"""Tests for power-based billing, throttling, and the cpu quota."""

import pytest

from repro.defense.billing import PowerBiller, PowerThrottler
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.errors import DefenseError, KernelError
from repro.kernel.kernel import Machine
from repro.runtime.benchmarks import power_virus
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant


@pytest.fixture(scope="module")
def model():
    harness = TrainingHarness(seed=131, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    return PowerModeler(form="paper").fit(harness)


@pytest.fixture
def defended(model):
    machine = Machine(seed=132)
    engine = ContainerEngine(machine.kernel)
    driver = PowerNamespaceDriver(machine.kernel, model)
    driver.watch_engine(engine)
    return machine, engine, driver


class TestCpuQuota:
    def test_quota_caps_aggregate_usage(self):
        machine = Machine(seed=133, spawn_daemons=False)
        k = machine.kernel
        groups = k.cgroups.create_group_set("capped")
        groups["cpu"].state.set_quota(2.0)
        tasks = [
            k.spawn(f"w{i}", workload=constant(f"w{i}", cpu_demand=1.0),
                    cgroup_set=groups)
            for i in range(4)
        ]
        machine.run(10, dt=1.0)
        total = sum(t.cpu_time_ns for t in tasks) / 1e9
        assert total == pytest.approx(20.0, rel=0.05)  # 2 cores x 10 s
        assert groups["cpu"].state.throttled_ns > 0

    def test_quota_under_demand_is_inactive(self):
        machine = Machine(seed=134, spawn_daemons=False)
        k = machine.kernel
        groups = k.cgroups.create_group_set("roomy")
        groups["cpu"].state.set_quota(4.0)
        task = k.spawn("w", workload=constant("w", cpu_demand=1.0),
                       cgroup_set=groups)
        machine.run(10, dt=1.0)
        assert task.cpu_time_ns == pytest.approx(10e9, rel=0.02)
        assert groups["cpu"].state.throttled_ns == 0

    def test_invalid_quota_rejected(self):
        machine = Machine(seed=135)
        groups = machine.kernel.cgroups.create_group_set("bad")
        with pytest.raises(KernelError):
            groups["cpu"].state.set_quota(0.0)


class TestPowerBiller:
    def test_bill_tracks_consumption(self, defended):
        machine, engine, driver = defended
        c = engine.create(name="paying", cpus=4)
        for i in range(4):
            c.exec(f"v{i}", workload=power_virus())
        machine.run(5, dt=1.0)
        biller = PowerBiller(driver, rate_per_kwh=0.24)
        biller.start_metering(c)
        # poll inside the counter's wrap period, as a real meter must
        for _ in range(6):
            machine.run(600, dt=10.0)
            biller.poll(c)
        bill = biller.bill(c)
        # ~80-95 W for one hour at $0.24/kWh
        assert bill.dollars == pytest.approx(0.021, rel=0.35)
        assert bill.kwh == pytest.approx(bill.joules / 3.6e6)

    def test_unpolled_wrap_undercharges(self, defended):
        """Document the hardware-faithful failure mode: a meter that
        sleeps past a counter wrap loses a full wrap of energy."""
        machine, engine, driver = defended
        c = engine.create(name="sleepy", cpus=4)
        for i in range(4):
            c.exec(f"v{i}", workload=power_virus())
        machine.run(5, dt=1.0)
        biller = PowerBiller(driver)
        biller.start_metering(c)
        machine.run(3600, dt=10.0)  # ~288 kJ: wraps the 262 kJ counter
        assert biller.bill(c).joules < 100_000.0

    def test_idle_container_bills_only_idle_share(self, defended):
        machine, engine, driver = defended
        busy = engine.create(name="busy", cpus=4)
        idle_c = engine.create(name="idle", cpus=2)
        for i in range(4):
            busy.exec(f"v{i}", workload=power_virus())
        machine.run(5, dt=1.0)
        biller = PowerBiller(driver)
        biller.start_metering(busy)
        biller.start_metering(idle_c)
        machine.run(600, dt=10.0)
        assert biller.bill(idle_c).joules < biller.bill(busy).joules / 3

    def test_double_metering_rejected(self, defended):
        machine, engine, driver = defended
        c = engine.create(name="c1")
        biller = PowerBiller(driver)
        biller.start_metering(c)
        with pytest.raises(DefenseError):
            biller.start_metering(c)

    def test_unmetered_bill_rejected(self, defended):
        machine, engine, driver = defended
        c = engine.create(name="c1")
        with pytest.raises(DefenseError):
            PowerBiller(driver).bill(c)

    def test_bad_rate_rejected(self, defended):
        _, _, driver = defended
        with pytest.raises(DefenseError):
            PowerBiller(driver, rate_per_kwh=0.0)


class TestPowerThrottler:
    def test_throttles_down_to_the_cap(self, defended):
        machine, engine, driver = defended
        c = engine.create(name="greedy", cpus=4)
        for i in range(4):
            c.exec(f"v{i}", workload=power_virus())
        machine.run(5, dt=1.0)
        throttler = PowerThrottler(driver)
        throttler.cap(c, limit_watts=50.0)
        decision = None
        for _ in range(8):
            machine.run(10, dt=1.0)
            decision = throttler.evaluate()[0]
        assert decision.throttled
        assert decision.watts < 60.0  # converged near the cap

    def test_quota_releases_when_load_drops(self, defended):
        machine, engine, driver = defended
        c = engine.create(name="bursty", cpus=4)
        tasks = [c.exec(f"v{i}", workload=power_virus()) for i in range(4)]
        machine.run(5, dt=1.0)
        throttler = PowerThrottler(driver)
        throttler.cap(c, limit_watts=40.0)
        for _ in range(4):
            machine.run(10, dt=1.0)
            throttler.evaluate()
        throttled_quota = c.cgroup_set["cpu"].state.quota_cores
        assert throttled_quota is not None
        for task in tasks:
            c.kill_task(task)
        for _ in range(12):
            machine.run(10, dt=1.0)
            throttler.evaluate()
        quota_after = c.cgroup_set["cpu"].state.quota_cores
        assert quota_after is None or quota_after > throttled_quota

    def test_uncap_clears_quota(self, defended):
        machine, engine, driver = defended
        c = engine.create(name="c1", cpus=2)
        throttler = PowerThrottler(driver)
        throttler.cap(c, limit_watts=20.0)
        c.cgroup_set["cpu"].state.set_quota(1.0)
        throttler.uncap(c)
        assert c.cgroup_set["cpu"].state.quota_cores is None
        with pytest.raises(DefenseError):
            throttler.uncap(c)

    def test_bad_cap_rejected(self, defended):
        machine, engine, driver = defended
        c = engine.create(name="c1")
        with pytest.raises(DefenseError):
            PowerThrottler(driver).cap(c, limit_watts=-5.0)
