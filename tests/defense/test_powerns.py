"""Tests for the power-based namespace driver (Figures 8/9 properties)."""

import pytest

from repro.defense.calibration import CalibratedAttribution, RawAttribution
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.errors import DefenseError
from repro.kernel.kernel import Machine
from repro.kernel.namespaces import NamespaceType
from repro.kernel.rapl import unwrap_delta
from repro.runtime.benchmarks import SPEC_BENCHMARKS
from repro.runtime.engine import ContainerEngine

ENERGY = "/sys/class/powercap/intel-rapl:0/energy_uj"


@pytest.fixture(scope="module")
def model():
    harness = TrainingHarness(seed=71, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    return PowerModeler(form="paper").fit(harness)


@pytest.fixture
def defended(model):
    """A machine with the power namespace installed and an engine watched."""
    machine = Machine(seed=72)
    engine = ContainerEngine(machine.kernel)
    driver = PowerNamespaceDriver(machine.kernel, model)
    driver.watch_engine(engine)
    return machine, engine, driver


def container_watts(machine, container, seconds):
    before = int(container.read(ENERGY))
    machine.run(seconds, dt=1.0)
    after = int(container.read(ENERGY))
    return unwrap_delta(after, before) / 1e6 / seconds


class TestInstallation:
    def test_power_namespace_type_enabled(self, defended):
        machine, _, _ = defended
        assert NamespaceType.POWER in machine.kernel.namespaces.supported_types

    def test_new_containers_auto_adopted(self, defended):
        _, engine, driver = defended
        engine.create(name="c1")
        assert driver.adopted_count == 1

    def test_containers_get_power_namespace(self, defended):
        _, engine, _ = defended
        c = engine.create(name="c1")
        assert not c.namespaces[NamespaceType.POWER].is_root

    def test_adopting_legacy_container(self, model):
        machine = Machine(seed=73)
        engine = ContainerEngine(machine.kernel)
        legacy = engine.create(name="old")  # created before the driver
        driver = PowerNamespaceDriver(machine.kernel, model)
        driver.adopt(legacy)
        assert not legacy.namespaces[NamespaceType.POWER].is_root
        assert legacy.init_task.namespaces[NamespaceType.POWER] is (
            legacy.namespaces[NamespaceType.POWER]
        )

    def test_double_adopt_rejected(self, defended):
        _, engine, driver = defended
        c = engine.create(name="c1")
        with pytest.raises(DefenseError):
            driver.adopt(c)

    def test_release(self, defended):
        _, engine, driver = defended
        c = engine.create(name="c1")
        driver.release(c)
        assert driver.adopted_count == 0
        with pytest.raises(DefenseError):
            driver.release(c)

    def test_requires_rapl(self, model):
        from repro.kernel.config import AMD_OPTERON, HostConfig

        machine = Machine(config=HostConfig(cpu=AMD_OPTERON), seed=1)
        with pytest.raises(DefenseError):
            PowerNamespaceDriver(machine.kernel, model)


class TestIsolation:
    def test_host_reads_unchanged(self, defended):
        """Transparency goal: the host still sees the hardware counter."""
        machine, engine, _ = defended
        engine.create(name="c1")
        machine.run(5, dt=1.0)
        host_view = int(engine.vfs.read(ENERGY))
        assert host_view == machine.kernel.rapl.package(0).package.energy_uj

    def test_interface_unchanged_for_containers(self, defended):
        """Containers read the same path, same format — just their data."""
        machine, engine, _ = defended
        c = engine.create(name="c1")
        machine.run(2, dt=1.0)
        value = c.read(ENERGY)
        assert value.strip().isdigit()

    def test_container_no_longer_sees_host_counter(self, defended):
        machine, engine, _ = defended
        c = engine.create(name="c1")
        machine.run(5, dt=1.0)
        inside = int(c.read(ENERGY))
        host = machine.kernel.rapl.package(0).package.energy_uj
        assert inside != host

    def test_idle_container_unaware_of_neighbour_load(self, defended):
        """The Figure 9 property."""
        machine, engine, _ = defended
        noisy = engine.create(name="noisy", cpus=4)
        idle_c = engine.create(name="idle", cpus=2)
        machine.run(5, dt=1.0)

        baseline = container_watts(machine, idle_c, 10)
        for i in range(4):
            noisy.exec(f"burn-{i}", workload=SPEC_BENCHMARKS["401.bzip2"].workload())
        loaded = container_watts(machine, idle_c, 10)
        # the idle container's reading stays at its own (idle-share) level
        assert loaded == pytest.approx(baseline, rel=0.15)

        # while the attacker's old host-level view would have moved by far
        # more than that tolerance
        host_watts = machine.kernel.host_package_watts()
        assert host_watts > baseline * 2

    def test_loaded_container_tracks_its_own_consumption(self, defended):
        machine, engine, _ = defended
        c = engine.create(name="worker", cpus=4)
        machine.run(3, dt=1.0)
        idle_watts = container_watts(machine, c, 5)
        for i in range(4):
            c.exec(f"w{i}", workload=SPEC_BENCHMARKS["456.hmmer"].workload())
        busy_watts = container_watts(machine, c, 10)
        assert busy_watts > idle_watts + 10

    def test_virtual_counters_monotone(self, defended):
        machine, engine, _ = defended
        c = engine.create(name="c1")
        previous = int(c.read(ENERGY))
        for _ in range(10):
            machine.run(1, dt=1.0)
            current = int(c.read(ENERGY))
            assert unwrap_delta(current, previous) >= 0
            previous = current

    def test_subdomain_counters_served(self, defended):
        machine, engine, _ = defended
        c = engine.create(name="c1")
        machine.run(5, dt=1.0)
        pkg = int(c.read(ENERGY))
        core = int(c.read("/sys/class/powercap/intel-rapl:0/intel-rapl:0:0/energy_uj"))
        dram = int(c.read("/sys/class/powercap/intel-rapl:0/intel-rapl:0:1/energy_uj"))
        assert core + dram == pytest.approx(pkg, rel=0.01)


class TestAccuracy:
    def test_single_tenant_error_below_5_percent(self, model):
        """The Figure 8 bound, for one representative benchmark."""
        machine = Machine(seed=74)
        engine = ContainerEngine(machine.kernel)
        driver = PowerNamespaceDriver(machine.kernel, model)
        driver.watch_engine(engine)
        c = engine.create(name="bench", cpus=4)
        for i in range(4):
            c.exec(f"w{i}", workload=SPEC_BENCHMARKS["450.soplex"].workload())
        machine.run(5, dt=1.0)

        pkg = machine.kernel.rapl.package(0).package
        host_before = pkg.energy_uj
        cont_before = int(c.read(ENERGY))
        machine.run(60, dt=1.0)
        host_after = pkg.energy_uj
        cont_after = int(c.read(ENERGY))

        e_rapl = unwrap_delta(host_after, host_before) / 1e6
        e_container = unwrap_delta(cont_after, cont_before) / 1e6
        # Formula 4 with Δdiff≈0: the container is the only active tenant
        # and the namespace presents the idle share
        xi = abs(e_rapl - e_container) / e_rapl
        assert xi < 0.05


class TestAblationCalibration:
    def test_raw_attribution_drifts_more(self, model):
        """Formula 3 earns its keep: raw model output has larger error."""

        def xi_with(factory):
            machine = Machine(seed=75)
            engine = ContainerEngine(machine.kernel)
            driver = PowerNamespaceDriver(
                machine.kernel, model, attribution_factory=factory
            )
            driver.watch_engine(engine)
            c = engine.create(name="bench", cpus=4)
            for i in range(4):
                c.exec(f"w{i}", workload=SPEC_BENCHMARKS["429.mcf"].workload())
            machine.run(5, dt=1.0)
            pkg = machine.kernel.rapl.package(0).package
            h0, c0 = pkg.energy_uj, int(c.read(ENERGY))
            machine.run(60, dt=1.0)
            e_rapl = unwrap_delta(pkg.energy_uj, h0) / 1e6
            e_cont = unwrap_delta(int(c.read(ENERGY)), c0) / 1e6
            return abs(e_rapl - e_cont) / e_rapl

        calibrated = xi_with(CalibratedAttribution)
        raw = xi_with(RawAttribution)
        assert calibrated < 0.05
        assert raw > calibrated
