"""Tests for the Table III UnixBench overhead harness."""

import pytest

from repro.defense.unixbench import UnixBenchRun, UnixBenchRunner, format_table3
from repro.errors import DefenseError
from repro.runtime.benchmarks import UNIXBENCH_TESTS


def _test(name):
    return next(t for t in UNIXBENCH_TESTS if name in t.name)


@pytest.fixture(scope="module")
def runner():
    return UnixBenchRunner(seed=81, run_seconds=20.0)


class TestOverheadShapes:
    """The qualitative Table III results, measured not scripted."""

    def test_pipe_ctx_switching_huge_at_one_copy(self, runner):
        run = runner.run_test(_test("Pipe-based Context Switching"), copies=1)
        assert run.overhead_percent > 40.0

    def test_pipe_ctx_switching_tiny_at_eight_copies(self, runner):
        run = runner.run_test(_test("Pipe-based Context Switching"), copies=8)
        assert run.overhead_percent < 5.0

    def test_cpu_benchmarks_negligible(self, runner):
        for name in ("Dhrystone", "Whetstone"):
            run = runner.run_test(_test(name), copies=1)
            assert abs(run.overhead_percent) < 3.0, name

    def test_syscall_overhead_small(self, runner):
        run = runner.run_test(_test("System Call Overhead"), copies=1)
        assert run.overhead_percent < 3.0

    def test_file_copy_overhead_grows_with_copies(self, runner):
        one = runner.run_test(_test("File Copy 256"), copies=1)
        eight = runner.run_test(_test("File Copy 256"), copies=8)
        assert eight.overhead_percent > one.overhead_percent + 5.0

    def test_spawn_heavy_tests_pay_wiring_cost(self, runner):
        execl = runner.run_test(_test("Execl"), copies=1)
        assert 2.0 < execl.overhead_percent < 20.0
        creation = runner.run_test(_test("Process Creation"), copies=1)
        assert 5.0 < creation.overhead_percent < 25.0

    def test_index_overhead_single_digit_ballpark(self, runner):
        """Paper: 9.66% (1 copy) and 7.03% (8 copies)."""
        results = runner.run_suite((1, 8))
        orig1, mod1 = runner.index_score(results[1])
        orig8, mod8 = runner.index_score(results[8])
        overhead1 = (orig1 - mod1) / orig1 * 100
        overhead8 = (orig8 - mod8) / orig8 * 100
        assert 4.0 < overhead1 < 16.0
        assert 3.0 < overhead8 < 12.0
        assert overhead8 < overhead1  # parallel copies amortize toggles


class TestHarness:
    def test_run_validates_copies(self, runner):
        with pytest.raises(DefenseError):
            runner.run_test(UNIXBENCH_TESTS[0], copies=0)

    def test_overhead_requires_positive_score(self):
        run = UnixBenchRun(test="x", copies=1, original_score=0.0,
                           modified_score=0.0)
        with pytest.raises(DefenseError):
            run.overhead_fraction

    def test_index_empty_rejected(self, runner):
        with pytest.raises(DefenseError):
            runner.index_score([])

    def test_format_table3(self, runner):
        results = {1: [runner.run_test(UNIXBENCH_TESTS[0], copies=1)]}
        table = format_table3(results)
        assert "Dhrystone" in table
        assert "System Benchmarks Index Score" in table
