"""Tests for the stage-1 masking defense."""

import pytest

from repro.detection.crossvalidate import CrossValidator
from repro.defense.masking import (
    functionality_impact,
    generate_masking_policy,
    mask_everything_policy,
    verify_masking,
)


class TestGenerateAndVerify:
    def test_generated_policy_closes_all_leaks(self, machine, engine):
        probe = engine.create(name="probe")
        machine.run(3, dt=1.0)
        report = CrossValidator(engine.vfs, probe).run()
        assert report.leaks  # the vanilla container leaks

        policy = generate_masking_policy(report)
        masked = engine.create(name="masked", policy=policy)
        assert verify_masking(engine.vfs, masked) == []

    def test_unmasked_container_fails_verification(self, machine, engine):
        c = engine.create(name="open")
        machine.run(2, dt=1.0)
        assert len(verify_masking(engine.vfs, c)) > 100

    def test_namespaced_files_stay_readable_under_masking(self, machine, engine):
        probe = engine.create(name="probe")
        machine.run(2, dt=1.0)
        policy = generate_masking_policy(CrossValidator(engine.vfs, probe).run())
        masked = engine.create(name="masked", policy=policy)
        # stage 1 must not break correctly-namespaced files
        assert masked.read("/proc/sys/kernel/hostname")
        assert masked.read("/proc/net/dev")

    def test_policy_blocks_the_rapl_channel(self, machine, engine):
        from repro.errors import PermissionDeniedError

        probe = engine.create(name="probe")
        machine.run(2, dt=1.0)
        policy = generate_masking_policy(CrossValidator(engine.vfs, probe).run())
        masked = engine.create(name="masked", policy=policy)
        with pytest.raises(PermissionDeniedError):
            masked.read("/sys/class/powercap/intel-rapl:0/energy_uj")


class TestFunctionalityImpact:
    def test_masking_breaks_legitimate_monitoring(self, machine, engine):
        """The paper's stage-1 caveat, quantified."""
        probe = engine.create(name="probe")
        machine.run(2, dt=1.0)
        policy = generate_masking_policy(CrossValidator(engine.vfs, probe).run())
        broken = functionality_impact(policy)
        assert "/proc/meminfo" in broken  # free(1) stops working
        assert "/proc/stat" in broken  # top(1) stops working

    def test_empty_policy_breaks_nothing(self):
        from repro.runtime.policy import MaskingPolicy

        assert functionality_impact(MaskingPolicy()) == {}

    def test_mask_everything_policy(self):
        policy = mask_everything_policy(["/proc/meminfo", "/proc/stat"])
        broken = functionality_impact(policy)
        assert set(broken) == {"/proc/meminfo", "/proc/stat"}
