"""Tests for the power namespace on multi-socket hosts."""

import pytest

from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.kernel.config import HostConfig
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant


@pytest.fixture(scope="module")
def model():
    harness = TrainingHarness(seed=201, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    return PowerModeler(form="paper").fit(harness)


@pytest.fixture
def dual(model):
    machine = Machine(
        config=HostConfig(packages=2, numa_nodes=2, memory_mb=32768),
        seed=202,
        spawn_daemons=False,
    )
    engine = ContainerEngine(machine.kernel)
    driver = PowerNamespaceDriver(machine.kernel, model)
    driver.watch_engine(engine)
    return machine, engine, driver


PKG0 = "/sys/class/powercap/intel-rapl:0/energy_uj"
PKG1 = "/sys/class/powercap/intel-rapl:1/energy_uj"


class TestMultiPackage:
    def test_both_package_counters_served(self, dual):
        machine, engine, _ = dual
        c = engine.create(name="c1")
        machine.run(5, dt=1.0)
        assert int(c.read(PKG0)) >= 0
        assert int(c.read(PKG1)) >= 0

    def test_credit_follows_the_loaded_package(self, dual):
        machine, engine, _ = dual
        c = engine.create(name="c1", cpus=4)  # cores 0-3: package 0
        for i in range(4):
            c.exec(f"w{i}", workload=constant(f"w{i}", cpu_demand=1.0, ipc=2.5))
        machine.run(3, dt=1.0)
        p0_before = int(c.read(PKG0))
        p1_before = int(c.read(PKG1))
        machine.run(20, dt=1.0)
        p0_delta = unwrap_delta(int(c.read(PKG0)), p0_before)
        p1_delta = unwrap_delta(int(c.read(PKG1)), p1_before)
        # package 0 (where the container's cpuset lives) gets most credit
        assert p0_delta > p1_delta * 1.5

    def test_virtual_counters_sum_to_host_when_alone(self, dual):
        machine, engine, _ = dual
        c = engine.create(name="c1", cpus=4)
        for i in range(4):
            c.exec(f"w{i}", workload=constant(f"w{i}", cpu_demand=1.0))
        machine.run(3, dt=1.0)
        hw0 = machine.kernel.rapl.package(0).package
        hw1 = machine.kernel.rapl.package(1).package
        hw_before = hw0.energy_uj + hw1.energy_uj
        c_before = int(c.read(PKG0)) + int(c.read(PKG1))
        machine.run(30, dt=1.0)
        hw_delta = (hw0.energy_uj + hw1.energy_uj) - hw_before
        c_delta = (int(c.read(PKG0)) + int(c.read(PKG1))) - c_before
        # the only tenant receives (nearly) all measured energy
        assert c_delta == pytest.approx(hw_delta, rel=0.05)
