"""Tests for the stage-2 namespace patches (the CVE-2017-5967 class)."""

import pytest

from repro.coresidence.implant import ImplantVerifier
from repro.defense.kernel_patches import PATCHES, apply_all_patches, apply_patch
from repro.detection.crossvalidate import CrossValidator, LeakClass
from repro.errors import DefenseError


class TestPatching:
    def test_unknown_path_rejected(self, engine):
        with pytest.raises(DefenseError):
            apply_patch(engine.vfs, "/proc/meminfo")

    def test_apply_all_reports_paths(self, engine):
        applied = apply_all_patches(engine.vfs)
        assert set(applied) == set(PATCHES)

    @pytest.mark.parametrize("channel", ["timer_list", "locks", "sched_debug"])
    def test_implantation_defeated(self, machine, engine, channel):
        """After the patch, a planted signature is invisible next door."""
        c1 = engine.create(name="c1")
        c2 = engine.create(name="c2")
        verifier = ImplantVerifier(channel)
        # sanity: the implant works on the unpatched kernel
        implant = verifier.plant(c1)
        machine.run(1, dt=1.0)
        assert verifier.probe(c2, implant)

        apply_all_patches(engine.vfs)
        implant2 = verifier.plant(c1)
        machine.run(1, dt=1.0)
        assert not verifier.probe(c2, implant2)

    @pytest.mark.parametrize("channel", ["timer_list", "locks", "sched_debug"])
    def test_own_entries_still_visible(self, machine, engine, channel):
        """The patch hides foreign data, not the tenant's own."""
        apply_all_patches(engine.vfs)
        c1 = engine.create(name="c1")
        verifier = ImplantVerifier(channel)
        implant = verifier.plant(c1)
        machine.run(1, dt=1.0)
        assert verifier.probe(c1, implant)

    def test_ifpriomap_shows_only_namespace_devices(self, engine):
        apply_all_patches(engine.vfs)
        c = engine.create(name="c1")
        names = [
            line.split()[0]
            for line in c.read(
                "/sys/fs/cgroup/net_prio/net_prio.ifpriomap"
            ).splitlines()
        ]
        assert names == ["lo", "eth0"]

    def test_host_still_sees_everything(self, machine, engine):
        """Root-namespace readers keep the full view after patching."""
        c = engine.create(name="c1")
        c.arm_timer("hostvisible", delay_seconds=100)
        apply_all_patches(engine.vfs)
        host_view = engine.vfs.read("/proc/timer_list")
        assert "hostvisible" in host_view

    def test_patched_pids_are_namespace_local(self, machine, engine):
        """Entries show the reader's pid numbering, like real /proc."""
        apply_all_patches(engine.vfs)
        c = engine.create(name="c1")
        c.take_lock(inode=777, task_name="locker")
        content = c.read("/proc/locks")
        ns_pid = int(content.split()[4])
        assert ns_pid < 10  # container-local numbering, not host pid

    def test_crossvalidation_reclassifies_patched_channels(self, machine, engine):
        """The detector confirms the fix: the channels become case ①."""
        apply_all_patches(engine.vfs)
        c = engine.create(name="probe")
        # give each context some namespace-distinct content (an empty
        # table renders identically everywhere and proves nothing)
        c.arm_timer("inner-timer", delay_seconds=500)
        c.take_lock(inode=111, task_name="inner-locker")
        from repro.runtime.workload import idle

        host_task = machine.kernel.spawn("host-locker", workload=idle())
        machine.kernel.locks.acquire(host_task, inode=222)
        machine.kernel.timers.arm(host_task, delay_seconds=500)
        machine.run(2, dt=1.0)
        report = CrossValidator(engine.vfs, c).run(
            paths=list(PATCHES)
        )
        for path in PATCHES:
            assert report.verdict_for(path).leak_class is LeakClass.NAMESPACED, path
