"""Tests for perf data collection and power modelling (Figures 6/7)."""

import pytest

from repro.analysis.regression import fit_linear
from repro.defense.collection import ContainerPerfCollector
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.errors import DefenseError
from repro.kernel.kernel import Machine
from repro.runtime.benchmarks import MODELING_BENCHMARKS
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant


class TestCollector:
    def test_windowed_deltas(self, machine):
        k = machine.kernel
        engine = ContainerEngine(k)
        c = engine.create(name="c1")
        collector = ContainerPerfCollector(k)
        collector.attach(c.cgroup_set["perf_event"])
        c.exec("w", workload=constant("w", cpu_demand=1.0, ipc=2.0))
        machine.run(5, dt=1.0)
        w1 = collector.collect(c.cgroup_set["perf_event"])
        assert w1.instructions > 0
        machine.run(5, dt=1.0)
        w2 = collector.collect(c.cgroup_set["perf_event"])
        # steady workload: roughly equal windows (delta semantics)
        assert w2.instructions == pytest.approx(w1.instructions, rel=0.2)

    def test_peek_does_not_advance(self, machine):
        k = machine.kernel
        engine = ContainerEngine(k)
        c = engine.create(name="c1")
        collector = ContainerPerfCollector(k)
        collector.attach(c.cgroup_set["perf_event"])
        c.exec("w", workload=constant("w", cpu_demand=1.0))
        machine.run(3, dt=1.0)
        peeked = collector.peek(c.cgroup_set["perf_event"])
        collected = collector.collect(c.cgroup_set["perf_event"])
        assert peeked.instructions == collected.instructions

    def test_double_attach_rejected(self, machine):
        engine = ContainerEngine(machine.kernel)
        c = engine.create(name="c1")
        collector = ContainerPerfCollector(machine.kernel)
        collector.attach(c.cgroup_set["perf_event"])
        with pytest.raises(DefenseError):
            collector.attach(c.cgroup_set["perf_event"])

    def test_collect_unattached_rejected(self, machine):
        engine = ContainerEngine(machine.kernel)
        c = engine.create(name="c1")
        collector = ContainerPerfCollector(machine.kernel)
        with pytest.raises(DefenseError):
            collector.collect(c.cgroup_set["perf_event"])

    def test_host_collection_always_available(self, machine):
        collector = ContainerPerfCollector(machine.kernel)
        machine.run(3, dt=1.0)
        window = collector.collect_host()
        assert window.cycles > 0  # daemons ran

    def test_miss_rates(self, machine):
        engine = ContainerEngine(machine.kernel)
        c = engine.create(name="c1")
        collector = ContainerPerfCollector(machine.kernel)
        collector.attach(c.cgroup_set["perf_event"])
        c.exec(
            "w",
            workload=constant("w", cpu_demand=1.0, ipc=1.0, cache_miss_per_kinst=10.0),
        )
        machine.run(3, dt=1.0)
        window = collector.collect(c.cgroup_set["perf_event"])
        assert window.cache_miss_rate == pytest.approx(0.01, rel=0.1)


@pytest.fixture(scope="module")
def harness():
    h = TrainingHarness(seed=23, window_s=5.0, windows_per_benchmark=8)
    h.run_all()
    return h


class TestTrainingHarness:
    def test_idle_baseline_close_to_params(self, harness):
        true_idle = harness.machine.kernel.config.power.core_idle_watts
        assert harness.idle_core_watts == pytest.approx(true_idle, rel=0.15)

    def test_samples_cover_all_benchmarks(self, harness):
        assert set(harness.samples_by_benchmark) == set(MODELING_BENCHMARKS)
        # 8 windows x 3 core counts per benchmark
        assert all(
            len(v) == 24 for v in harness.samples_by_benchmark.values()
        )

    def test_figure6_property_energy_linear_in_instructions(self, harness):
        """Within one benchmark, core energy ~ instructions (R² ≈ 1)."""
        for name, samples in harness.samples_by_benchmark.items():
            model = fit_linear(
                [[float(s.window.instructions)] for s in samples],
                [s.e_core_active_j for s in samples],
            )
            assert model.r_squared > 0.95, name

    def test_figure6_property_slopes_differ_by_benchmark(self, harness):
        """Energy-per-instruction depends on the workload type."""
        slopes = {}
        for name, samples in harness.samples_by_benchmark.items():
            total_i = sum(s.window.instructions for s in samples)
            total_e = sum(s.e_core_active_j for s in samples)
            slopes[name] = total_e / total_i
        assert slopes["stress-m4"] > slopes["idle-loop"] * 3

    def test_figure7_property_dram_linear_in_misses(self, harness):
        """Across ALL benchmarks, DRAM energy ~ cache misses with one slope."""
        model = fit_linear(
            [[float(s.window.cache_misses)] for s in harness.samples],
            [s.e_dram_active_j for s in harness.samples],
        )
        assert model.r_squared > 0.98

    def test_no_rapl_rejected(self):
        from repro.kernel.config import AMD_OPTERON, HostConfig

        machine = Machine(config=HostConfig(cpu=AMD_OPTERON), seed=1)
        with pytest.raises(DefenseError):
            TrainingHarness(machine=machine)


class TestPowerModeler:
    def test_paper_form_fits_reasonably(self, harness):
        model = PowerModeler(form="paper").fit(harness)
        assert model.core_model.r_squared > 0.85
        assert model.dram_model.r_squared > 0.98
        assert model.lambda_watts == pytest.approx(4.5, rel=0.3)

    def test_full_form_fits_better(self, harness):
        paper = PowerModeler(form="paper").fit(harness)
        full = PowerModeler(form="full").fit(harness)
        assert full.core_model.r_squared >= paper.core_model.r_squared

    def test_prediction_nonnegative(self, harness):
        from repro.defense.collection import PerfWindow

        model = PowerModeler(form="paper").fit(harness)
        tiny = PerfWindow(cycles=100, instructions=100, cache_misses=0,
                          branch_misses=0)
        assert model.core_active_j(tiny) >= 0.0
        assert model.dram_active_j(tiny) >= 0.0

    def test_prediction_accuracy_on_held_out_windows(self, harness):
        """Model applied to windows it never saw stays within ~15%."""
        model = PowerModeler(form="paper").fit(harness)
        samples = harness.samples_by_benchmark["libquantum"]
        for s in samples[-3:]:
            predicted = model.core_active_j(s.window)
            assert predicted == pytest.approx(s.e_core_active_j, rel=0.2)

    def test_unknown_form_rejected(self):
        with pytest.raises(DefenseError):
            PowerModeler(form="quantum")

    def test_too_few_samples_rejected(self, harness):
        modeler = PowerModeler(form="paper")
        clone = TrainingHarness.__new__(TrainingHarness)
        clone.samples = harness.samples[:3]
        clone.idle_core_watts = harness.idle_core_watts
        clone.idle_dram_watts = harness.idle_dram_watts
        with pytest.raises(DefenseError):
            modeler.fit(clone)
