"""Cross-process trace merging and golden timeline determinism.

The observability layer's hard promises (ISSUE acceptance criteria):
spans drained from shard workers interleave with driver events in global
virtual-clock order; fault markers land at their *scheduled* sim-times
regardless of execution mode; and a figure-3-style campaign produces
bit-identical sim-time span timelines on the mode-independent tracks
(driver/fault/attack) whether it runs serially or rack-sharded.
"""

import pytest

from repro.attack.monitor import CrestDetector, RaplPowerMonitor
from repro.attack.strategies import SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import SimulationError
from repro.obs.tracer import INSTANT, SPAN
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule

SEED = 61
SERVERS = 4

#: tracks whose events must not depend on the execution mode
SHARED_TRACKS = {"driver", "fault", "attack", "defense"}


def marker_schedule():
    return FaultSchedule(
        [
            FaultEvent(at=15.0, kind=FaultKind.RAPL_DROP,
                       duration_s=10.0, server=0),
            FaultEvent(at=25.0, kind=FaultKind.OOM_KILL,
                       duration_s=0.0, server=3),
            FaultEvent(at=35.0, kind=FaultKind.CLOCK_JITTER,
                       duration_s=10.0, magnitude=0.2),
        ],
        seed=17,
    )


def build_fleet(parallel, faults=None, seconds=60.0):
    sim = DatacenterSimulation(
        servers=SERVERS, rack_size=2, seed=SEED, sample_interval_s=1.0
    )
    sim.enable_tracing()
    if faults is not None:
        sim.install_faults(faults)
    sim.run(seconds, dt=1.0, parallel=parallel)
    return sim


def launch_attackers(sim):
    instances, covered = [], set()
    while len(covered) < SERVERS:
        inst = sim.cloud.launch_instance("attacker")
        if inst.host_index in covered:
            sim.cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    return instances


def build_campaign(parallel):
    sim = DatacenterSimulation(
        servers=SERVERS, rack_size=2, seed=SEED, sample_interval_s=1.0
    )
    sim.enable_tracing()
    instances = launch_attackers(sim)
    sim.run(120.0, dt=1.0, parallel=parallel)
    return sim, instances


def synergistic(sim, instances):
    return SynergisticAttack(
        sim, instances,
        detector_factory=lambda: CrestDetector(
            window=60, threshold_fraction=0.7, min_band_watts=5.0
        ),
        burst_s=20.0, cooldown_s=60.0, learn_s=30.0,
    )


def shared_timeline(sim):
    """Sim-time view of the mode-independent tracks (wall times vary)."""
    return [
        (e.kind, e.name, e.track, e.t0, e.t1, e.attrs)
        for e in sim.tracer.timeline()
        if e.track in SHARED_TRACKS
    ]


class TestCrossProcessMerge:
    def test_shard_spans_interleave_in_global_clock_order(self):
        sim = build_fleet(2)
        try:
            timeline = sim.tracer.timeline()
        finally:
            sim.close()
        tracks = {e.track for e in timeline}
        assert {"driver", "barrier", "shard-0", "shard-1"} <= tracks
        t0s = [e.t0 for e in timeline]
        assert t0s == sorted(t0s)
        # every tick, both shard workers stepped the same sim interval
        steps = [e for e in timeline if e.name == "shard.step"]
        assert steps, "workers flushed no step spans"
        by_interval = {}
        for e in steps:
            by_interval.setdefault((e.t0, e.t1), set()).add(e.track)
        assert all(
            tracks == {"shard-0", "shard-1"}
            for tracks in by_interval.values()
        )

    def test_driver_and_shard_ticks_cover_the_same_clock(self):
        sim = build_fleet(2, seconds=30.0)
        try:
            timeline = sim.tracer.timeline()
        finally:
            sim.close()
        ticks = [e for e in timeline if e.name == "fleet.tick"]
        steps = [e for e in timeline if e.name == "shard.step"]
        assert {(e.t0, e.t1) for e in ticks} == {
            (e.t0, e.t1) for e in steps
        }

    @pytest.mark.parametrize("parallel", [0, 2], ids=["serial", "parallel"])
    def test_fault_markers_land_at_scheduled_times(self, parallel):
        sim = build_fleet(parallel, faults=marker_schedule())
        try:
            markers = [
                e for e in sim.tracer.timeline()
                if e.track == "fault" and e.kind == INSTANT
            ]
        finally:
            sim.close()
        at = {(e.name, e.t0) for e in markers}
        assert ("fault.rapl-drop", 15.0) in at
        assert ("fault.oom-kill", 25.0) in at
        assert ("fault.clock-jitter", 35.0) in at
        # markers carry *global* server identity even from shard workers
        drop = next(e for e in markers if e.name == "fault.rapl-drop")
        assert ("server", 0) in drop.attrs

    def test_fault_markers_identical_serial_vs_parallel(self):
        timelines = []
        for parallel in (0, 2):
            sim = build_fleet(parallel, faults=marker_schedule())
            try:
                timelines.append(
                    [
                        (e.name, e.t0, e.attrs)
                        for e in sim.tracer.timeline()
                        if e.track == "fault"
                    ]
                )
            finally:
                sim.close()
        serial, parallel_run = timelines
        assert serial == parallel_run
        assert len(serial) >= 3


class TestGoldenCampaignTimeline:
    def test_fig3_campaign_timeline_bit_identical(self):
        serial_sim, serial_inst = build_campaign(0)
        try:
            synergistic(serial_sim, serial_inst).run(300.0)
            serial = shared_timeline(serial_sim)
        finally:
            serial_sim.close()
        par_sim, par_inst = build_campaign(2)
        try:
            synergistic(par_sim, par_inst).run(300.0)
            par = shared_timeline(par_sim)
        finally:
            par_sim.close()
        assert serial == par
        names = {name for _, name, *_ in serial}
        assert {"fleet.tick", "fleet.run", "attack.recon",
                "attack.monitor", "attack.burst"} <= names
        # sanity: the parallel run *did* exercise worker tracks too
        spans = [e for e in serial if e[0] == SPAN]
        assert len(spans) > 100


class TestObserverReclamation:
    def test_rotating_campaigns_recycle_slots(self):
        sim, instances = build_campaign(2)
        engine = sim._parallel
        try:
            capacity = engine.observer_capacity
            # enough rotations to exhaust capacity were slots never freed
            rotations = capacity // SERVERS + 2
            for _ in range(rotations):
                attack = synergistic(sim, instances)
                assert len(attack.monitors) == SERVERS
                attack.release_monitors()
                assert attack.monitors == {}
            # only the first rotation carved fresh slots
            assert engine._next_slot == SERVERS
            assert len(engine._free_slots) == SERVERS
        finally:
            sim.close()

    def test_exhaustion_without_release_still_raises(self):
        sim, instances = build_campaign(2)
        engine = sim._parallel
        try:
            with pytest.raises(SimulationError, match="capacity exhausted"):
                for _ in range(engine.observer_capacity + 1):
                    engine.attach_monitor(
                        instances[0].instance_id, RaplPowerMonitor
                    )
        finally:
            sim.close()

    def test_released_slot_is_reused_lowest_first(self):
        sim, instances = build_campaign(2)
        engine = sim._parallel
        try:
            first = engine.attach_monitor(
                instances[0].instance_id, RaplPowerMonitor
            )
            second = engine.attach_monitor(
                instances[1].instance_id, RaplPowerMonitor
            )
            assert first is not None and second is not None
            engine.release_observer(first)
            third = engine.attach_monitor(
                instances[2].instance_id, RaplPowerMonitor
            )
            # the freed slot comes back, under a fresh observer id
            assert third.split("-")[1] == first.split("-")[1]
            assert third != first
        finally:
            sim.close()

    def test_release_unknown_observer_raises(self):
        sim, _ = build_campaign(2)
        engine = sim._parallel
        try:
            with pytest.raises(SimulationError, match="unknown observer"):
                engine.release_observer("obs-0-999")
        finally:
            sim.close()

    def test_released_observer_cannot_be_sampled(self):
        sim, instances = build_campaign(2)
        engine = sim._parallel
        try:
            oid = engine.attach_monitor(
                instances[0].instance_id, RaplPowerMonitor
            )
            engine.release_observer(oid)
            with pytest.raises(SimulationError):
                engine.observer_sample(oid, sim.now)
        finally:
            sim.close()
