"""Tests for the span tracer: ring buffer, drain/ingest, timeline merge."""

import pickle

import pytest

from repro.obs.tracer import (
    INSTANT,
    NULL_SPAN,
    SPAN,
    SpanTracer,
    TraceEvent,
)


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestSpanRecording:
    def test_span_context_manager_captures_interval(self):
        clock = FakeClock()
        tracer = SpanTracer(now_fn=clock, track="driver")
        with tracer.span("fleet.tick", step=1.0):
            clock.now = 2.5
        (event,) = tracer.timeline()
        assert event.kind == SPAN
        assert event.name == "fleet.tick"
        assert event.track == "driver"
        assert (event.t0, event.t1) == (0.0, 2.5)
        assert event.wall_s >= 0.0
        assert event.attrs == (("step", 1.0),)

    def test_add_span_direct(self):
        tracer = SpanTracer(now_fn=FakeClock(), track="shard-1")
        tracer.add_span("shard.step", 1.0, 2.0, 0.001, step=1.0)
        (event,) = tracer.timeline()
        assert event.track == "shard-1"
        assert event.attrs == (("step", 1.0),)

    def test_instant_uses_clock_or_explicit_time(self):
        clock = FakeClock(7.0)
        tracer = SpanTracer(now_fn=clock, track="fault")
        tracer.instant("fault.oom-kill")
        tracer.instant("fault.machine-crash", at=3.0, server=2)
        a, b = tracer.timeline()
        # timeline is clock-ordered: the at=3.0 marker sorts first
        assert (a.name, a.t0) == ("fault.machine-crash", 3.0)
        assert a.kind == INSTANT
        assert a.attrs == (("server", 2),)
        assert (b.t0, b.t1) == (7.0, 7.0)

    def test_disabled_tracer_records_nothing(self):
        tracer = SpanTracer(now_fn=FakeClock(), enabled=False)
        assert tracer.span("x") is NULL_SPAN
        with tracer.span("x"):
            pass
        tracer.add_span("y", 0.0, 1.0, 0.0)
        tracer.instant("z")
        assert tracer.event_count == 0
        assert tracer.timeline() == []


class TestRingBuffer:
    def test_wraparound_keeps_newest_and_counts_drops(self):
        tracer = SpanTracer(now_fn=FakeClock(), capacity=3)
        for i in range(5):
            tracer.add_span("s", float(i), float(i), 0.0)
        assert tracer.dropped == 2
        events = tracer.drain()
        assert [e.t0 for e in events] == [2.0, 3.0, 4.0]
        # drain order is record order even mid-wrap
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            SpanTracer(now_fn=FakeClock(), capacity=0)


class TestDrainIngest:
    def test_drain_empties_the_buffer(self):
        tracer = SpanTracer(now_fn=FakeClock())
        tracer.add_span("a", 0.0, 1.0, 0.0)
        assert len(tracer.drain()) == 1
        assert tracer.drain() == ()

    def test_events_survive_pickling_like_control_frames(self):
        tracer = SpanTracer(now_fn=FakeClock(), track="shard-0")
        tracer.add_span("shard.step", 0.0, 1.0, 0.0, shard=0)
        wire = pickle.loads(pickle.dumps(tracer.drain()))
        driver = SpanTracer(now_fn=FakeClock(), track="driver")
        driver.ingest(wire)
        (event,) = driver.timeline()
        assert isinstance(event, TraceEvent)
        assert event.track == "shard-0"

    def test_ingest_coerces_bare_tuples(self):
        driver = SpanTracer(now_fn=FakeClock())
        driver.ingest([(SPAN, "x", "shard-1", 0.0, 1.0, 0.0, (), 0)])
        (event,) = driver.timeline()
        assert isinstance(event, TraceEvent)

    def test_timeline_merges_in_clock_order_across_processes(self):
        driver = SpanTracer(now_fn=FakeClock(), track="driver")
        driver.add_span("fleet.tick", 0.0, 1.0, 0.0)
        driver.add_span("fleet.tick", 1.0, 2.0, 0.0)
        for shard in (1, 0):  # ingest order must not matter
            worker = SpanTracer(now_fn=FakeClock(), track=f"shard-{shard}")
            worker.add_span("shard.step", 0.0, 1.0, 0.0)
            worker.add_span("shard.step", 1.0, 2.0, 0.0)
            driver.ingest(worker.drain())
        timeline = driver.timeline()
        assert [e.t0 for e in timeline] == sorted(e.t0 for e in timeline)
        # same-instant ties break on track name, deterministically
        assert [e.track for e in timeline if e.t0 == 0.0] == [
            "driver", "shard-0", "shard-1"
        ]

    def test_timeline_is_idempotent(self):
        driver = SpanTracer(now_fn=FakeClock())
        driver.add_span("a", 0.0, 1.0, 0.0)
        first = driver.timeline()
        assert driver.timeline() == first
        assert driver.event_count == 1
