"""Tests for the JSONL / Chrome trace exporters and the validator CLI."""

import json

import pytest

from repro.obs.export import (
    TRACE_PID,
    chrome_trace,
    to_chrome_trace,
    to_jsonl,
    track_tid,
    validate_chrome_trace,
)
from repro.obs.tracer import SpanTracer
from repro.obs.validate import main as validate_main


def sample_events():
    tracer = SpanTracer(now_fn=lambda: 0.0, track="driver")
    tracer.add_span("fleet.tick", 0.0, 1.0, 0.002, step=1.0)
    tracer.add_span("shard.step", 0.0, 1.0, 0.001, track="shard-1")
    tracer.instant("fault.oom-kill", at=0.5, track="fault", server=3)
    return tracer.timeline()


class TestTrackTids:
    def test_fixed_tracks(self):
        assert track_tid("driver") == 0
        assert track_tid("barrier") == 1
        assert track_tid("fault") == 2

    def test_shard_tracks_index_from_base(self):
        assert track_tid("shard-0") == 10
        assert track_tid("shard-7") == 17

    def test_unknown_track_is_stable(self):
        assert track_tid("custom") == track_tid("custom")
        assert track_tid("custom") != track_tid("other")


class TestJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "events.jsonl"
        assert to_jsonl(sample_events(), path) == 3
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == [
            "fleet.tick", "shard.step", "fault.oom-kill"
        ]
        assert rows[2]["attrs"] == {"server": 3}
        assert rows[2]["t0"] == rows[2]["t1"] == 0.5


class TestChromeTrace:
    def test_span_and_instant_shapes(self):
        data = chrome_trace(sample_events())
        spans = [e for e in data["traceEvents"] if e["ph"] == "X"]
        instants = [e for e in data["traceEvents"] if e["ph"] == "i"]
        meta = [e for e in data["traceEvents"] if e["ph"] == "M"]
        assert len(spans) == 2 and len(instants) == 1
        tick = next(e for e in spans if e["name"] == "fleet.tick")
        assert tick["ts"] == 0.0
        assert tick["dur"] == pytest.approx(1e6)  # 1 virtual second in us
        assert tick["pid"] == TRACE_PID
        assert tick["args"]["wall_ms"] == pytest.approx(2.0)
        assert instants[0]["s"] == "t"
        # two metadata events (name + sort index) per distinct track
        assert len(meta) == 6
        names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        assert names == {0: "driver", 2: "fault", 11: "shard-1"}

    def test_file_export_validates(self, tmp_path):
        path = tmp_path / "trace.json"
        assert to_chrome_trace(sample_events(), path) == 3
        counts = validate_chrome_trace(json.loads(path.read_text()))
        assert counts == {
            "spans": 2, "instants": 1, "metadata": 6, "tracks": 3
        }


class TestValidator:
    def test_rejects_non_trace(self):
        with pytest.raises(ValueError, match="traceEvents"):
            validate_chrome_trace({"events": []})

    def test_rejects_negative_duration(self):
        data = chrome_trace(sample_events())
        span = next(e for e in data["traceEvents"] if e["ph"] == "X")
        span["dur"] = -5.0
        with pytest.raises(ValueError, match="negative span duration"):
            validate_chrome_trace(data)

    def test_rejects_missing_keys(self):
        data = chrome_trace(sample_events())
        del data["traceEvents"][-1]["tid"]
        with pytest.raises(ValueError, match="missing required key"):
            validate_chrome_trace(data)

    def test_rejects_empty_trace(self):
        with pytest.raises(ValueError, match="no span or instant"):
            validate_chrome_trace({"traceEvents": []})

    def test_cli_accepts_valid_file(self, tmp_path, capsys):
        path = tmp_path / "trace.json"
        to_chrome_trace(sample_events(), path)
        assert validate_main([str(path)]) == 0
        assert "valid Chrome trace" in capsys.readouterr().out

    def test_cli_rejects_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.json"
        path.write_text('{"traceEvents": []}')
        assert validate_main([str(path)]) == 1
        assert "invalid" in capsys.readouterr().err.lower()

    def test_cli_usage_error(self, capsys):
        assert validate_main([]) == 2
