"""Tests for the typed metric registry."""

import json

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry, qualify


class TestQualify:
    def test_unlabeled_name_is_bare(self):
        assert qualify("sim.ticks", ()) == "sim.ticks"

    def test_labels_render_sorted(self):
        key = (("shard", 2), ("kind", "step"))
        assert qualify("ipc.wait", tuple(sorted(key))) == (
            "ipc.wait{kind=step,shard=2}"
        )

    def test_label_order_does_not_matter(self):
        # the registry sorts label pairs before qualifying, so the same
        # labels in any keyword order address the same instrument
        r = MetricRegistry()
        a = r.counter("ipc.wait", shard=2, kind="step")
        b = r.counter("ipc.wait", kind="step", shard=2)
        assert a is b
        assert a.qualified_name == "ipc.wait{kind=step,shard=2}"


class TestInstruments:
    def test_counter_inc_and_value(self):
        c = Counter("c", "", ())
        c.inc()
        c.inc(4)
        c.value += 2
        assert c.value == 7

    def test_gauge_set(self):
        g = Gauge("g", "", ())
        g.set(12.5)
        assert g.value == 12.5

    def test_histogram_buckets_and_stats(self):
        h = Histogram("h", "", (), bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        assert h.min == 0.5
        assert h.max == 50.0
        assert h.mean == pytest.approx(18.5)
        # cumulative-style per-bucket counts: <=1, <=10, overflow
        assert h.bucket_counts == [1, 1, 1]

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", "", ()).mean == 0.0


class TestHistogramQuantile:
    def test_empty_is_zero(self):
        assert Histogram("h", "", ()).quantile(0.5) == 0.0

    def test_out_of_range_raises(self):
        h = Histogram("h", "", ())
        with pytest.raises(ValueError):
            h.quantile(-0.1)
        with pytest.raises(ValueError):
            h.quantile(1.1)

    def test_extremes_are_observed_min_and_max(self):
        h = Histogram("h", "", (), bounds=(10.0,))
        for v in (2.0, 4.0, 6.0, 8.0):
            h.observe(v)
        assert h.quantile(0.0) == 2.0
        assert h.quantile(1.0) == 8.0

    def test_interpolates_within_a_bucket(self):
        # 4 observations uniform in one bucket spanning [min=2, max=8]
        h = Histogram("h", "", (), bounds=(10.0,))
        for v in (2.0, 4.0, 6.0, 8.0):
            h.observe(v)
        assert h.quantile(0.5) == pytest.approx(5.0)

    def test_walks_buckets_cumulatively(self):
        # 9 obs in [0,1], 1 in (1,10]: p50 stays in the first bucket,
        # p99 lands in the sparse tail bucket near the observed max
        h = Histogram("h", "", (), bounds=(1.0, 10.0))
        for i in range(9):
            h.observe(0.1 * (i + 1))
        h.observe(5.0)
        assert h.quantile(0.5) <= 1.0
        assert 1.0 < h.quantile(0.99) <= 5.0

    def test_monotone_in_q(self):
        h = Histogram("h", "", ())
        for i in range(100):
            h.observe(0.003 * (i + 1))
        qs = [h.quantile(q / 20.0) for q in range(21)]
        assert qs == sorted(qs)
        assert qs[0] == h.min
        assert qs[-1] == h.max


class TestMetricRegistry:
    def test_same_name_returns_same_instrument(self):
        r = MetricRegistry()
        assert r.counter("a") is r.counter("a")

    def test_labels_distinguish_instruments(self):
        r = MetricRegistry()
        a = r.counter("subsystem.wall_s", subsystem="scheduler")
        b = r.counter("subsystem.wall_s", subsystem="thermal")
        assert a is not b
        a.value += 1.0
        assert r.get("subsystem.wall_s", subsystem="thermal").value == 0

    def test_kind_conflict_raises(self):
        r = MetricRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_get_unknown_returns_none(self):
        assert MetricRegistry().get("nope") is None

    def test_instruments_sorted_by_qualified_name(self):
        r = MetricRegistry()
        r.counter("b")
        r.gauge("a")
        r.counter("b", shard=1)
        names = [i.qualified_name for i in r.instruments()]
        assert names == ["a", "b", "b{shard=1}"]

    def test_snapshot_shapes(self):
        r = MetricRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(7)
        r.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = r.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 7
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"]["le_1.0"] == 1
        assert snap["h"]["buckets"]["overflow"] == 0

    def test_snapshot_is_deterministic(self):
        def populate(r):
            r.counter("b.total", shard=1).inc(3)
            r.counter("b.total", shard=0).inc(2)
            r.gauge("a.level").set(7.5)
            h = r.histogram("c.wait", bounds=(1.0, 10.0))
            for v in (0.5, 2.0, 20.0):
                h.observe(v)

        r1, r2 = MetricRegistry(), MetricRegistry()
        populate(r1)
        populate(r2)
        # identical contents -> identical snapshots, byte-identical JSON
        assert r1.snapshot() == r2.snapshot()
        assert json.dumps(r1.snapshot(), sort_keys=True) == json.dumps(
            r2.snapshot(), sort_keys=True
        )
        # key order follows instruments(): sorted by qualified name
        assert list(r1.snapshot()) == sorted(r1.snapshot())

    def test_snapshot_while_updating_is_a_point_in_time(self):
        r = MetricRegistry()
        c = r.counter("x")
        c.inc(5)
        before = r.snapshot()
        c.inc(10)
        r.histogram("h").observe(1.0)
        after = r.snapshot()
        # the earlier snapshot is not a live view of the registry
        assert before["x"] == 5
        assert after["x"] == 15
        assert "h" not in before
        assert after["h"]["count"] == 1

    def test_render_empty_and_aligned(self):
        r = MetricRegistry()
        assert "no instruments" in r.render()
        r.counter("sim.ticks").inc(9)
        r.gauge("ipc.workers").set(2)
        text = r.render()
        assert "[counter] 9" in text
        assert "[gauge] 2" in text
        # one line per instrument, sorted
        assert text.splitlines()[0].startswith("ipc.workers")
