"""Tests for the typed metric registry."""

import pytest

from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry, qualify


class TestQualify:
    def test_unlabeled_name_is_bare(self):
        assert qualify("sim.ticks", ()) == "sim.ticks"

    def test_labels_render_sorted(self):
        key = (("shard", 2), ("kind", "step"))
        assert qualify("ipc.wait", tuple(sorted(key))) == (
            "ipc.wait{kind=step,shard=2}"
        )


class TestInstruments:
    def test_counter_inc_and_value(self):
        c = Counter("c", "", ())
        c.inc()
        c.inc(4)
        c.value += 2
        assert c.value == 7

    def test_gauge_set(self):
        g = Gauge("g", "", ())
        g.set(12.5)
        assert g.value == 12.5

    def test_histogram_buckets_and_stats(self):
        h = Histogram("h", "", (), bounds=(1.0, 10.0))
        for v in (0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(55.5)
        assert h.min == 0.5
        assert h.max == 50.0
        assert h.mean == pytest.approx(18.5)
        # cumulative-style per-bucket counts: <=1, <=10, overflow
        assert h.bucket_counts == [1, 1, 1]

    def test_empty_histogram_mean_is_zero(self):
        assert Histogram("h", "", ()).mean == 0.0


class TestMetricRegistry:
    def test_same_name_returns_same_instrument(self):
        r = MetricRegistry()
        assert r.counter("a") is r.counter("a")

    def test_labels_distinguish_instruments(self):
        r = MetricRegistry()
        a = r.counter("subsystem.wall_s", subsystem="scheduler")
        b = r.counter("subsystem.wall_s", subsystem="thermal")
        assert a is not b
        a.value += 1.0
        assert r.get("subsystem.wall_s", subsystem="thermal").value == 0

    def test_kind_conflict_raises(self):
        r = MetricRegistry()
        r.counter("x")
        with pytest.raises(ValueError):
            r.gauge("x")

    def test_get_unknown_returns_none(self):
        assert MetricRegistry().get("nope") is None

    def test_instruments_sorted_by_qualified_name(self):
        r = MetricRegistry()
        r.counter("b")
        r.gauge("a")
        r.counter("b", shard=1)
        names = [i.qualified_name for i in r.instruments()]
        assert names == ["a", "b", "b{shard=1}"]

    def test_snapshot_shapes(self):
        r = MetricRegistry()
        r.counter("c").inc(3)
        r.gauge("g").set(7)
        r.histogram("h", bounds=(1.0,)).observe(0.5)
        snap = r.snapshot()
        assert snap["c"] == 3
        assert snap["g"] == 7
        assert snap["h"]["count"] == 1
        assert snap["h"]["buckets"]["le_1.0"] == 1
        assert snap["h"]["buckets"]["overflow"] == 0

    def test_render_empty_and_aligned(self):
        r = MetricRegistry()
        assert "no instruments" in r.render()
        r.counter("sim.ticks").inc(9)
        r.gauge("ipc.workers").set(2)
        text = r.render()
        assert "[counter] 9" in text
        assert "[gauge] 2" in text
        # one line per instrument, sorted
        assert text.splitlines()[0].startswith("ipc.workers")
