"""Live operations plane: streaming appender, pull endpoints, trace spill.

The plane's hard promises (ISSUE acceptance criteria): the metrics
stream is append-only and resume-idempotent (strictly monotone ``t`` and
``seq`` across ``run(resume=True)``); the pull endpoints read a live
campaign without posting control frames; and ring spill-to-disk keeps
the golden serial-vs-parallel timeline equivalence bit-identical — a
run whose rings overflowed stitches back the same merged timeline an
unbounded ring would have produced.
"""

import json
import urllib.error
import urllib.request

import pytest

from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import SimulationError
from repro.obs import validate as validate_cli
from repro.obs.export import to_chrome_trace
from repro.obs.ops import (
    MetricsAppender,
    OpsServer,
    read_metrics_stream,
    render_stream_tail,
    validate_metrics_stream,
)
from repro.obs.registry import MetricRegistry
from repro.obs.spill import SpillWriter, read_segments, validate_spill_dir
from repro.obs.tracer import SpanTracer
from repro.sim.faults import FaultEvent, FaultKind, FaultSchedule

SEED = 61
SERVERS = 4

#: tracks whose events must not depend on the execution mode
SHARED_TRACKS = {"driver", "fault", "attack", "defense"}


def marker_schedule():
    return FaultSchedule(
        [
            FaultEvent(at=15.0, kind=FaultKind.RAPL_DROP,
                       duration_s=10.0, server=0),
            FaultEvent(at=25.0, kind=FaultKind.OOM_KILL,
                       duration_s=0.0, server=3),
            FaultEvent(at=35.0, kind=FaultKind.CLOCK_JITTER,
                       duration_s=10.0, magnitude=0.2),
        ],
        seed=17,
    )


def shared_timeline(sim):
    """Sim-time view of the mode-independent tracks (wall times vary)."""
    return [
        (e.kind, e.name, e.track, e.t0, e.t1, e.attrs)
        for e in sim.tracer.timeline()
        if e.track in SHARED_TRACKS
    ]


# ------------------------------------------------------------- appender


class TestMetricsAppender:
    def test_needs_some_cadence(self, tmp_path):
        with pytest.raises(ValueError, match="cadence"):
            MetricsAppender(
                str(tmp_path / "m.jsonl"), MetricRegistry(),
                every_sim_s=None, every_wall_s=None,
            )

    def test_empty_registry_appends_a_valid_record(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        app = MetricsAppender(path, MetricRegistry(), every_sim_s=10.0)
        app.append(5.0)
        app.close()
        records = read_metrics_stream(path)
        assert len(records) == 1
        assert records[0]["t"] == 5.0
        assert records[0]["seq"] == 0
        assert records[0]["metrics"] == {}
        assert validate_metrics_stream(path)["records"] == 1

    def test_sim_cadence(self, tmp_path):
        app = MetricsAppender(
            str(tmp_path / "m.jsonl"), MetricRegistry(), every_sim_s=10.0
        )
        assert app.maybe_append(1.0)  # first call always snapshots
        assert not app.maybe_append(5.0)
        assert not app.maybe_append(10.9)
        assert app.maybe_append(11.0)
        assert not app.maybe_append(11.0)  # no duplicate at the same t
        assert app.maybe_append(21.0)
        app.close()

    def test_snapshot_reflects_registry_at_append_time(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        registry = MetricRegistry()
        c = registry.counter("sim.ticks")
        app = MetricsAppender(path, registry, every_sim_s=1.0)
        c.inc(3)
        app.append(1.0)
        c.inc(4)
        app.append(2.0)
        app.close()
        records = read_metrics_stream(path)
        assert [r["metrics"]["sim.ticks"] for r in records] == [3, 7]

    def test_reopen_resumes_after_the_tail(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        first = MetricsAppender(path, MetricRegistry(), every_sim_s=60.0)
        for t in (0.0, 60.0, 120.0):
            first.append(t)
        first.close()

        again = MetricsAppender(path, MetricRegistry(), every_sim_s=60.0)
        assert again.seq == 3
        assert again.last_t == 120.0
        # replayed windows at or before the tail append nothing
        assert not again.maybe_append(60.0)
        assert not again.maybe_append(120.0)
        assert again.maybe_append(180.0)
        again.close()
        summary = validate_metrics_stream(path)
        assert summary["records"] == 4
        assert summary["t_last"] == 180.0

    def test_torn_tail_is_superseded_not_fatal(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        app = MetricsAppender(path, MetricRegistry(), every_sim_s=1.0)
        app.append(1.0)
        app.close()
        with open(path, "a") as fh:
            fh.write('{"t": 2.0, "seq": 1, "met')  # killed mid-write
        again = MetricsAppender(path, MetricRegistry(), every_sim_s=1.0)
        assert again.seq == 1  # resumed from the last *intact* record
        again.append(3.0)
        again.close()
        records = read_metrics_stream(path)
        assert [r["t"] for r in records] == [1.0, 3.0]

    def test_close_appends_final_record_only_if_time_advanced(self, tmp_path):
        path = str(tmp_path / "m.jsonl")
        app = MetricsAppender(path, MetricRegistry(), every_sim_s=10.0)
        app.append(5.0)
        app.close(5.0)
        assert len(read_metrics_stream(path)) == 1
        again = MetricsAppender(path, MetricRegistry(), every_sim_s=10.0)
        again.close(7.0)
        assert [r["t"] for r in read_metrics_stream(path)] == [5.0, 7.0]

    def test_render_stream_tail_summarizes_last_record(self, tmp_path):
        registry = MetricRegistry()
        registry.counter("sim.ticks").inc(42)
        app = MetricsAppender(
            str(tmp_path / "metrics.jsonl"), registry, every_sim_s=1.0
        )
        app.append(1.0)
        app.append(9.0)
        app.close()
        text = render_stream_tail(str(tmp_path))
        assert "2 record(s)" in text
        assert "sim.ticks" in text
        assert "42" in text


# --------------------------------------------------------------- server


class TestOpsServer:
    def test_endpoints(self):
        registry = MetricRegistry()
        registry.counter("sim.ticks").inc(9)
        server = OpsServer(registry, lambda: {"now": 12.5}, port=0)
        try:
            with urllib.request.urlopen(server.url + "/healthz") as resp:
                assert json.loads(resp.read()) == {"ok": True}
            with urllib.request.urlopen(server.url + "/metrics") as resp:
                body = resp.read().decode()
                assert resp.headers["Content-Type"].startswith("text/plain")
            assert "sim.ticks" in body
            assert "[counter] 9" in body
            with urllib.request.urlopen(server.url + "/status") as resp:
                assert json.loads(resp.read()) == {"now": 12.5}
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/nope")
            assert err.value.code == 404
            assert server.requests_served == 3
        finally:
            server.close()

    def test_status_errors_surface_as_500(self):
        def broken():
            raise RuntimeError("no status for you")

        server = OpsServer(MetricRegistry(), broken, port=0)
        try:
            with pytest.raises(urllib.error.HTTPError) as err:
                urllib.request.urlopen(server.url + "/status")
            assert err.value.code == 500
        finally:
            server.close()


# ---------------------------------------------------------------- spill


class TestSpill:
    @staticmethod
    def fill(tracer, n):
        for i in range(n):
            tracer.instant("ev", at=float(i), server=i)

    def test_rejects_path_like_labels(self, tmp_path):
        with pytest.raises(ValueError):
            SpillWriter(str(tmp_path), "a/b")
        with pytest.raises(ValueError):
            SpillWriter(str(tmp_path), ".hidden")

    def test_no_eviction_leaves_no_segment(self, tmp_path):
        tracer = SpanTracer(now_fn=lambda: 0.0, capacity=16)
        tracer.enable_spill(str(tmp_path / "spill"))
        self.fill(tracer, 10)
        assert tracer.spilled == 0
        assert not (tmp_path / "spill").exists()

    def test_stitched_timeline_equals_unbounded_ring(self, tmp_path):
        tiny = SpanTracer(now_fn=lambda: 0.0, capacity=4)
        tiny.enable_spill(str(tmp_path / "spill"))
        big = SpanTracer(now_fn=lambda: 0.0, capacity=1000)
        self.fill(tiny, 25)
        self.fill(big, 25)
        assert tiny.spilled == 21
        assert tiny.dropped == 0
        assert tiny.timeline() == big.timeline()
        # timeline() re-reads segments without double-ingesting them
        assert tiny.timeline() == big.timeline()

    def test_spill_to_a_second_directory_rejected(self, tmp_path):
        tracer = SpanTracer(now_fn=lambda: 0.0, capacity=4)
        tracer.enable_spill(str(tmp_path / "a"))
        tracer.enable_spill(str(tmp_path / "a"))  # idempotent
        with pytest.raises(ValueError, match="already spills"):
            tracer.enable_spill(str(tmp_path / "b"))

    def test_replayed_incarnation_dedupes_by_seq(self, tmp_path):
        directory = str(tmp_path / "spill")
        first = SpanTracer(now_fn=lambda: 0.0, capacity=1, track="shard-0")
        first.enable_spill(directory)
        self.fill(first, 6)  # spills seq 0..4
        first.close_spill()
        # a respawned worker continues in a fresh incarnation segment and
        # re-spills replayed events byte-identically
        second = SpanTracer(now_fn=lambda: 0.0, capacity=1, track="shard-0")
        second.enable_spill(directory)
        second.restore_counters(3, 0, spilled=3)
        for i in range(3, 8):
            second.instant("ev", at=float(i), server=i)
        rows = read_segments(directory)
        assert len({row[7] for row in rows}) == len(rows) == 7
        assert sorted(row[7] for row in rows) == list(range(7))
        summary = validate_spill_dir(directory)
        assert summary["segments"] == 2
        assert summary["deduped_events"] == 7
        assert summary["processes"] == ["shard-0"]

    def test_torn_final_line_is_skipped_and_healed(self, tmp_path):
        directory = tmp_path / "spill"
        tracer = SpanTracer(now_fn=lambda: 0.0, capacity=1, track="driver")
        tracer.enable_spill(str(directory))
        self.fill(tracer, 4)  # spills seq 0..2
        tracer.close_spill()
        segment = next(directory.iterdir())
        with open(segment, "a") as fh:
            fh.write('["instant", "ev", "driver", 3.0')  # SIGKILL mid-write
        summary = validate_spill_dir(str(directory))
        assert summary["torn_lines"] == 1
        assert summary["deduped_events"] == 3
        # the replayed duplicate in a later incarnation supplies the
        # intact copy of the torn event
        replay = SpanTracer(now_fn=lambda: 0.0, capacity=1, track="driver")
        replay.enable_spill(str(directory))
        replay.restore_counters(3, 0, spilled=3)
        replay.instant("ev", at=3.0, server=3)
        replay.instant("ev", at=4.0, server=4)
        assert len(read_segments(str(directory))) == 4

    def test_malformed_interior_line_fails_validation(self, tmp_path):
        directory = tmp_path / "spill"
        directory.mkdir()
        (directory / "driver.0.jsonl").write_text("garbage\n[]\n")
        with pytest.raises(ValueError, match="malformed spill row"):
            validate_spill_dir(str(directory))

    def test_missing_directory_fails_validation(self, tmp_path):
        with pytest.raises(ValueError, match="not a spill directory"):
            validate_spill_dir(str(tmp_path / "nope"))


# --------------------------------------------------------- validate CLI


class TestValidateCli:
    def test_no_arguments_is_usage_error(self, capsys):
        assert validate_cli.main([]) == 2
        assert "usage" in capsys.readouterr().err

    def test_metrics_stream_mode(self, tmp_path, capsys):
        path = str(tmp_path / "m.jsonl")
        app = MetricsAppender(path, MetricRegistry(), every_sim_s=1.0)
        app.append(1.0)
        app.append(2.0)
        app.close()
        assert validate_cli.main(["--metrics", path]) == 0
        assert "valid metrics stream — 2 record(s)" in capsys.readouterr().out

    def test_non_monotone_stream_fails(self, tmp_path, capsys):
        path = tmp_path / "m.jsonl"
        path.write_text(
            '{"t": 2.0, "seq": 0, "metrics": {}}\n'
            '{"t": 1.0, "seq": 1, "metrics": {}}\n'
        )
        assert validate_cli.main(["--metrics", str(path)]) == 1
        assert "not after" in capsys.readouterr().err

    def test_spill_mode(self, tmp_path, capsys):
        tracer = SpanTracer(now_fn=lambda: 0.0, capacity=1, track="driver")
        tracer.enable_spill(str(tmp_path / "spill"))
        TestSpill.fill(tracer, 4)
        tracer.close_spill()
        assert validate_cli.main(["--spill", str(tmp_path / "spill")]) == 0
        assert "valid spill directory" in capsys.readouterr().out

    def test_trace_with_unspilled_drops_warns(self, tmp_path, capsys):
        tracer = SpanTracer(now_fn=lambda: 0.0, capacity=2)
        TestSpill.fill(tracer, 5)
        assert tracer.dropped == 3
        path = str(tmp_path / "trace.json")
        to_chrome_trace(
            tracer.timeline(), path, health={"driver": tracer.health()}
        )
        assert validate_cli.main([path]) == 0
        captured = capsys.readouterr()
        assert "valid Chrome trace" in captured.out
        assert "dropped 3 event(s) without spill enabled" in captured.err
        assert "driver" in captured.err

    def test_trace_with_spill_reports_stitched_events(self, tmp_path, capsys):
        tracer = SpanTracer(now_fn=lambda: 0.0, capacity=2)
        tracer.enable_spill(str(tmp_path / "spill"))
        TestSpill.fill(tracer, 5)
        path = str(tmp_path / "trace.json")
        to_chrome_trace(
            tracer.timeline(), path, health={"driver": tracer.health()}
        )
        assert validate_cli.main([path]) == 0
        captured = capsys.readouterr()
        assert "3 events stitched from spill" in captured.out
        assert captured.err == ""


# ----------------------------------------------------- simulation wiring


def build_fleet(parallel, ops_dir=None, capacity=None, seconds=60.0):
    sim = DatacenterSimulation(
        servers=SERVERS, rack_size=2, seed=SEED, sample_interval_s=1.0
    )
    if capacity is not None:
        sim.enable_tracing(
            capacity=capacity, spill_dir=str(ops_dir / "spill")
        )
    else:
        sim.enable_tracing()
    if ops_dir is not None:
        sim.enable_ops(str(ops_dir), every_sim_s=10.0)
    sim.install_faults(marker_schedule())
    sim.run(seconds, dt=1.0, parallel=parallel)
    return sim


class TestSimulationOps:
    def test_enable_ops_twice_rejected(self, tmp_path):
        sim = DatacenterSimulation(servers=2, rack_size=2, seed=3)
        sim.enable_ops(str(tmp_path))
        try:
            with pytest.raises(SimulationError, match="already enabled"):
                sim.enable_ops(str(tmp_path))
        finally:
            sim.close()

    def test_status_readable_mid_campaign(self, tmp_path):
        sim = DatacenterSimulation(
            servers=2, rack_size=2, seed=11, sample_interval_s=1.0
        )
        sim.enable_tracing()
        ops = sim.enable_ops(str(tmp_path), every_sim_s=5.0, port=0)
        seen = {}

        def probe(s):
            if s.now >= 30.0 and not seen:
                with urllib.request.urlopen(ops.server.url + "/status") as r:
                    seen["status"] = json.loads(r.read())
                with urllib.request.urlopen(ops.server.url + "/metrics") as r:
                    seen["metrics"] = r.read().decode()

        try:
            sim.run(60.0, dt=1.0, on_tick=probe)
        finally:
            sim.close()
        status = seen["status"]
        assert status["mode"] == "serial"
        assert 30.0 <= status["now"] < 60.0
        assert status["ticks"] > 0
        assert status["trace"]["driver"]["dropped"] == 0
        assert seen["metrics"].strip()
        # the stream kept appending after the probe and close() sealed it
        summary = validate_metrics_stream(str(tmp_path / "metrics.jsonl"))
        assert summary["t_last"] == 60.0

    def test_parallel_status_includes_shard_economy(self, tmp_path):
        sim = build_fleet(2, ops_dir=tmp_path)
        try:
            status = sim.ops_status()
            par = status["parallel"]
            assert par["workers"] == 2
            assert set(par["barrier_wait_s"]) == {"0", "1"}
            assert set(par["barrier_frame_wait_s"]) == {"p50", "p90", "p99"}
            assert par["restarts"] == [0, 0]  # per-shard restart counts
            assert par["checkpoint_seq"] == 0
            health = sim.trace_health()
        finally:
            sim.close()
        assert set(health) == {"driver", "shard-0", "shard-1"}
        # trace_health mirrored the counters into the ops registry
        reg = sim.metrics.registry
        assert (
            reg.get("obs.trace_dropped_events", process="driver").value == 0
        )

    def test_dropped_counter_reflects_unspilled_evictions(self, tmp_path):
        sim = DatacenterSimulation(
            servers=2, rack_size=2, seed=5, sample_interval_s=1.0
        )
        sim.enable_tracing(capacity=8)  # no spill: evictions are losses
        try:
            sim.run(60.0, dt=1.0)
            health = sim.trace_health()
            assert health["driver"]["dropped"] > 0
            assert not health["driver"]["spill_enabled"]
            reg = sim.metrics.registry
            counter = reg.get("obs.trace_dropped_events", process="driver")
            assert counter.value == health["driver"]["dropped"]
        finally:
            sim.close()


class TestGoldenEquivalenceWithOps:
    def test_serial_vs_parallel_identical_with_spill_and_appender(
        self, tmp_path
    ):
        golden = build_fleet(0)  # unbounded ring, no ops plane
        try:
            reference = shared_timeline(golden)
        finally:
            golden.close()

        serial = build_fleet(0, ops_dir=tmp_path / "serial", capacity=1)
        try:
            serial_view = shared_timeline(serial)
            serial_health = serial.trace_health()
        finally:
            serial.close()

        par = build_fleet(2, ops_dir=tmp_path / "par", capacity=1)
        try:
            par_view = shared_timeline(par)
            par_health = par.trace_health()
        finally:
            par.close()

        # spilled-and-stitched timelines equal the unbounded golden run
        assert serial_view == reference
        assert par_view == reference
        assert len(reference) > 60

        # the tiny rings really overflowed, and nothing was lost
        assert serial_health["driver"]["spilled"] > 0
        assert all(h["dropped"] == 0 for h in serial_health.values())
        assert par_health["driver"]["spilled"] > 0
        assert all(h["dropped"] == 0 for h in par_health.values())
        # fault markers recorded by shard workers overflowed their
        # one-slot rings mid-tick, so worker segments exist too
        par_spill = validate_spill_dir(str(tmp_path / "par" / "spill"))
        assert "driver" in par_spill["processes"]

        # both ops directories carry valid monotone metrics streams
        # (the parallel engine checks cadence at epoch boundaries, so it
        # appends fewer records than the per-tick serial loop)
        for mode in ("serial", "par"):
            summary = validate_metrics_stream(
                str(tmp_path / mode / "metrics.jsonl")
            )
            assert summary["records"] >= 3
            assert summary["t_last"] == 60.0


class TestAppenderAcrossResume:
    def test_stream_is_idempotent_across_resume(self, tmp_path):
        ckpt = tmp_path / "ckpt"
        ops_dir = tmp_path / "ops"

        def build():
            sim = DatacenterSimulation(
                servers=SERVERS, rack_size=2, seed=7, sample_interval_s=30.0
            )
            sim.enable_resilience(
                checkpoint_dir=str(ckpt), checkpoint_every=120.0
            )
            sim.enable_ops(str(ops_dir), every_sim_s=60.0)
            return sim

        part = build()
        part.run(300, parallel=2, coalesce=True)
        part.close()  # "the process died here"
        before = read_metrics_stream(str(ops_dir / "metrics.jsonl"))
        assert before, "first leg streamed nothing"

        res = build()
        res.run(300, parallel=2, coalesce=True, resume=True)
        res.run(300, parallel=2, coalesce=True)
        res.close()
        after = read_metrics_stream(str(ops_dir / "metrics.jsonl"))

        # the replayed window appended nothing; the stream's first leg is
        # untouched and the continuation is strictly after it
        assert after[: len(before)] == before
        assert len(after) > len(before)
        summary = validate_metrics_stream(str(ops_dir / "metrics.jsonl"))
        assert summary["t_last"] == 600.0
        seqs = [r["seq"] for r in after]
        assert seqs == list(range(len(after)))
