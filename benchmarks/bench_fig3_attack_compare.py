"""Figure 3: synergistic vs periodic power attack on 8 servers.

Both attackers control one 4-core instance per server. The periodic
baseline fires blindly every 300 s; the synergistic attacker monitors the
leaked RAPL channel and superimposes bursts on benign crests. The benign
background is bursty (short batch spikes), as in the paper's attack
window, so blind bursts usually miss the crests.

Shape targets (paper: synergistic reached 1,359 W in 2 trials; periodic
managed at most 1,280 W over 9 trials): the synergistic attack must reach
a higher aggregate peak with far fewer trials and a far smaller bill.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.attack.monitor import CrestDetector
from repro.attack.strategies import PeriodicAttack, SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile

#: bursty benign background: frequent short spikes an unsynchronized
#: attacker will usually miss
SPIKY_TENANTS = DiurnalProfile(
    base_cores=1.0,
    peak_cores=1.5,
    bursts_per_day=200.0,
    burst_cores=5.0,
    burst_duration_s=45.0,
    noise=0.05,
)

WINDOW_S = 3000.0
WARMUP_S = 600.0


def setup(seed, parallel=0):
    """Fleet + one attacker instance per server, warmed up in-mode.

    ``parallel`` shards the fleet across worker processes for the warmup
    and everything after it (instances are launched first so the shard
    workers replay them at startup).
    """
    sim = DatacenterSimulation(
        servers=8, seed=seed, sample_interval_s=1.0, tenant_profile=SPIKY_TENANTS
    )
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < 8:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.run(WARMUP_S, dt=1.0, parallel=parallel)
    return sim, instances


def build_synergistic(sim, instances):
    return SynergisticAttack(
        sim,
        instances,
        burst_s=30.0,
        cooldown_s=400.0,
        max_trials=2,
        learn_s=900.0,
        detector_factory=lambda: CrestDetector(
            window=4000, threshold_fraction=0.88, min_band_watts=30.0
        ),
    )


def run_comparison():
    sim_s, inst_s = setup(seed=105)
    out_s = build_synergistic(sim_s, inst_s).run(WINDOW_S)

    sim_p, inst_p = setup(seed=105)
    periodic = PeriodicAttack(sim_p, inst_p, burst_s=30.0, period_s=300.0)
    out_p = periodic.run(WINDOW_S)
    return out_s, out_p


def test_fig3(benchmark, results_dir):
    out_s, out_p = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    import statistics

    # --- who wins: synergistic spikes higher (this seed's run, as the
    # paper reports one run)...
    assert out_s.peak_watts > out_p.peak_watts
    # ...and robustly so per strike: every synergistic burst rides a
    # learned crest, while blind bursts average a lower background
    mean_syn = statistics.mean(out_s.spike_watts)
    mean_per = statistics.mean(out_p.spike_watts)
    assert mean_syn > mean_per + 20.0
    # ...with far fewer trials (paper: 2 vs 9)...
    assert out_s.trials <= 2
    assert out_p.trials >= 9
    # ...at a fraction of the utilization-billed cost
    assert out_s.attacker_cpu_seconds < out_p.attacker_cpu_seconds / 3
    assert out_s.bill_dollars < out_p.bill_dollars / 3

    lines = [
        "Figure 3 reproduction: synergistic vs periodic attack, 8 servers,"
        f" {WINDOW_S:.0f} s window",
        "  paper:    synergistic 1359 W in 2 trials; periodic <= 1280 W in 9",
        f"  measured: synergistic {out_s.peak_watts:.0f} W in {out_s.trials}"
        f" trials (cpu {out_s.attacker_cpu_seconds:.0f} s,"
        f" ${out_s.bill_dollars:.4f})",
        f"            periodic    {out_p.peak_watts:.0f} W in {out_p.trials}"
        f" trials (cpu {out_p.attacker_cpu_seconds:.0f} s,"
        f" ${out_p.bill_dollars:.4f})",
        "  spike list (synergistic): "
        + " ".join(f"{w:.0f}" for w in out_s.spike_watts),
        "  spike list (periodic):    "
        + " ".join(f"{w:.0f}" for w in out_p.spike_watts),
        f"  mean spike: synergistic {mean_syn:.0f} W vs periodic"
        f" {mean_per:.0f} W",
    ]
    write_result(results_dir, "fig3_attack_compare", "\n".join(lines))


def test_fig3_parallel_golden(results_dir):
    """The fig3 synergistic campaign is bit-identical under --parallel.

    The shard-resident monitors and driver-side coordinator must walk
    the exact serial decision sequence: same crest triggers, same spike
    heights, same bill, float for float.
    """
    serial_sim, serial_inst = setup(seed=105)
    serial = build_synergistic(serial_sim, serial_inst).run(WINDOW_S)
    par_sim, par_inst = setup(seed=105, parallel=2)
    try:
        par = build_synergistic(par_sim, par_inst).run(WINDOW_S)
        assert par.trials == serial.trials
        assert par.spike_watts == serial.spike_watts
        assert par.peak_watts == serial.peak_watts
        assert par.attacker_cpu_seconds == serial.attacker_cpu_seconds
        assert par.bill_dollars == serial.bill_dollars
        assert par.degradation == serial.degradation
        assert tuple(par_sim.aggregate_trace.watts) == tuple(
            serial_sim.aggregate_trace.watts
        )
    finally:
        par_sim.close()

    write_result(
        results_dir,
        "fig3_parallel_golden",
        "fig3 synergistic campaign, serial vs --parallel 2: bit-identical"
        f" ({serial.trials} trials, peak {serial.peak_watts:.0f} W,"
        f" bill ${serial.bill_dollars:.4f})",
    )
