"""Figure 3: synergistic vs periodic power attack on 8 servers.

Both attackers control one 4-core instance per server. The periodic
baseline fires blindly every 300 s; the synergistic attacker monitors the
leaked RAPL channel and superimposes bursts on benign crests. The benign
background is bursty (short batch spikes), as in the paper's attack
window, so blind bursts usually miss the crests.

Shape targets (paper: synergistic reached 1,359 W in 2 trials; periodic
managed at most 1,280 W over 9 trials): the synergistic attack must reach
a higher aggregate peak with far fewer trials and a far smaller bill.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.attack.monitor import CrestDetector
from repro.attack.strategies import PeriodicAttack, SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile

#: bursty benign background: frequent short spikes an unsynchronized
#: attacker will usually miss
SPIKY_TENANTS = DiurnalProfile(
    base_cores=1.0,
    peak_cores=1.5,
    bursts_per_day=200.0,
    burst_cores=5.0,
    burst_duration_s=45.0,
    noise=0.05,
)

WINDOW_S = 3000.0
WARMUP_S = 600.0


def setup(seed):
    sim = DatacenterSimulation(
        servers=8, seed=seed, sample_interval_s=1.0, tenant_profile=SPIKY_TENANTS
    )
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < 8:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.run(WARMUP_S, dt=1.0)
    return sim, instances


def run_comparison():
    sim_s, inst_s = setup(seed=105)
    synergistic = SynergisticAttack(
        sim_s,
        inst_s,
        burst_s=30.0,
        cooldown_s=400.0,
        max_trials=2,
        learn_s=900.0,
        detector_factory=lambda: CrestDetector(
            window=4000, threshold_fraction=0.88, min_band_watts=30.0
        ),
    )
    out_s = synergistic.run(WINDOW_S)

    sim_p, inst_p = setup(seed=105)
    periodic = PeriodicAttack(sim_p, inst_p, burst_s=30.0, period_s=300.0)
    out_p = periodic.run(WINDOW_S)
    return out_s, out_p


def test_fig3(benchmark, results_dir):
    out_s, out_p = benchmark.pedantic(run_comparison, rounds=1, iterations=1)

    import statistics

    # --- who wins: synergistic spikes higher (this seed's run, as the
    # paper reports one run)...
    assert out_s.peak_watts > out_p.peak_watts
    # ...and robustly so per strike: every synergistic burst rides a
    # learned crest, while blind bursts average a lower background
    mean_syn = statistics.mean(out_s.spike_watts)
    mean_per = statistics.mean(out_p.spike_watts)
    assert mean_syn > mean_per + 20.0
    # ...with far fewer trials (paper: 2 vs 9)...
    assert out_s.trials <= 2
    assert out_p.trials >= 9
    # ...at a fraction of the utilization-billed cost
    assert out_s.attacker_cpu_seconds < out_p.attacker_cpu_seconds / 3
    assert out_s.bill_dollars < out_p.bill_dollars / 3

    lines = [
        "Figure 3 reproduction: synergistic vs periodic attack, 8 servers,"
        f" {WINDOW_S:.0f} s window",
        "  paper:    synergistic 1359 W in 2 trials; periodic <= 1280 W in 9",
        f"  measured: synergistic {out_s.peak_watts:.0f} W in {out_s.trials}"
        f" trials (cpu {out_s.attacker_cpu_seconds:.0f} s,"
        f" ${out_s.bill_dollars:.4f})",
        f"            periodic    {out_p.peak_watts:.0f} W in {out_p.trials}"
        f" trials (cpu {out_p.attacker_cpu_seconds:.0f} s,"
        f" ${out_p.bill_dollars:.4f})",
        "  spike list (synergistic): "
        + " ".join(f"{w:.0f}" for w in out_s.spike_watts),
        "  spike list (periodic):    "
        + " ".join(f"{w:.0f}" for w in out_p.spike_watts),
        f"  mean spike: synergistic {mean_syn:.0f} W vs periodic"
        f" {mean_per:.0f} W",
    ]
    write_result(results_dir, "fig3_attack_compare", "\n".join(lines))
