"""Security evaluation at fleet scale: the attack against the defense.

The paper's Section VI-B shows one host's isolation; this bench closes the
loop at datacenter scale. The same synergistic attacker (one instance per
server, RAPL-triggered crest strikes) runs twice against the same fleet
and benign load: once on vanilla kernels, once with the power-based
namespace installed on every host.

Shape targets: on the vanilla fleet the attacker sees the benign power
band and strikes its crests; on the defended fleet its monitor reads only
its own (flat) consumption, the crest detector never arms, and the attack
degenerates to zero aimed strikes — "our system can neutralize
container-based power attacks".
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.attack.monitor import CrestDetector
from repro.attack.strategies import SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver

TENANTS = DiurnalProfile(base_cores=1.0, peak_cores=1.5, bursts_per_day=200.0,
                         burst_cores=5.0, burst_duration_s=45.0, noise=0.05)
WINDOW_S = 1800.0
SEED = 241


def build_fleet(defended: bool, model):
    sim = DatacenterSimulation(servers=4, seed=SEED, sample_interval_s=1.0,
                               tenant_profile=TENANTS)
    if defended:
        for host in sim.cloud.hosts:
            driver = PowerNamespaceDriver(host.kernel, model)
            driver.watch_engine(host.engine)
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < 4:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.run(300.0, dt=1.0)
    return sim, instances


def attack(sim, instances):
    strategy = SynergisticAttack(
        sim, instances, burst_s=30.0, cooldown_s=300.0, max_trials=3,
        learn_s=400.0,
        detector_factory=lambda: CrestDetector(
            window=2000, threshold_fraction=0.85, min_band_watts=15.0
        ),
    )
    outcome = strategy.run(WINDOW_S)
    # the band the attacker actually observed, over the whole window
    series = next(iter(strategy.monitors.values())).watts
    band = (min(series), max(series)) if series else (0.0, 0.0)
    return outcome, band


def run_both():
    harness = TrainingHarness(seed=SEED, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    model = PowerModeler(form="paper").fit(harness)

    sim_v, inst_v = build_fleet(defended=False, model=model)
    out_vanilla, band_v = attack(sim_v, inst_v)

    sim_d, inst_d = build_fleet(defended=True, model=model)
    out_defended, band_d = attack(sim_d, inst_d)
    return out_vanilla, out_defended, band_v, band_d


def test_defense_vs_attack(benchmark, results_dir):
    out_vanilla, out_defended, band_v, band_d = benchmark.pedantic(
        run_both, rounds=1, iterations=1
    )

    # the vanilla fleet leaks a live, fluctuating power band...
    width_vanilla = band_v[1] - band_v[0]
    width_defended = band_d[1] - band_d[0]
    assert width_vanilla > 3.0
    # ...and the attacker lands aimed strikes on it
    assert out_vanilla.trials >= 1

    # the defended attacker's reading is flat: its own idle-share level,
    # with none of the benign tenants' fluctuation
    assert width_defended < width_vanilla / 5
    # the crest detector never arms: zero aimed strikes
    assert out_defended.trials == 0
    assert out_defended.spike_watts == []
    assert not out_defended.breaker_tripped

    lines = [
        "Fleet-scale security evaluation: synergistic attack vs the defense",
        f"(4 servers, {WINDOW_S:.0f} s window, identical benign load)",
        "",
        f"{'fleet':<12}{'monitor band W':>18}{'aimed strikes':>15}"
        f"{'peak W':>9}",
        f"{'vanilla':<12}{band_v[0]:>8.1f}-{band_v[1]:<8.1f}"
        f"{out_vanilla.trials:>15}{out_vanilla.peak_watts:>9.0f}",
        f"{'defended':<12}{band_d[0]:>8.1f}-{band_d[1]:<8.1f}"
        f"{out_defended.trials:>15}{out_defended.peak_watts:>9.0f}",
        "",
        "the power namespace blinds the attacker's monitor: no crests are"
        " visible, no strikes are aimed - the paper's 'neutralize"
        " container-based power attacks', reproduced at fleet scale.",
    ]
    write_result(results_dir, "defense_vs_attack", "\n".join(lines))
