"""Figure 8: accuracy of the power-based namespace's energy modelling.

Trains the Formula 2 model on the modelling benchmarks, then runs each
held-out SPEC CPU2006 workload inside a power-namespaced container and
compares the container's reading against the host RAPL ground truth
(Formula 4's ξ). Paper result: ξ < 0.05 for every benchmark.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.runtime.benchmarks import SPEC_BENCHMARKS
from repro.runtime.engine import ContainerEngine

ENERGY = "/sys/class/powercap/intel-rapl:0/energy_uj"


def measure_xi(model, profile, seed):
    """One benchmark's modelling error ξ (Formula 4, Δdiff≈0)."""
    machine = Machine(seed=seed)
    engine = ContainerEngine(machine.kernel)
    driver = PowerNamespaceDriver(machine.kernel, model)
    driver.watch_engine(engine)
    container = engine.create(name="bench", cpus=4)
    for core in range(4):
        container.exec(f"w{core}", workload=profile.workload())
    machine.run(5, dt=1.0)  # warm-up

    pkg = machine.kernel.rapl.package(0).package
    host_before = pkg.energy_uj
    container_before = int(container.read(ENERGY))
    machine.run(60, dt=1.0)
    e_rapl = unwrap_delta(pkg.energy_uj, host_before) / 1e6
    e_container = unwrap_delta(int(container.read(ENERGY)), container_before) / 1e6
    return abs(e_rapl - e_container) / e_rapl


def run_fig8():
    harness = TrainingHarness(seed=110, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    model = PowerModeler(form="paper").fit(harness)
    errors = {}
    for i, (name, profile) in enumerate(sorted(SPEC_BENCHMARKS.items())):
        errors[name] = measure_xi(model, profile, seed=111 + i)
    return errors


def test_fig8(benchmark, results_dir):
    errors = benchmark.pedantic(run_fig8, rounds=1, iterations=1)

    # the paper's headline: every benchmark's error below 0.05
    for name, xi in errors.items():
        assert xi < 0.05, f"{name}: xi={xi:.4f}"

    lines = [
        "Figure 8 reproduction: per-benchmark modelling error (Formula 4)",
        "paper bound: xi < 0.05 for all tested SPEC CPU2006 workloads",
        "",
        f"{'benchmark':<16}{'xi':>9}",
    ]
    for name, xi in sorted(errors.items()):
        lines.append(f"{name:<16}{xi:>9.4f}")
    lines.append("")
    lines.append(f"max xi: {max(errors.values()):.4f} (bound: 0.05)")
    write_result(results_dir, "fig8_accuracy", "\n".join(lines))
