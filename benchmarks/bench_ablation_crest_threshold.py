"""Ablation: crest-detector sensitivity vs attack quality.

The synergistic attacker's one tunable is how picky the crest detector
is. A low threshold fires early on mediocre background; a high threshold
waits for true crests but risks never firing within the window. This
sweep measures mean background power *at strike time* across thresholds —
the quantity the attack superimposes on.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.attack.monitor import CrestDetector, RaplPowerMonitor
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile

TENANTS = DiurnalProfile(
    base_cores=1.0, peak_cores=1.5, bursts_per_day=200.0,
    burst_cores=5.0, burst_duration_s=45.0, noise=0.05,
)

THRESHOLDS = (0.3, 0.6, 0.85)
WINDOW_S = 2400.0


def strike_backgrounds(threshold: float, seed: int):
    """Background watts observed at each would-be strike moment."""
    sim = DatacenterSimulation(
        servers=4, seed=seed, sample_interval_s=1.0, tenant_profile=TENANTS
    )
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < 4:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.run(300.0, dt=1.0)

    monitors = [RaplPowerMonitor(i) for i in instances]
    detector = CrestDetector(
        window=2000, threshold_fraction=threshold, min_band_watts=10.0
    )
    strikes = []
    cooldown_until = 0.0
    elapsed = 0.0
    while elapsed < WINDOW_S:
        sim.run(1.0, dt=1.0)
        elapsed += 1.0
        samples = [m.sample(sim.now) for m in monitors]
        if any(s is None for s in samples):
            continue
        aggregate = sum(samples)
        if detector.observe(aggregate) and elapsed >= cooldown_until:
            strikes.append(sim.aggregate_wall_watts())
            cooldown_until = elapsed + 120.0
    return strikes


def run_sweep():
    return {t: strike_backgrounds(t, seed=121) for t in THRESHOLDS}


def test_ablation_crest_threshold(benchmark, results_dir):
    sweep = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    means = {
        t: (sum(s) / len(s) if s else 0.0) for t, s in sweep.items()
    }
    counts = {t: len(s) for t, s in sweep.items()}

    # a permissive detector fires often on mediocre background; a picky
    # one fires rarely but on genuinely high background
    assert counts[0.3] > counts[0.85]
    assert counts[0.85] >= 1  # it must still fire within the window
    assert means[0.85] > means[0.3] + 10.0

    lines = [
        "Ablation: crest-detector threshold vs strike quality",
        f"(4 servers, {WINDOW_S:.0f} s window, 120 s cooldown)",
        "",
        f"{'threshold':<12}{'strikes':>9}{'mean bg at strike (W)':>24}",
    ]
    for t in THRESHOLDS:
        lines.append(f"{t:<12}{counts[t]:>9}{means[t]:>24.1f}")
    lines.append("")
    lines.append(
        "conclusion: the leaked signal lets the attacker trade strike"
        " frequency for strike quality; blind attackers get neither."
    )
    write_result(results_dir, "ablation_crest_threshold", "\n".join(lines))
