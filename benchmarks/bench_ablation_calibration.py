"""Ablation: what does Formula 3's on-the-fly calibration buy?

Runs the Figure 8 accuracy measurement twice per benchmark — once with
:class:`CalibratedAttribution` (Formula 3) and once with
:class:`RawAttribution` (trust the model's absolute output) — and compares
the error distributions. The paper argues calibration "can effectively
reduce the number of errors"; here the model-form error that calibration
cancels is visible directly.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.defense.calibration import CalibratedAttribution, RawAttribution
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.runtime.benchmarks import SPEC_BENCHMARKS
from repro.runtime.engine import ContainerEngine

ENERGY = "/sys/class/powercap/intel-rapl:0/energy_uj"
#: a representative spread: low / medium / high memory intensity
WORKLOADS = ("456.hmmer", "401.bzip2", "429.mcf", "433.milc")


def xi_for(model, factory, profile, seed):
    machine = Machine(seed=seed)
    engine = ContainerEngine(machine.kernel)
    driver = PowerNamespaceDriver(machine.kernel, model, attribution_factory=factory)
    driver.watch_engine(engine)
    container = engine.create(name="bench", cpus=4)
    for core in range(4):
        container.exec(f"w{core}", workload=profile.workload())
    machine.run(5, dt=1.0)
    pkg = machine.kernel.rapl.package(0).package
    h0, c0 = pkg.energy_uj, int(container.read(ENERGY))
    machine.run(60, dt=1.0)
    e_rapl = unwrap_delta(pkg.energy_uj, h0) / 1e6
    e_container = unwrap_delta(int(container.read(ENERGY)), c0) / 1e6
    return abs(e_rapl - e_container) / e_rapl


def run_ablation():
    harness = TrainingHarness(seed=116, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    model = PowerModeler(form="paper").fit(harness)
    rows = {}
    for i, name in enumerate(WORKLOADS):
        profile = SPEC_BENCHMARKS[name]
        rows[name] = (
            xi_for(model, CalibratedAttribution, profile, seed=117 + i),
            xi_for(model, RawAttribution, profile, seed=117 + i),
        )
    return rows


def test_ablation_calibration(benchmark, results_dir):
    rows = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    for name, (calibrated, raw) in rows.items():
        assert calibrated < 0.05, name  # the paper's bound holds
        assert raw >= calibrated, name  # calibration never hurts
    # and on at least one workload the raw model is clearly worse
    assert max(raw for _, raw in rows.values()) > 0.04

    lines = [
        "Ablation: Formula 3 calibration on vs off (xi per benchmark)",
        f"{'benchmark':<14}{'calibrated':>12}{'raw model':>12}",
    ]
    for name, (calibrated, raw) in rows.items():
        lines.append(f"{name:<14}{calibrated:>12.4f}{raw:>12.4f}")
    lines.append("")
    lines.append(
        "conclusion: calibration cancels the Formula 2 form error;"
        " without it the error exceeds the paper's 5% bound."
    )
    write_result(results_dir, "ablation_calibration", "\n".join(lines))
