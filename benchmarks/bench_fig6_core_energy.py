"""Figure 6: core energy vs retired instructions, per benchmark.

Runs the modelling benchmarks (idle C loop, Prime, 462.libquantum, stress
memory variants) at several degrees of parallelism, collecting
(instructions, core energy) windows from perf counters and RAPL — exactly
the measurement behind the paper's Figure 6.

Shape targets: within each benchmark the relation is strictly linear
(R² ≈ 1), and the fitted slopes (energy per instruction) differ by
workload type, ordered by memory intensity.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.analysis.regression import fit_linear
from repro.defense.modeling import TrainingHarness


def run_harness():
    harness = TrainingHarness(seed=108, window_s=5.0, windows_per_benchmark=10)
    harness.run_all()
    return harness


def test_fig6(benchmark, results_dir):
    harness = benchmark.pedantic(run_harness, rounds=1, iterations=1)

    slopes = {}
    fits = {}
    for name, samples in harness.samples_by_benchmark.items():
        model = fit_linear(
            [[float(s.window.instructions)] for s in samples],
            [s.e_core_active_j for s in samples],
        )
        fits[name] = model
        slopes[name] = model.weights[0]
        # per-benchmark linearity: the defining property of Figure 6
        assert model.r_squared > 0.99, name

    # slope ordering follows memory intensity (gradient changes with
    # application type, as the paper observes)
    assert slopes["idle-loop"] < slopes["prime"] < slopes["libquantum"]
    assert slopes["libquantum"] < slopes["stress-m1"] < slopes["stress-m4"]
    assert slopes["stress-m4"] > slopes["idle-loop"] * 3

    lines = [
        "Figure 6 reproduction: core energy ~ retired instructions",
        f"{'benchmark':<14}{'slope (nJ/inst)':>17}{'R^2':>9}{'windows':>9}",
    ]
    for name in harness.samples_by_benchmark:
        lines.append(
            f"{name:<14}{slopes[name] * 1e9:>17.3f}"
            f"{fits[name].r_squared:>9.4f}"
            f"{len(harness.samples_by_benchmark[name]):>9}"
        )
    lines.append("")
    lines.append(
        "paper shape: strictly linear per benchmark, slope depends on"
        " application type - reproduced"
    )
    write_result(results_dir, "fig6_core_energy", "\n".join(lines))
