"""Table III: UnixBench performance overhead of the power namespace.

Runs the twelve UnixBench micro-tests at 1 and 8 parallel copies, with the
power namespace's perf accounting off (original) and on (modified), and
reports per-test overhead plus the geometric-mean index.

Shape targets from the paper: CPU tests ~0–1%; pipe-based context
switching ~60% at one copy collapsing to ~2% at eight; file copies growing
to double digits at eight copies; spawn-heavy tests mid-single to low
double digits; overall index 9.66% / 7.03%.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.defense.unixbench import UnixBenchRunner, format_table3


def run_suite():
    runner = UnixBenchRunner(seed=114, run_seconds=30.0)
    return runner, runner.run_suite((1, 8))


def test_table3(benchmark, results_dir):
    runner, results = benchmark.pedantic(run_suite, rounds=1, iterations=1)

    by_name_1 = {r.test: r for r in results[1]}
    by_name_8 = {r.test: r for r in results[8]}

    pipe = "Pipe-based Context Switching"
    assert by_name_1[pipe].overhead_percent > 40.0
    assert by_name_8[pipe].overhead_percent < 5.0

    for cpu_test in ("Dhrystone 2 using register variables",
                     "Double-Precision Whetstone",
                     "System Call Overhead"):
        assert abs(by_name_1[cpu_test].overhead_percent) < 3.0

    for fc in ("File Copy 1024 bufsize 2000 maxblocks",
               "File Copy 256 bufsize 500 maxblocks",
               "File Copy 4096 bufsize 8000 maxblocks"):
        assert by_name_8[fc].overhead_percent > by_name_1[fc].overhead_percent

    for spawny in ("Execl Throughput", "Process Creation"):
        assert 2.0 < by_name_1[spawny].overhead_percent < 25.0

    orig1, mod1 = runner.index_score(results[1])
    orig8, mod8 = runner.index_score(results[8])
    overhead1 = (orig1 - mod1) / orig1 * 100
    overhead8 = (orig8 - mod8) / orig8 * 100
    # paper: 9.66% and 7.03%
    assert 4.0 < overhead1 < 16.0
    assert 3.0 < overhead8 < 12.0
    assert overhead8 < overhead1

    table = format_table3(results)
    summary = (
        "Table III reproduction: UnixBench overhead of the power namespace\n"
        f"paper index overhead: 9.66% (1 copy), 7.03% (8 copies)\n"
        f"measured:             {overhead1:.2f}% (1 copy), {overhead8:.2f}%"
        f" (8 copies)\n\n" + table
    )
    write_result(results_dir, "table3_overhead", summary)
