"""Serial vs rack-sharded parallel fleet execution (perf trajectory).

Runs the Figure 2 substrate — the datacenter fleet at 1 s base ticks —
serially and under :mod:`repro.sim.parallel` at 8 servers / 1 rack and
64 servers / 8 racks, and records wall time, tick counts, speedup, and
the IPC profile (control-frame bytes, shared-memory payload bytes,
per-shard barrier waits) in ``benchmarks/out/BENCH_parallel.json`` so
the perf trend is tracked per commit. Correctness rides along: the
parallel trace must be bit-identical to the serial one (the same
golden-trace contract as ``tests/sim/test_parallel.py``, enforced here
on the benchmark fleet).

The shared-memory telemetry plane replaced pickled per-step sample rows
on the shard pipes; the benchmark reconstructs what the pickled-row
protocol would have shipped per tick (from the actual final-row values)
and asserts the measured IPC payload beats it at fleet scale.

Speedup expectations are hardware-dependent: ≥ 2× at 64 servers needs a
multi-core runner (each of the 8 shards gets a core); on a single-core
box the parallel path measures IPC overhead instead. The JSON records
``cpu_count`` so consumers can interpret the numbers.

Two population benchmarks ride along (``repro.datacenter.population``):

- ``test_population_throughput`` is the perf-smoke gate for the
  columnar tenant engine: at 10^4 demand-only tenants the vectorized
  path must tick at >= 10x the per-object driver throughput.
- ``test_large_population`` runs the fleet with >= 10^5 tenants
  multiplexed over 64 hosts (micro profile) under the parallel engine
  and records tenants-ticked-per-second plus the barrier-wait share of
  worker wall time. The seed measured ~92% barrier share with one
  trivial tenant per host (shards starved between barriers); columnar
  per-shard work must pull the share below that.

``test_control_plane_round_trip`` compares the two control-plane
transports (``repro.sim.controlplane``) on the barrier-bound extreme —
8 shards of one server each, 1 s ticks — and gates the shm slot plane's
claims: zero pickled control frames at steady state, and a per-tick
barrier round-trip p50 at least ``BENCH_CONTROL_MAX_RATIO`` times lower
than the pickled-pipe protocol (epoch batching folds up to 8 ticks into
one round trip, so the amortized p50 drops roughly by the batching
factor even before the avoided pickling and kernel wakeups).

Environment knobs (used by the CI perf-smoke job):

- ``BENCH_PARALLEL_CONFIGS``: comma-separated server counts to run
  (e.g. ``8`` for the smoke subset; default: all).
- ``BENCH_PARALLEL_MAX_RATIO``: fail if ``parallel_wall_s`` exceeds
  this multiple of ``serial_wall_s`` for any config (default: off).
- ``BENCH_PARALLEL_LARGE_TENANTS``: tenant count for the
  large-population config (default 102400; ``0`` skips it).
- ``BENCH_PARALLEL_MAX_BARRIER_SHARE``: barrier-share gate for the
  large-population config (default 0.92 — the seed's share; ``0``
  disables the assertion).
- ``BENCH_CONTROL_MAX_RATIO``: minimum pipe/shm p50 round-trip ratio
  for the control-plane gate (default 3.0; ``0`` disables the ratio
  assertion, the zero-pickled-frames assertion always holds).
- ``BENCH_HOST_GATE_SERVERS``: fleet size for the columnar host-engine
  throughput gate (default 128; ``0`` skips it).
- ``BENCH_HOST_MIN_RATIO``: minimum columnar/object host-tick
  throughput ratio for that gate (default 10.0; ``0`` disables the
  assertion, the bit-identity assertion always holds).
- ``BENCH_HOST_FLEET_RACKS``: rack count for the large columnar fleet
  config (default 256; ``0`` skips it).

Two host-engine benchmarks ride along (``repro.kernel.columnar``):

- ``test_host_engine_throughput`` is the perf-smoke gate for the
  columnar host engine: at 128+ hosts the vectorized cold-host tick
  path must run at >= 10x the per-object ``Kernel.tick`` throughput,
  with the traces bit-identical (the ``docs/hostengine.md`` contract).
- ``test_host_engine_fleet`` runs a >= 256-rack fleet with
  materialized tenant containers on every host, entirely as column
  sweeps, and records ``host_ticks_per_s`` and the materialized-tenant
  throughput.
"""

from __future__ import annotations

import json
import os
import pickle
import time

import pytest

from benchmarks.conftest import write_result
from repro.datacenter.population import TenantPopulation
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import MICRO_PROFILE, DiurnalTenantDriver
from repro.sim.rng import DeterministicRNG

#: virtual seconds per measured run (1 s ticks, no coalescing: the
#: benchmark isolates the per-tick fleet loop the sharding parallelizes)
VIRTUAL_S = 900.0

ALL_CONFIGS = ((8, 8, 1), (64, 8, 8))

#: large-population config: virtual seconds, fleet shape, and the
#: barrier share the seed measured with one trivial tenant per host
VIRTUAL_S_LARGE = 300.0
LARGE_SERVERS = 64
LARGE_RACK_SIZE = 8
LARGE_WORKERS = 8
SEED_BARRIER_SHARE = 0.92

#: columnar host-engine gate: fleet size and required throughput ratio
HOST_GATE_SERVERS = 128
HOST_GATE_RACK_SIZE = 8
HOST_GATE_VIRTUAL_S = 120.0
HOST_GATE_MIN_RATIO = 10.0

#: large columnar fleet: rack count, shape, and tenant multiplexing
FLEET_RACKS = 256
FLEET_RACK_SIZE = 8
FLEET_TENANTS_PER_HOST = 4
FLEET_VIRTUAL_S = 300.0

#: control-plane comparison: 8 shards of one server each — the
#: barrier-bound extreme (8 round trips per barrier, near-zero per-shard
#: work), where the control transport dominates the wall time
CONTROL_SERVERS = 8
CONTROL_RACK_SIZE = 1
CONTROL_WORKERS = 8


def _merge_bench_json(results_dir, key, value):
    """Fold one section into BENCH_parallel.json, creating it if absent.

    The speedup, throughput, and large-population tests each own one
    top-level key, so any subset of them can run (the CI smoke job runs
    the whole file; local runs may pick a single test).
    """
    path = results_dir / "BENCH_parallel.json"
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = {"bench": "parallel_fleet_speedup", "cpu_count": os.cpu_count()}
    payload[key] = value
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _selected_configs():
    raw = os.environ.get("BENCH_PARALLEL_CONFIGS", "").strip()
    if not raw:
        return ALL_CONFIGS
    wanted = {int(token) for token in raw.split(",") if token.strip()}
    picked = tuple(c for c in ALL_CONFIGS if c[0] in wanted)
    if not picked:
        raise ValueError(
            f"BENCH_PARALLEL_CONFIGS={raw!r} matches no config in"
            f" {[c[0] for c in ALL_CONFIGS]}"
        )
    return picked


def _run(servers: int, rack_size: int, parallel: int):
    sim = DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=103
    )
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S, dt=1.0, parallel=parallel)
    wall = time.perf_counter() - t0
    trace = (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
    )
    ticks = sim.metrics.ticks
    ipc = sim.metrics.ipc
    last_row = [sim.server_traces[i].watts[-1] for i in range(servers)]
    sim.close()
    return wall, ticks, trace, ipc, last_row


def _pickled_row_baseline_bytes(last_row, rack_size, workers):
    """Per-tick bytes the old pickled-row reply protocol would ship.

    The pre-plane protocol answered every step barrier with a pickled
    ``("ok", (changed, [(global_index, watts), ...]))`` reply per shard,
    rows partitioned by rack ownership. Rebuild those replies from the
    run's actual final sampled row so the estimate uses real float
    entropy, not synthetic values.
    """
    racks = [
        list(range(lo, min(lo + rack_size, len(last_row))))
        for lo in range(0, len(last_row), rack_size)
    ]
    shards = [racks[i::workers] for i in range(min(workers, len(racks)))]
    total = 0
    for shard_racks in shards:
        row = [
            (i, last_row[i]) for rack in shard_racks for i in rack
        ]
        total += len(pickle.dumps(("ok", (False, row)), pickle.HIGHEST_PROTOCOL))
    return total


def test_parallel_speedup(results_dir):
    max_ratio = float(os.environ.get("BENCH_PARALLEL_MAX_RATIO", "0") or 0)
    configs = []
    for servers, rack_size, workers in _selected_configs():
        serial_wall, serial_ticks, serial_trace, _, _ = _run(
            servers, rack_size, 0
        )
        par_wall, par_ticks, par_trace, ipc, last_row = _run(
            servers, rack_size, workers
        )
        # the parallel engine must reproduce the serial trace exactly
        assert par_trace == serial_trace
        assert par_ticks == serial_ticks
        assert ipc is not None
        measured_per_tick = ipc.bytes_per_tick(par_ticks)
        baseline_per_tick = _pickled_row_baseline_bytes(
            last_row, rack_size, workers
        )
        if servers >= 64:
            # the headline claim: the shm plane beats pickled rows at scale
            assert measured_per_tick < baseline_per_tick, (
                f"shm plane shipped {measured_per_tick:.0f} B/tick vs"
                f" {baseline_per_tick} B/tick for pickled rows"
            )
        configs.append(
            {
                "servers": servers,
                "racks": servers // rack_size,
                "workers": workers,
                "virtual_seconds": VIRTUAL_S,
                "ticks": serial_ticks,
                "serial_wall_s": round(serial_wall, 3),
                "parallel_wall_s": round(par_wall, 3),
                "speedup": round(serial_wall / par_wall, 3),
                "ipc": {
                    "control_frames": ipc.control_frames,
                    "control_bytes_sent": ipc.control_bytes_sent,
                    "control_bytes_received": ipc.control_bytes_received,
                    "shm_row_bytes": ipc.shm_row_bytes,
                    "shm_observer_bytes": ipc.shm_observer_bytes,
                    "shm_segment_bytes": ipc.shm_segment_bytes,
                    "bytes_per_tick": round(measured_per_tick, 1),
                    "pickled_row_baseline_bytes_per_tick": baseline_per_tick,
                    "barrier_wait_s": {
                        str(k): round(v, 4)
                        for k, v in sorted(ipc.barrier_wait_s.items())
                    },
                    "barrier_wait_total_s": round(ipc.barrier_wait_total_s, 4),
                },
            }
        )
        if max_ratio > 0:
            assert par_wall <= max_ratio * serial_wall, (
                f"parallel wall {par_wall:.2f}s exceeds"
                f" {max_ratio}x serial {serial_wall:.2f}s"
                f" at {servers} servers"
            )

    _merge_bench_json(results_dir, "dt_s", 1.0)
    _merge_bench_json(results_dir, "configs", configs)

    lines = ["serial vs rack-sharded parallel fleet execution", ""]
    lines.append(
        f"{'servers':>8}{'racks':>7}{'workers':>9}"
        f"{'serial s':>10}{'parallel s':>12}{'speedup':>9}"
        f"{'ipc B/tick':>12}{'baseline':>10}{'barrier s':>11}"
    )
    for c in configs:
        ipc = c["ipc"]
        lines.append(
            f"{c['servers']:>8}{c['racks']:>7}{c['workers']:>9}"
            f"{c['serial_wall_s']:>10.2f}{c['parallel_wall_s']:>12.2f}"
            f"{c['speedup']:>8.2f}x"
            f"{ipc['bytes_per_tick']:>12.0f}"
            f"{ipc['pickled_row_baseline_bytes_per_tick']:>10}"
            f"{ipc['barrier_wait_total_s']:>11.3f}"
        )
    lines.append("")
    lines.append(f"(cpu_count={os.cpu_count()}; ≥2x at 64 servers needs a"
                 " multi-core runner; baseline = pickled-row reply protocol)")
    write_result(results_dir, "parallel_speedup", "\n".join(lines))


def _run_control_plane(plane: str):
    """One barrier-bound run under the given control transport."""
    sim = DatacenterSimulation(
        servers=CONTROL_SERVERS, rack_size=CONTROL_RACK_SIZE, seed=103
    )
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S, dt=1.0, parallel=CONTROL_WORKERS, control_plane=plane)
    wall = time.perf_counter() - t0
    ipc = sim.metrics.ipc
    p50 = ipc.round_trip_p50
    stats = {
        "wall_s": round(wall, 3),
        "ticks": sim.metrics.ticks,
        "pipe_control_frames": ipc.pipe_control_frames,
        "control_bytes": ipc.control_bytes,
        "shm_control_frames": ipc.shm_control_frames,
        "shm_control_bytes": ipc.shm_control_bytes,
        "round_trip_p50_us": round(p50 * 1e6, 2),
        "barrier_wait_total_s": round(ipc.barrier_wait_total_s, 4),
        "barrier_wait_skew": round(ipc.barrier_wait_skew, 3),
    }
    trace = (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
    )
    sim.close()
    return trace, p50, stats


def test_control_plane_round_trip(results_dir):
    """CI gate for the shm control plane (docs/parallel.md).

    Same fleet, same seed, both transports: the traces must be
    bit-identical, the shm run must post *zero* pickled control frames
    (every steady-state barrier rode the slots), and the epoch-amortized
    per-tick round-trip p50 must beat the pipe protocol by the gate
    ratio.
    """
    max_ratio = float(os.environ.get("BENCH_CONTROL_MAX_RATIO", "") or 3.0)
    pipe_trace, pipe_p50, pipe_stats = _run_control_plane("pipe")
    shm_trace, shm_p50, shm_stats = _run_control_plane("shm")

    assert shm_trace == pipe_trace
    # the headline claim: steady state never pickles a control frame
    assert shm_stats["pipe_control_frames"] == 0, (
        f"shm run posted {shm_stats['pipe_control_frames']} pickled"
        " control frames at steady state"
    )
    assert shm_stats["shm_control_frames"] > 0
    assert pipe_stats["shm_control_frames"] == 0

    ratio = pipe_p50 / shm_p50 if shm_p50 > 0 else float("inf")
    if max_ratio > 0:
        assert ratio >= max_ratio, (
            f"shm p50 {shm_p50 * 1e6:.0f}us only {ratio:.1f}x better than"
            f" pipe p50 {pipe_p50 * 1e6:.0f}us (gate: >= {max_ratio}x)"
        )

    section = {
        "servers": CONTROL_SERVERS,
        "workers": CONTROL_WORKERS,
        "virtual_seconds": VIRTUAL_S,
        "p50_ratio": round(ratio, 2) if ratio != float("inf") else None,
        "gate_min_ratio": max_ratio,
        "pipe": pipe_stats,
        "shm": shm_stats,
    }
    _merge_bench_json(results_dir, "control_plane", section)

    for plane, stats in (("pipe", pipe_stats), ("shm", shm_stats)):
        write_result(
            results_dir,
            f"control_plane_{plane}",
            f"control plane '{plane}' at {CONTROL_SERVERS} shards"
            f" x {VIRTUAL_S:.0f}s\n\n"
            f"wall:            {stats['wall_s']:.2f}s\n"
            f"pipe frames:     {stats['pipe_control_frames']}"
            f" ({stats['control_bytes']} B pickled)\n"
            f"shm frames:      {stats['shm_control_frames']}"
            f" ({stats['shm_control_bytes']} B slots)\n"
            f"p50 round trip:  {stats['round_trip_p50_us']:.1f}us/tick\n"
            f"barrier wait:    {stats['barrier_wait_total_s']:.3f}s"
            f" (skew {stats['barrier_wait_skew']:.2f}x)",
        )
    print(
        f"\ncontrol-plane p50 ratio: {ratio:.1f}x"
        f" (gate >= {max_ratio}x)"
    )


def test_population_throughput(results_dir):
    """Perf-smoke gate: columnar tenants >= 10x per-object throughput.

    Both paths run demand-only (no kernels, no containers) so the
    comparison isolates the demand process itself: keyed draws plus the
    target expression, scalar per object vs one array sweep per tick.
    Worker counts are cross-checked so the speed claim is about the
    *same* computation.
    """
    tenants = 10_000
    steps = 30
    interval = 60.0
    times = [(k + 1) * interval for k in range(steps)]

    drivers = [
        DiurnalTenantDriver(
            kernel=None,
            rng=DeterministicRNG(7).fork(f"tenant-{i}"),
            profile=MICRO_PROFILE,
        )
        for i in range(tenants)
    ]
    t0 = time.perf_counter()
    for now in times:
        for driver in drivers:
            driver.step(now, interval)
    obj_wall = time.perf_counter() - t0

    pop = TenantPopulation.demand_only(
        DeterministicRNG(7), tenants, profile=MICRO_PROFILE
    )
    t0 = time.perf_counter()
    for now in times:
        pop.step(now, interval)
    col_wall = time.perf_counter() - t0

    assert list(pop.worker_counts()) == [d.worker_count for d in drivers]
    tenant_ticks = tenants * steps
    obj_tps = tenant_ticks / obj_wall
    col_tps = tenant_ticks / col_wall
    ratio = col_tps / obj_tps
    assert ratio >= 10.0, (
        f"columnar path only {ratio:.1f}x the per-object drivers"
        f" ({col_tps:,.0f} vs {obj_tps:,.0f} tenant-ticks/s)"
    )

    section = {
        "tenants": tenants,
        "steps": steps,
        "object_wall_s": round(obj_wall, 4),
        "columnar_wall_s": round(col_wall, 4),
        "object_tenant_ticks_per_s": round(obj_tps, 1),
        "columnar_tenant_ticks_per_s": round(col_tps, 1),
        "speedup": round(ratio, 1),
    }
    _merge_bench_json(results_dir, "population_throughput", section)
    write_result(
        results_dir,
        "population_throughput",
        "columnar vs per-object tenant stepping (demand-only)\n\n"
        f"{tenants} tenants x {steps} adjustment steps\n"
        f"per-object: {obj_wall:.3f}s  ({obj_tps:,.0f} tenant-ticks/s)\n"
        f"columnar:   {col_wall:.3f}s  ({col_tps:,.0f} tenant-ticks/s)\n"
        f"speedup:    {ratio:.1f}x (gate: >= 10x)",
    )


def _run_host_mode(hosts: str, servers: int, virtual_s: float):
    sim = DatacenterSimulation(
        servers=servers, rack_size=HOST_GATE_RACK_SIZE, seed=103,
        tenants_per_host=2, hosts=hosts,
    )
    t0 = time.perf_counter()
    sim.run(virtual_s, dt=1.0, coalesce=False)
    wall = time.perf_counter() - t0
    trace = (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
    )
    return wall, sim.metrics.ticks, trace, sim


def test_host_engine_throughput(results_dir):
    """Perf-smoke gate: columnar host ticks >= 10x the per-object path.

    Same fleet, same seed, base ticks only (no coalescing: the gate
    isolates the per-tick host loop the column sweep replaces). The
    traces must be bit-identical — the columnar engine's whole claim is
    speed at zero observable difference — and the host-tick throughput
    ratio must clear ``BENCH_HOST_MIN_RATIO``.
    """
    raw = os.environ.get("BENCH_HOST_GATE_SERVERS", "").strip()
    servers = int(raw) if raw else HOST_GATE_SERVERS
    if servers <= 0:
        pytest.skip("BENCH_HOST_GATE_SERVERS=0")
    min_ratio = float(
        os.environ.get("BENCH_HOST_MIN_RATIO", "") or HOST_GATE_MIN_RATIO
    )

    obj_wall, obj_ticks, obj_trace, _ = _run_host_mode(
        "objects", servers, HOST_GATE_VIRTUAL_S
    )
    col_wall, col_ticks, col_trace, col_sim = _run_host_mode(
        "columnar", servers, HOST_GATE_VIRTUAL_S
    )
    assert col_trace == obj_trace
    assert col_ticks == obj_ticks

    obj_tps = servers * obj_ticks / obj_wall
    col_tps = servers * col_ticks / col_wall
    ratio = col_tps / obj_tps
    if min_ratio > 0:
        assert ratio >= min_ratio, (
            f"columnar host engine only {ratio:.1f}x the per-object path"
            f" ({col_tps:,.0f} vs {obj_tps:,.0f} host-ticks/s)"
        )

    stats = col_sim.host_engine.stats()
    section = {
        "servers": servers,
        "virtual_seconds": HOST_GATE_VIRTUAL_S,
        "object_wall_s": round(obj_wall, 4),
        "columnar_wall_s": round(col_wall, 4),
        "object_host_ticks_per_s": round(obj_tps, 1),
        "columnar_host_ticks_per_s": round(col_tps, 1),
        "speedup": round(ratio, 1),
        "gate_min_ratio": min_ratio,
        "cold_hosts": stats["cold"],
        "materializations": stats["materializations"],
    }
    _merge_bench_json(results_dir, "host_engine_throughput", section)
    write_result(
        results_dir,
        "host_engine_throughput",
        "columnar vs per-object host ticking (bit-identical traces)\n\n"
        f"{servers} hosts x {obj_ticks} base ticks\n"
        f"per-object: {obj_wall:.3f}s  ({obj_tps:,.0f} host-ticks/s)\n"
        f"columnar:   {col_wall:.3f}s  ({col_tps:,.0f} host-ticks/s)\n"
        f"speedup:    {ratio:.1f}x (gate: >= {min_ratio:.0f}x;"
        f" {stats['cold']}/{servers} hosts cold)",
    )


def test_host_engine_fleet(results_dir):
    """A >= 256-rack fleet ticked entirely as column sweeps.

    Every host carries materialized tenant containers (full kernels,
    cgroups, procfs — not demand-only rows), yet the steady-state tick
    never touches a kernel object: the whole fleet advances as a
    handful of numpy sweeps per barrier. Records ``host_ticks_per_s``
    and the materialized-tenant throughput for the perf trajectory.
    """
    raw = os.environ.get("BENCH_HOST_FLEET_RACKS", "").strip()
    racks = int(raw) if raw else FLEET_RACKS
    if racks <= 0:
        pytest.skip("BENCH_HOST_FLEET_RACKS=0")
    servers = racks * FLEET_RACK_SIZE

    t0 = time.perf_counter()
    sim = DatacenterSimulation(
        servers=servers, rack_size=FLEET_RACK_SIZE, seed=103,
        tenants_per_host=FLEET_TENANTS_PER_HOST, sample_interval_s=60.0,
        hosts="columnar",
    )
    build_wall = time.perf_counter() - t0
    t0 = time.perf_counter()
    sim.run(FLEET_VIRTUAL_S, dt=1.0, coalesce=False)
    wall = time.perf_counter() - t0
    ticks = sim.metrics.ticks
    stats = sim.host_engine.stats()

    host_tps = servers * ticks / wall
    tenants = servers * FLEET_TENANTS_PER_HOST
    tenant_tps = tenants * ticks / wall
    assert stats["cold"] == servers  # steady state: the whole fleet cold

    section = {
        "racks": racks,
        "servers": servers,
        "tenants_per_host": FLEET_TENANTS_PER_HOST,
        "tenants": tenants,
        "virtual_seconds": FLEET_VIRTUAL_S,
        "ticks": ticks,
        "build_wall_s": round(build_wall, 3),
        "wall_s": round(wall, 3),
        "host_ticks_per_s": round(host_tps, 1),
        "tenant_ticks_per_s": round(tenant_tps, 1),
        "cold_hosts": stats["cold"],
        "cold_host_ticks": stats["cold_host_ticks"],
        "materializations": stats["materializations"],
    }
    _merge_bench_json(results_dir, "host_engine_fleet", section)
    write_result(
        results_dir,
        "host_engine_fleet",
        "columnar host engine at datacenter scale\n\n"
        f"{racks} racks / {servers} hosts / {tenants} materialized"
        f" tenants, {ticks} base ticks\n"
        f"build: {build_wall:.1f}s   run: {wall:.2f}s wall\n"
        f"host-ticks/s:   {host_tps:,.0f}\n"
        f"tenant-ticks/s: {tenant_tps:,.0f}\n"
        f"cold hosts:     {stats['cold']}/{servers}"
        f" ({stats['materializations']} materializations)",
    )


def test_large_population(results_dir):
    """Fleet-scale population: >= 10^5 tenants under the parallel engine.

    The point of the columnar engine is that tenant count stops being
    the bottleneck: per-shard work becomes a handful of array sweeps, so
    shards spend their time computing instead of parked at the commit
    barrier. Record tenants-ticked-per-second and the barrier share of
    worker wall time; the share must come in below the seed's ~92%
    (measured with one trivial tenant per host).
    """
    raw = os.environ.get("BENCH_PARALLEL_LARGE_TENANTS", "").strip()
    tenants = int(raw) if raw else 102_400
    if tenants <= 0:
        pytest.skip("BENCH_PARALLEL_LARGE_TENANTS=0")
    per_host = max(1, tenants // LARGE_SERVERS)
    total = per_host * LARGE_SERVERS
    max_share = float(
        os.environ.get("BENCH_PARALLEL_MAX_BARRIER_SHARE", "")
        or SEED_BARRIER_SHARE
    )

    sim = DatacenterSimulation(
        servers=LARGE_SERVERS,
        rack_size=LARGE_RACK_SIZE,
        seed=103,
        tenants_per_host=per_host,
        tenant_profile=MICRO_PROFILE,
    )
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S_LARGE, dt=1.0, parallel=LARGE_WORKERS)
    wall = time.perf_counter() - t0
    ticks = sim.metrics.ticks
    ipc = sim.metrics.ipc
    barrier_total = ipc.barrier_wait_total_s
    sim.close()

    tenant_ticks = total * ticks
    tps = tenant_ticks / wall
    # share of aggregate worker wall time spent parked at barriers
    barrier_share = barrier_total / (LARGE_WORKERS * wall)
    if max_share > 0:
        assert barrier_share < max_share, (
            f"barrier share {barrier_share:.1%} not below {max_share:.0%}"
            f" despite {per_host} tenants/host of columnar work"
        )

    section = {
        "servers": LARGE_SERVERS,
        "workers": LARGE_WORKERS,
        "tenants_per_host": per_host,
        "tenants": total,
        "virtual_seconds": VIRTUAL_S_LARGE,
        "ticks": ticks,
        "wall_s": round(wall, 3),
        "tenant_ticks_per_s": round(tps, 1),
        "barrier_wait_total_s": round(barrier_total, 4),
        "barrier_share": round(barrier_share, 4),
        "seed_barrier_share": SEED_BARRIER_SHARE,
    }
    _merge_bench_json(results_dir, "large_population", section)
    write_result(
        results_dir,
        "parallel_large_population",
        "large-population parallel fleet (columnar tenants)\n\n"
        f"{total} tenants ({LARGE_SERVERS} hosts x {per_host}),"
        f" {ticks} ticks in {wall:.2f}s wall\n"
        f"tenant-ticks/s: {tps:,.0f}\n"
        f"barrier share:  {barrier_share:.1%}"
        f" (seed ~{SEED_BARRIER_SHARE:.0%}; gate < {max_share:.0%})",
    )
