"""Serial vs rack-sharded parallel fleet execution (perf trajectory).

Runs the Figure 2 substrate — the datacenter fleet at 1 s base ticks —
serially and under :mod:`repro.sim.parallel` at 8 servers / 1 rack and
64 servers / 8 racks, and records wall time, tick counts, and speedup in
``benchmarks/out/BENCH_parallel.json`` so the perf trend is tracked per
commit. Correctness rides along: the parallel trace must be bit-identical
to the serial one (the same golden-trace contract as
``tests/sim/test_parallel.py``, enforced here on the benchmark fleet).

Speedup expectations are hardware-dependent: ≥ 2× at 64 servers needs a
multi-core runner (each of the 8 shards gets a core); on a single-core
box the parallel path measures IPC overhead instead. The JSON records
``cpu_count`` so consumers can interpret the numbers.
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import write_result
from repro.datacenter.simulation import DatacenterSimulation

#: virtual seconds per measured run (1 s ticks, no coalescing: the
#: benchmark isolates the per-tick fleet loop the sharding parallelizes)
VIRTUAL_S = 900.0


def _run(servers: int, rack_size: int, parallel: int):
    sim = DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=103
    )
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S, dt=1.0, parallel=parallel)
    wall = time.perf_counter() - t0
    trace = (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
    )
    ticks = sim.metrics.ticks
    sim.close()
    return wall, ticks, trace


def test_parallel_speedup(results_dir):
    configs = []
    for servers, rack_size, workers in ((8, 8, 1), (64, 8, 8)):
        serial_wall, serial_ticks, serial_trace = _run(servers, rack_size, 0)
        par_wall, par_ticks, par_trace = _run(servers, rack_size, workers)
        # the parallel engine must reproduce the serial trace exactly
        assert par_trace == serial_trace
        assert par_ticks == serial_ticks
        configs.append(
            {
                "servers": servers,
                "racks": servers // rack_size,
                "workers": workers,
                "virtual_seconds": VIRTUAL_S,
                "ticks": serial_ticks,
                "serial_wall_s": round(serial_wall, 3),
                "parallel_wall_s": round(par_wall, 3),
                "speedup": round(serial_wall / par_wall, 3),
            }
        )

    payload = {
        "bench": "parallel_fleet_speedup",
        "dt_s": 1.0,
        "cpu_count": os.cpu_count(),
        "configs": configs,
    }
    (results_dir / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = ["serial vs rack-sharded parallel fleet execution", ""]
    lines.append(
        f"{'servers':>8}{'racks':>7}{'workers':>9}"
        f"{'serial s':>10}{'parallel s':>12}{'speedup':>9}"
    )
    for c in configs:
        lines.append(
            f"{c['servers']:>8}{c['racks']:>7}{c['workers']:>9}"
            f"{c['serial_wall_s']:>10.2f}{c['parallel_wall_s']:>12.2f}"
            f"{c['speedup']:>8.2f}x"
        )
    lines.append("")
    lines.append(f"(cpu_count={os.cpu_count()}; ≥2x at 64 servers needs a"
                 " multi-core runner)")
    write_result(results_dir, "parallel_speedup", "\n".join(lines))
