"""Serial vs rack-sharded parallel fleet execution (perf trajectory).

Runs the Figure 2 substrate — the datacenter fleet at 1 s base ticks —
serially and under :mod:`repro.sim.parallel` at 8 servers / 1 rack and
64 servers / 8 racks, and records wall time, tick counts, speedup, and
the IPC profile (control-frame bytes, shared-memory payload bytes,
per-shard barrier waits) in ``benchmarks/out/BENCH_parallel.json`` so
the perf trend is tracked per commit. Correctness rides along: the
parallel trace must be bit-identical to the serial one (the same
golden-trace contract as ``tests/sim/test_parallel.py``, enforced here
on the benchmark fleet).

The shared-memory telemetry plane replaced pickled per-step sample rows
on the shard pipes; the benchmark reconstructs what the pickled-row
protocol would have shipped per tick (from the actual final-row values)
and asserts the measured IPC payload beats it at fleet scale.

Speedup expectations are hardware-dependent: ≥ 2× at 64 servers needs a
multi-core runner (each of the 8 shards gets a core); on a single-core
box the parallel path measures IPC overhead instead. The JSON records
``cpu_count`` so consumers can interpret the numbers.

Environment knobs (used by the CI perf-smoke job):

- ``BENCH_PARALLEL_CONFIGS``: comma-separated server counts to run
  (e.g. ``8`` for the smoke subset; default: all).
- ``BENCH_PARALLEL_MAX_RATIO``: fail if ``parallel_wall_s`` exceeds
  this multiple of ``serial_wall_s`` for any config (default: off).
"""

from __future__ import annotations

import json
import os
import pickle
import time

from benchmarks.conftest import write_result
from repro.datacenter.simulation import DatacenterSimulation

#: virtual seconds per measured run (1 s ticks, no coalescing: the
#: benchmark isolates the per-tick fleet loop the sharding parallelizes)
VIRTUAL_S = 900.0

ALL_CONFIGS = ((8, 8, 1), (64, 8, 8))


def _selected_configs():
    raw = os.environ.get("BENCH_PARALLEL_CONFIGS", "").strip()
    if not raw:
        return ALL_CONFIGS
    wanted = {int(token) for token in raw.split(",") if token.strip()}
    picked = tuple(c for c in ALL_CONFIGS if c[0] in wanted)
    if not picked:
        raise ValueError(
            f"BENCH_PARALLEL_CONFIGS={raw!r} matches no config in"
            f" {[c[0] for c in ALL_CONFIGS]}"
        )
    return picked


def _run(servers: int, rack_size: int, parallel: int):
    sim = DatacenterSimulation(
        servers=servers, rack_size=rack_size, seed=103
    )
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S, dt=1.0, parallel=parallel)
    wall = time.perf_counter() - t0
    trace = (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
    )
    ticks = sim.metrics.ticks
    ipc = sim.metrics.ipc
    last_row = [sim.server_traces[i].watts[-1] for i in range(servers)]
    sim.close()
    return wall, ticks, trace, ipc, last_row


def _pickled_row_baseline_bytes(last_row, rack_size, workers):
    """Per-tick bytes the old pickled-row reply protocol would ship.

    The pre-plane protocol answered every step barrier with a pickled
    ``("ok", (changed, [(global_index, watts), ...]))`` reply per shard,
    rows partitioned by rack ownership. Rebuild those replies from the
    run's actual final sampled row so the estimate uses real float
    entropy, not synthetic values.
    """
    racks = [
        list(range(lo, min(lo + rack_size, len(last_row))))
        for lo in range(0, len(last_row), rack_size)
    ]
    shards = [racks[i::workers] for i in range(min(workers, len(racks)))]
    total = 0
    for shard_racks in shards:
        row = [
            (i, last_row[i]) for rack in shard_racks for i in rack
        ]
        total += len(pickle.dumps(("ok", (False, row)), pickle.HIGHEST_PROTOCOL))
    return total


def test_parallel_speedup(results_dir):
    max_ratio = float(os.environ.get("BENCH_PARALLEL_MAX_RATIO", "0") or 0)
    configs = []
    for servers, rack_size, workers in _selected_configs():
        serial_wall, serial_ticks, serial_trace, _, _ = _run(
            servers, rack_size, 0
        )
        par_wall, par_ticks, par_trace, ipc, last_row = _run(
            servers, rack_size, workers
        )
        # the parallel engine must reproduce the serial trace exactly
        assert par_trace == serial_trace
        assert par_ticks == serial_ticks
        assert ipc is not None
        measured_per_tick = ipc.bytes_per_tick(par_ticks)
        baseline_per_tick = _pickled_row_baseline_bytes(
            last_row, rack_size, workers
        )
        if servers >= 64:
            # the headline claim: the shm plane beats pickled rows at scale
            assert measured_per_tick < baseline_per_tick, (
                f"shm plane shipped {measured_per_tick:.0f} B/tick vs"
                f" {baseline_per_tick} B/tick for pickled rows"
            )
        configs.append(
            {
                "servers": servers,
                "racks": servers // rack_size,
                "workers": workers,
                "virtual_seconds": VIRTUAL_S,
                "ticks": serial_ticks,
                "serial_wall_s": round(serial_wall, 3),
                "parallel_wall_s": round(par_wall, 3),
                "speedup": round(serial_wall / par_wall, 3),
                "ipc": {
                    "control_frames": ipc.control_frames,
                    "control_bytes_sent": ipc.control_bytes_sent,
                    "control_bytes_received": ipc.control_bytes_received,
                    "shm_row_bytes": ipc.shm_row_bytes,
                    "shm_observer_bytes": ipc.shm_observer_bytes,
                    "shm_segment_bytes": ipc.shm_segment_bytes,
                    "bytes_per_tick": round(measured_per_tick, 1),
                    "pickled_row_baseline_bytes_per_tick": baseline_per_tick,
                    "barrier_wait_s": {
                        str(k): round(v, 4)
                        for k, v in sorted(ipc.barrier_wait_s.items())
                    },
                    "barrier_wait_total_s": round(ipc.barrier_wait_total_s, 4),
                },
            }
        )
        if max_ratio > 0:
            assert par_wall <= max_ratio * serial_wall, (
                f"parallel wall {par_wall:.2f}s exceeds"
                f" {max_ratio}x serial {serial_wall:.2f}s"
                f" at {servers} servers"
            )

    payload = {
        "bench": "parallel_fleet_speedup",
        "dt_s": 1.0,
        "cpu_count": os.cpu_count(),
        "configs": configs,
    }
    (results_dir / "BENCH_parallel.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = ["serial vs rack-sharded parallel fleet execution", ""]
    lines.append(
        f"{'servers':>8}{'racks':>7}{'workers':>9}"
        f"{'serial s':>10}{'parallel s':>12}{'speedup':>9}"
        f"{'ipc B/tick':>12}{'baseline':>10}{'barrier s':>11}"
    )
    for c in configs:
        ipc = c["ipc"]
        lines.append(
            f"{c['servers']:>8}{c['racks']:>7}{c['workers']:>9}"
            f"{c['serial_wall_s']:>10.2f}{c['parallel_wall_s']:>12.2f}"
            f"{c['speedup']:>8.2f}x"
            f"{ipc['bytes_per_tick']:>12.0f}"
            f"{ipc['pickled_row_baseline_bytes_per_tick']:>10}"
            f"{ipc['barrier_wait_total_s']:>11.3f}"
        )
    lines.append("")
    lines.append(f"(cpu_count={os.cpu_count()}; ≥2x at 64 servers needs a"
                 " multi-core runner; baseline = pickled-row reply protocol)")
    write_result(results_dir, "parallel_speedup", "\n".join(lines))
