"""Disabled-tracing overhead gate for the observability layer.

The tentpole contract: tracing is opt-in, and a simulation that never
called ``enable_tracing()`` must pay (nearly) nothing for the
instrumentation hooks now sitting on its hot loops — every call site
guards on ``tracer is None`` before composing any span arguments.

Measures three variants of the same serial fleet run:

- ``baseline``     — tracing never enabled (``sim.tracer is None``);
  this is the production configuration and the gated path.
- ``disabled``     — a tracer installed but switched off
  (``enabled=False``): call sites see a non-None tracer and bail on the
  ``enabled`` flag instead.
- ``enabled``      — full span recording, reported for documentation
  (``docs/observability.md``) but not gated.
- ``ops``          — the full live operations plane: tracing with a
  deliberately tiny ring (so the run *must* spill evicted events to
  JSONL segments) plus the streaming metrics appender. Gated separately
  at ``BENCH_OPS_MAX_RATIO`` (default 1.15) — streaming durability may
  cost single-digit percent, never multiples. The ops run's trace
  timeline must stay identical to the ``enabled`` run's: spill-stitching
  is equivalence-preserving.

Shared machines drift: identical runs here vary by 2x across a minute
(noisy neighbours, thermal throttling), so an unpaired min-of-N estimate
of two variants measured a minute apart mostly measures the machine.
Instead every round runs the variants back to back in rotating order and
scores the *paired* disabled/baseline ratio — drift hits both runs of a
pair alike and cancels. The gate (``BENCH_OBS_MAX_RATIO``, default 1.03:
<3% overhead) applies to the **median** paired ratio across rounds,
which shrugs off one unlucky round. Emits
``benchmarks/out/BENCH_obs.json``.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from statistics import median

from benchmarks.conftest import write_result
from repro.datacenter.simulation import DatacenterSimulation

SERVERS = 8
RACK_SIZE = 4
SEED = 103
VIRTUAL_S = 600.0
ROUNDS = 7

#: ring capacity for the ops variant — small enough that the run is
#: guaranteed to evict (and therefore spill) most of its events
OPS_RING_CAPACITY = 512

#: overhead gate: baseline (no tracer) vs disabled-tracer wall ratio
DEFAULT_MAX_RATIO = 1.03
#: overhead gate for the full ops plane (spill + metrics appender)
DEFAULT_OPS_MAX_RATIO = 1.15


def _timeline_shape(tracer) -> tuple:
    """Wall-clock-free projection of the merged (spill-stitched) timeline."""
    return tuple(
        (e.kind, e.name, e.track, e.t0, e.t1, e.attrs)
        for e in tracer.timeline()
    )


def _run(variant: str) -> tuple:
    sim = DatacenterSimulation(
        servers=SERVERS, rack_size=RACK_SIZE, seed=SEED,
        sample_interval_s=1.0,
    )
    ops_dir = None
    if variant == "enabled":
        sim.enable_tracing()
    elif variant == "disabled":
        sim.enable_tracing()
        sim.tracer.enabled = False
    elif variant == "ops":
        ops_dir = tempfile.mkdtemp(prefix="bench-ops-")
        sim.enable_tracing(
            capacity=OPS_RING_CAPACITY,
            spill_dir=os.path.join(ops_dir, "spill"),
        )
        sim.enable_ops(ops_dir, every_sim_s=30.0)
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S, dt=1.0)
    wall = time.perf_counter() - t0
    events = sim.tracer.event_count if sim.tracer is not None else 0
    timeline = (
        _timeline_shape(sim.tracer)
        if variant in ("enabled", "ops")
        else None
    )
    spilled = sim.tracer.spilled if sim.tracer is not None else 0
    trace = (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
    )
    sim.close()
    if ops_dir is not None:
        shutil.rmtree(ops_dir, ignore_errors=True)
    return wall, events, trace, timeline, spilled


def test_obs_overhead(results_dir):
    max_ratio = float(
        os.environ.get("BENCH_OBS_MAX_RATIO", "") or DEFAULT_MAX_RATIO
    )
    ops_max_ratio = float(
        os.environ.get("BENCH_OPS_MAX_RATIO", "") or DEFAULT_OPS_MAX_RATIO
    )
    variants = ("baseline", "disabled", "enabled", "ops")
    walls = {v: [] for v in variants}
    events = {v: 0 for v in variants}
    traces = {}
    timelines = {}
    spill_counts = {v: 0 for v in variants}
    for round_i in range(ROUNDS):
        # back-to-back pairs in rotating order: drift within a round hits
        # every variant alike, and no variant always runs first (warm
        # caches) or last (accumulated heat)
        shift = round_i % len(variants)
        order = variants[shift:] + variants[:shift]
        for variant in order:
            wall, n_events, trace, timeline, spilled = _run(variant)
            walls[variant].append(wall)
            events[variant] = n_events
            traces[variant] = trace
            timelines[variant] = timeline
            spill_counts[variant] = spilled
    # instrumentation must never change simulation results
    assert (
        traces["baseline"] == traces["disabled"]
        == traces["enabled"] == traces["ops"]
    )
    assert events["baseline"] == 0
    assert events["disabled"] == 0
    assert events["enabled"] > 0
    # the ops run really exercised the spill path, and stitching the
    # spilled segments back reproduces the unbounded-ring timeline
    assert spill_counts["ops"] > 0
    assert timelines["ops"] == timelines["enabled"]

    paired_disabled = [
        d / b for d, b in zip(walls["disabled"], walls["baseline"])
    ]
    paired_enabled = [
        e / b for e, b in zip(walls["enabled"], walls["baseline"])
    ]
    paired_ops = [
        o / b for o, b in zip(walls["ops"], walls["baseline"])
    ]
    ratio_disabled = median(paired_disabled)
    ratio_enabled = median(paired_enabled)
    ratio_ops = median(paired_ops)
    assert ratio_disabled <= max_ratio, (
        f"disabled-tracing overhead {ratio_disabled:.4f}x (median of"
        f" {ROUNDS} paired rounds) exceeds the {max_ratio}x gate"
        f" (paired ratios: "
        f"{', '.join(f'{r:.3f}' for r in paired_disabled)})"
    )
    assert ratio_ops <= ops_max_ratio, (
        f"ops-plane overhead {ratio_ops:.4f}x (median of {ROUNDS} paired"
        f" rounds) exceeds the {ops_max_ratio}x gate (paired ratios: "
        f"{', '.join(f'{r:.3f}' for r in paired_ops)})"
    )

    payload = {
        "bench": "obs_overhead",
        "servers": SERVERS,
        "virtual_seconds": VIRTUAL_S,
        "rounds": ROUNDS,
        "max_ratio_gate": max_ratio,
        "ops_max_ratio_gate": ops_max_ratio,
        "ops_ring_capacity": OPS_RING_CAPACITY,
        "wall_s": {
            v: [round(w, 4) for w in walls[v]] for v in variants
        },
        "paired_disabled_ratios": [round(r, 4) for r in paired_disabled],
        "paired_enabled_ratios": [round(r, 4) for r in paired_enabled],
        "paired_ops_ratios": [round(r, 4) for r in paired_ops],
        "disabled_overhead_ratio": round(ratio_disabled, 4),
        "enabled_overhead_ratio": round(ratio_enabled, 4),
        "ops_overhead_ratio": round(ratio_ops, 4),
        "enabled_events": events["enabled"],
        "ops_spilled_events": spill_counts["ops"],
    }
    (results_dir / "BENCH_obs.json").write_text(
        json.dumps(payload, indent=2) + "\n"
    )

    lines = [
        "observability overhead: serial fleet run, median paired ratio "
        f"over {ROUNDS} rotating rounds ({VIRTUAL_S:.0f} virtual s)",
        "",
        f"{'variant':>10}{'median wall s':>15}{'vs baseline':>13}"
        f"{'events':>9}{'spilled':>9}",
        f"{'baseline':>10}{median(walls['baseline']):>15.3f}{1.0:>12.3f}x"
        f"{events['baseline']:>9}{0:>9}",
        f"{'disabled':>10}{median(walls['disabled']):>15.3f}"
        f"{ratio_disabled:>12.3f}x{events['disabled']:>9}{0:>9}",
        f"{'enabled':>10}{median(walls['enabled']):>15.3f}"
        f"{ratio_enabled:>12.3f}x{events['enabled']:>9}{0:>9}",
        f"{'ops':>10}{median(walls['ops']):>15.3f}"
        f"{ratio_ops:>12.3f}x{events['ops']:>9}"
        f"{spill_counts['ops']:>9}",
        "",
        f"gate: median(disabled/baseline) <= {max_ratio}x -> "
        f"{'PASS' if ratio_disabled <= max_ratio else 'FAIL'}",
        f"gate: median(ops/baseline) <= {ops_max_ratio}x -> "
        f"{'PASS' if ratio_ops <= ops_max_ratio else 'FAIL'}",
    ]
    write_result(results_dir, "obs_overhead", "\n".join(lines))
