"""Checkpoint overhead and crash-recovery latency (resilience layer).

Two claims from ``docs/resilience.md`` are enforced here so they are
tracked per commit instead of asserted once and forgotten:

- **Checkpointing is cheap.** Periodic shard snapshots
  (:mod:`repro.sim.resilience`) must not tax the fleet loop: the time
  spent inside checkpoint barriers (driver broadcast + shard pickling
  + atomic snapshot writes + manifest, all measured directly) must
  stay under 5% of run wall. Paired checkpointed-vs-plain wall times
  ride along as informational data — on oversubscribed single-core CI
  runners their run-to-run scheduler noise (±10-20%) swamps the real
  cost, so the gate uses the direct measurement, not the noisy ratio.
  Correctness is asserted either way — the checkpointed trace must be
  bit-identical to the plain one (snapshots are observationally
  transparent).
- **Recovery is fast and exact.** Killing a shard worker mid-run must
  heal through snapshot restore + frame replay, finish with a trace
  bit-identical to the undisturbed golden run, and record how long the
  respawn/replay detour took (``resilience.recovery_wall_s``).

Results land in ``benchmarks/out/BENCH_resilience.json`` (one top-level
key per test, so subsets can run) plus human-readable summaries.

Environment knobs (used by the CI recovery-smoke job):

- ``BENCH_RESILIENCE_TRIALS``: paired overhead trials (default 3).
- ``RESILIENCE_OVERHEAD_GATE``: max allowed share of run wall spent
  inside checkpoint barriers (default 0.05; ``0`` disables the gate).
"""

from __future__ import annotations

import json
import os
import time

from benchmarks.conftest import write_result
from repro.datacenter.simulation import DatacenterSimulation

SEED = 167
SERVERS = 8
RACK_SIZE = 2
WORKERS = 4

#: virtual seconds per measured run; with 1 s ticks and 120 s cadence a
#: run takes 4 interior checkpoints (the final barrier is not a safepoint)
VIRTUAL_S = 600.0
CHECKPOINT_EVERY = 120.0


def _merge_bench_json(results_dir, key, value):
    """Fold one section into BENCH_resilience.json, creating it if absent."""
    path = results_dir / "BENCH_resilience.json"
    if path.exists():
        payload = json.loads(path.read_text())
    else:
        payload = {"bench": "resilience", "cpu_count": os.cpu_count()}
    payload[key] = value
    path.write_text(json.dumps(payload, indent=2) + "\n")


def _build():
    return DatacenterSimulation(servers=SERVERS, rack_size=RACK_SIZE, seed=SEED)


def _trace(sim):
    return (
        tuple(sim.aggregate_trace.times),
        tuple(sim.aggregate_trace.watts),
        tuple(sim.aggregate_trace.gaps),
    )


def _timed_run(checkpoint_dir):
    sim = _build()
    if checkpoint_dir is not None:
        sim.enable_resilience(
            checkpoint_dir=checkpoint_dir, checkpoint_every=CHECKPOINT_EVERY
        )
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S, dt=1.0, parallel=WORKERS)
    wall = time.perf_counter() - t0
    trace = _trace(sim)
    res = sim._parallel.res_metrics
    checkpoints = res.checkpoints if res is not None else 0
    ckpt_bytes = res.checkpoint_bytes if res is not None else 0
    ckpt_wall = res.checkpoint_wall_s if res is not None else 0.0
    sim.close()
    return wall, trace, checkpoints, ckpt_bytes, ckpt_wall


def test_checkpoint_overhead(results_dir, tmp_path):
    trials = int(os.environ.get("BENCH_RESILIENCE_TRIALS", "3"))
    gate = float(os.environ.get("RESILIENCE_OVERHEAD_GATE", "0.05") or 0)

    plain_walls, ckpt_walls = [], []
    checkpoints = ckpt_bytes = 0
    ckpt_wall_total = 0.0
    golden = None
    for trial in range(trials):
        plain_wall, plain_trace, _, _, _ = _timed_run(None)
        ckpt_wall, ckpt_trace, checkpoints, ckpt_bytes, ckpt_wall_total = (
            _timed_run(str(tmp_path / f"ckpt-{trial}"))
        )
        # snapshots must be observationally transparent
        assert ckpt_trace == plain_trace
        if golden is None:
            golden = plain_trace
        else:
            assert plain_trace == golden
        assert checkpoints >= 4, f"only {checkpoints} checkpoints fired"
        plain_walls.append(plain_wall)
        ckpt_walls.append(ckpt_wall)

    # best-of-N walls: CPU-bound work has a noise floor, so minima are
    # the cleanest wall estimates (informational — see module docstring)
    ratio = min(ckpt_walls) / min(plain_walls)
    ckpt_share = ckpt_wall_total / min(ckpt_walls)
    if gate > 0:
        assert ckpt_share < gate, (
            f"checkpoint barriers consumed {ckpt_share:.1%} of run wall"
            f" (gate {gate:.0%}; {checkpoints} snapshots,"
            f" {ckpt_wall_total * 1e3:.1f} ms)"
        )

    section = {
        "servers": SERVERS,
        "workers": WORKERS,
        "virtual_seconds": VIRTUAL_S,
        "checkpoint_every_s": CHECKPOINT_EVERY,
        "trials": trials,
        "plain_wall_s": [round(w, 3) for w in plain_walls],
        "checkpointed_wall_s": [round(w, 3) for w in ckpt_walls],
        "best_wall_ratio": round(ratio, 4),
        "checkpoint_wall_share": round(ckpt_share, 4),
        "gate_share": gate,
        "checkpoints_per_run": checkpoints,
        "snapshot_bytes_per_run": ckpt_bytes,
        "checkpoint_wall_s_per_run": round(ckpt_wall_total, 4),
    }
    _merge_bench_json(results_dir, "checkpoint_overhead", section)
    write_result(
        results_dir,
        "resilience_overhead",
        "checkpointed vs plain parallel fleet (paired runs)\n\n"
        f"{SERVERS} servers / {WORKERS} shards, {VIRTUAL_S:.0f}s at 1s"
        f" ticks, snapshot every {CHECKPOINT_EVERY:.0f}s\n"
        f"plain walls:        {[f'{w:.2f}' for w in plain_walls]}\n"
        f"checkpointed walls: {[f'{w:.2f}' for w in ckpt_walls]}\n"
        f"best-of-{trials} ratio:    {ratio:.3f} (informational)\n"
        f"per run: {checkpoints} snapshots, {ckpt_bytes} B,"
        f" {ckpt_wall_total * 1e3:.1f} ms inside checkpoint barriers\n"
        f"checkpoint share:   {ckpt_share:.2%} of wall (gate < {gate:.0%})",
    )


def test_recovery_latency(results_dir, tmp_path):
    # golden: undisturbed checkpointed run
    g_sim = _build()
    g_sim.enable_resilience(
        checkpoint_dir=str(tmp_path / "golden"),
        checkpoint_every=CHECKPOINT_EVERY,
    )
    g_sim.run(VIRTUAL_S, dt=1.0, parallel=WORKERS)
    golden = _trace(g_sim)
    g_sim.close()

    # victim: same run, one shard shot mid-window; the supervisor must
    # respawn it from the latest snapshot and replay it forward
    sim = _build()
    sim.enable_resilience(
        checkpoint_dir=str(tmp_path / "victim"),
        checkpoint_every=CHECKPOINT_EVERY,
    )
    sim.run(VIRTUAL_S / 2, dt=1.0, parallel=WORKERS)
    sim._parallel.debug_crash_worker(0)
    t0 = time.perf_counter()
    sim.run(VIRTUAL_S / 2, dt=1.0)
    healed_window_wall = time.perf_counter() - t0
    res = sim._parallel.res_metrics
    assert res.restarts == 1
    recovery_wall = res.recovery_wall_s
    replayed_frames = res.replayed_frames
    replayed_ticks = res.replayed_ticks
    healed = _trace(sim)
    sim.close()

    # recovery must be exact, not merely survived
    assert healed == golden

    section = {
        "servers": SERVERS,
        "workers": WORKERS,
        "virtual_seconds": VIRTUAL_S,
        "checkpoint_every_s": CHECKPOINT_EVERY,
        "crashed_shard": 0,
        "restarts": res.restarts,
        "recovery_wall_s": round(recovery_wall, 4),
        "replayed_frames": replayed_frames,
        "replayed_ticks": replayed_ticks,
        "healed_window_wall_s": round(healed_window_wall, 3),
        "trace_bit_identical": True,
    }
    _merge_bench_json(results_dir, "recovery_latency", section)
    write_result(
        results_dir,
        "resilience_recovery",
        "shard crash recovery (respawn + snapshot restore + replay)\n\n"
        f"{SERVERS} servers / {WORKERS} shards, shard 0 killed at"
        f" t={VIRTUAL_S / 2:.0f}s of {VIRTUAL_S:.0f}s\n"
        f"recovery detour:  {recovery_wall * 1e3:.1f} ms"
        f" ({replayed_frames} frames / {replayed_ticks} ticks replayed)\n"
        f"healed window:    {healed_window_wall:.2f}s wall\n"
        "trace: bit-identical to undisturbed golden run",
    )
