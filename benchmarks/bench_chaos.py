"""Chaos benchmark: the Figure 2 fleet pipeline on a faulty substrate.

Two simulated days for 8 servers with the *standard* fault schedule
(:meth:`FaultSchedule.standard`: RAPL sensor faults, pseudo-file EIO,
machine crashes, OOM kills, clock jitter, forced breaker trips at their
default per-day rates) installed on top of the benign diurnal background.
The pipeline must complete end-to-end, the diurnal power structure must
survive the injected faults, and every loss must be quantified in the
fault report rather than silently absorbed.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.analysis.plotting import downtime_summary, render_power_timeline
from repro.datacenter.simulation import DatacenterSimulation
from repro.sim.faults import FaultSchedule

DAY_S = 86400.0
WINDOW_S = 2 * DAY_S
SERVERS = 8
SEED = 103
FAULT_SEED = 900


def run_chaos_days():
    sim = DatacenterSimulation(servers=SERVERS, seed=SEED, sample_interval_s=30.0)
    schedule = FaultSchedule.standard(
        FAULT_SEED, WINDOW_S, servers=SERVERS, racks=len(sim.racks)
    )
    sim.install_faults(schedule)
    sim.run(WINDOW_S, dt=1.0, coalesce=True)
    return sim, schedule


def test_chaos(benchmark, results_dir):
    sim, schedule = benchmark.pedantic(run_chaos_days, rounds=1, iterations=1)
    report = sim.fault_report()

    # survival: the full two days of 30 s samples landed
    assert len(sim.aggregate_trace) >= WINDOW_S / 30.0 - 10
    # the standard schedule actually injected faults...
    injected = sum(n for k, n in report.items() if k.startswith("injected:"))
    assert injected == len(schedule)
    assert injected >= 10
    # ...and the degradation is quantified, not silent: RAPL/EIO windows
    # surface as failed or corrupted reads only if something read during
    # them, but crash gaps always surface in the traces
    if report.get("injected:machine-crash", 0):
        assert report["trace-gap-samples"] >= 1
        assert report["machine-restarts"] >= 1
    # the diurnal band survives the chaos: hundreds of watts, day-scale
    # swing, statistics computable over the gapped traces
    trough, peak = sim.aggregate_trace.trough, sim.aggregate_trace.peak
    assert peak > trough > 0.0
    # the coalescing engine still pays for the 1 s base dt despite fault
    # barriers bounding its windows
    assert sim.metrics.tick_reduction >= 3.0

    # downtime shading (Figure 2 plot layer over a faulty substrate):
    # gaps live on *per-server* traces — the aggregate is always
    # computable — so shade the hardest-hit server's timeline
    worst_i, worst = max(
        sim.server_traces.items(), key=lambda kv: len(kv[1].gaps)
    )
    worst_summary = downtime_summary(worst, 3600.0)
    if report.get("injected:machine-crash", 0):
        # a crash's restart window is hours of 30 s gap markers: the
        # averaged view must surface it as fractional downtime
        assert worst_summary["downtime_fraction"] > 0.0

    lines = [
        f"Chaos harness: {SERVERS} servers, {WINDOW_S / DAY_S:.0f} days, "
        f"standard fault schedule (seed {FAULT_SEED}, {len(schedule)} events)",
        f"  aggregate wall power: trough {trough:.0f} W, peak {peak:.0f} W",
        f"  samples: {len(sim.aggregate_trace)} aggregate, "
        f"{report.get('trace-gap-samples', 0)} per-server gap(s)",
        "",
        render_power_timeline(
            worst, window_s=3600.0, width=48,
            label=f"server {worst_i} timeline (1 h windows)",
        ),
        f"  downtime: {worst_summary}",
        "",
        "fault/degradation counters:",
        sim.fault_injector.stats.render(),
        "",
        "fast-forward tick economy under fault barriers:",
        sim.metrics.render(),
    ]
    write_result(results_dir, "chaos_fleet", "\n".join(lines))
