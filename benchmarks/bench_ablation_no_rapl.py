"""Ablation: the synergistic attack without the RAPL channel
(Section VII-A).

"If power data is not directly available, advanced attackers will try to
approximate the power status based on the resource utilization
information." This bench runs the synergistic attack three ways on the
same fleet and window:

1. RAPL-triggered (the Section IV attack),
2. utilization-triggered (the /proc/stat + /proc/meminfo estimator, as on
   a no-RAPL CC4-style host),
3. blind periodic (the baseline).

Shape target: the utilization proxy recovers most of the RAPL trigger's
advantage — which is why the paper concludes that masking RAPL alone is
insufficient and "it would be better to make system-wide performance
statistics unavailable".
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import write_result
from repro.attack.estimator import UtilizationPowerEstimator
from repro.attack.monitor import CrestDetector
from repro.attack.strategies import PeriodicAttack, SynergisticAttack
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile

TENANTS = DiurnalProfile(base_cores=1.0, peak_cores=1.5, bursts_per_day=200.0,
                         burst_cores=5.0, burst_duration_s=45.0, noise=0.05)
WINDOW_S = 2400.0
SEED = 161


def setup():
    sim = DatacenterSimulation(servers=4, seed=SEED, sample_interval_s=1.0,
                               tenant_profile=TENANTS)
    cloud = sim.cloud
    instances, covered = [], set()
    while len(covered) < 4:
        inst = cloud.launch_instance("attacker")
        if inst.host_index in covered:
            cloud.terminate_instance(inst)
        else:
            covered.add(inst.host_index)
            instances.append(inst)
    sim.run(300.0, dt=1.0)
    return sim, instances


def run_three_ways():
    sim_r, inst_r = setup()
    rapl_attack = SynergisticAttack(
        sim_r, inst_r, burst_s=30.0, cooldown_s=300.0, max_trials=3,
        learn_s=600.0,
        detector_factory=lambda: CrestDetector(
            window=3000, threshold_fraction=0.85, min_band_watts=15.0
        ),
    )
    out_rapl = rapl_attack.run(WINDOW_S)

    sim_u, inst_u = setup()
    util_attack = SynergisticAttack(
        sim_u, inst_u, burst_s=30.0, cooldown_s=300.0, max_trials=3,
        learn_s=600.0,
        monitor_factory=UtilizationPowerEstimator,
        detector_factory=lambda: CrestDetector(
            window=3000, threshold_fraction=0.85, min_band_watts=0.3
        ),
    )
    out_util = util_attack.run(WINDOW_S)

    sim_p, inst_p = setup()
    out_periodic = PeriodicAttack(
        sim_p, inst_p, burst_s=30.0, period_s=300.0
    ).run(WINDOW_S)
    return out_rapl, out_util, out_periodic


def test_ablation_no_rapl(benchmark, results_dir):
    out_rapl, out_util, out_periodic = benchmark.pedantic(
        run_three_ways, rounds=1, iterations=1
    )

    def mean_spike(outcome):
        return statistics.mean(outcome.spike_watts) if outcome.spike_watts else 0.0

    # both informed attackers fire a bounded number of aimed strikes
    assert 1 <= out_rapl.trials <= 3
    assert 1 <= out_util.trials <= 3
    # the utilization proxy recovers most of the RAPL trigger's per-strike
    # quality and both beat the blind baseline's average strike
    assert mean_spike(out_util) > mean_spike(out_periodic)
    assert mean_spike(out_rapl) > mean_spike(out_periodic)
    assert mean_spike(out_util) > mean_spike(out_rapl) - 60.0
    # informed attackers remain far cheaper than the blind one
    assert out_util.attacker_cpu_seconds < out_periodic.attacker_cpu_seconds / 2

    lines = [
        "Ablation: attack signal source (4 servers, 2400 s window)",
        f"{'trigger':<22}{'peak W':>9}{'mean spike W':>14}{'trials':>8}"
        f"{'cpu-s':>9}",
    ]
    for label, out in (("RAPL (Section IV)", out_rapl),
                       ("utilization (VII-A)", out_util),
                       ("blind periodic", out_periodic)):
        lines.append(
            f"{label:<22}{out.peak_watts:>9.0f}{mean_spike(out):>14.0f}"
            f"{out.trials:>8}{out.attacker_cpu_seconds:>9.0f}"
        )
    lines.append("")
    lines.append(
        "conclusion: masking RAPL alone does not stop the attack; the"
        " utilization channels leak the same timing signal (the paper's"
        " Section VII-A warning)."
    )
    write_result(results_dir, "ablation_no_rapl", "\n".join(lines))
