"""Extension experiment: covert-channel bandwidth vs background noise.

Table II marks several channels M=◐ because a tenant can only *influence*
them through resource usage; the paper notes these "could be exploited by
advanced attackers as covert channels to transmit signals". This bench
quantifies that: bit error rate of a loadavg-carried covert channel as a
function of symbol period, on a quiet host and under a noisy neighbour.

Shape targets: error-free transfer at modest rates on a quiet host;
shorter symbols and louder neighbours push errors up — the classic
bandwidth/robustness trade-off of physical covert channels (cf. the
thermal channels of Bartolini/Masti et al., cited in Section VIII).
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.coresidence.covert import (
    CovertConfig,
    CovertReceiver,
    CovertSender,
    run_transfer,
)
from repro.kernel.kernel import Machine
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import Workload, WorkloadPhase

#: a fixed 16-bit test frame (framed: contains both symbols)
FRAME = [1, 0, 1, 1, 0, 0, 1, 0, 0, 1, 1, 0, 1, 0, 0, 1]


def _bursty_noise(name: str, on_s: float, off_s: float) -> Workload:
    """A neighbour that flaps between busy and asleep: real interference
    for a load-count carrier (a constant neighbour is just DC offset)."""
    phases = []
    for _ in range(400):
        phases.append(WorkloadPhase(duration=on_s, cpu_demand=0.95, ipc=1.5))
        phases.append(WorkloadPhase(duration=off_s, cpu_demand=0.01, ipc=0.5))
    return Workload(phases, name=name)


def error_rate(
    symbol_period_s: float, noisy_cores: int, carrier_cores: int, seed: int
) -> float:
    machine = Machine(seed=seed, spawn_daemons=False)
    engine = ContainerEngine(machine.kernel)
    sender_c = engine.create(name="sender", cpus=4)
    receiver_c = engine.create(name="receiver", cpus=2)
    for i in range(noisy_cores):
        machine.kernel.spawn(
            f"noise-{i}",
            workload=_bursty_noise(f"noise-{i}", 1.5 + 0.7 * i, 2.5 - 0.3 * i),
        )
    machine.run(5, dt=1.0)
    config = CovertConfig(
        symbol_period_s=symbol_period_s, carrier_cores=carrier_cores
    )
    received = run_transfer(
        lambda s: machine.run(s, dt=min(1.0, symbol_period_s / 4)),
        CovertSender(sender_c, config),
        CovertReceiver(receiver_c, config),
        FRAME,
    )
    return sum(a != b for a, b in zip(FRAME, received)) / len(FRAME)


def run_sweep():
    rows = {}
    for carrier in (4, 1):
        for period in (1.0, 4.0):
            for noisy in (0, 4):
                rows[(carrier, period, noisy)] = error_rate(
                    period, noisy, carrier, seed=211
                )
    return rows


def test_ablation_covert_bandwidth(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)

    # a quiet host carries the channel error-free for any carrier/rate
    for carrier in (4, 1):
        for period in (1.0, 4.0):
            assert rows[(carrier, period, 0)] == 0.0
    # a strong carrier shrugs off bursty neighbours
    assert rows[(4, 1.0, 4)] <= 0.1
    # a weak fast carrier drowns; slowing the symbols recovers it
    assert rows[(1, 1.0, 4)] > 0.2
    assert rows[(1, 4.0, 4)] < rows[(1, 1.0, 4)]

    lines = [
        "Extension: covert-channel quality over /proc/loadavg",
        "(16-bit frame; noise = 4 bursty neighbour tasks)",
        "",
        f"{'carrier cores':<15}{'period s':>10}{'bit/s':>7}"
        f"{'BER quiet':>11}{'BER noisy':>11}",
    ]
    for carrier in (4, 1):
        for period in (1.0, 4.0):
            lines.append(
                f"{carrier:<15}{period:>10.1f}{1.0 / period:>7.2f}"
                f"{rows[(carrier, period, 0)]:>11.3f}"
                f"{rows[(carrier, period, 4)]:>11.3f}"
            )
    lines.append("")
    lines.append(
        "conclusion: the M=half channels of Table II carry practical"
        " covert traffic; namespacing/masking them is part of the fix."
    )
    write_result(results_dir, "ablation_covert_bandwidth", "\n".join(lines))
