"""Figure 4: power of a single server under a co-resident attack.

The paper's CC1 experiment: use the timer_list channel to verify
co-residence, aggregate three 4-core instances onto one physical server,
then start four Prime copies in each container one container at a time.
Each container adds roughly 40 W; three together lift the server ~100 W
above its average, to almost 230 W.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.attack.virus import moderate_virus
from repro.coresidence.implant import ImplantVerifier
from repro.coresidence.orchestrator import CoResidenceOrchestrator
from repro.datacenter.simulation import DatacenterSimulation
from repro.datacenter.tenants import DiurnalProfile
from repro.datacenter.topology import wall_power_watts
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud

#: no benign background: the fig4 measurement isolates the attacker's
#: per-container power steps on one host
IDLE_TENANTS = DiurnalProfile(
    base_cores=0.0, peak_cores=0.0, bursts_per_day=0.0,
    burst_cores=0.0, noise=0.0,
)


def run_fig4():
    cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=107, servers=8)

    # the paper verifies co-residence through timer_list on CC1
    verifier_impl = ImplantVerifier("timer_list")

    def timer_verifier(cloud_, pivot, candidate):
        implant = verifier_impl.plant(pivot.container)
        cloud_.run(1.0)
        return verifier_impl.probe(candidate, implant)

    orchestrator = CoResidenceOrchestrator(
        cloud, tenant="attacker", verifier=timer_verifier
    )
    result = orchestrator.aggregate(target=3, max_launches=120)
    host = cloud.host_of(result.instances[0])

    cloud.run(30.0)
    levels = [wall_power_watts(host.kernel)]
    # start 4 Prime copies per container, one container at a time
    for instance in result.instances:
        for core in range(4):
            instance.container.exec(f"prime-{core}", workload=moderate_virus())
        cloud.run(60.0)
        levels.append(wall_power_watts(host.kernel))
    return result, levels


def _scout_coresidence(seed, servers):
    """Find a co-resident launch plan on a throwaway identical cloud.

    Co-residence probing mutates host state (the timer_list implant
    spawns a timer task in the pivot), so the measured fleet cannot run
    the probes itself without polluting its power levels — and in
    parallel mode the driver cannot probe worker-held containers at all.
    Instead the scout cloud, seeded identically, runs the full
    orchestration; only its launch/terminate plan is replayed on the
    measured simulation, where identical seeds reproduce the identical
    placements.
    """
    cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=seed, servers=servers)
    verifier_impl = ImplantVerifier("timer_list")

    def timer_verifier(cloud_, pivot, candidate):
        implant = verifier_impl.plant(pivot.container)
        cloud_.run(1.0)
        return verifier_impl.probe(candidate, implant)

    orchestrator = CoResidenceOrchestrator(
        cloud, tenant="attacker", verifier=timer_verifier
    )
    result = orchestrator.aggregate(target=3, max_launches=120)
    keep = [i.instance_id for i in result.instances]
    return tuple(cloud.launch_log), keep, result


def run_fig4_sim(parallel):
    """The fig4 measurement on the full simulation (optionally sharded)."""
    plan, keep, scout = _scout_coresidence(seed=107, servers=8)
    sim = DatacenterSimulation(
        servers=8, rack_size=4, seed=107, tenant_profile=IDLE_TENANTS,
        sample_interval_s=1.0,
    )
    live = {}
    for op in plan:
        if op[0] == "launch":
            _, iid, tenant, host_index, cpus = op
            inst = sim.cloud.launch_instance(tenant, cpus=cpus)
            # identical seed => identical placement; divergence here
            # would invalidate the scouted plan
            assert (inst.instance_id, inst.host_index) == (iid, host_index)
            live[iid] = inst
        else:
            sim.cloud.terminate_instance(live.pop(op[1]))
    instances = [live[iid] for iid in keep]
    host_index = instances[0].host_index

    sim.run(30.0, dt=1.0, parallel=parallel)
    levels = [sim.server_wall_watts(host_index)]
    for instance in instances:
        for core in range(4):
            sim.exec_in_instance(instance, f"prime-{core}", moderate_virus)
        sim.run(60.0, dt=1.0)
        levels.append(sim.server_wall_watts(host_index))
    sim.close()
    return scout, levels


def test_fig4_sim_parallel_golden(results_dir):
    """The sim-based fig4 campaign is bit-identical under --parallel."""
    scout, serial_levels = run_fig4_sim(0)
    _, par_levels = run_fig4_sim(2)
    assert par_levels == serial_levels

    # the shape claims hold on the simulated fleet too
    assert len({i.host_index for i in scout.instances}) == 1
    baseline, after1, after2, after3 = serial_levels
    steps = (after1 - baseline, after2 - after1, after3 - after2)
    for step in steps:
        assert 25.0 < step < 60.0, serial_levels
    assert after3 - baseline > 80.0

    write_result(
        results_dir,
        "fig4_sim_parallel_golden",
        "fig4 on the simulation, serial vs --parallel 2: bit-identical"
        f" levels {' -> '.join(f'{w:.0f}' for w in serial_levels)} W"
        f" (steps {', '.join(f'+{s:.0f}' for s in steps)})",
    )


def test_fig4(benchmark, results_dir):
    result, levels = benchmark.pedantic(run_fig4, rounds=1, iterations=1)

    # ground truth: the three instances really share one host
    assert len({i.host_index for i in result.instances}) == 1

    baseline, after1, after2, after3 = levels
    step1 = after1 - baseline
    step2 = after2 - after1
    step3 = after3 - after2

    # each container contributes ~40 W (paper: "approximately 40W")
    for step in (step1, step2, step3):
        assert 25.0 < step < 60.0, levels
    # contributions are additive (per-container power, not shared)
    assert abs(step1 - step3) < 12.0
    # the server climbs ~100 W above its starting level toward ~230 W
    assert after3 - baseline > 80.0
    assert 180.0 < after3 < 300.0

    lines = [
        "Figure 4 reproduction: 3 co-resident containers x 4 Prime copies",
        f"  co-residence: {result.launches} launches,"
        f" {result.terminations} terminations (paper: 'trivial effort')",
        "  paper:    each container ~+40 W; total ~230 W (~+100 W)",
        f"  measured: baseline {baseline:.0f} W ->"
        f" {after1:.0f} -> {after2:.0f} -> {after3:.0f} W"
        f" (steps +{step1:.0f}, +{step2:.0f}, +{step3:.0f})",
    ]
    write_result(results_dir, "fig4_coresident_attack", "\n".join(lines))
