"""Figure 4: power of a single server under a co-resident attack.

The paper's CC1 experiment: use the timer_list channel to verify
co-residence, aggregate three 4-core instances onto one physical server,
then start four Prime copies in each container one container at a time.
Each container adds roughly 40 W; three together lift the server ~100 W
above its average, to almost 230 W.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.attack.virus import moderate_virus
from repro.coresidence.implant import ImplantVerifier
from repro.coresidence.orchestrator import CoResidenceOrchestrator
from repro.datacenter.topology import wall_power_watts
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud


def run_fig4():
    cloud = ContainerCloud(PROVIDER_PROFILES["CC1"], seed=107, servers=8)

    # the paper verifies co-residence through timer_list on CC1
    verifier_impl = ImplantVerifier("timer_list")

    def timer_verifier(cloud_, pivot, candidate):
        implant = verifier_impl.plant(pivot.container)
        cloud_.run(1.0)
        return verifier_impl.probe(candidate, implant)

    orchestrator = CoResidenceOrchestrator(
        cloud, tenant="attacker", verifier=timer_verifier
    )
    result = orchestrator.aggregate(target=3, max_launches=120)
    host = cloud.host_of(result.instances[0])

    cloud.run(30.0)
    levels = [wall_power_watts(host.kernel)]
    # start 4 Prime copies per container, one container at a time
    for instance in result.instances:
        for core in range(4):
            instance.container.exec(f"prime-{core}", workload=moderate_virus())
        cloud.run(60.0)
        levels.append(wall_power_watts(host.kernel))
    return result, levels


def test_fig4(benchmark, results_dir):
    result, levels = benchmark.pedantic(run_fig4, rounds=1, iterations=1)

    # ground truth: the three instances really share one host
    assert len({i.host_index for i in result.instances}) == 1

    baseline, after1, after2, after3 = levels
    step1 = after1 - baseline
    step2 = after2 - after1
    step3 = after3 - after2

    # each container contributes ~40 W (paper: "approximately 40W")
    for step in (step1, step2, step3):
        assert 25.0 < step < 60.0, levels
    # contributions are additive (per-container power, not shared)
    assert abs(step1 - step3) < 12.0
    # the server climbs ~100 W above its starting level toward ~230 W
    assert after3 - baseline > 80.0
    assert 180.0 < after3 < 300.0

    lines = [
        "Figure 4 reproduction: 3 co-resident containers x 4 Prime copies",
        f"  co-residence: {result.launches} launches,"
        f" {result.terminations} terminations (paper: 'trivial effort')",
        "  paper:    each container ~+40 W; total ~230 W (~+100 W)",
        f"  measured: baseline {baseline:.0f} W ->"
        f" {after1:.0f} -> {after2:.0f} -> {after3:.0f} W"
        f" (steps +{step1:.0f}, +{step2:.0f}, +{step3:.0f})",
    ]
    write_result(results_dir, "fig4_coresident_attack", "\n".join(lines))
