"""Table II: U/V/M metrics and the co-residence capability ranking.

Assesses every channel behaviourally (static-id, implantation,
accumulator, variation, indirect-influence, entropy probes) and checks the
ranking reproduces the paper's group structure:

1. static identifiers (boot_id, ifpriomap),
2. implantable channels (sched_debug, timer_list, locks),
3. unique accumulators ranked by growth rate,
4. varying channels ranked by joint entropy,
5. inert channels (modules, cpuinfo, version) last.

Beyond the single paper-faithful fixture, ``test_ranking_ndcg`` runs the
:mod:`repro.detection.evaluation` harness: the same base assessment is
perturbed into ``BENCH_NDCG_PROFILES`` (default 1000) seeded randomized
cloud profiles — masking policies, signal noise, probe misclassification
— and the detector's severity ranking is scored with NDCG@10 against
Table II ground-truth grades. Gates: the unperturbed paper profile must
score exactly 1.0, and the sweep's mean NDCG@10 must clear
``BENCH_NDCG_FLOOR`` (default 0.9). Emits
``benchmarks/out/BENCH_ranking.json``.
"""

from __future__ import annotations

import json
import os

from benchmarks.conftest import write_result
from repro.detection.evaluation import EvaluationService
from repro.detection.metrics import ChannelAssessor, Manipulation, UniquenessGroup

_M_GLYPH = {
    Manipulation.DIRECT: "●",
    Manipulation.INDIRECT: "◐",
    Manipulation.NONE: "○",
}


def run_table2():
    assessor = ChannelAssessor(seed=102, snapshots=10, interval_s=5.0)
    return assessor.assess_all()


def test_table2(benchmark, results_dir):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    by_id = {a.channel_id: a for a in rows}
    order = [a.channel_id for a in rows]

    # group 1: the two static identifiers lead the table
    assert set(order[:2]) == {
        "proc.sys.kernel.random.boot_id",
        "sys.fs.cgroup.net_prio.ifpriomap",
    }
    # group 2: the implantable trio in the paper's order
    assert order[2:5] == ["proc.sched_debug", "proc.timer_list", "proc.locks"]
    # group 3: key accumulators are unique
    for cid in ("proc.uptime", "proc.stat", "sys.class.powercap.energy_uj",
                "sys.devices.system.cpu.cpuidle.usage"):
        assert by_id[cid].group is UniquenessGroup.ACCUMULATOR, cid
    # group 4: zoneinfo/meminfo vary but are not unique
    for cid in ("proc.zoneinfo", "proc.meminfo", "proc.loadavg"):
        assert by_id[cid].group is UniquenessGroup.NOT_UNIQUE
        assert by_id[cid].varies
    # group 5: the paper's bottom three are inert
    assert set(order[-3:]) == {"proc.modules", "proc.cpuinfo", "proc.version"}

    lines = [
        f"{'rank':<5}{'channel':<46}{'U':<3}{'V':<3}{'M':<3}"
        f"{'group':<13}{'entropy':>9}{'growth':>9}"
    ]
    for rank, a in enumerate(rows, start=1):
        lines.append(
            f"{rank:<5}{a.channel_id:<46}"
            f"{'●' if a.unique else '○':<3}{'●' if a.varies else '○':<3}"
            f"{_M_GLYPH[a.manipulation]:<3}{a.group.value:<13}"
            f"{a.entropy:>9.2f}{a.growth_rate:>9.4f}"
        )
    write_result(results_dir, "table2_ranking", "\n".join(lines))


def test_ranking_ndcg(results_dir):
    profiles = int(os.environ.get("BENCH_NDCG_PROFILES", "") or 1000)
    floor = float(os.environ.get("BENCH_NDCG_FLOOR", "") or 0.9)

    service = EvaluationService.from_assessments(run_table2())

    # the unperturbed paper-faithful cloud must rank perfectly: the
    # detector's group order is exactly the ground-truth severity order
    paper = service.paper_profile()
    for k in (5, 10):
        ndcg = service.score(paper, k=k)
        assert ndcg == 1.0, f"paper profile NDCG@{k} = {ndcg} != 1.0"

    report = service.sweep(profiles=profiles, k=10)
    assert report.mean >= floor, (
        f"mean NDCG@10 {report.mean:.4f} over {profiles} randomized"
        f" profiles is below the {floor} floor"
        f" (p5 {report.percentiles['p5']:.4f},"
        f" min {report.percentiles['min']:.4f})"
    )

    payload = {
        "bench": "ranking_ndcg",
        "ndcg_floor_gate": floor,
        "paper_ndcg_at_5": 1.0,
        "paper_ndcg_at_10": 1.0,
        "params": {
            "mask_probability": service.mask_probability,
            "misclassify_probability": service.misclassify_probability,
            "signal_noise": service.signal_noise,
        },
    }
    payload.update(report.as_dict())
    (results_dir / "BENCH_ranking.json").write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n"
    )

    pcts = report.percentiles
    lines = [
        f"ranking NDCG@10 over {profiles} randomized cloud profiles"
        f" (mask p={service.mask_probability},"
        f" misclassify p={service.misclassify_probability},"
        f" noise {service.signal_noise})",
        "",
        "paper profile: NDCG@5 = 1.0, NDCG@10 = 1.0",
        f"mean     {report.mean:.4f}",
        f"p5/p25   {pcts['p5']:.4f} / {pcts['p25']:.4f}",
        f"p50/p75  {pcts['p50']:.4f} / {pcts['p75']:.4f}",
        f"min/max  {pcts['min']:.4f} / {pcts['max']:.4f}",
        f"perfect  {report.perfect_fraction:.1%} of profiles",
        "",
        "worst profiles:",
    ]
    for w in report.worst[:5]:
        lines.append(
            f"  seed {w['seed']:>6}  ndcg {w['ndcg']:.4f}"
            f"  masked {len(w['masked'])}"
            f"  misclassified {len(w['misclassified'])}"
        )
    lines.append("")
    lines.append(
        f"gate: mean NDCG@10 >= {floor} -> "
        f"{'PASS' if report.mean >= floor else 'FAIL'}"
    )
    write_result(results_dir, "ranking_ndcg", "\n".join(lines))
