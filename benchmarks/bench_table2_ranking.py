"""Table II: U/V/M metrics and the co-residence capability ranking.

Assesses every channel behaviourally (static-id, implantation,
accumulator, variation, indirect-influence, entropy probes) and checks the
ranking reproduces the paper's group structure:

1. static identifiers (boot_id, ifpriomap),
2. implantable channels (sched_debug, timer_list, locks),
3. unique accumulators ranked by growth rate,
4. varying channels ranked by joint entropy,
5. inert channels (modules, cpuinfo, version) last.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.detection.metrics import ChannelAssessor, Manipulation, UniquenessGroup

_M_GLYPH = {
    Manipulation.DIRECT: "●",
    Manipulation.INDIRECT: "◐",
    Manipulation.NONE: "○",
}


def run_table2():
    assessor = ChannelAssessor(seed=102, snapshots=10, interval_s=5.0)
    return assessor.assess_all()


def test_table2(benchmark, results_dir):
    rows = benchmark.pedantic(run_table2, rounds=1, iterations=1)
    by_id = {a.channel_id: a for a in rows}
    order = [a.channel_id for a in rows]

    # group 1: the two static identifiers lead the table
    assert set(order[:2]) == {
        "proc.sys.kernel.random.boot_id",
        "sys.fs.cgroup.net_prio.ifpriomap",
    }
    # group 2: the implantable trio in the paper's order
    assert order[2:5] == ["proc.sched_debug", "proc.timer_list", "proc.locks"]
    # group 3: key accumulators are unique
    for cid in ("proc.uptime", "proc.stat", "sys.class.powercap.energy_uj",
                "sys.devices.system.cpu.cpuidle.usage"):
        assert by_id[cid].group is UniquenessGroup.ACCUMULATOR, cid
    # group 4: zoneinfo/meminfo vary but are not unique
    for cid in ("proc.zoneinfo", "proc.meminfo", "proc.loadavg"):
        assert by_id[cid].group is UniquenessGroup.NOT_UNIQUE
        assert by_id[cid].varies
    # group 5: the paper's bottom three are inert
    assert set(order[-3:]) == {"proc.modules", "proc.cpuinfo", "proc.version"}

    lines = [
        f"{'rank':<5}{'channel':<46}{'U':<3}{'V':<3}{'M':<3}"
        f"{'group':<13}{'entropy':>9}{'growth':>9}"
    ]
    for rank, a in enumerate(rows, start=1):
        lines.append(
            f"{rank:<5}{a.channel_id:<46}"
            f"{'●' if a.unique else '○':<3}{'●' if a.varies else '○':<3}"
            f"{_M_GLYPH[a.manipulation]:<3}{a.group.value:<13}"
            f"{a.entropy:>9.2f}{a.growth_rate:>9.4f}"
        )
    write_result(results_dir, "table2_ranking", "\n".join(lines))
