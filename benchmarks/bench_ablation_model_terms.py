"""Ablation: which terms does the power model need?

DESIGN.md calls out the activity-vector model choice: the paper augments
the classic instructions-only model [24], [33] with cache- and branch-miss
rates because "power consumption could vary significantly with the same
CPU utilization". This ablation fits three model forms on the same
training data and compares their fit on the core-energy target:

- ``instructions-only``: E ≈ w·I + b  (the pre-paper baseline)
- ``paper``: E ≈ F(CM/C, BM/C)·I + α  (Formula 2)
- ``full``: E ≈ w1·C + w2·CM + w3·BM + b  (upper bound)
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import write_result
from repro.analysis.regression import fit_linear
from repro.defense.modeling import PowerModeler, TrainingHarness


def run_ablation():
    harness = TrainingHarness(seed=115, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()

    instructions_only = fit_linear(
        [[float(s.window.instructions)] for s in harness.samples],
        [s.e_core_active_j for s in harness.samples],
    )
    paper = PowerModeler(form="paper").fit(harness)
    full = PowerModeler(form="full").fit(harness)
    return harness, instructions_only, paper, full


def test_ablation_model_terms(benchmark, results_dir):
    harness, instructions_only, paper, full = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    r2_i = instructions_only.r_squared
    r2_paper = paper.core_model.r_squared
    r2_full = full.core_model.r_squared

    # the paper's point: instructions alone cannot explain core energy
    # across workload types; the miss-rate terms close most of the gap
    assert r2_i < 0.8
    assert r2_paper > 0.95
    assert r2_full >= r2_paper
    assert r2_full > 0.999

    # error magnitude comparison on the training windows
    def rms_error(predict):
        errors = [
            predict(s) - s.e_core_active_j for s in harness.samples
        ]
        return float(np.sqrt(np.mean(np.square(errors))))

    rms_i = rms_error(
        lambda s: instructions_only.predict([float(s.window.instructions)])
    )
    rms_paper = rms_error(lambda s: paper.core_active_j(s.window))
    rms_full = rms_error(lambda s: full.core_active_j(s.window))
    assert rms_paper < rms_i / 2

    lines = [
        "Ablation: power-model terms (core energy target)",
        f"{'model':<22}{'R^2':>10}{'RMS error (J)':>15}",
        f"{'instructions-only':<22}{r2_i:>10.4f}{rms_i:>15.2f}",
        f"{'paper (Formula 2)':<22}{r2_paper:>10.4f}{rms_paper:>15.2f}",
        f"{'full (C, CM, BM)':<22}{r2_full:>10.4f}{rms_full:>15.2f}",
        "",
        "conclusion: the miss-rate terms the paper adds are load-bearing;"
        " utilization-style models mis-attribute memory-bound energy.",
    ]
    write_result(results_dir, "ablation_model_terms", "\n".join(lines))
