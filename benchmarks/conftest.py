"""Shared infrastructure for the experiment benchmarks.

Every benchmark regenerates one of the paper's tables or figures. Results
are printed and also written under ``benchmarks/out/`` so that the
paper-vs-measured comparison in EXPERIMENTS.md can be refreshed from the
artifacts.
"""

from __future__ import annotations

import pathlib

import pytest

OUT_DIR = pathlib.Path(__file__).parent / "out"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    """Directory collecting the rendered tables/series."""
    OUT_DIR.mkdir(exist_ok=True)
    return OUT_DIR


def write_result(results_dir: pathlib.Path, name: str, content: str) -> None:
    """Persist one experiment's rendered output."""
    path = results_dir / f"{name}.txt"
    path.write_text(content)
    print(f"\n=== {name} ===")
    print(content)
