"""Table I: leakage channels across the five provider clouds.

Runs the Figure 1 pipeline end to end: cross-validation on a local
testbed discovers the channels; cloud inspection probes CC1–CC5 and
produces the availability matrix. Shape checks assert the paper's
qualitative cells (almost everything open on CC1/CC2, hardware gaps on
CC4, partial views on CC5).
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.detection.channels import CHANNELS
from repro.detection.crossvalidate import CrossValidator
from repro.detection.inspector import Availability, format_table1, inspect_all
from repro.kernel.kernel import Machine
from repro.runtime.cloud import PROVIDER_PROFILES, ContainerCloud
from repro.runtime.engine import ContainerEngine


def run_table1():
    """The full experiment; returns (local report, per-cloud reports)."""
    machine = Machine(seed=101)
    engine = ContainerEngine(machine.kernel)
    probe = engine.create(name="probe")
    machine.run(3, dt=1.0)
    local_report = CrossValidator(engine.vfs, probe).run()

    clouds = {
        name: ContainerCloud(profile, seed=101, servers=1)
        for name, profile in PROVIDER_PROFILES.items()
    }
    return local_report, inspect_all(clouds)


def test_table1(benchmark, results_dir):
    local_report, reports = benchmark.pedantic(run_table1, rounds=1, iterations=1)

    # --- the paper's local-testbed discovery: every Table I channel leaks
    discovered = set(local_report.leaking_channels())
    registered = {c.channel_id for c in CHANNELS}
    assert registered <= discovered

    # --- per-cloud shape checks against Table I
    assert len(reports["CC1"].available_channels()) >= 20
    assert "proc.sched_debug" in reports["CC1"].masked_channels()
    assert "proc.sys.fs.file-nr" in reports["CC3"].masked_channels()
    assert "sys.class.powercap.energy_uj" in reports["CC4"].masked_channels()
    assert reports["CC5"].cells["proc.meminfo"] is Availability.PARTIAL
    for name in reports:
        assert reports[name].cells["proc.modules"] is Availability.FULL

    table = format_table1(reports)
    summary = (
        f"channels discovered on local testbed: {len(discovered)}\n"
        f"(every row of the paper's Table I rediscovered behaviourally)\n\n"
        + table
    )
    write_result(results_dir, "table1_channels", summary)
