"""Figure 7: DRAM energy vs last-level cache misses.

Same measurement harness as Figure 6, different relation: across ALL
benchmarks at once, DRAM active energy is approximately linear in the
number of cache misses with a single global slope — which is why the
defense models M_dram = β·CM + γ with one regression (Formula 2).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.analysis.regression import fit_linear
from repro.defense.modeling import TrainingHarness


def run_harness():
    harness = TrainingHarness(seed=109, window_s=5.0, windows_per_benchmark=10)
    harness.run_all()
    return harness


def test_fig7(benchmark, results_dir):
    harness = benchmark.pedantic(run_harness, rounds=1, iterations=1)

    # one global linear fit across every benchmark's windows
    global_fit = fit_linear(
        [[float(s.window.cache_misses)] for s in harness.samples],
        [s.e_dram_active_j for s in harness.samples],
    )
    assert global_fit.r_squared > 0.98
    beta = global_fit.weights[0]
    assert beta > 0

    # per-benchmark points fall on the same line: compare each
    # benchmark's mean energy-per-miss to the global slope
    lines = [
        "Figure 7 reproduction: DRAM energy ~ cache misses (single slope)",
        f"global fit: beta={beta * 1e9:.3f} nJ/miss, "
        f"gamma={global_fit.intercept:.3f} J, R^2={global_fit.r_squared:.4f}",
        "",
        f"{'benchmark':<14}{'misses/window':>16}{'J/window':>12}"
        f"{'nJ/miss':>10}",
    ]
    for name, samples in harness.samples_by_benchmark.items():
        total_misses = sum(s.window.cache_misses for s in samples)
        total_j = sum(s.e_dram_active_j for s in samples)
        per_miss = total_j / total_misses if total_misses else 0.0
        # compare slopes only where DRAM active energy rises clearly above
        # the RAPL measurement noise floor (idle-loop/prime barely miss)
        if total_misses > 5e8:
            assert per_miss == pytest.approx(beta, rel=0.35), name
        lines.append(
            f"{name:<14}{total_misses // len(samples):>16}"
            f"{total_j / len(samples):>12.2f}{per_miss * 1e9:>10.3f}"
        )
    lines.append("")
    lines.append("paper shape: approximately linear across benchmarks - reproduced")
    write_result(results_dir, "fig7_dram_energy", "\n".join(lines))

