"""Figure 9: transparency — a container is unaware of the host's power.

The paper's setup: two containers on the defended host; container 1 runs
401.bzip2 from t=10 s to t=60 s, container 2 stays idle. Per-second power
is recorded for both containers and the host through the (unchanged) RAPL
interface.

Shape targets: before the workload all three read the same idle level;
during it, container 1 and the host surge together while container 2's
reading stays flat — the malicious monitor in container 2 sees nothing.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.kernel.rapl import unwrap_delta
from repro.kernel.kernel import Machine
from repro.runtime.benchmarks import SPEC_BENCHMARKS
from repro.runtime.engine import ContainerEngine

ENERGY = "/sys/class/powercap/intel-rapl:0/energy_uj"


class _Meter:
    """Per-second watt readings through one reader's RAPL interface."""

    def __init__(self, read):
        self._read = read
        self._last = None
        self.watts = []

    def sample(self):
        value = self._read()
        if self._last is not None:
            self.watts.append(unwrap_delta(value, self._last) / 1e6)
        self._last = value


def run_fig9():
    harness = TrainingHarness(seed=112, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    model = PowerModeler(form="paper").fit(harness)

    machine = Machine(seed=113)
    engine = ContainerEngine(machine.kernel)
    driver = PowerNamespaceDriver(machine.kernel, model)
    driver.watch_engine(engine)

    worker = engine.create(name="container-1", cpus=4)
    observer = engine.create(name="container-2", cpus=2)
    machine.run(2, dt=1.0)

    pkg = machine.kernel.rapl.package(0).package
    meters = {
        "host": _Meter(lambda: pkg.energy_uj),
        "container-1": _Meter(lambda: int(worker.read(ENERGY))),
        "container-2": _Meter(lambda: int(observer.read(ENERGY))),
    }

    def step():
        machine.run(1, dt=1.0)
        for meter in meters.values():
            meter.sample()

    for meter in meters.values():
        meter.sample()
    for _ in range(10):  # 0-10 s: everything idle
        step()
    for core in range(4):  # 10 s: container 1 starts 401.bzip2
        worker.exec(
            f"bzip2-{core}",
            workload=SPEC_BENCHMARKS["401.bzip2"].workload(duration=50.0),
        )
    for _ in range(50):  # 10-60 s: workload runs
        step()
    return meters


def test_fig9(benchmark, results_dir):
    meters = benchmark.pedantic(run_fig9, rounds=1, iterations=1)
    host = meters["host"].watts
    c1 = meters["container-1"].watts
    c2 = meters["container-2"].watts

    idle_host = sum(host[:10]) / 10
    idle_c1 = sum(c1[:10]) / 10
    idle_c2 = sum(c2[:10]) / 10
    busy_host = sum(host[20:50]) / 30
    busy_c1 = sum(c1[20:50]) / 30
    busy_c2 = sum(c2[20:50]) / 30

    # "when both containers have no workload, their power consumption is
    # at the same level as that of the host"
    assert idle_c1 == pytest.approx(idle_host, rel=0.15)
    assert idle_c2 == pytest.approx(idle_host, rel=0.15)

    # "the power consumption of container 1 and the host surges
    # simultaneously ... similar power usage pattern"
    assert busy_host > idle_host + 20
    assert busy_c1 == pytest.approx(busy_host, rel=0.15)

    # "container 2 is still at a low power consumption level ... unaware
    # of the power fluctuation on the whole system"
    assert busy_c2 == pytest.approx(idle_c2, rel=0.15)
    assert busy_c2 < busy_host * 0.5

    lines = [
        "Figure 9 reproduction: transparency under the power namespace",
        "(401.bzip2 in container 1 from t=10 s; container 2 idle)",
        "",
        f"{'reader':<14}{'idle W (0-10 s)':>17}{'busy W (30-60 s)':>18}",
        f"{'host':<14}{idle_host:>17.1f}{busy_host:>18.1f}",
        f"{'container-1':<14}{idle_c1:>17.1f}{busy_c1:>18.1f}",
        f"{'container-2':<14}{idle_c2:>17.1f}{busy_c2:>18.1f}",
        "",
        "container 2 remains at idle level while host surges - reproduced",
    ]
    write_result(results_dir, "fig9_transparency", "\n".join(lines))

