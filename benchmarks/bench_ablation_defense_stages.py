"""Ablation: stage-1 masking vs stage-2 namespacing (Section V-A's
trade-off, quantified).

Both stages close the RAPL channel to a synergistic attacker; they differ
in what legitimate tenants lose. Stage 1 (deny rules) breaks every
pseudo-file that common in-container tooling reads; stage 2 (the power
namespace) keeps the interface alive and accurate for the tenant's own
consumption.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import write_result
from repro.defense.masking import functionality_impact, generate_masking_policy
from repro.defense.modeling import PowerModeler, TrainingHarness
from repro.defense.powerns import PowerNamespaceDriver
from repro.detection.crossvalidate import CrossValidator
from repro.errors import ReproError
from repro.kernel.kernel import Machine
from repro.kernel.rapl import unwrap_delta
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant

ENERGY = "/sys/class/powercap/intel-rapl:0/energy_uj"


def run_ablation():
    # --- stage 1 on a fresh host
    machine1 = Machine(seed=118)
    engine1 = ContainerEngine(machine1.kernel)
    probe = engine1.create(name="probe")
    machine1.run(3, dt=1.0)
    policy = generate_masking_policy(CrossValidator(engine1.vfs, probe).run())
    masked = engine1.create(name="masked", policy=policy)
    stage1_broken = functionality_impact(policy)
    stage1_rapl_readable = True
    try:
        masked.read(ENERGY)
    except ReproError:
        stage1_rapl_readable = False

    # --- stage 2 on a fresh host
    harness = TrainingHarness(seed=119, window_s=5.0, windows_per_benchmark=8)
    harness.run_all()
    model = PowerModeler(form="paper").fit(harness)
    machine2 = Machine(seed=120)
    engine2 = ContainerEngine(machine2.kernel)
    driver = PowerNamespaceDriver(machine2.kernel, model)
    driver.watch_engine(engine2)
    tenant = engine2.create(name="tenant", cpus=4)
    for core in range(2):
        tenant.exec(f"app-{core}", workload=constant("app", cpu_demand=1.0, ipc=2.0))
    machine2.run(5, dt=1.0)
    c0 = int(tenant.read(ENERGY))
    machine2.run(30, dt=1.0)
    tenant_watts = unwrap_delta(int(tenant.read(ENERGY)), c0) / 1e6 / 30.0

    return stage1_broken, stage1_rapl_readable, tenant_watts


def test_ablation_defense_stages(benchmark, results_dir):
    stage1_broken, stage1_rapl_readable, tenant_watts = benchmark.pedantic(
        run_ablation, rounds=1, iterations=1
    )

    # stage 1 closes the channel but breaks legitimate monitoring
    assert not stage1_rapl_readable
    assert "/proc/meminfo" in stage1_broken
    assert "/proc/stat" in stage1_broken
    assert len(stage1_broken) >= 4

    # stage 2 keeps the interface usable: the tenant still meters its own
    # two-core workload (idle share + ~2 busy cores' active power)
    assert tenant_watts == pytest.approx(33.0, rel=0.35)

    lines = [
        "Ablation: stage-1 masking vs stage-2 power namespace",
        "",
        "stage 1 (masking):",
        "  RAPL channel readable: no (attack blocked)",
        f"  legitimate tooling broken: {len(stage1_broken)} files, e.g.:",
    ]
    for path, use in sorted(stage1_broken.items()):
        lines.append(f"    {path:<18} breaks {use}")
    lines += [
        "",
        "stage 2 (power namespace):",
        "  RAPL channel readable: yes, but per-container (attack blinded)",
        f"  tenant still meters its own consumption: {tenant_watts:.1f} W"
        " for a 2-core workload",
        "",
        "conclusion: stage 1 is a quick fix that costs functionality;"
        " stage 2 preserves the interface (the paper's 'fundamental"
        " solution').",
    ]
    write_result(results_dir, "ablation_defense_stages", "\n".join(lines))
