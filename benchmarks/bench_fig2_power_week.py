"""Figure 2: one week of power for 8 servers in a container cloud.

The attacker-side view: a container on each server samples the leaked RAPL
channel; the fleet's aggregate wall power is recorded for one simulated
week at 30-second averaging, then the highest-power region is re-examined
at 1-second resolution (the paper's two panels).

Shape targets: visible diurnal structure with high-demand days, a deep
trough-to-1s-peak swing (the paper reports 899 W → 1,199 W, a 34.72%
band), and 1 s peaks exceeding the 30 s average peaks.

The week runs at a 1 s base ``dt`` with tick coalescing: the fast-forward
engine skips phase-stable stretches between tenant adjustments while the
accuracy harness (``tests/sim/test_fastforward_accuracy.py``) pins the
result to the per-second reference. The benchmark output includes the
engine's tick-economy counters and a per-subsystem wall profile.
"""

from __future__ import annotations

from benchmarks.conftest import write_result
from repro.analysis.plotting import downtime_summary, render_power_timeline
from repro.datacenter.simulation import DatacenterSimulation

DAY_S = 86400.0


def run_week():
    sim = DatacenterSimulation(servers=8, seed=103, sample_interval_s=30.0)
    sim.enable_subsystem_timings()
    sim.run(7 * DAY_S, dt=1.0, coalesce=True)
    trace30 = sim.aggregate_trace

    # find the hottest 30 s sample and re-examine it at 1 s resolution
    hottest_start = max(
        range(len(trace30)), key=lambda i: trace30.watts[i]
    )
    t_hot = trace30.times[hottest_start]

    zoom = DatacenterSimulation(servers=8, seed=103, sample_interval_s=30.0)
    zoom.run(max(60.0, t_hot - 900.0), dt=1.0, coalesce=True)  # same seed
    zoom.set_sample_interval(1.0)
    zoom.run(1800.0, dt=1.0)  # the 1 s window around the peak
    trace1 = zoom.aggregate_trace.window(zoom.now - 1800.0, zoom.now + 1)
    return sim, trace30, trace1


def test_fig2(benchmark, results_dir):
    sim, trace30, trace1 = benchmark.pedantic(run_week, rounds=1, iterations=1)

    # a full week of 30 s samples (plus the t=0 baseline)
    assert len(trace30) >= 7 * 24 * 120 - 10

    trough = trace30.trough
    peak_30 = trace30.peak
    peak_1 = max(trace1.peak, peak_30)
    swing = (peak_1 - trough) / trough

    # the paper's ~35% band between trough and 1 s peak; we accept 15–80%
    assert 0.15 < swing < 0.8
    # 1 s sampling resolves spikes the 30 s average smooths away
    assert peak_1 >= peak_30
    # absolute regime comparable to the paper's 8 servers (hundreds of W)
    assert 700.0 < trough < 1100.0
    assert peak_1 < 2000.0
    # no benign week trips a breaker
    assert not sim.any_breaker_tripped()
    # the coalescing engine must actually pay for the 1 s base dt
    assert sim.metrics.tick_reduction >= 5.0

    daily_means = [
        trace30.window(d * DAY_S, (d + 1) * DAY_S).mean for d in range(7)
    ]
    spread = max(daily_means) - min(daily_means)
    assert spread > 10.0  # day-to-day demand variation is visible

    lines = [
        "Figure 2 reproduction: one week, 8 servers (aggregate wall W)",
        "  paper:   trough 899 W, 1 s peak 1199 W, swing 34.72%",
        f"  measured trough {trough:.0f} W, 30 s peak {peak_30:.0f} W, "
        f"1 s peak {peak_1:.0f} W, swing {swing * 100:.1f}%",
        "",
        "per-day mean wall power (W): "
        + " ".join(f"{m:.0f}" for m in daily_means),
        "",
        render_power_timeline(
            trace30, window_s=3600.0, width=84,
            label="week timeline (1 h windows)",
        ),
        f"  downtime: {downtime_summary(trace30, 3600.0)}"
        " (benign week: all-zero by construction)",
        "",
        "fast-forward tick economy:",
        sim.metrics.render(),
    ]
    # the benign week must not invent downtime: the Figure 2 plot layer
    # shades only what the fault path actually recorded
    summary = downtime_summary(trace30, 3600.0)
    assert summary["dark_windows"] == 0
    assert summary["downtime_fraction"] == 0.0
    write_result(results_dir, "fig2_power_week", "\n".join(lines))
