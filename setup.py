"""Legacy shim so `pip install -e .` / `setup.py develop` work on
environments whose setuptools predates PEP 660 editable wheels and that
lack the `wheel` package (offline hosts). All metadata lives in
pyproject.toml."""

from setuptools import setup

setup()
