"""The memory-based pseudo-filesystem layer (procfs + sysfs).

Every leakage channel in the paper is a file under ``/proc`` or ``/sys``.
This package renders the simulated kernel's state into the byte formats of
real Linux 4.7 pseudo-files, with each renderer explicitly either
*namespace-aware* (it consults the reading process's namespaces) or
*host-global* (it reads the kernel's global tables — the leak).

Entry point: :class:`repro.procfs.vfs.PseudoVFS` — ``vfs.read(path, ctx)``.
"""

from repro.procfs.node import PseudoDir, PseudoFile, ReadContext
from repro.procfs.vfs import PseudoVFS

__all__ = ["PseudoVFS", "PseudoFile", "PseudoDir", "ReadContext"]
