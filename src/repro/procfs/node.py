"""Pseudo-filesystem tree nodes and the read context.

A :class:`PseudoFile` couples a renderer with the metadata the detection
tooling needs: a stable channel id (used by the Table I/II machinery) and a
``namespaced`` flag recording whether the renderer consults the caller's
namespaces. The flag is *declarative documentation that the tests verify
behaviourally* — the cross-validation detector must rediscover it by
diffing, never by reading the flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterator, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import FileNotFoundPseudoError, PseudoFileError
from repro.kernel.namespaces import Namespace, NamespaceType, root_namespace_set
from repro.kernel.process import Task

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel
    from repro.runtime.container import Container


@dataclass
class ReadContext:
    """Who is reading a pseudo-file.

    ``task`` identifies the reading process (for pid- and
    namespace-dependent renderers); ``container`` is set when the read
    happens inside a container and carries the cgroups whose data
    container-aware renderers serve. A context with neither represents a
    root shell on the host.
    """

    kernel: "Kernel"
    task: Optional[Task] = None
    container: Optional["Container"] = None

    @property
    def namespaces(self) -> Dict[NamespaceType, Namespace]:
        """The reader's namespace set (root set for a host shell)."""
        if self.task is not None:
            return self.task.namespaces
        if self.container is not None:
            return self.container.namespaces
        return root_namespace_set(self.kernel.namespaces)

    def namespace(self, ns_type: NamespaceType) -> Namespace:
        """One namespace of the reader, defaulting to the root instance."""
        ns = self.namespaces.get(ns_type)
        if ns is None:
            ns = self.kernel.namespaces.root(ns_type)
        return ns

    @property
    def in_container(self) -> bool:
        """Whether the read originates inside a container."""
        return self.container is not None


Renderer = Callable[[ReadContext], str]


@dataclass
class PseudoFile:
    """A leaf node: one readable pseudo-file."""

    name: str
    render: Renderer
    #: stable channel identifier, e.g. "proc.meminfo"; None for files that
    #: are not (candidate) leakage channels
    channel: Optional[str] = None
    #: whether the renderer is namespace-aware (ground truth for tests)
    namespaced: bool = False

    def read(self, ctx: ReadContext) -> str:
        """Render the file for this reader."""
        return self.render(ctx)


class PseudoDir:
    """An interior node: a directory of pseudo-files/dirs."""

    def __init__(self, name: str):
        self.name = name
        self._children: Dict[str, object] = {}

    def add(self, child) -> "PseudoDir":
        """Insert a child node (returns self for chaining)."""
        if child.name in self._children:
            raise PseudoFileError(f"duplicate pseudo node: {child.name}")
        self._children[child.name] = child
        return self

    def dir(self, name: str) -> "PseudoDir":
        """Get-or-create a child directory."""
        child = self._children.get(name)
        if child is None:
            child = PseudoDir(name)
            self._children[name] = child
        if not isinstance(child, PseudoDir):
            raise PseudoFileError(f"not a directory: {name}")
        return child

    def file(
        self,
        name: str,
        render: Renderer,
        channel: Optional[str] = None,
        namespaced: bool = False,
    ) -> PseudoFile:
        """Create a file child."""
        node = PseudoFile(name=name, render=render, channel=channel, namespaced=namespaced)
        self.add(node)
        return node

    def child(self, name: str):
        """Look up one child, or None."""
        return self._children.get(name)

    def children(self) -> List[object]:
        """All children in insertion order."""
        return list(self._children.values())

    def resolve(self, parts: List[str]):
        """Resolve a relative path (list of components) to a node."""
        node: object = self
        for part in parts:
            if not isinstance(node, PseudoDir):
                return None
            node = node.child(name=part)
            if node is None:
                return None
        return node

    def walk(self, prefix: str = "") -> Iterator[Tuple[str, PseudoFile]]:
        """Yield (path, file) for every file in this subtree."""
        for child in self._children.values():
            path = f"{prefix}/{child.name}"
            if isinstance(child, PseudoDir):
                yield from child.walk(path)
            else:
                assert isinstance(child, PseudoFile)
                yield path, child


def split_path(path: str) -> List[str]:
    """Split an absolute pseudo path into components."""
    if not path.startswith("/"):
        raise FileNotFoundPseudoError(path)
    return [p for p in path.split("/") if p]
