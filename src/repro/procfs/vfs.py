"""The pseudo-VFS: path resolution, policy enforcement, reads.

:class:`PseudoVFS` is the mount point Docker/LXC give a container: both
``/proc`` and ``/sys`` trees plus the access-control layer. Container
reads pass through the container's masking policy first — the stage-1
defense (and the per-provider restrictions of CC1–CC5) act here, exactly
like AppArmor deny rules or unreadable bind-mounts act in front of real
pseudo-files.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Tuple

from repro.errors import FileNotFoundPseudoError, PermissionDeniedError
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
from repro.procfs.node import PseudoFile, ReadContext, split_path
from repro.procfs.proctree import build_proc_tree
from repro.procfs.systree import build_sys_tree


class PseudoVFS:
    """Unified view over one kernel's ``/proc`` and ``/sys`` trees."""

    def __init__(self, kernel: "Kernel"):
        self.kernel = kernel
        self.proc = build_proc_tree(kernel)
        self.sys = build_sys_tree(kernel)

    # The trees are pure functions of the kernel (renderers close over
    # nothing but node identity), so checkpoint snapshots carry only the
    # kernel and rebuild both trees on restore. Renderer replacements
    # applied by :mod:`repro.defense.kernel_patches` are driver-side
    # defense state and are not part of shard snapshots.
    def __getstate__(self):
        return {"kernel": self.kernel}

    def __setstate__(self, state) -> None:
        self.kernel = state["kernel"]
        self.proc = build_proc_tree(self.kernel)
        self.sys = build_sys_tree(self.kernel)

    # ------------------------------------------------------------------

    def _resolve(self, path: str) -> Optional[object]:
        parts = split_path(path)
        if not parts:
            return None
        root = {"proc": self.proc, "sys": self.sys}.get(parts[0])
        if root is None:
            return None
        return root.resolve(parts[1:])

    def lookup(self, path: str) -> PseudoFile:
        """Resolve a path to a file node (no policy applied)."""
        node = self._resolve(path)
        if node is None or not isinstance(node, PseudoFile):
            raise FileNotFoundPseudoError(path)
        return node

    def exists(self, path: str) -> bool:
        """Whether a path resolves (file or directory), pre-policy."""
        return self._resolve(path) is not None

    def read(self, path: str, ctx: Optional[ReadContext] = None) -> str:
        """Read a pseudo-file as the given context.

        Container contexts are filtered through the container's masking
        policy: a DENY rule raises :class:`PermissionDeniedError`, a HIDE
        rule raises :class:`FileNotFoundPseudoError`, and a PARTIAL rule
        substitutes the policy's transformed view.
        """
        if ctx is None:
            ctx = ReadContext(kernel=self.kernel)
        node = self.lookup(path)
        faults = self.kernel.faults
        if faults is not None:
            # transient EIO faults act at the VFS layer, after existence
            # resolution and before policy (every reader sees them)
            faults.check_pseudo_read(self.kernel.clock.now, path)
        if ctx.container is not None:
            policy = ctx.container.policy
            decision = policy.check(path, node)
            if decision.denied:
                raise PermissionDeniedError(path)
            if decision.hidden:
                raise FileNotFoundPseudoError(path)
            if decision.transform is not None:
                return decision.transform(node.read(ctx), ctx)
        return node.read(ctx)

    # ------------------------------------------------------------------

    def walk(self) -> Iterator[Tuple[str, PseudoFile]]:
        """All (path, file) pairs under /proc and /sys, pre-policy."""
        yield from self.proc.walk("/proc")
        yield from self.sys.walk("/sys")

    def walk_visible(self, ctx: ReadContext) -> Iterator[str]:
        """File paths visible to a context (policy HIDEs filtered out).

        DENYed paths remain listed (like a real ``ls`` against an
        AppArmor-masked file) — only HIDEs disappear.
        """
        for path, node in self.walk():
            if ctx.container is not None:
                decision = ctx.container.policy.check(path, node)
                if decision.hidden:
                    continue
            yield path

    def leak_channel_files(self) -> List[Tuple[str, PseudoFile]]:
        """(path, node) for every file tagged with a channel id."""
        return [(path, node) for path, node in self.walk() if node.channel]
