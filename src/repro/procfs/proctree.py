"""Assembly of the ``/proc`` tree for one kernel."""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
from repro.procfs.node import PseudoDir
from repro.procfs.render import proc_core, proc_kernel, proc_net, proc_sys


def build_proc_tree(kernel: "Kernel") -> PseudoDir:
    """Build the ``/proc`` pseudo-tree matching this kernel's hardware."""
    proc = PseudoDir("proc")

    # --- top-level status files (all host-global; Table I rows) ---
    proc.file("uptime", proc_core.render_uptime, channel="proc.uptime")
    proc.file("version", proc_core.render_version, channel="proc.version")
    proc.file("loadavg", proc_core.render_loadavg, channel="proc.loadavg")
    proc.file("stat", proc_core.render_stat, channel="proc.stat")
    proc.file("meminfo", proc_core.render_meminfo, channel="proc.meminfo")
    proc.file("zoneinfo", proc_core.render_zoneinfo, channel="proc.zoneinfo")
    proc.file("cpuinfo", proc_core.render_cpuinfo, channel="proc.cpuinfo")
    proc.file("locks", proc_kernel.render_locks, channel="proc.locks")
    proc.file("modules", proc_kernel.render_modules, channel="proc.modules")
    proc.file("timer_list", proc_kernel.render_timer_list, channel="proc.timer_list")
    proc.file("sched_debug", proc_kernel.render_sched_debug, channel="proc.sched_debug")
    proc.file("schedstat", proc_kernel.render_schedstat, channel="proc.schedstat")
    proc.file("interrupts", proc_kernel.render_interrupts, channel="proc.interrupts")
    proc.file("softirqs", proc_kernel.render_softirqs, channel="proc.softirqs")

    # --- /proc/sys ---
    sys_dir = proc.dir("sys")
    fs_dir = sys_dir.dir("fs")
    fs_dir.file(
        "dentry-state", proc_sys.render_dentry_state, channel="proc.sys.fs.dentry-state"
    )
    fs_dir.file("inode-nr", proc_sys.render_inode_nr, channel="proc.sys.fs.inode-nr")
    fs_dir.file("file-nr", proc_sys.render_file_nr, channel="proc.sys.fs.file-nr")

    kernel_dir = sys_dir.dir("kernel")
    kernel_dir.file(
        "hostname", proc_sys.render_hostname, channel="proc.sys.kernel.hostname",
        namespaced=True,
    )
    kernel_dir.file(
        "ns_last_pid", proc_sys.render_ns_last_pid,
        channel="proc.sys.kernel.ns_last_pid", namespaced=True,
    )
    random_dir = kernel_dir.dir("random")
    random_dir.file(
        "boot_id", proc_sys.render_boot_id, channel="proc.sys.kernel.random.boot_id"
    )
    random_dir.file(
        "entropy_avail",
        proc_sys.render_entropy_avail,
        channel="proc.sys.kernel.random.entropy_avail",
    )
    random_dir.file(
        "poolsize", proc_sys.render_poolsize, channel="proc.sys.kernel.random.poolsize"
    )
    random_dir.file("uuid", proc_sys.render_uuid, channel="proc.sys.kernel.random.uuid")

    sched_domain_dir = kernel_dir.dir("sched_domain")
    for cpu in range(kernel.config.total_cores):
        domain0 = sched_domain_dir.dir(f"cpu{cpu}").dir("domain0")
        for field in ("max_newidle_lb_cost", "min_interval", "max_interval", "name"):
            domain0.file(
                field,
                proc_sys.make_sched_domain_renderer(cpu, field),
                channel="proc.sys.kernel.sched_domain",
            )

    # --- /proc/fs/ext4 ---
    ext4_dir = proc.dir("fs").dir("ext4")
    for disk in kernel.config.disks:
        ext4_dir.dir(disk).file(
            "mb_groups",
            proc_sys.make_mb_groups_renderer(disk),
            channel="proc.fs.ext4.mb_groups",
        )

    # --- correctly namespaced controls ---
    proc.dir("net").file(
        "dev", proc_net.render_net_dev, channel="proc.net.dev", namespaced=True
    )
    proc.dir("self").file(
        "cgroup", proc_net.render_self_cgroup, channel="proc.self.cgroup",
        namespaced=True,
    )

    return proc
