"""Assembly of the ``/sys`` tree for one kernel.

Hardware-dependent subtrees (RAPL, coretemp) are created only when the
host supports them, so provider profiles on pre-Sandy-Bridge or AMD
hardware naturally lack the corresponding channels — matching the "absent
due to hardware" cells of Table I.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.kernel.kernel import Kernel
from repro.procfs.node import PseudoDir
from repro.procfs.render import sys_cgroup, sys_devices, sys_powercap


def build_sys_tree(kernel: "Kernel") -> PseudoDir:
    """Build the ``/sys`` pseudo-tree matching this kernel's hardware."""
    sys_root = PseudoDir("sys")

    # --- /sys/fs/cgroup/net_prio (Case Study I) ---
    net_prio = sys_root.dir("fs").dir("cgroup").dir("net_prio")
    net_prio.file(
        "net_prio.ifpriomap",
        sys_cgroup.render_ifpriomap,
        channel="sys.fs.cgroup.net_prio.ifpriomap",
    )

    # --- /sys/devices/system/node ---
    node_dir = sys_root.dir("devices").dir("system").dir("node")
    for node in kernel.memory.nodes:
        n = node_dir.dir(f"node{node.node_id}")
        n.file(
            "numastat",
            sys_devices.make_numastat_renderer(node.node_id),
            channel="sys.devices.system.node.numastat",
        )
        n.file(
            "meminfo",
            sys_devices.make_node_meminfo_renderer(node.node_id),
            channel="sys.devices.system.node.meminfo",
        )
        n.file(
            "vmstat",
            sys_devices.make_node_vmstat_renderer(node.node_id),
            channel="sys.devices.system.node.vmstat",
        )

    # --- /sys/devices/system/cpu/cpu*/cpuidle ---
    cpu_dir = sys_root.dir("devices").dir("system").dir("cpu")
    for cpu in range(kernel.config.total_cores):
        cpuidle = cpu_dir.dir(f"cpu{cpu}").dir("cpuidle")
        for state_index, state in enumerate(kernel.cpuidle.cpu(cpu).states):
            sdir = cpuidle.dir(f"state{state_index}")
            sdir.file(
                "usage",
                sys_devices.make_cpuidle_renderer(cpu, state_index, "usage"),
                channel="sys.devices.system.cpu.cpuidle.usage",
            )
            sdir.file(
                "time",
                sys_devices.make_cpuidle_renderer(cpu, state_index, "time"),
                channel="sys.devices.system.cpu.cpuidle.time",
            )
            sdir.file(
                "name", sys_devices.make_cpuidle_renderer(cpu, state_index, "name")
            )
            sdir.file(
                "latency",
                sys_devices.make_cpuidle_renderer(cpu, state_index, "latency"),
            )

    # --- /sys/devices/platform/coretemp.0 (DTS, hardware-dependent) ---
    if kernel.config.has_coretemp:
        hwmon = (
            sys_root.dir("devices")
            .dir("platform")
            .dir("coretemp.0")
            .dir("hwmon")
            .dir("hwmon1")
        )
        hwmon.file(
            "temp1_input",
            sys_devices.make_coretemp_renderer(-1, "input"),
            channel="sys.devices.platform.coretemp.temp_input",
        )
        hwmon.file("temp1_label", sys_devices.make_coretemp_renderer(-1, "label"))
        for core in range(kernel.config.total_cores):
            hwmon.file(
                f"temp{core + 2}_input",
                sys_devices.make_coretemp_renderer(core, "input"),
                channel="sys.devices.platform.coretemp.temp_input",
            )
            hwmon.file(
                f"temp{core + 2}_label",
                sys_devices.make_coretemp_renderer(core, "label"),
            )

    # --- /sys/class/powercap/intel-rapl (Case Study II, hw-dependent) ---
    if kernel.rapl.present:
        powercap = sys_root.dir("class").dir("powercap")
        for pkg in kernel.rapl.packages:
            pkg_dir = powercap.dir(pkg.package.sysfs_name)
            _add_rapl_domain(pkg_dir, pkg.package)
            for sub in (pkg.core, pkg.dram):
                sub_dir = pkg_dir.dir(sub.sysfs_name)
                _add_rapl_domain(sub_dir, sub)

    # --- /sys/class/net/<if>/statistics (host device list) ---
    class_net = sys_root.dir("class").dir("net")
    for dev in kernel.netdev.for_each_netdev_init_net():
        stats = class_net.dir(dev.name).dir("statistics")
        for field in ("rx_bytes", "tx_bytes", "rx_packets", "tx_packets"):
            stats.file(
                field,
                sys_powercap.make_netclass_stat_renderer(dev.name, field),
                channel="sys.class.net.statistics",
            )

    return sys_root


def _add_rapl_domain(directory: PseudoDir, domain) -> None:
    directory.file(
        "energy_uj",
        sys_powercap.make_energy_uj_renderer(domain),
        channel="sys.class.powercap.energy_uj",
    )
    directory.file("name", sys_powercap.make_rapl_name_renderer(domain))
    directory.file(
        "max_energy_range_uj", sys_powercap.make_rapl_range_renderer(domain)
    )
