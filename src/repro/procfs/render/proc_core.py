"""Renderers for the core ``/proc`` status files.

Everything in this module renders *host-global* kernel state — none of
these files is namespaced in Linux 4.7, which is why each appears in
Table I (``uptime``, ``version``, ``stat``, ``meminfo``, ``loadavg``,
``cpuinfo``, ``zoneinfo``).
"""

from __future__ import annotations

from repro.procfs.node import ReadContext

#: Linux counts CPU time in USER_HZ ticks (100/s) in /proc/stat
USER_HZ = 100


def render_uptime(ctx: ReadContext) -> str:
    """``/proc/uptime``: seconds since boot and aggregate idle seconds.

    Both fields are accumulated host-global values — the paper uses the
    pair (similar boot time, different idle time) to find distinct servers
    racked at the same moment (Section IV-C).
    """
    k = ctx.kernel
    return f"{k.uptime_seconds:.2f} {k.idle_seconds:.2f}\n"


def render_version(ctx: ReadContext) -> str:
    """``/proc/version``: kernel, gcc, and distribution versions."""
    c = ctx.kernel.config
    # the builder string names the *distro build host*, identical on every
    # machine running the same kernel package — which is why Table II puts
    # /proc/version in the hard-to-exploit group despite it leaking.
    return (
        f"Linux version {c.kernel_version} (buildd@lgw01-amd64-031) "
        f"(gcc version {c.gcc_version} ({c.distribution})) "
        f"{c.kernel_build} {c.distribution}\n"
    )


def render_loadavg(ctx: ReadContext) -> str:
    """``/proc/loadavg``: the three load averages + task counts.

    The trailing ``running/total last_pid`` fields come from the
    *host-global* process table, so even the pid counter leaks host
    process-creation activity.
    """
    k = ctx.kernel
    sched = k.scheduler
    running = sum(
        1
        for t in sched.tasks
        if t.workload is not None and not t.workload.finished and t.workload.demand() > 0.05
    )
    total = len(k.processes)
    last_pid = max((t.pid for t in k.processes), default=1)
    return (
        f"{sched.loadavg_1:.2f} {sched.loadavg_5:.2f} {sched.loadavg_15:.2f} "
        f"{running}/{total} {last_pid}\n"
    )


def render_stat(ctx: ReadContext) -> str:
    """``/proc/stat``: per-CPU time, interrupts, context switches, btime."""
    k = ctx.kernel
    lines = []

    def ticks(ns: int) -> int:
        return int(ns / 1e9 * USER_HZ)

    totals = [0] * 7
    per_cpu_rows = []
    for cpu in range(k.config.total_cores):
        s = k.scheduler.cpu_stats[cpu]
        fields = [
            ticks(s.user_ns),
            0,  # nice
            ticks(s.system_ns),
            ticks(s.idle_ns),
            ticks(s.iowait_ns),
            ticks(s.irq_ns),
            ticks(s.softirq_ns),
        ]
        totals = [a + b for a, b in zip(totals, fields)]
        per_cpu_rows.append(
            f"cpu{cpu} " + " ".join(str(f) for f in fields) + " 0 0 0"
        )
    lines.append("cpu  " + " ".join(str(f) for f in totals) + " 0 0 0")
    lines.extend(per_cpu_rows)

    irq_totals = " ".join(str(ln.total) for ln in k.interrupts.lines)
    lines.append(f"intr {k.interrupts.total_interrupts} {irq_totals}")
    lines.append(f"ctxt {k.scheduler.nr_switches_total}")
    lines.append(f"btime {k.btime}")
    lines.append(f"processes {k.scheduler.total_forks}")
    running = sum(
        1
        for t in k.scheduler.tasks
        if t.workload is not None and not t.workload.finished
    )
    lines.append(f"procs_running {max(1, running)}")
    lines.append("procs_blocked 0")
    softirq_per_type = " ".join(
        str(sum(v)) for v in k.interrupts.softirqs.values()
    )
    lines.append(f"softirq {k.interrupts.total_softirqs} {softirq_per_type}")
    return "\n".join(lines) + "\n"


def render_meminfo(ctx: ReadContext) -> str:
    """``/proc/meminfo``: host-wide memory counters.

    The paper's trace-correlation co-residence check snapshots ``MemFree``
    here once per second from two containers and matches the traces.
    """
    m = ctx.kernel.memory
    active = int(m.task_rss_pages * 0.7 + m.page_cache_pages * 0.4) * 4
    inactive = int(m.task_rss_pages * 0.3 + m.page_cache_pages * 0.6) * 4
    rows = [
        ("MemTotal", m.mem_total_kb),
        ("MemFree", m.mem_free_kb),
        ("MemAvailable", m.mem_available_kb),
        ("Buffers", m.buffers_kb),
        ("Cached", m.cached_kb),
        ("SwapCached", 0),
        ("Active", active),
        ("Inactive", inactive),
        ("SwapTotal", 0),
        ("SwapFree", 0),
        ("Dirty", max(0, m.page_cache_pages // 200) * 4),
        ("Writeback", 0),
        ("AnonPages", m.task_rss_pages * 4),
        ("Mapped", m.task_rss_pages * 4 // 3),
        ("Shmem", 1024),
        ("Slab", m.slab_kb),
        ("KernelStack", 8192),
        ("PageTables", max(1024, m.task_rss_pages // 128) * 4),
        ("CommitLimit", m.mem_total_kb // 2),
        ("VmallocTotal", 34359738367),
    ]
    return "".join(f"{name}:{value:>15} kB\n" for name, value in rows)


def render_zoneinfo(ctx: ReadContext) -> str:
    """``/proc/zoneinfo``: per-node, per-zone page counts and watermarks."""
    m = ctx.kernel.memory
    out = []
    for node in m.nodes:
        for zone in node.zones:
            out.append(f"Node {node.node_id}, zone {zone.name:>8}")
            out.append(f"  pages free     {zone.free_pages}")
            out.append(f"        min      {zone.min_pages}")
            out.append(f"        low      {zone.low_pages}")
            out.append(f"        high     {zone.high_pages}")
            out.append(f"        spanned  {zone.spanned()}")
            out.append(f"        present  {zone.managed_pages}")
            out.append(f"        managed  {zone.managed_pages}")
            out.append(f"    nr_free_pages {zone.free_pages}")
            out.append(f"    numa_hit      {node.numa_hit}")
            out.append(f"    numa_miss     {node.numa_miss}")
            out.append(f"    numa_local    {node.local_node}")
            out.append("  pagesets")
            for cpu, count in sorted(m.pcp_count.items()):
                out.append(f"    cpu: {cpu}")
                out.append(f"              count: {count}")
                out.append("              high:  186")
                out.append("              batch: 31")
    return "\n".join(out) + "\n"


def render_cpuinfo(ctx: ReadContext) -> str:
    """``/proc/cpuinfo``: one block per logical CPU, host hardware."""
    c = ctx.kernel.config
    blocks = []
    for cpu in range(c.total_cores):
        package = cpu // c.cpu.cores
        core_id = cpu % c.cpu.cores
        mhz = c.cpu.frequency_mhz
        blocks.append(
            "\n".join(
                [
                    f"processor\t: {cpu}",
                    f"vendor_id\t: {c.cpu.vendor_id}",
                    f"cpu family\t: {c.cpu.cpu_family}",
                    f"model\t\t: {c.cpu.model}",
                    f"model name\t: {c.cpu.model_name}",
                    f"stepping\t: {c.cpu.stepping}",
                    f"cpu MHz\t\t: {mhz:.3f}",
                    f"cache size\t: {c.cpu.cache_size_kb} KB",
                    f"physical id\t: {package}",
                    f"siblings\t: {c.cpu.cores}",
                    f"core id\t\t: {core_id}",
                    f"cpu cores\t: {c.cpu.cores}",
                    "fpu\t\t: yes",
                    f"bogomips\t: {mhz * 2:.2f}",
                ]
            )
        )
    return "\n\n".join(blocks) + "\n"
