"""Renderers for ``/proc/net/*`` and ``/proc/self/*`` — the *correctly
namespaced* control group.

``/proc/net/dev`` consults the reader's NET namespace and
``/proc/self/cgroup`` the reader's cgroup membership; the cross-validation
detector must classify both as case ① of Figure 1 (private, customized
kernel data), in contrast to the host-global channels.
"""

from __future__ import annotations

from repro.kernel.namespaces import NamespaceType
from repro.procfs.node import ReadContext


def render_net_dev(ctx: ReadContext) -> str:
    """``/proc/net/dev``: device statistics *of the reader's NET namespace*."""
    ns = ctx.namespace(NamespaceType.NET)
    devices = ctx.kernel.netdev.devices_in(ns)
    out = [
        "Inter-|   Receive                                                |  Transmit",
        " face |bytes    packets errs drop fifo frame compressed multicast|bytes    "
        "packets errs drop fifo colls carrier compressed",
    ]
    for dev in devices:
        out.append(
            f"{dev.name:>6}: {dev.rx_bytes:>8} {dev.rx_packets:>7} 0 0 0 0 0 0 "
            f"{dev.tx_bytes:>8} {dev.tx_packets:>7} 0 0 0 0 0 0"
        )
    return "\n".join(out) + "\n"


def render_self_cgroup(ctx: ReadContext) -> str:
    """``/proc/self/cgroup``: the reader's own cgroup memberships.

    With a CGROUP namespace (as Docker sets up), paths are shown relative
    to the container's cgroup, hiding the host hierarchy.
    """
    k = ctx.kernel
    task = ctx.task
    rows = []
    controllers = list(k.cgroups.hierarchies)
    for index, controller in enumerate(reversed(controllers), start=1):
        if task is None:
            # a root shell on the host sits in its systemd session scope
            path = "/user.slice/user-0.slice/session-1.scope"
        else:
            cgroup = k.cgroups.hierarchy(controller).cgroup_of(task)
            path = cgroup.path
            # CGROUP-namespaced readers see their own subtree as "/"
            cgroup_ns = ctx.namespace(NamespaceType.CGROUP)
            ns_root = cgroup_ns.payload.get("root_path")
            if isinstance(ns_root, str) and ns_root != "/":
                if path == ns_root:
                    path = "/"
                elif path.startswith(ns_root + "/"):
                    path = path[len(ns_root):]
        rows.append(f"{index}:{controller}:{path}")
    return "\n".join(rows) + "\n"
