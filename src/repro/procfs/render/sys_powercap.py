"""Renderers for ``/sys/class/powercap/intel-rapl*`` — Case Study II.

``energy_uj`` reads flow through :meth:`repro.kernel.kernel.Kernel.read_energy_uj`,
the seam where the defense's power-based namespace installs its hook. With
no hook (vanilla kernel) every reader receives the host-global MSR-backed
counter: the leak that enables the synergistic power attack.
"""

from __future__ import annotations

from repro.kernel.rapl import RaplDomain
from repro.procfs.node import ReadContext


def make_energy_uj_renderer(domain: RaplDomain):
    """``intel-rapl:*/energy_uj``: the accumulated microjoule counter."""

    def render(ctx: ReadContext) -> str:
        value = ctx.kernel.read_energy_uj(domain, reader=ctx.task)
        return f"{value}\n"

    return render


def make_rapl_name_renderer(domain: RaplDomain):
    """``intel-rapl:*/name``: the domain label (package-0 / core / dram)."""

    def render(ctx: ReadContext) -> str:
        return f"{domain.name}\n"

    return render


def make_rapl_range_renderer(domain: RaplDomain):
    """``intel-rapl:*/max_energy_range_uj``: the counter wrap point."""

    def render(ctx: ReadContext) -> str:
        return f"{domain.max_energy_range_uj}\n"

    return render


def make_netclass_stat_renderer(ifname: str, field: str):
    """``/sys/class/net/<if>/statistics/{rx_bytes,tx_bytes,...}``.

    Rendered from the *host* device list (Table I's ``/sys/class/*`` row):
    the sysfs tree a container sees is the one mounted from the host, so
    host NIC counters leak co-resident traffic volumes.
    """

    def render(ctx: ReadContext) -> str:
        k = ctx.kernel
        dev = k.netdev.device(k.netdev.init_net, ifname)
        value = {
            "rx_bytes": dev.rx_bytes,
            "tx_bytes": dev.tx_bytes,
            "rx_packets": dev.rx_packets,
            "tx_packets": dev.tx_packets,
            "mtu": dev.mtu,
        }[field]
        return f"{value}\n"

    return render
