"""Renderers: kernel state → real-Linux pseudo-file text.

One module per subsystem area. Every renderer takes a
:class:`repro.procfs.node.ReadContext` and returns the file body as a
string; whether it consults the context's namespaces is what decides
whether the corresponding channel leaks.
"""
