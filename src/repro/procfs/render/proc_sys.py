"""Renderers for ``/proc/sys/*`` and ``/proc/fs/ext4/*``.

Covers the sysctl-style channels of Tables I/II: the VFS cache counters
(``dentry-state``, ``inode-nr``, ``file-nr``), the RNG files (``boot_id``,
``entropy_avail``, ``uuid``, ``poolsize``), the per-CPU scheduler-domain
tunables, and the ext4 multiblock-allocator statistics — plus the
*namespaced* ``hostname`` (UTS) used as a correctness control.
"""

from __future__ import annotations

from repro.errors import PseudoFileError
from repro.kernel.namespaces import NamespaceType
from repro.procfs.node import ReadContext


def render_dentry_state(ctx: ReadContext) -> str:
    """``/proc/sys/fs/dentry-state``: host dentry cache counters."""
    return ctx.kernel.filesystem.vfs.dentry_state()


def render_inode_nr(ctx: ReadContext) -> str:
    """``/proc/sys/fs/inode-nr``: host inode counts."""
    return ctx.kernel.filesystem.vfs.inode_nr()


def render_file_nr(ctx: ReadContext) -> str:
    """``/proc/sys/fs/file-nr``: host open-file counts."""
    return ctx.kernel.filesystem.vfs.file_nr()


def render_boot_id(ctx: ReadContext) -> str:
    """``/proc/sys/kernel/random/boot_id``: the per-boot host UUID.

    Static, unique, host-global: the highest-ranked co-residence channel
    in Table II. Two containers reading the same boot_id share a kernel.
    """
    return ctx.kernel.random.boot_id + "\n"


def render_entropy_avail(ctx: ReadContext) -> str:
    """``/proc/sys/kernel/random/entropy_avail``: current pool entropy."""
    return f"{ctx.kernel.random.entropy_avail}\n"


def render_poolsize(ctx: ReadContext) -> str:
    """``/proc/sys/kernel/random/poolsize``: pool capacity (static)."""
    return f"{ctx.kernel.random.POOLSIZE}\n"


def render_uuid(ctx: ReadContext) -> str:
    """``/proc/sys/kernel/random/uuid``: a fresh UUID per read.

    Deliberately useless for co-residence — a control the channel-metric
    machinery must *not* rank as unique-static.
    """
    return ctx.kernel.random.fresh_uuid() + "\n"


def render_hostname(ctx: ReadContext) -> str:
    """``/proc/sys/kernel/hostname``: UTS-namespaced (no leak).

    One of the correctly-namespaced files the cross-validation detector
    must classify as case ① of Figure 1.
    """
    uts = ctx.namespace(NamespaceType.UTS)
    hostname = uts.payload.get("hostname")
    if hostname is None:
        hostname = ctx.kernel.config.hostname
    return f"{hostname}\n"


def render_ns_last_pid(ctx: ReadContext) -> str:
    """``/proc/sys/kernel/ns_last_pid``: PID-namespaced last pid."""
    pid_ns = ctx.namespace(NamespaceType.PID)
    visible = ctx.kernel.processes.tasks_visible_from(pid_ns)
    last = max((t.ns_pids[pid_ns] for t in visible if pid_ns in t.ns_pids), default=0)
    return f"{last}\n"


def make_sched_domain_renderer(cpu: int, field: str):
    """Renderer factory for ``/proc/sys/kernel/sched_domain/cpu<N>/domain0/<field>``."""

    def render(ctx: ReadContext) -> str:
        sched = ctx.kernel.scheduler
        if field == "max_newidle_lb_cost":
            return f"{sched.max_newidle_lb_cost[cpu]}\n"
        if field == "min_interval":
            return "1\n"
        if field == "max_interval":
            return f"{2 * ctx.kernel.config.total_cores}\n"
        if field == "name":
            return "MC\n"
        raise PseudoFileError(f"unknown sched_domain field: {field}")

    return render


def make_mb_groups_renderer(disk: str):
    """Renderer factory for ``/proc/fs/ext4/<disk>/mb_groups``."""

    def render(ctx: ReadContext) -> str:
        fs = ctx.kernel.filesystem.ext4_for(disk)
        out = [
            "#group: free  frags first ["
            " 2^0   2^1   2^2   2^3   2^4   2^5   2^6   2^7   2^8   2^9 "
            " 2^10  2^11  2^12  2^13 ]"
        ]
        for g in fs.groups:
            buddy = "  ".join(f"{b:>4}" for b in g.buddy)
            out.append(
                f"#{g.group:<5}: {g.free_blocks:<5} {g.fragments:<5} "
                f"{g.first_free:<5} [ {buddy} ]"
            )
        return "\n".join(out) + "\n"

    return render
