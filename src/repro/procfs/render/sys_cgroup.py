"""Renderer for ``/sys/fs/cgroup/net_prio/net_prio.ifpriomap`` —
the paper's Case Study I.

The real kernel bug: ``read_priomap`` iterates ``for_each_netdev_rcu``
starting from ``&init_net``, i.e. the *root* NET namespace, instead of the
reader's. The renderer below reproduces that call chain faithfully: it
takes the reader's *cgroup* (for the priority values) but the *host's*
device list (the leak) — so a container that only owns ``lo``/``eth0``
reads the names of every physical interface on the machine.
"""

from __future__ import annotations

from repro.kernel.cgroups import NetPrioState
from repro.procfs.node import ReadContext


def render_ifpriomap(ctx: ReadContext) -> str:
    """``net_prio.ifpriomap``: ``<ifname> <priority>`` per host device."""
    k = ctx.kernel
    if ctx.task is not None:
        cgroup = k.cgroups.hierarchy("net_prio").cgroup_of(ctx.task)
    else:
        cgroup = k.cgroups.hierarchy("net_prio").root
    state = cgroup.state
    assert isinstance(state, NetPrioState)

    # BUG (reproduced deliberately): device iteration ignores the reader's
    # NET namespace and walks init_net — for_each_netdev_rcu(&init_net).
    devices = k.netdev.for_each_netdev_init_net()
    return "".join(
        f"{dev.name} {state.prios.get(dev.name, 0)}\n" for dev in devices
    )


def render_ifpriomap_fixed(ctx: ReadContext) -> str:
    """The *patched* handler: iterate the reader's NET namespace.

    Used by the stage-2 defense tests to show what the namespace-aware fix
    changes: a container sees only its own veth pair.
    """
    from repro.kernel.namespaces import NamespaceType

    k = ctx.kernel
    if ctx.task is not None:
        cgroup = k.cgroups.hierarchy("net_prio").cgroup_of(ctx.task)
    else:
        cgroup = k.cgroups.hierarchy("net_prio").root
    state = cgroup.state
    assert isinstance(state, NetPrioState)
    devices = k.netdev.devices_in(ctx.namespace(NamespaceType.NET))
    return "".join(
        f"{dev.name} {state.prios.get(dev.name, 0)}\n" for dev in devices
    )
