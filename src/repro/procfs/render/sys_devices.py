"""Renderers for ``/sys/devices/*``: NUMA node statistics, cpuidle state
residency, and coretemp sensors.

All host-global (Table I's ``/sys/devices/*`` row): per-node ``numastat`` /
``vmstat`` / ``meminfo``, per-CPU ``cpuidle/state*/{usage,time}``, and the
DTS ``temp*_input`` millidegree files.
"""

from __future__ import annotations

from repro.procfs.node import ReadContext


def make_numastat_renderer(node_id: int):
    """``/sys/devices/system/node/node<N>/numastat``."""

    def render(ctx: ReadContext) -> str:
        node = ctx.kernel.memory.node(node_id)
        return (
            f"numa_hit {node.numa_hit}\n"
            f"numa_miss {node.numa_miss}\n"
            f"numa_foreign {node.numa_foreign}\n"
            f"interleave_hit {node.interleave_hit}\n"
            f"local_node {node.local_node}\n"
            f"other_node {node.other_node}\n"
        )

    return render


def make_node_meminfo_renderer(node_id: int):
    """``/sys/devices/system/node/node<N>/meminfo``."""

    def render(ctx: ReadContext) -> str:
        m = ctx.kernel.memory
        node = m.node(node_id)
        total_kb = node.total_pages * 4
        free_kb = node.free_pages * 4
        n = node_id
        return (
            f"Node {n} MemTotal:       {total_kb} kB\n"
            f"Node {n} MemFree:        {free_kb} kB\n"
            f"Node {n} MemUsed:        {total_kb - free_kb} kB\n"
            f"Node {n} Active:         {int((total_kb - free_kb) * 0.6)} kB\n"
            f"Node {n} Inactive:       {int((total_kb - free_kb) * 0.3)} kB\n"
            f"Node {n} Dirty:          64 kB\n"
            f"Node {n} FilePages:      {m.cached_kb // max(1, len(m.nodes))} kB\n"
            f"Node {n} AnonPages:      {m.task_rss_pages * 4 // max(1, len(m.nodes))} kB\n"
        )

    return render


def make_node_vmstat_renderer(node_id: int):
    """``/sys/devices/system/node/node<N>/vmstat``."""

    def render(ctx: ReadContext) -> str:
        m = ctx.kernel.memory
        node = m.node(node_id)
        pcp_total = sum(m.pcp_count.values())
        return (
            f"nr_free_pages {node.free_pages}\n"
            f"nr_alloc_batch 63\n"
            f"nr_dirty {max(0, m.page_cache_pages // 197)}\n"
            f"nr_pcp_free {pcp_total}\n"
            f"nr_inactive_anon {int(node.total_pages * 0.01)}\n"
            f"nr_active_anon {int((node.total_pages - node.free_pages) * 0.5)}\n"
            f"nr_inactive_file {int((node.total_pages - node.free_pages) * 0.2)}\n"
            f"nr_active_file {int((node.total_pages - node.free_pages) * 0.15)}\n"
            f"numa_hit {node.numa_hit}\n"
            f"numa_miss {node.numa_miss}\n"
            f"numa_local {node.local_node}\n"
            f"numa_other {node.other_node}\n"
        )

    return render


def make_cpuidle_renderer(cpu: int, state_index: int, field: str):
    """``/sys/devices/system/cpu/cpu<C>/cpuidle/state<S>/<field>``."""

    def render(ctx: ReadContext) -> str:
        state = ctx.kernel.cpuidle.cpu(cpu).states[state_index]
        if field == "usage":
            return f"{state.usage}\n"
        if field == "time":
            return f"{state.time_us}\n"
        if field == "name":
            return f"{state.name}\n"
        if field == "latency":
            return f"{state.latency_us}\n"
        raise AssertionError(f"unknown cpuidle field: {field}")

    return render


def make_coretemp_renderer(core: int, field: str):
    """``/sys/devices/platform/coretemp.0/hwmon/hwmon1/temp<N>_<field>``.

    ``temp1_*`` is the package sensor; ``temp<N>_*`` for N >= 2 maps to
    core N-2, following the real coretemp numbering.
    """

    def render(ctx: ReadContext) -> str:
        thermal = ctx.kernel.thermal
        if field == "label":
            if core < 0:
                return "Package id 0\n"
            return f"Core {core}\n"
        if core < 0:
            return f"{int(thermal.package_temp() * 1000)}\n"
        return f"{thermal.sensor(core).millidegrees}\n"

    return render
