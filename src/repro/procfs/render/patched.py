"""Namespace-aware (patched) renderers for the implantation channels.

These are the stage-2 "fix missing namespace context checks" handlers
(Section V-A): the same files, rendered against the *reader's* PID
namespace instead of the global tables. The paper reported these
disclosure bugs to the kernel maintainers, who "quickly released a new
patch for one of the problems ([CVE-2017-5967])" — the timer_list fix.

Each patched renderer filters table entries to tasks visible from the
reading process's PID namespace and translates pids into that namespace,
which is exactly what upstream namespace-aware ``/proc`` handlers do.
"""

from __future__ import annotations

from typing import Optional

from repro.kernel.namespaces import NamespaceType
from repro.procfs.node import ReadContext


def _visible_pid(ctx: ReadContext, host_pid: int) -> Optional[int]:
    """The pid as the reader sees it, or None if outside the reader's ns."""
    pid_ns = ctx.namespace(NamespaceType.PID)
    try:
        task = ctx.kernel.processes.get(host_pid)
    except Exception:
        return None
    return task.pid_in(pid_ns)


def render_timer_list_patched(ctx: ReadContext) -> str:
    """The CVE-2017-5967-class fix: only the reader's namespace's timers."""
    k = ctx.kernel
    out = [
        "Timer List Version: v0.8",
        "HRTIMER_MAX_CLOCK_BASES: 4",
        f"now at {k.timers.now_ns} nsecs",
        "",
    ]
    for cpu in range(k.config.total_cores):
        out.append(f"cpu: {cpu}")
        out.append(" clock 0:")
        out.append("  active timers:")
        index = 0
        for entry in k.timers.entries_on_cpu(cpu):
            ns_pid = _visible_pid(ctx, entry.host_pid)
            if ns_pid is None:
                continue  # foreign namespace: hidden, as the patch does
            out.append(f" #{index}: <0000000000000000>, {entry.function}, S:01")
            out.append(
                f" # expires at {entry.expires_ns}-{entry.expires_ns} nsecs, "
                f"{entry.task_name}/{ns_pid}"
            )
            index += 1
        out.append("")
    return "\n".join(out) + "\n"


def render_locks_patched(ctx: ReadContext) -> str:
    """/proc/locks filtered to locks held by namespace-visible tasks."""
    k = ctx.kernel
    rows = []
    for entry in k.locks.entries:
        ns_pid = _visible_pid(ctx, entry.host_pid)
        if ns_pid is None:
            continue
        end = "EOF" if entry.end is None else str(entry.end)
        rows.append(
            f"{entry.lock_id}: {entry.lock_type}  {entry.mode}  {entry.access} "
            f"{ns_pid} 08:01:{entry.inode} {entry.start} {end}"
        )
    return "".join(row + "\n" for row in rows)


def render_sched_debug_patched(ctx: ReadContext) -> str:
    """/proc/sched_debug restricted to the reader's PID namespace."""
    k = ctx.kernel
    pid_ns = ctx.namespace(NamespaceType.PID)
    out = [
        "Sched Debug Version: v0.11, " + k.config.kernel_version,
        f"ktime                                   : {k.timers.now_ns / 1e6:.6f}",
        "",
    ]
    for cpu in range(k.config.total_cores):
        tasks = [
            t
            for t in k.scheduler.tasks_on_cpu(cpu)
            if t.workload is not None
            and not t.workload.finished
            and t.visible_from(pid_ns)
        ]
        out.append(f"cpu#{cpu}")
        out.append(f"  .nr_running                    : {len(tasks)}")
        out.append("runnable tasks:")
        for t in tasks:
            out.append(
                f"{t.name:>16} {t.pid_in(pid_ns):>5} "
                f"{t.vruntime_ns / 1e6:>16.6f}"
            )
        out.append("")
    return "\n".join(out) + "\n"
