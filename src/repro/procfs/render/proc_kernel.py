"""Renderers for ``/proc``'s kernel-event tables: the scheduler debug
files, timers, locks, interrupts, softirqs, and modules.

``sched_debug``, ``timer_list``, and ``locks`` are the paper's signature
*implantation* channels (Table II, M=filled): they print host-global tables
keyed by task name / host pid, so a tenant's crafted entry is readable by
every other container.
"""

from __future__ import annotations

from repro.procfs.node import ReadContext


def render_sched_debug(ctx: ReadContext) -> str:
    """``/proc/sched_debug``: per-CPU runqueues with *all* host tasks.

    Every active process on the machine appears here with its command name
    and host pid, regardless of the reader's PID namespace.
    """
    k = ctx.kernel
    out = [
        "Sched Debug Version: v0.11, " + k.config.kernel_version,
        f"ktime                                   : {k.timers.now_ns / 1e6:.6f}",
        f"jiffies                                 : {k.timers.jiffies}",
        "",
    ]
    for cpu in range(k.config.total_cores):
        tasks = [
            t
            for t in k.scheduler.tasks_on_cpu(cpu)
            if t.workload is not None and not t.workload.finished
        ]
        stat = k.scheduler.cpu_stats[cpu]
        out.append(f"cpu#{cpu}, {k.config.cpu.frequency_mhz:.3f} MHz")
        out.append(f"  .nr_running                    : {len(tasks)}")
        out.append(f"  .nr_switches                   : {stat.nr_switches}")
        out.append(f"  .nr_load_updates               : {stat.timeslices}")
        out.append(f"  .curr->pid                     : {tasks[0].pid if tasks else 0}")
        out.append("")
        out.append("runnable tasks:")
        out.append(
            "            task   PID         tree-key  switches  prio"
            "     wait-time             sum-exec        sum-sleep"
        )
        out.append("-" * 95)
        for t in tasks:
            out.append(
                f"{t.name:>16} {t.pid:>5} {t.vruntime_ns / 1e6:>16.6f} "
                f"{t.nvcsw + t.nivcsw:>9} {120:>5} "
                f"{0.0:>13.6f} {t.cpu_time_ns / 1e6:>16.6f} {0.0:>16.6f}"
            )
        out.append("")
    return "\n".join(out) + "\n"


def render_schedstat(ctx: ReadContext) -> str:
    """``/proc/schedstat``: cumulative scheduler statistics per CPU."""
    k = ctx.kernel
    out = ["version 15", f"timestamp {k.timers.jiffies}"]
    for cpu in range(k.config.total_cores):
        s = k.scheduler.cpu_stats[cpu]
        run_ns = s.user_ns + s.system_ns
        out.append(
            f"cpu{cpu} 0 0 0 0 0 0 {run_ns} {s.wait_ns} {s.timeslices}"
        )
        out.append("domain0 ff 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0 0")
    return "\n".join(out) + "\n"


def render_timer_list(ctx: ReadContext) -> str:
    """``/proc/timer_list``: every armed hrtimer with owner ``comm/pid``."""
    k = ctx.kernel
    out = [
        "Timer List Version: v0.8",
        "HRTIMER_MAX_CLOCK_BASES: 4",
        f"now at {k.timers.now_ns} nsecs",
        "",
    ]
    for cpu in range(k.config.total_cores):
        out.append(f"cpu: {cpu}")
        out.append(" clock 0:")
        out.append("  .base:       ffff88021eb0c9c0")
        out.append("  .index:      0")
        out.append("  .resolution: 1 nsecs")
        out.append("  active timers:")
        for i, entry in enumerate(k.timers.entries_on_cpu(cpu)):
            out.append(
                f" #{i}: <0000000000000000>, {entry.function}, S:01"
            )
            out.append(
                f" # expires at {entry.expires_ns}-{entry.expires_ns} nsecs "
                f"[in {entry.expires_ns - k.timers.now_ns} to "
                f"{entry.expires_ns - k.timers.now_ns} nsecs], "
                f"{entry.owner_label()}"
            )
        out.append("")
    return "\n".join(out) + "\n"


def render_locks(ctx: ReadContext) -> str:
    """``/proc/locks``: the host-global file-lock table."""
    k = ctx.kernel
    return "".join(entry.render() + "\n" for entry in k.locks.entries)


def render_modules(ctx: ReadContext) -> str:
    """``/proc/modules``: loaded modules (static, host-global)."""
    k = ctx.kernel
    base = 0xFFFFFFFFC0000000
    out = []
    for i, module in enumerate(k.modules.modules):
        out.append(module.render(base + i * 0x4000))
    return "\n".join(out) + "\n"


def render_interrupts(ctx: ReadContext) -> str:
    """``/proc/interrupts``: per-IRQ, per-CPU counters."""
    k = ctx.kernel
    ncpus = k.config.total_cores
    header = " " * 11 + "".join(f"CPU{c:<11}" for c in range(ncpus))
    out = [header.rstrip()]
    for irq, counts, desc in k.interrupts.rows():
        row = f"{irq:>4}: " + "".join(f"{c:>10} " for c in counts) + f"  {desc}"
        out.append(row.rstrip())
    return "\n".join(out) + "\n"


def render_softirqs(ctx: ReadContext) -> str:
    """``/proc/softirqs``: per-type, per-CPU softirq counts."""
    k = ctx.kernel
    ncpus = k.config.total_cores
    header = " " * 10 + "".join(f"CPU{c:<11}" for c in range(ncpus))
    out = [header.rstrip()]
    for name, counts in k.interrupts.softirqs.items():
        row = f"{name + ':':>10}" + "".join(f"{c:>11}" for c in counts)
        out.append(row)
    return "\n".join(out) + "\n"
