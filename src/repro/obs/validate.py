"""Chrome-trace schema validator, runnable as a module.

CI's trace-smoke job runs ``python -m repro.obs.validate trace.json``
after a short ``repro trace fleet`` run: exit 0 with a one-line summary
when the file is structurally valid ``trace_event`` JSON, exit 1 with
the schema violation otherwise.
"""

from __future__ import annotations

import json
import sys

from repro.obs.export import validate_chrome_trace


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    if len(argv) != 1:
        print("usage: python -m repro.obs.validate <trace.json>", file=sys.stderr)
        return 2
    path = argv[0]
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable trace: {exc}", file=sys.stderr)
        return 1
    try:
        counts = validate_chrome_trace(data)
    except ValueError as exc:
        print(f"{path}: invalid Chrome trace: {exc}", file=sys.stderr)
        return 1
    print(
        f"{path}: valid Chrome trace — {counts['spans']} spans,"
        f" {counts['instants']} instants, {counts['tracks']} tracks,"
        f" {counts['metadata']} metadata events"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
