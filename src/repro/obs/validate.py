"""Observability artifact validator, runnable as a module.

CI's trace-smoke and ops-smoke jobs run it after short fleet runs::

    python -m repro.obs.validate trace.json
    python -m repro.obs.validate --metrics ops/metrics.jsonl --spill ops/spill

Positional arguments are Chrome ``trace_event`` JSON exports;
``--metrics`` validates an ops metrics JSONL stream (strictly monotone
``t``/``seq``); ``--spill`` validates a trace spill segment directory.
Exit 0 with one summary line per artifact when everything is valid,
exit 1 with the violation otherwise. A trace whose health metadata
shows rings dropped events *without* spill enabled still validates
(the export is well-formed) but prints a warning to stderr — the
merged timeline is incomplete and ``--spill-dir`` would have kept it.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.obs.export import lossy_processes, validate_chrome_trace


def _validate_trace(path: str) -> int:
    try:
        with open(path) as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"{path}: unreadable trace: {exc}", file=sys.stderr)
        return 1
    try:
        counts = validate_chrome_trace(data)
    except ValueError as exc:
        print(f"{path}: invalid Chrome trace: {exc}", file=sys.stderr)
        return 1
    line = (
        f"{path}: valid Chrome trace — {counts['spans']} spans,"
        f" {counts['instants']} instants, {counts['tracks']} tracks,"
        f" {counts['metadata']} metadata events"
    )
    if counts.get("spilled_events"):
        line += f", {counts['spilled_events']} events stitched from spill"
    print(line)
    lossy = lossy_processes(data)
    if lossy:
        print(
            f"{path}: warning: ring(s) dropped"
            f" {counts.get('dropped_events', 0)} event(s) without spill"
            f" enabled ({', '.join(lossy)}) — the merged timeline is"
            " incomplete; enable trace spill to keep evicted events",
            file=sys.stderr,
        )
    return 0


def _validate_metrics(path: str) -> int:
    from repro.obs.ops import validate_metrics_stream

    try:
        summary = validate_metrics_stream(path)
    except (OSError, ValueError) as exc:
        print(f"{path}: invalid metrics stream: {exc}", file=sys.stderr)
        return 1
    if not summary["records"]:
        print(f"{path}: invalid metrics stream: no records", file=sys.stderr)
        return 1
    print(
        f"{path}: valid metrics stream — {summary['records']} record(s),"
        f" t={summary['t_first']:.6g}..{summary['t_last']:.6g}s"
    )
    return 0


def _validate_spill(directory: str) -> int:
    from repro.obs.spill import validate_spill_dir

    try:
        summary = validate_spill_dir(directory)
    except (OSError, ValueError) as exc:
        print(f"{directory}: invalid spill directory: {exc}", file=sys.stderr)
        return 1
    print(
        f"{directory}: valid spill directory — {summary['segments']}"
        f" segment(s), {summary['deduped_events']} event(s)"
        f" ({summary['torn_lines']} torn line(s) healed),"
        f" processes: {', '.join(summary['processes']) or '(none)'}"
    )
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.validate",
        description="validate observability artifacts (traces, ops streams)",
    )
    parser.add_argument("traces", nargs="*", help="Chrome trace JSON export(s)")
    parser.add_argument(
        "--metrics", action="append", default=[], metavar="PATH",
        help="ops metrics JSONL stream to validate",
    )
    parser.add_argument(
        "--spill", action="append", default=[], metavar="DIR",
        help="trace spill segment directory to validate",
    )
    args = parser.parse_args(argv)
    if not args.traces and not args.metrics and not args.spill:
        parser.print_usage(sys.stderr)
        return 2
    rc = 0
    for path in args.traces:
        rc = max(rc, _validate_trace(path))
    for path in args.metrics:
        rc = max(rc, _validate_metrics(path))
    for directory in args.spill:
        rc = max(rc, _validate_spill(directory))
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
