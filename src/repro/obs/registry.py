"""Typed metric instruments behind one process-local registry.

The registry is the single source of truth for numeric instrumentation:
monotonic :class:`Counter` totals, last-value :class:`Gauge` readings,
and fixed-bucket :class:`Histogram` distributions. Instruments are
identified by ``(name, labels)`` so one name can fan out over label sets
(``subsystem.wall_s{subsystem=scheduler}``) while queries and exports see
one coherent namespace.

Hot-path economics drive the design: ``counter()`` is a get-or-create
you call once at wiring time, after which updates are plain attribute
arithmetic on the returned instrument (``c.value += 1`` — exactly what
the pre-registry dataclass fields cost). Nothing here locks; a registry
belongs to one process, and cross-process aggregation happens at the
facade layer (``IpcMetrics`` et al.) like before.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import Dict, Iterable, Optional, Tuple

LabelKey = Tuple[Tuple[str, object], ...]

#: default histogram bucket upper bounds (seconds-flavoured, generic)
DEFAULT_BOUNDS = (0.001, 0.01, 0.1, 1.0, 10.0, 100.0, 1000.0)


def _label_key(labels: Dict[str, object]) -> LabelKey:
    return tuple(sorted(labels.items()))


def qualify(name: str, labels: LabelKey) -> str:
    """Render ``name{k=v,...}`` for display and export keys."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Instrument:
    """Common identity for registry instruments."""

    kind = "instrument"
    __slots__ = ("name", "description", "labels")

    def __init__(self, name: str, description: str, labels: LabelKey):
        self.name = name
        self.description = description
        self.labels = labels

    @property
    def qualified_name(self) -> str:
        return qualify(self.name, self.labels)


class Counter(Instrument):
    """A monotonically accumulated total (int or float).

    ``value`` is a plain attribute on purpose: hot loops bump it with
    ``c.value += n`` at dataclass-field cost. ``inc`` is the readable
    spelling for cold paths.
    """

    kind = "counter"
    __slots__ = ("value",)

    def __init__(self, name: str, description: str, labels: LabelKey):
        super().__init__(name, description, labels)
        self.value = 0

    def inc(self, amount=1) -> None:
        self.value += amount


class Gauge(Instrument):
    """A last-written point-in-time value."""

    kind = "gauge"
    __slots__ = ("value",)

    def __init__(self, name: str, description: str, labels: LabelKey):
        super().__init__(name, description, labels)
        self.value = 0

    def set(self, value) -> None:
        self.value = value


class Histogram(Instrument):
    """A fixed-bucket distribution with running count/sum/min/max.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the implicit overflow bucket. Bucket placement is a
    single ``bisect`` — cheap enough for per-tick observation.
    """

    kind = "histogram"
    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(
        self,
        name: str,
        description: str,
        labels: LabelKey,
        bounds: Tuple[float, ...] = DEFAULT_BOUNDS,
    ):
        super().__init__(name, description, labels)
        self.bounds = tuple(bounds)
        self.bucket_counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        self.bucket_counts[bisect_right(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile by linear interpolation in buckets.

        Each bucket's mass is assumed uniform between its edges; the
        first populated bucket's lower edge is the observed ``min`` and
        the overflow bucket's upper edge is the observed ``max``, so the
        estimate is always within ``[min, max]``. Returns 0.0 when the
        histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1]: {q}")
        if not self.count:
            return 0.0
        target = q * self.count
        cumulative = 0
        for i, n in enumerate(self.bucket_counts):
            if not n:
                continue
            lo = self.min if i == 0 else max(self.bounds[i - 1], self.min)
            hi = self.max if i == len(self.bounds) else min(self.bounds[i], self.max)
            if hi < lo:
                hi = lo
            if cumulative + n >= target:
                return lo + (hi - lo) * ((target - cumulative) / n)
            cumulative += n
        return self.max


class MetricRegistry:
    """Process-local instrument store with get-or-create semantics.

    Re-requesting an instrument with the same ``(name, labels)`` returns
    the existing one; requesting it as a different kind raises, so two
    subsystems cannot silently alias a counter as a gauge.
    """

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelKey], Instrument] = {}

    def _get_or_create(self, cls, name: str, description: str, labels, **kwargs):
        key = (name, _label_key(labels))
        existing = self._instruments.get(key)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"instrument {qualify(*key)!r} already registered as"
                    f" {existing.kind}, requested as {cls.kind}"
                )
            return existing
        instrument = cls(name, description, key[1], **kwargs)
        self._instruments[key] = instrument
        return instrument

    def counter(self, name: str, description: str = "", **labels) -> Counter:
        return self._get_or_create(Counter, name, description, labels)

    def gauge(self, name: str, description: str = "", **labels) -> Gauge:
        return self._get_or_create(Gauge, name, description, labels)

    def histogram(
        self,
        name: str,
        description: str = "",
        bounds: Tuple[float, ...] = DEFAULT_BOUNDS,
        **labels,
    ) -> Histogram:
        return self._get_or_create(
            Histogram, name, description, labels, bounds=bounds
        )

    def instruments(self) -> Iterable[Instrument]:
        """All instruments, sorted by qualified name (stable output)."""
        return sorted(
            self._instruments.values(), key=lambda i: i.qualified_name
        )

    def get(self, name: str, **labels) -> Optional[Instrument]:
        return self._instruments.get((name, _label_key(labels)))

    def snapshot(self) -> Dict[str, object]:
        """Qualified name -> value (histograms as summary dicts)."""
        out: Dict[str, object] = {}
        for inst in self.instruments():
            if isinstance(inst, Histogram):
                out[inst.qualified_name] = {
                    "count": inst.count,
                    "sum": inst.sum,
                    "min": inst.min if inst.count else None,
                    "max": inst.max if inst.count else None,
                    "mean": inst.mean,
                    "buckets": {
                        (f"le_{b}" if i < len(inst.bounds) else "overflow"): n
                        for i, (b, n) in enumerate(
                            zip(
                                list(inst.bounds) + [None],
                                inst.bucket_counts,
                            )
                        )
                    },
                }
            else:
                out[inst.qualified_name] = inst.value
        return out

    def render(self) -> str:
        """Human-readable table of every instrument's current value."""
        insts = list(self.instruments())
        if not insts:
            return "(no instruments registered)"
        lines = []
        width = max(len(i.qualified_name) for i in insts)
        for inst in insts:
            if isinstance(inst, Histogram):
                if inst.count:
                    value = (
                        f"count {inst.count}  sum {inst.sum:.6g}"
                        f"  mean {inst.mean:.6g}"
                        f"  min {inst.min:.6g}  max {inst.max:.6g}"
                        f"  p50 {inst.quantile(0.5):.6g}"
                        f"  p90 {inst.quantile(0.9):.6g}"
                        f"  p99 {inst.quantile(0.99):.6g}"
                    )
                else:
                    value = "count 0"
            elif isinstance(inst.value, float):
                value = f"{inst.value:.6g}"
            else:
                value = str(inst.value)
            lines.append(
                f"{inst.qualified_name:<{width}}  [{inst.kind}] {value}"
            )
        return "\n".join(lines)
