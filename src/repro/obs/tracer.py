"""Low-overhead span tracing over simulated and wall time.

Every participating process (the driver, each shard worker) owns one
:class:`SpanTracer` bound to its local virtual clock. Spans record the
sim-time interval they covered plus the wall seconds they cost; instant
events mark points (fault injections). Events land in a bounded ring
buffer — a stalled consumer costs memory-bounded droppage, never a
blocked simulation.

Shard workers :meth:`drain` their buffers into control-frame replies at
every barrier, and the driver :meth:`ingest` s them, so after a run the
driver's :meth:`timeline` is one globally clock-aligned event sequence
(all shards share the lock-stepped virtual clock; wall times remain
per-process and are carried as annotations only).

Determinism contract: span sim-times come from the virtual clock, so a
serial run and a ``--parallel`` run of the same campaign produce
bit-identical ``(track, name, t0, t1)`` sequences on the mode-independent
tracks (``driver``/``fault``/``attack``/``defense``). Tests pin this.

Disabled-path cost: call sites hold ``tracer is None`` (tracing never
enabled) or check ``tracer.enabled`` before composing attrs; a disabled
tracer's :meth:`span` returns the shared :data:`NULL_SPAN` context
manager without allocating. ``benchmarks/bench_obs_overhead.py`` gates
the residual overhead.
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, List, NamedTuple, Optional, Tuple

#: event kinds
SPAN = "span"
INSTANT = "instant"

#: default per-process ring capacity (events)
DEFAULT_CAPACITY = 65536


class TraceEvent(NamedTuple):
    """One trace record; picklable (rides control-frame replies).

    ``t0``/``t1`` are virtual-clock seconds (equal for instants);
    ``wall_s`` is the process-local wall cost; ``attrs`` is a sorted
    tuple of ``(key, value)`` pairs; ``seq`` orders same-time events
    from one process.
    """

    kind: str
    name: str
    track: str
    t0: float
    t1: float
    wall_s: float
    attrs: Tuple[Tuple[str, object], ...]
    seq: int


class _NullSpan:
    """Shared no-op context manager for the disabled path."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()


class _Span:
    """Active span: captures sim/wall clocks on enter, records on exit."""

    __slots__ = ("_tracer", "_name", "_track", "_attrs", "_t0", "_w0")

    def __init__(self, tracer: "SpanTracer", name: str, track: str, attrs):
        self._tracer = tracer
        self._name = name
        self._track = track
        self._attrs = attrs

    def __enter__(self):
        self._t0 = self._tracer.now_fn()
        self._w0 = time.perf_counter()
        return self

    def __exit__(self, *exc):
        tracer = self._tracer
        tracer.add_span(
            self._name,
            self._t0,
            tracer.now_fn(),
            time.perf_counter() - self._w0,
            track=self._track,
            _attrs=self._attrs,
        )
        return False


def _freeze_attrs(attrs: dict) -> Tuple[Tuple[str, object], ...]:
    return tuple(sorted(attrs.items())) if attrs else ()


class SpanTracer:
    """Per-process trace event collector with a bounded ring buffer."""

    def __init__(
        self,
        now_fn: Callable[[], float],
        track: str = "driver",
        capacity: int = DEFAULT_CAPACITY,
        enabled: bool = True,
    ):
        if capacity < 1:
            raise ValueError(f"tracer capacity must be positive: {capacity}")
        self.now_fn = now_fn
        self.track = track
        self.capacity = capacity
        #: master switch; when False every entry point is a cheap no-op
        self.enabled = enabled
        #: own events (ring buffer; ``_head`` = oldest index once full)
        self._events: List[TraceEvent] = []
        self._head = 0
        #: events evicted by ring wraparound and lost (per process)
        self.dropped = 0
        #: events evicted but rotated to a disk segment instead of lost
        self.spilled = 0
        #: spill segment directory (None = overflow drops events)
        self.spill_dir: Optional[str] = None
        self._spill = None
        self._seq = 0
        #: events merged from other processes (driver side)
        self._ingested: List[TraceEvent] = []

    def enable_spill(self, directory: str) -> None:
        """Rotate ring-evicted events into JSONL segments in ``directory``.

        Idempotent for the same directory; a tracer spills to one
        directory for its whole life (respawned incarnations open new
        segments there — see :mod:`repro.obs.spill`). The segment label
        is this tracer's own ``track``, which identifies the owning
        process even for events recorded onto shared tracks.
        """
        from repro.obs.spill import SpillWriter

        if self.spill_dir is not None:
            if self.spill_dir == directory:
                return
            raise ValueError(
                f"tracer already spills to {self.spill_dir!r}, not {directory!r}"
            )
        self.spill_dir = directory
        self._spill = SpillWriter(directory, self.track)

    def close_spill(self) -> None:
        """Close the spill segment file handle (spill stays enabled)."""
        if self._spill is not None:
            self._spill.close()

    # ------------------------------------------------------------- record

    def span(self, name: str, track: Optional[str] = None, **attrs):
        """Context manager recording a sim+wall interval on exit."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name, track or self.track, _freeze_attrs(attrs))

    def add_span(
        self,
        name: str,
        t0: float,
        t1: float,
        wall_s: float,
        track: Optional[str] = None,
        _attrs: Tuple[Tuple[str, object], ...] = (),
        **attrs,
    ) -> None:
        """Record a completed span directly (loop-friendly, no manager)."""
        if not self.enabled:
            return
        self._record(
            TraceEvent(
                SPAN,
                name,
                track or self.track,
                t0,
                t1,
                wall_s,
                _attrs if _attrs else _freeze_attrs(attrs),
                self._seq,
            )
        )

    def instant(
        self,
        name: str,
        at: Optional[float] = None,
        track: Optional[str] = None,
        **attrs,
    ) -> None:
        """Record a point event (fault markers etc.) at sim time ``at``."""
        if not self.enabled:
            return
        t = self.now_fn() if at is None else at
        self._record(
            TraceEvent(
                INSTANT,
                name,
                track or self.track,
                t,
                t,
                0.0,
                _freeze_attrs(attrs),
                self._seq,
            )
        )

    def _record(self, event: TraceEvent) -> None:
        self._seq += 1
        if len(self._events) < self.capacity:
            self._events.append(event)
            return
        evicted = self._events[self._head]
        self._events[self._head] = event
        self._head = (self._head + 1) % self.capacity
        if self._spill is not None:
            self._spill.write(evicted)
            self.spilled += 1
        else:
            self.dropped += 1

    # --------------------------------------------------------- checkpoint

    def counters(self) -> Tuple[int, int, int]:
        """``(seq, dropped, spilled)`` for shard snapshots.

        A restored shard rebuilds its tracer fresh (the ``now_fn``
        closure over the restored clock cannot be pickled) but must keep
        numbering events where the dead worker left off: ``seq`` breaks
        timeline sort ties, so a replayed worker whose counters restart
        at zero would order re-drained events differently than the
        uninterrupted run. ``spilled`` continues likewise so replayed
        re-spills (deduped on read) don't inflate the accounting.
        """
        return (self._seq, self.dropped, self.spilled)

    def restore_counters(self, seq: int, dropped: int, spilled: int = 0) -> None:
        """Restore :meth:`counters` into a freshly built tracer."""
        self._seq = seq
        self.dropped = dropped
        self.spilled = spilled

    def health(self) -> dict:
        """Drop/spill accounting for export metadata and the ops plane."""
        return {
            "dropped": self.dropped,
            "spilled": self.spilled,
            "spill_enabled": self.spill_dir is not None,
        }

    def snapshot_state(self) -> dict:
        """Full event state for the driver-side checkpoint manifest.

        Unlike shard tracers (drained every barrier, so only counters
        matter), the driver tracer accumulates the whole merged timeline
        — a resumed campaign must restore every event recorded before
        the checkpoint to reproduce the golden export bit-identically.
        """
        return {
            "events": list(self._events),
            "head": self._head,
            "seq": self._seq,
            "dropped": self.dropped,
            "spilled": self.spilled,
            "ingested": list(self._ingested),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`snapshot_state` blob on campaign resume."""
        self._events = [
            e if isinstance(e, TraceEvent) else TraceEvent(*e)
            for e in state["events"]
        ]
        self._head = state["head"]
        self._seq = state["seq"]
        self.dropped = state["dropped"]
        self.spilled = state.get("spilled", 0)
        self._ingested = [
            e if isinstance(e, TraceEvent) else TraceEvent(*e)
            for e in state["ingested"]
        ]

    # -------------------------------------------------------------- merge

    def drain(self) -> Tuple[TraceEvent, ...]:
        """Pop all own events in record order (worker -> reply payload)."""
        if not self._events:
            return ()
        if self._head:
            out = tuple(self._events[self._head :] + self._events[: self._head])
        else:
            out = tuple(self._events)
        self._events = []
        self._head = 0
        return out

    def ingest(self, events: Iterable[TraceEvent]) -> None:
        """Merge events drained from another process's tracer."""
        self._ingested.extend(
            e if isinstance(e, TraceEvent) else TraceEvent(*e) for e in events
        )

    @property
    def event_count(self) -> int:
        """Events currently held (own buffer + ingested)."""
        return len(self._events) + len(self._ingested)

    def timeline(self) -> List[TraceEvent]:
        """All events (own + ingested) in global clock order.

        The sort key is ``(t0, track, name, attrs, seq)``: virtual time
        first, then a content key so ties across processes (whose ``seq``
        counters are unrelated) order deterministically — the same total
        order a serial run produces.

        With spill enabled the segment directory is re-read on every
        call and stitched into the returned sequence (kept out of the
        in-memory merge so repeated calls stay idempotent): spilled
        events are exactly the ring evictions, disjoint from what the
        buffers still hold, so the stitched timeline equals the one an
        unbounded ring would have produced.
        """
        events = self.drain() + tuple(self._ingested)
        self._ingested = []
        merged = sorted(
            events, key=lambda e: (e.t0, e.track, e.name, e.attrs, e.seq)
        )
        self._ingested = merged
        if self.spill_dir is None:
            return list(merged)
        from repro.obs.spill import read_segments

        spilled = [TraceEvent(*row) for row in read_segments(self.spill_dir)]
        if not spilled:
            return list(merged)
        return sorted(
            merged + spilled,
            key=lambda e: (e.t0, e.track, e.name, e.attrs, e.seq),
        )
