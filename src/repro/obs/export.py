"""Trace exporters: JSONL event log and Chrome ``trace_event`` JSON.

The Chrome format (the "JSON Array/Object Format" consumed by
``chrome://tracing`` and Perfetto) maps our model directly: complete
spans become phase-``X`` events, instants phase-``i``, and each track
(driver, barrier, fault, attack, defense, ``shard-N``) becomes one named
thread via phase-``M`` metadata. Timestamps are **virtual-clock
microseconds** (``ts = t0 * 1e6``) so the viewer's ruler reads simulated
time; per-process wall cost rides in ``args.wall_ms``.

Track->tid assignment is fixed (not discovery-ordered) so a serial and a
parallel run of the same campaign export byte-comparable events on the
mode-independent tracks.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional

from repro.obs.tracer import INSTANT, SPAN, TraceEvent

#: emitted pid for all tracks (one logical process: the simulation)
TRACE_PID = 1

#: fixed track -> tid map; shard tracks hash as 10 + shard index
_FIXED_TIDS = {
    "driver": 0,
    "barrier": 1,
    "fault": 2,
    "attack": 3,
    "defense": 4,
}
_SHARD_TID_BASE = 10


def track_tid(track: str) -> int:
    """Deterministic thread id for a track name."""
    tid = _FIXED_TIDS.get(track)
    if tid is not None:
        return tid
    if track.startswith("shard-"):
        try:
            return _SHARD_TID_BASE + int(track[len("shard-") :])
        except ValueError:
            pass
    # unknown tracks get a stable id from the name itself
    return _SHARD_TID_BASE + 1000 + sum(track.encode())


def to_jsonl(events: Iterable[TraceEvent], path) -> int:
    """Write one JSON object per event; returns the event count."""
    n = 0
    with open(path, "w") as fh:
        for e in events:
            fh.write(
                json.dumps(
                    {
                        "kind": e.kind,
                        "name": e.name,
                        "track": e.track,
                        "t0": e.t0,
                        "t1": e.t1,
                        "wall_s": e.wall_s,
                        "attrs": dict(e.attrs),
                    },
                    sort_keys=True,
                )
            )
            fh.write("\n")
            n += 1
    return n


def chrome_trace(
    events: Iterable[TraceEvent],
    health: Optional[Dict[str, dict]] = None,
) -> Dict[str, object]:
    """Build the Chrome ``trace_event`` JSON object for ``events``.

    ``health`` is the optional per-process ring accounting (label ->
    ``SpanTracer.health()`` dict); when given it rides in the top-level
    ``otherData`` block so ``repro.obs.validate`` can tell whether the
    merged timeline silently lost events (drops without spill).
    """
    out: List[Dict[str, object]] = []
    tracks: Dict[str, int] = {}
    for e in events:
        tid = tracks.get(e.track)
        if tid is None:
            tid = tracks[e.track] = track_tid(e.track)
        args = dict(e.attrs)
        record: Dict[str, object] = {
            "name": e.name,
            "cat": e.track,
            "pid": TRACE_PID,
            "tid": tid,
            "ts": e.t0 * 1e6,
        }
        if e.kind == SPAN:
            record["ph"] = "X"
            record["dur"] = (e.t1 - e.t0) * 1e6
            args["wall_ms"] = e.wall_s * 1e3
        else:
            record["ph"] = "i"
            record["s"] = "t"
        if args:
            record["args"] = args
        out.append(record)
    meta = []
    for track, tid in sorted(tracks.items(), key=lambda kv: kv[1]):
        meta.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
        meta.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    data: Dict[str, object] = {
        "traceEvents": meta + out,
        "displayTimeUnit": "ms",
    }
    if health is not None:
        data["otherData"] = {
            "trace_dropped_events": sum(h["dropped"] for h in health.values()),
            "trace_spilled_events": sum(h["spilled"] for h in health.values()),
            "processes": {label: dict(h) for label, h in sorted(health.items())},
        }
    return data


def to_chrome_trace(
    events: Iterable[TraceEvent],
    path,
    health: Optional[Dict[str, dict]] = None,
) -> int:
    """Write Chrome trace JSON; returns the non-metadata event count."""
    data = chrome_trace(events, health=health)
    with open(path, "w") as fh:
        json.dump(data, fh)
        fh.write("\n")
    return sum(1 for e in data["traceEvents"] if e["ph"] != "M")


def validate_chrome_trace(data: object) -> Dict[str, int]:
    """Schema-check a Chrome trace object; raises ``ValueError``.

    Returns summary counts (spans/instants/metadata/tracks) on success.
    Used by ``python -m repro.obs.validate`` in the CI trace-smoke job.
    """

    def fail(i, msg):
        raise ValueError(f"traceEvents[{i}]: {msg}")

    if not isinstance(data, dict) or "traceEvents" not in data:
        raise ValueError("not a Chrome trace: missing top-level traceEvents")
    events = data["traceEvents"]
    if not isinstance(events, list):
        raise ValueError("traceEvents must be a list")
    counts = {"spans": 0, "instants": 0, "metadata": 0}
    tids = set()
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(i, "event is not an object")
        for key in ("name", "ph", "pid", "tid"):
            if key not in e:
                fail(i, f"missing required key {key!r}")
        ph = e["ph"]
        if ph == "X":
            for key in ("ts", "dur"):
                if not isinstance(e.get(key), (int, float)):
                    fail(i, f"span missing numeric {key!r}")
            if e["dur"] < 0:
                fail(i, f"negative span duration {e['dur']}")
            counts["spans"] += 1
            tids.add(e["tid"])
        elif ph == "i":
            if not isinstance(e.get("ts"), (int, float)):
                fail(i, "instant missing numeric 'ts'")
            if e.get("s") not in ("t", "p", "g"):
                fail(i, f"instant has invalid scope {e.get('s')!r}")
            counts["instants"] += 1
            tids.add(e["tid"])
        elif ph == "M":
            if not isinstance(e.get("args"), dict):
                fail(i, "metadata event missing args")
            counts["metadata"] += 1
        else:
            fail(i, f"unsupported phase {ph!r}")
    if counts["spans"] + counts["instants"] == 0:
        raise ValueError("trace contains no span or instant events")
    counts["tracks"] = len(tids)
    other = data.get("otherData")
    if isinstance(other, dict):
        counts["dropped_events"] = int(other.get("trace_dropped_events", 0))
        counts["spilled_events"] = int(other.get("trace_spilled_events", 0))
    return counts


def lossy_processes(data: object) -> List[str]:
    """Process labels whose rings dropped events without spill enabled.

    A non-empty result means the merged timeline is missing events that
    a spill directory would have preserved — the validator CLI warns on
    it. Traces exported without health metadata return ``[]``.
    """
    if not isinstance(data, dict):
        return []
    other = data.get("otherData")
    if not isinstance(other, dict):
        return []
    processes = other.get("processes")
    if not isinstance(processes, dict):
        return []
    return sorted(
        label
        for label, h in processes.items()
        if isinstance(h, dict)
        and h.get("dropped", 0)
        and not h.get("spill_enabled", False)
    )
