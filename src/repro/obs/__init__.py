"""Unified observability for the simulator: metrics + span tracing.

``repro.obs`` is the substrate underneath the ad-hoc instrumentation
classes (``SimMetrics``/``IpcMetrics``/``SubsystemTimings``, now thin
facades over :class:`MetricRegistry` instruments) and the cross-process
span tracer that turns a sharded fleet run into one clock-aligned
timeline exportable as JSONL or Chrome ``trace_event`` JSON.

See ``docs/observability.md`` for the instrument taxonomy, span naming
conventions, and exporter formats.
"""

from repro.obs.export import (
    chrome_trace,
    lossy_processes,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.ops import (
    MetricsAppender,
    OpsPlane,
    OpsServer,
    read_metrics_stream,
    render_stream_tail,
    sync_trace_counters,
    validate_metrics_stream,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.spill import SpillWriter, read_segments, validate_spill_dir
from repro.obs.tracer import (
    INSTANT,
    SPAN,
    NULL_SPAN,
    SpanTracer,
    TraceEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "MetricsAppender",
    "OpsPlane",
    "OpsServer",
    "SpanTracer",
    "SpillWriter",
    "TraceEvent",
    "SPAN",
    "INSTANT",
    "NULL_SPAN",
    "chrome_trace",
    "lossy_processes",
    "read_metrics_stream",
    "read_segments",
    "render_stream_tail",
    "sync_trace_counters",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
    "validate_metrics_stream",
    "validate_spill_dir",
]
