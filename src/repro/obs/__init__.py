"""Unified observability for the simulator: metrics + span tracing.

``repro.obs`` is the substrate underneath the ad-hoc instrumentation
classes (``SimMetrics``/``IpcMetrics``/``SubsystemTimings``, now thin
facades over :class:`MetricRegistry` instruments) and the cross-process
span tracer that turns a sharded fleet run into one clock-aligned
timeline exportable as JSONL or Chrome ``trace_event`` JSON.

See ``docs/observability.md`` for the instrument taxonomy, span naming
conventions, and exporter formats.
"""

from repro.obs.export import (
    chrome_trace,
    to_chrome_trace,
    to_jsonl,
    validate_chrome_trace,
)
from repro.obs.registry import Counter, Gauge, Histogram, MetricRegistry
from repro.obs.tracer import (
    INSTANT,
    SPAN,
    NULL_SPAN,
    SpanTracer,
    TraceEvent,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "SpanTracer",
    "TraceEvent",
    "SPAN",
    "INSTANT",
    "NULL_SPAN",
    "chrome_trace",
    "to_chrome_trace",
    "to_jsonl",
    "validate_chrome_trace",
]
