"""The live operations plane: streaming metrics and pull endpoints.

Long campaigns were watch-after-the-fact: the registry and the merged
timeline only became visible when the run ended. This module makes a
running campaign observable three ways:

- :class:`MetricsAppender` — an append-only JSONL stream of full
  ``MetricRegistry`` snapshots, one record per cadence boundary, written
  to ``<ops dir>/metrics.jsonl``. Reopening an existing stream (campaign
  resume) continues after its last record, so replayed sim-time windows
  append nothing and the stream stays strictly monotone.
- :class:`OpsServer` — a threaded stdlib HTTP endpoint serving
  ``/metrics`` (text render with histogram quantiles), ``/status``
  (JSON campaign progress) and ``/healthz``, readable mid-run. Handlers
  only *read* driver-local state (plain attribute reads under the GIL);
  they never post control frames, so serving cannot perturb the barrier
  protocol or the disabled-overhead gate.
- :class:`OpsPlane` — the per-campaign bundle of both, wired in by
  :meth:`DatacenterSimulation.enable_ops`. The hot-loop cost when ops is
  off is one ``is not None`` check, same class as the tracing guards.

Record schema (one JSON object per line, sorted keys)::

    {"t": <sim s>, "wall": <unix s>, "seq": <int>, "metrics": {...}}

``metrics`` is exactly ``MetricRegistry.snapshot()``: qualified name ->
value, histograms as summary dicts.
"""

from __future__ import annotations

import json
import os
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Callable, Dict, List, Optional

from repro.obs.registry import MetricRegistry

#: stream file name inside an ops directory
METRICS_STREAM = "metrics.jsonl"
#: spill segment directory inside an ops directory
SPILL_DIR = "spill"


class MetricsAppender:
    """Append-only JSONL stream of registry snapshots.

    Cadence is sim-time first (``every_sim_s``) with an optional
    wall-clock floor (``every_wall_s``) for campaigns that coalesce
    large sim windows per tick. Construction scans an existing stream's
    last record so a resumed campaign appends strictly after it —
    records are never duplicated or rewritten.
    """

    def __init__(
        self,
        path: str,
        registry: MetricRegistry,
        every_sim_s: Optional[float] = 60.0,
        every_wall_s: Optional[float] = None,
    ):
        if every_sim_s is None and every_wall_s is None:
            raise ValueError("appender needs a sim or wall cadence")
        self.path = path
        self.registry = registry
        self.every_sim_s = every_sim_s
        self.every_wall_s = every_wall_s
        self.seq = 0
        #: sim time of the last appended record (None = nothing yet)
        self.last_t: Optional[float] = None
        self._last_wall = time.monotonic()
        self._fh = None
        self._load_tail()

    def _load_tail(self) -> None:
        try:
            fh = open(self.path)
        except OSError:
            return
        with fh:
            record = None
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue  # torn tail; the next append supersedes it
        if record is None:
            return
        self.seq = int(record.get("seq", -1)) + 1
        self.last_t = record.get("t")

    def maybe_append(self, now: float) -> bool:
        """Append a snapshot if a cadence boundary has passed.

        Sim times at or before the stream's tail are replays of an
        already-streamed window (campaign resume) and append nothing.
        """
        if self.last_t is not None:
            if now <= self.last_t + 1e-9:
                return False
            due = (
                self.every_sim_s is not None
                and now - self.last_t >= self.every_sim_s - 1e-9
            ) or (
                self.every_wall_s is not None
                and time.monotonic() - self._last_wall >= self.every_wall_s
            )
            if not due:
                return False
        self.append(now)
        return True

    def append(self, now: float) -> None:
        """Unconditionally append one snapshot record at sim time ``now``."""
        record = {
            "t": now,
            "wall": time.time(),
            "seq": self.seq,
            "metrics": self.registry.snapshot(),
        }
        if self._fh is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._fh = open(self.path, "a")
            # a writer killed mid-record leaves a torn line without a
            # newline; terminate it so this record starts a fresh line
            if self._fh.tell() > 0:
                with open(self.path, "rb") as tail:
                    tail.seek(-1, os.SEEK_END)
                    if tail.read(1) != b"\n":
                        self._fh.write("\n")
        self._fh.write(json.dumps(record, sort_keys=True))
        self._fh.write("\n")
        self._fh.flush()
        self.seq += 1
        self.last_t = now
        self._last_wall = time.monotonic()

    def close(self, now: Optional[float] = None) -> None:
        """Append a final record (if ``now`` advanced) and close the file."""
        if now is not None and (self.last_t is None or now > self.last_t + 1e-9):
            self.append(now)
        if self._fh is not None:
            self._fh.close()
            self._fh = None


class OpsServer:
    """Threaded pull endpoint over a registry and a status callable.

    ``GET /metrics`` returns ``registry.render()`` as text,
    ``GET /status`` returns ``status_fn()`` as JSON, ``GET /healthz``
    returns ``{"ok": true}``. Binds ``host:port`` (port 0 picks a free
    one) and serves from a daemon thread until :meth:`close`.
    """

    def __init__(
        self,
        registry: MetricRegistry,
        status_fn: Callable[[], dict],
        host: str = "127.0.0.1",
        port: int = 0,
    ):
        server = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args):  # noqa: A003 - quiet by design
                pass

            def do_GET(self):
                try:
                    if self.path == "/metrics":
                        body = registry.render() + "\n"
                        ctype = "text/plain; charset=utf-8"
                    elif self.path == "/status":
                        body = json.dumps(status_fn(), sort_keys=True) + "\n"
                        ctype = "application/json"
                    elif self.path == "/healthz":
                        body = json.dumps({"ok": True}) + "\n"
                        ctype = "application/json"
                    else:
                        self.send_error(404, "unknown endpoint")
                        return
                except Exception as exc:  # surface, don't kill the thread
                    self.send_error(500, str(exc))
                    return
                payload = body.encode("utf-8")
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(payload)))
                self.end_headers()
                self.wfile.write(payload)
                server.requests_served += 1

        self.requests_served = 0
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host, self.port = self._httpd.server_address[:2]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="ops-server", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._thread.join(timeout=5.0)
        self._httpd.server_close()


class OpsPlane:
    """One campaign's ops surface: the appender plus an optional server."""

    def __init__(
        self,
        directory: str,
        registry: MetricRegistry,
        status_fn: Callable[[], dict],
        every_sim_s: Optional[float] = 60.0,
        every_wall_s: Optional[float] = None,
        port: Optional[int] = None,
        host: str = "127.0.0.1",
    ):
        os.makedirs(directory, exist_ok=True)
        self.directory = directory
        self.appender = MetricsAppender(
            os.path.join(directory, METRICS_STREAM),
            registry,
            every_sim_s=every_sim_s,
            every_wall_s=every_wall_s,
        )
        self.server = (
            OpsServer(registry, status_fn, host=host, port=port)
            if port is not None
            else None
        )

    def on_tick(self, now: float) -> None:
        self.appender.maybe_append(now)

    def close(self, now: Optional[float] = None) -> None:
        """Flush the final record; the server keeps serving until
        :meth:`shutdown` so post-run readers can still pull."""
        self.appender.close(now)

    def shutdown(self) -> None:
        if self.server is not None:
            self.server.close()
            self.server = None


def sync_trace_counters(
    registry: MetricRegistry, health: Dict[str, dict]
) -> None:
    """Mirror per-process tracer drop/spill accounting into the registry.

    One ``obs.trace_dropped_events{process=...}`` /
    ``obs.trace_spilled_events{process=...}`` counter pair per process
    label, set to the tracer's monotone totals.
    """
    for label in sorted(health):
        h = health[label]
        registry.counter(
            "obs.trace_dropped_events",
            "ring-evicted trace events lost (no spill)",
            process=label,
        ).value = h["dropped"]
        registry.counter(
            "obs.trace_spilled_events",
            "ring-evicted trace events rotated to disk segments",
            process=label,
        ).value = h["spilled"]


# ---------------------------------------------------------------- readers


def read_metrics_stream(path: str) -> List[dict]:
    """Parse a metrics JSONL stream, skipping torn lines.

    A writer killed mid-record leaves a torn line; after resume the next
    writer starts a fresh line, so torn lines can sit mid-file, not just
    at the tail. Unparseable lines are skipped — stream integrity is
    enforced by :func:`validate_metrics_stream`'s strict ``t``/``seq``
    monotonicity over the surviving records.
    """
    records: List[dict] = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # torn line of an interrupted writer
    return records


def validate_metrics_stream(path: str) -> Dict[str, object]:
    """Validate stream invariants; raise ValueError on violation.

    Checks every record has ``t``/``seq``/``metrics`` and that ``t`` and
    ``seq`` are strictly increasing (the resume-idempotence contract).
    """
    records = read_metrics_stream(path)
    prev_t = None
    prev_seq = None
    for i, record in enumerate(records):
        for field in ("t", "seq", "metrics"):
            if field not in record:
                raise ValueError(f"record {i} missing {field!r} in {path}")
        if prev_t is not None and record["t"] <= prev_t:
            raise ValueError(
                f"record {i} sim time {record['t']} not after {prev_t} in {path}"
            )
        if prev_seq is not None and record["seq"] <= prev_seq:
            raise ValueError(
                f"record {i} seq {record['seq']} not after {prev_seq} in {path}"
            )
        prev_t = record["t"]
        prev_seq = record["seq"]
    return {
        "records": len(records),
        "t_first": records[0]["t"] if records else None,
        "t_last": records[-1]["t"] if records else None,
    }


def render_stream_tail(directory: str) -> str:
    """Human summary of an ops directory's metrics stream (last record)."""
    path = os.path.join(directory, METRICS_STREAM)
    records = read_metrics_stream(path)
    if not records:
        return f"(empty metrics stream: {path})"
    first, last = records[0], records[-1]
    lines = [
        f"ops stream: {len(records)} record(s),"
        f" t={first['t']:.6g}..{last['t']:.6g}s",
        f"last snapshot (seq {last['seq']}):",
    ]
    metrics = last.get("metrics", {})
    if not metrics:
        lines.append("  (no instruments registered)")
        return "\n".join(lines)
    width = max(len(name) for name in metrics)
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, dict):
            rendered = f"count {value.get('count', 0)}"
            if value.get("count"):
                rendered += f"  mean {value['mean']:.6g}  max {value['max']:.6g}"
        elif isinstance(value, float):
            rendered = f"{value:.6g}"
        else:
            rendered = str(value)
        lines.append(f"  {name:<{width}}  {rendered}")
    return "\n".join(lines)
