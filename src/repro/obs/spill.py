"""Spill-to-disk segments for :class:`~repro.obs.tracer.SpanTracer` rings.

A tracer with spill enabled rotates ring-evicted events into an
append-only JSONL segment instead of dropping them, and the timeline
merger stitches the segments back in — so a run whose rings overflowed
produces the same merged timeline as one with unbounded rings.

Layout: one directory per campaign, one segment per process
*incarnation*, named ``<label>.<k>.jsonl`` where ``label`` is the
process's tracer track (``driver``, ``shard-0``, ...) and ``k`` counts
restarts. Rows carry the full :class:`TraceEvent` tuple — including
``seq`` and the frozen attrs pairs — so stitched events sort under the
exact same ``(t0, track, name, attrs, seq)`` key as in-memory ones
(JSON round-trips floats exactly via ``repr``).

Crash safety rides on determinism: a respawned worker (or resumed
driver) opens a fresh incarnation segment and re-spills whatever it
re-executes, so events the dead incarnation already wrote appear twice
— byte-identical, because replay is deterministic. The reader therefore
deduplicates by ``(label, seq)``, which also heals a torn final line
left by a SIGKILLed process: the torn copy is skipped, the replayed
duplicate supplies the intact one. ``seq`` values are only unique
within one process, never across processes — hence the per-label
grouping.
"""

from __future__ import annotations

import json
import os
import re
from typing import Dict, List, Optional, Tuple

_SEGMENT_RE = re.compile(r"^(?P<label>.+)\.(?P<incarnation>\d+)\.jsonl$")

#: raw event row: (kind, name, track, t0, t1, wall_s, attrs, seq)
EventRow = Tuple[str, str, str, float, float, float, tuple, int]


def _scan_segments(directory: str) -> List[Tuple[str, int, str]]:
    """``(label, incarnation, path)`` for every segment, sorted."""
    try:
        names = os.listdir(directory)
    except OSError:
        return []
    found = []
    for name in names:
        m = _SEGMENT_RE.match(name)
        if m is not None:
            found.append(
                (m.group("label"), int(m.group("incarnation")), os.path.join(directory, name))
            )
    return sorted(found)


class SpillWriter:
    """Append-only JSONL writer for one tracer incarnation's evictions.

    The segment file is created lazily on the first eviction (a run
    that never overflows leaves no segment) under the next free
    incarnation index for ``label``, and every row is flushed so the
    driver — or a live ``/status`` reader — sees a consistent prefix
    even while the owning process is mid-run.
    """

    def __init__(self, directory: str, label: str):
        if "/" in label or label.startswith("."):
            raise ValueError(f"invalid spill label: {label!r}")
        self.directory = directory
        self.label = label
        self.path: Optional[str] = None
        self.count = 0
        self._fh = None

    def write(self, event) -> None:
        """Append one evicted event (lazily opening the segment)."""
        if self._fh is None:
            os.makedirs(self.directory, exist_ok=True)
            taken = [
                inc for label, inc, _ in _scan_segments(self.directory) if label == self.label
            ]
            incarnation = max(taken) + 1 if taken else 0
            self.path = os.path.join(self.directory, f"{self.label}.{incarnation}.jsonl")
            self._fh = open(self.path, "w")
        self._fh.write(
            json.dumps(
                [
                    event.kind,
                    event.name,
                    event.track,
                    event.t0,
                    event.t1,
                    event.wall_s,
                    [list(pair) for pair in event.attrs],
                    event.seq,
                ]
            )
        )
        self._fh.write("\n")
        self._fh.flush()
        self.count += 1

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None


def _parse_row(row: object) -> EventRow:
    if not isinstance(row, list) or len(row) != 8:
        raise ValueError(f"malformed spill row: {row!r}")
    attrs = tuple((pair[0], pair[1]) for pair in row[6])
    return (row[0], row[1], row[2], row[3], row[4], row[5], attrs, row[7])


def read_segments(directory: str) -> List[EventRow]:
    """All spilled events under ``directory``, deduped by (label, seq).

    Unparseable trailing lines (a process killed mid-write) are
    skipped; their replayed duplicates, when present, supply the intact
    copy. Returned rows are plain tuples in ``TraceEvent`` field order.
    """
    out: List[EventRow] = []
    seen = set()
    for label, _, path in _scan_segments(directory):
        with open(path) as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    row = _parse_row(json.loads(line))
                except (ValueError, IndexError, TypeError):
                    continue  # torn tail of a killed incarnation
                key = (label, row[7])
                if key not in seen:
                    seen.add(key)
                    out.append(row)
    return out


def validate_spill_dir(directory: str) -> Dict[str, object]:
    """Structurally validate a spill directory; raise ValueError if bad.

    Every line must parse as a full event row except the *final* line
    of a segment, which may be torn. Returns summary counts.
    """
    segments = _scan_segments(directory)
    if not os.path.isdir(directory):
        raise ValueError(f"not a spill directory: {directory}")
    events = 0
    torn = 0
    labels = set()
    for label, _, path in segments:
        labels.add(label)
        with open(path) as fh:
            lines = [ln for ln in (raw.strip() for raw in fh) if ln]
        for i, line in enumerate(lines):
            try:
                _parse_row(json.loads(line))
            except (ValueError, IndexError, TypeError):
                if i == len(lines) - 1:
                    torn += 1
                    continue
                raise ValueError(f"malformed spill row in {path} line {i + 1}")
            events += 1
    return {
        "segments": len(segments),
        "events": events,
        "deduped_events": len(read_segments(directory)),
        "torn_lines": torn,
        "processes": sorted(labels),
    }
