"""Kernel timer bookkeeping behind ``/proc/timer_list``.

``/proc/timer_list`` dumps every armed hrtimer on every CPU together with
the *owning task's command name and host pid*. The file is host-global —
there is no timer namespace — so a tenant who arms a timer from a process
with a uniquely crafted name makes that name readable by every container on
the host. This is the implantation channel the paper uses for co-residence
verification in its CC1 experiment (Section IV-C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import KernelError
from repro.kernel.process import Task


@dataclass
class TimerEntry:
    """One armed timer visible in /proc/timer_list."""

    timer_id: int
    task_name: str
    host_pid: int
    cpu: int
    expires_ns: int
    function: str = "hrtimer_wakeup"

    def owner_label(self) -> str:
        """The ``<comm>/<pid>`` label timer_list prints."""
        return f"{self.task_name}/{self.host_pid}"


class TimerSubsystem:
    """Host-global table of armed timers."""

    def __init__(self, ncpus: int):
        self.ncpus = ncpus
        self._ids = itertools.count(1)
        self._entries: List[TimerEntry] = []
        self.now_ns: int = 0
        #: jiffies counter (for the header line)
        self.jiffies: int = 4294667296

    def arm(
        self,
        task: Task,
        delay_seconds: float,
        cpu: Optional[int] = None,
        function: str = "hrtimer_wakeup",
    ) -> TimerEntry:
        """Arm a timer owned by ``task`` expiring ``delay_seconds`` away.

        The entry records the task's *host* pid and its command name —
        i.e. exactly the information a real timer_list leaks.
        """
        if delay_seconds <= 0:
            raise KernelError(f"timer delay must be positive: {delay_seconds}")
        entry = TimerEntry(
            timer_id=next(self._ids),
            task_name=task.name,
            host_pid=task.pid,
            cpu=cpu if cpu is not None else task.pid % self.ncpus,
            expires_ns=self.now_ns + int(delay_seconds * 1e9),
            function=function,
        )
        self._entries.append(entry)
        return entry

    def cancel(self, entry: TimerEntry) -> None:
        """Disarm a timer."""
        try:
            self._entries.remove(entry)
        except ValueError:
            raise KernelError(f"timer not armed: {entry}")

    def tick(self, dt: float) -> None:
        """Advance timer time; expired timers fall out of the list."""
        self.now_ns += int(dt * 1e9)
        self.jiffies += int(dt * 250)
        self._entries = [e for e in self._entries if e.expires_ns > self.now_ns]

    @property
    def entries(self) -> List[TimerEntry]:
        """All currently armed timers (host-global)."""
        return list(self._entries)

    def entries_on_cpu(self, cpu: int) -> List[TimerEntry]:
        """Armed timers whose base lives on ``cpu``."""
        return [e for e in self._entries if e.cpu == cpu]

    def find_by_name(self, task_name: str) -> List[TimerEntry]:
        """Search the global table by owner command name.

        This is the co-residence probe: another container greps the file
        for the crafted name.
        """
        return [e for e in self._entries if e.task_name == task_name]
