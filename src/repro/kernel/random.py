"""Kernel RNG state behind ``/proc/sys/kernel/random/*``.

``boot_id`` is the paper's #1-ranked co-residence channel (Table II): a
random UUID generated once per kernel boot, identical for every reader on
the host, different across hosts, and not namespaced. ``entropy_avail``
fluctuates with interrupt arrival and entropy consumption, providing a
time-varying (V=True) channel.
"""

from __future__ import annotations

from repro.sim.rng import DeterministicRNG


def _format_uuid(hex32: str) -> str:
    """Format 32 hex chars as 8-4-4-4-12."""
    return "-".join(
        [hex32[0:8], hex32[8:12], hex32[12:16], hex32[16:20], hex32[20:32]]
    )


class RandomSubsystem:
    """The kernel entropy pool and its sysctl-visible state."""

    POOLSIZE = 4096

    def __init__(self, rng: DeterministicRNG):
        self._rng = rng
        #: generated once at boot; THE host fingerprint
        self.boot_id: str = _format_uuid(rng.hex_token("boot-id", 16))
        self.entropy_avail: int = 3000
        self._uuid_counter = 0

    def fresh_uuid(self) -> str:
        """``/proc/sys/kernel/random/uuid``: a new UUID per read.

        Unlike boot_id this is useless for co-residence (every read
        differs), a distinction the channel metrics must get right.
        """
        self._uuid_counter += 1
        return _format_uuid(
            self._rng.hex_token(f"uuid-{self._uuid_counter}", 16)
        )

    def tick(self, dt: float, interrupt_count: int, syscall_count: int) -> None:
        """Entropy credit from interrupts, debit from consumers.

        A mean-reverting term models the kernel's pool management (readers
        block / reseeds happen long before the pool pins at a bound), so
        the value *fluctuates* under load instead of sticking at a clamp —
        the paper's Table II needs entropy_avail to be a V=True channel.
        """
        credit = min(interrupt_count // 64, int(48 * dt) + 1)
        debit = min(syscall_count // 256, int(48 * dt) + 1)
        jitter = self._rng.stream("entropy-jitter").randint(-16, 16)
        reversion = int((3000 - self.entropy_avail) * min(0.2, 0.05 * dt))
        self.entropy_avail = max(
            128,
            min(
                self.POOLSIZE,
                self.entropy_avail + reversion + credit - debit + jitter,
            ),
        )
