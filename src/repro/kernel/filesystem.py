"""VFS-wide and ext4 statistics.

Covers the Table I/II channels under ``/proc/sys/fs/*`` (``dentry-state``,
``inode-nr``, ``file-nr`` — host-global caches whose absolute counts are
unique per machine and drift with host activity) and
``/proc/fs/ext4/<disk>/mb_groups`` (the multiblock allocator's buddy
statistics, which change as *anyone* on the host writes — a V=True channel).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import KernelError
from repro.kernel.scheduler import TickResult
from repro.sim.rng import DeterministicRNG


@dataclass
class VfsStats:
    """Host-wide VFS object counts."""

    nr_dentry: int = 85000
    nr_dentry_unused: int = 61000
    nr_inodes: int = 64000
    nr_free_inodes: int = 12000
    nr_open_files: int = 4600
    max_files: int = 1624407

    def dentry_state(self) -> str:
        """The six-field /proc/sys/fs/dentry-state payload."""
        return f"{self.nr_dentry}\t{self.nr_dentry_unused}\t45\t0\t0\t0\n"

    def inode_nr(self) -> str:
        """/proc/sys/fs/inode-nr payload."""
        return f"{self.nr_inodes}\t{self.nr_free_inodes}\n"

    def file_nr(self) -> str:
        """/proc/sys/fs/file-nr payload."""
        return f"{self.nr_open_files}\t0\t{self.max_files}\n"


@dataclass
class Ext4Group:
    """One block group in the ext4 multiblock allocator."""

    group: int
    free_blocks: int
    fragments: int
    first_free: int
    #: buddy counts for orders 2^0 .. 2^13
    buddy: List[int] = field(default_factory=lambda: [0] * 14)


class Ext4Filesystem:
    """mb_groups state for one disk."""

    BLOCKS_PER_GROUP = 32768

    def __init__(self, disk: str, groups: int, rng: DeterministicRNG):
        self.disk = disk
        stream = rng.stream(f"ext4-{disk}")
        self.groups: List[Ext4Group] = []
        for g in range(groups):
            free = stream.randint(2000, self.BLOCKS_PER_GROUP - 500)
            group = Ext4Group(
                group=g,
                free_blocks=free,
                fragments=stream.randint(1, 200),
                first_free=stream.randint(0, 2000),
            )
            remaining = free
            for order in range(13, -1, -1):
                size = 1 << order
                count = remaining // size if order > 0 else remaining
                take = stream.randint(0, max(0, count))
                group.buddy[order] = take
                remaining -= take * size
            self.groups.append(group)
        self._stream = stream

    def apply_io(self, write_ops: int) -> None:
        """Writes allocate/free blocks, perturbing group statistics."""
        if write_ops <= 0:
            return
        touched = min(len(self.groups), 1 + write_ops // 256)
        for _ in range(touched):
            group = self._stream.choice(self.groups)
            delta = self._stream.randint(-24, 24)
            group.free_blocks = max(
                128, min(self.BLOCKS_PER_GROUP, group.free_blocks + delta)
            )
            group.fragments = max(1, group.fragments + self._stream.randint(-2, 2))
            order = self._stream.randint(0, 8)
            group.buddy[order] = max(0, group.buddy[order] + self._stream.randint(-1, 1))


class FilesystemSubsystem:
    """VFS counters plus per-disk ext4 state."""

    def __init__(self, disks, rng: DeterministicRNG):
        self.vfs = VfsStats()
        self._rng = rng
        self.ext4: Dict[str, Ext4Filesystem] = {
            disk: Ext4Filesystem(disk, groups=16, rng=rng) for disk in disks
        }

    def ext4_for(self, disk: str) -> Ext4Filesystem:
        """The ext4 state of one disk."""
        try:
            return self.ext4[disk]
        except KeyError:
            raise KernelError(f"no ext4 filesystem on disk: {disk}")

    def tick(self, result: TickResult) -> None:
        """Drift VFS counters and ext4 groups with host activity."""
        io = result.total.io_ops
        spawn_like = result.total.syscalls // 100
        stream = self._rng.stream("vfs-drift")
        vfs = self.vfs

        # Object caches grow monotonically with activity; reclaim happens
        # in rare pressure-driven bursts, not as per-tick jitter. The
        # burst-vs-drift distinction is what puts dentry-state/inode-nr/
        # file-nr in Table II's unique-accumulator group.
        vfs.nr_dentry += io // 8 + spawn_like + 1
        vfs.nr_inodes += io // 16 + spawn_like // 2 + 1
        vfs.nr_open_files += spawn_like // 4 + 1
        vfs.nr_dentry_unused = min(
            vfs.nr_dentry - 1000, vfs.nr_dentry_unused + stream.randint(0, 30)
        )
        vfs.nr_free_inodes += stream.randint(0, 10)
        if vfs.nr_dentry > 400_000:  # reclaim burst under cache pressure
            vfs.nr_dentry = 120_000 + stream.randint(0, 5000)
            vfs.nr_dentry_unused = min(vfs.nr_dentry_unused, 61_000)
            vfs.nr_inodes = max(60_000, vfs.nr_inodes // 2)
            vfs.nr_free_inodes = min(vfs.nr_free_inodes, 12_000)
        if vfs.nr_open_files > 60_000:
            vfs.nr_open_files = 5_000 + stream.randint(0, 500)

        for fs in self.ext4.values():
            fs.apply_io(io // max(1, len(self.ext4)))
