"""Intel RAPL: the powercap energy counters behind
``/sys/class/powercap/intel-rapl:*/energy_uj``.

Case Study II of the paper: the RAPL driver's ``get_energy_counter`` reads
the package MSR with no notion of namespaces, so a container reads the
*host's* accumulated energy. That single counter is both the highest-value
attack channel (it reveals the host's power crests to a synergistic
attacker) and the interface the defense re-implements per container.

Counters are microjoule accumulators that wrap at
``max_energy_range_uj``, exactly like the 32-bit-scaled hardware MSR; all
consumers must handle wraparound.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import KernelError
from repro.kernel.config import HostConfig
from repro.kernel.power import EnergyBreakdown
from repro.sim.rng import DeterministicRNG

#: the value reported by real Skylake hardware
MAX_ENERGY_RANGE_UJ = 262_143_328_850


@dataclass
class RaplDomain:
    """One RAPL domain (package, core, or dram)."""

    name: str
    sysfs_name: str
    max_energy_range_uj: int = MAX_ENERGY_RANGE_UJ
    #: which physical package this domain belongs to
    package_id: int = 0
    _energy_uj: float = 0.0

    def accumulate(self, joules: float) -> None:
        """Add energy; the counter wraps like the hardware MSR."""
        if joules < 0:
            raise KernelError(f"negative energy increment: {joules}")
        self._energy_uj = (self._energy_uj + joules * 1e6) % self.max_energy_range_uj

    @property
    def energy_uj(self) -> int:
        """The integer microjoule value ``energy_uj`` reports."""
        return int(self._energy_uj)


@dataclass
class RaplPackage:
    """One package with its core and dram subdomains."""

    package_id: int
    package: RaplDomain = field(init=False)
    core: RaplDomain = field(init=False)
    dram: RaplDomain = field(init=False)

    def __post_init__(self) -> None:
        pid = self.package_id
        self.package = RaplDomain(
            name=f"package-{pid}", sysfs_name=f"intel-rapl:{pid}", package_id=pid
        )
        self.core = RaplDomain(
            name="core", sysfs_name=f"intel-rapl:{pid}:0", package_id=pid
        )
        self.dram = RaplDomain(
            name="dram", sysfs_name=f"intel-rapl:{pid}:1", package_id=pid
        )

    def domains(self) -> List[RaplDomain]:
        """All domains of this package (package first)."""
        return [self.package, self.core, self.dram]


class RaplSubsystem:
    """The host's RAPL counters (absent on pre-Sandy-Bridge / AMD hosts)."""

    def __init__(self, config: HostConfig, rng: DeterministicRNG):
        self.present = config.has_rapl
        self._noise_fraction = config.power.noise_fraction
        self._rng = rng
        #: accumulate-call cursor: draw ``n`` of ``rapl-noise-{pid}`` is
        #: the noise of call ``n``, so a columnar engine that knows how
        #: many ticks a host took computes the identical draws by index
        self._noise_calls = 0
        self.packages: List[RaplPackage] = (
            [RaplPackage(package_id=p) for p in range(config.packages)]
            if self.present
            else []
        )

    def package(self, package_id: int) -> RaplPackage:
        """One package's domains."""
        if not self.present:
            raise KernelError("RAPL not supported on this host")
        try:
            return self.packages[package_id]
        except IndexError:
            raise KernelError(f"no such package: {package_id}")

    def accumulate(self, per_package: Dict[int, EnergyBreakdown]) -> None:
        """Feed one tick's ground-truth energy into the counters.

        A small multiplicative measurement noise models MSR quantization
        and sensor error; the defense's calibration step has to cope with
        it, as the paper's does.
        """
        if not self.present:
            return
        index = self._noise_calls
        self._noise_calls = index + 1
        for package_id, energy in per_package.items():
            stream = self._rng.keyed(f"rapl-noise-{package_id}")
            noisy = 1.0 + stream.gauss(index, self._noise_fraction)
            noisy = max(0.5, noisy)
            pkg = self.packages[package_id]
            pkg.core.accumulate(energy.core_j * noisy)
            pkg.dram.accumulate(energy.dram_j * noisy)
            pkg.package.accumulate(energy.package_j * noisy)

    def total_package_energy_uj(self) -> int:
        """Sum of package counters (convenience for monitors).

        Note: each addend wraps independently; callers sampling deltas
        must diff successive readings per package for exactness. For the
        monitoring cadences used in the experiments, wraps are rare.
        """
        if not self.present:
            raise KernelError("RAPL not supported on this host")
        return sum(pkg.package.energy_uj for pkg in self.packages)


def unwrap_delta(later_uj: int, earlier_uj: int, max_range: int = MAX_ENERGY_RANGE_UJ) -> int:
    """Microjoules elapsed between two wrapped counter readings."""
    delta = later_uj - earlier_uj
    if delta < 0:
        delta += max_range
    return delta
