"""The perf_event subsystem.

Per-cgroup performance accounting is the data source of the defense's
power model (Section V-B-1): the modified RAPL driver reads retired
instructions, cache misses, and branch misses per perf_event cgroup.

Two properties of the real subsystem matter for the reproduction and are
modelled here:

1. Accounting is off until someone creates perf events for a cgroup
   (the defense does this at power-namespace initialization, with the
   events owned by ``TASK_TOMBSTONE`` so they outlive any user process).
2. Accounting costs time: scheduling *into* or *out of* a monitored cgroup
   toggles the hardware counters, so inter-cgroup context switches become
   more expensive — the mechanism behind Table III's pipe-based
   context-switching overhead — and event streams impose a small
   per-event bookkeeping cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Set

from repro.kernel.cgroups import Cgroup, CgroupManager, PerfCounters, PerfEventState
from repro.errors import KernelError

#: Sentinel owner for perf events detached from any user process, mirroring
#: the kernel's TASK_TOMBSTONE trick used by the paper's implementation.
TASK_TOMBSTONE = object()


@dataclass(frozen=True)
class PerfTuning:
    """Cost model for perf accounting overhead.

    - ``toggle_ns``: CPU time to disable+re-enable counters on one
      inter-cgroup context switch involving a monitored cgroup.
    - ``spawn_ns``: CPU time to wire a newly spawned task into its
      cgroup's perf events.
    - ``per_event_cost_s``: bookkeeping time per counted hardware event
      (cache/branch misses), modelling shared-buffer contention; this is
      what makes memory-intensive workloads (UnixBench file copy) slow
      down when many monitored copies run in parallel.
    """

    toggle_ns: int = 2000
    spawn_ns: int = 15000
    per_event_cost_s: float = 3.0e-10


class PerfSubsystem:
    """Host-wide view of perf_event accounting."""

    def __init__(self, cgroups: CgroupManager, tuning: PerfTuning = PerfTuning()):
        self._cgroups = cgroups
        self.tuning = tuning
        #: counters for the entire host, always on (the host root can
        #: always run `perf`); the defense's M_host model reads these.
        self.host_counters = PerfCounters()
        self._monitored: Set[Cgroup] = set()
        #: monitored-cgroup event rate observed in the previous tick
        #: (events/sec), used for the contention cost model.
        self.monitored_event_rate: float = 0.0
        self._events_this_tick: int = 0

    def _perf_state(self, cgroup: Cgroup) -> PerfEventState:
        if cgroup.controller != "perf_event":
            raise KernelError(
                f"perf operations need a perf_event cgroup, got {cgroup.controller}"
            )
        state = cgroup.state
        assert isinstance(state, PerfEventState)
        return state

    def enable(self, cgroup: Cgroup, owner: object = TASK_TOMBSTONE) -> None:
        """Create perf events for a cgroup (start accounting).

        ``owner`` is recorded for fidelity with the paper's TASK_TOMBSTONE
        ownership but has no behavioural effect in the simulation.
        """
        state = self._perf_state(cgroup)
        state.enabled = True
        self._monitored.add(cgroup)

    def disable(self, cgroup: Cgroup) -> None:
        """Tear down a cgroup's perf events (stop accounting)."""
        state = self._perf_state(cgroup)
        state.enabled = False
        self._monitored.discard(cgroup)

    def is_monitored(self, cgroup: Cgroup) -> bool:
        """Whether accounting is active for this perf_event cgroup."""
        return self._perf_state(cgroup).enabled

    @property
    def monitored_cgroups(self) -> frozenset:
        """The currently monitored perf_event cgroups."""
        return frozenset(self._monitored)

    def charge(
        self,
        perf_cgroup: Cgroup,
        cycles: int,
        instructions: int,
        cache_misses: int,
        branch_misses: int,
    ) -> None:
        """Account one activity sample to the host and (if on) the cgroup."""
        self.host_counters.add(cycles, instructions, cache_misses, branch_misses)
        state = self._perf_state(perf_cgroup)
        if state.enabled:
            state.charge(cycles, instructions, cache_misses, branch_misses)
            self._events_this_tick += cache_misses + branch_misses

    def finish_tick(self, dt: float) -> None:
        """Close out a tick: publish the monitored event rate."""
        self.monitored_event_rate = self._events_this_tick / dt if dt > 0 else 0.0
        self._events_this_tick = 0

    def contention_slowdown(self) -> float:
        """Fractional CPU-time tax on monitored tasks from event bookkeeping.

        Derived from the previous tick's monitored event rate; bounded so a
        pathological workload cannot drive useful time negative.
        """
        tax = self.monitored_event_rate * self.tuning.per_event_cost_s
        return min(tax, 0.5)
