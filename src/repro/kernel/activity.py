"""Hardware activity samples.

Lives in the kernel package (not the runtime) because every kernel
subsystem consumes these — the scheduler produces them, the power model,
perf counters, memory, and interrupt subsystems account them. The runtime's
workload machinery imports from here, never the other way around.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ActivitySample:
    """Hardware activity produced by one task during one scheduler tick."""

    cpu_ns: int = 0
    cycles: int = 0
    instructions: int = 0
    cache_misses: int = 0
    branch_misses: int = 0
    syscalls: int = 0
    voluntary_switches: int = 0
    rss_bytes: int = 0
    net_bytes: int = 0
    io_ops: int = 0
    #: abstract useful-work units completed (benchmark scoring hook)
    work_units: float = 0.0

    def __add__(self, other: "ActivitySample") -> "ActivitySample":
        return ActivitySample(
            cpu_ns=self.cpu_ns + other.cpu_ns,
            cycles=self.cycles + other.cycles,
            instructions=self.instructions + other.instructions,
            cache_misses=self.cache_misses + other.cache_misses,
            branch_misses=self.branch_misses + other.branch_misses,
            syscalls=self.syscalls + other.syscalls,
            voluntary_switches=self.voluntary_switches + other.voluntary_switches,
            rss_bytes=max(self.rss_bytes, other.rss_bytes),
            net_bytes=self.net_bytes + other.net_bytes,
            io_ops=self.io_ops + other.io_ops,
            work_units=self.work_units + other.work_units,
        )
