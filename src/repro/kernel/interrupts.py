"""Interrupt and softirq accounting (``/proc/interrupts``,
``/proc/softirqs``, and ``/proc/stat``'s ``intr``/``softirq`` lines).

Interrupt counters are host-global in Linux — there is no namespace for
them — so a container watching the per-CPU deltas sees the host's timer
cadence, network traffic, and disk activity: a high-entropy co-residence
trace (Table II ranks both files with V=True, M=half).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.kernel.config import HostConfig
from repro.kernel.scheduler import TickResult

SOFTIRQ_NAMES = (
    "HI",
    "TIMER",
    "NET_TX",
    "NET_RX",
    "BLOCK",
    "IRQ_POLL",
    "TASKLET",
    "SCHED",
    "HRTIMER",
    "RCU",
)


@dataclass
class IrqLine:
    """One IRQ source with per-CPU counters."""

    irq: str
    description: str
    per_cpu: List[int] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(self.per_cpu)


class InterruptSubsystem:
    """Host-global IRQ and softirq counters."""

    def __init__(self, config: HostConfig):
        self.config = config
        ncpus = config.total_cores

        def line(irq: str, description: str) -> IrqLine:
            return IrqLine(irq=irq, description=description, per_cpu=[0] * ncpus)

        self.lines: List[IrqLine] = [line("0", "IO-APIC   2-edge      timer")]
        for i, disk in enumerate(config.disks):
            self.lines.append(line(str(16 + i), f"PCI-MSI 512000-edge      ahci[{disk}]"))
        irq_no = 24
        for iface in config.net_interfaces:
            if iface in ("lo", "docker0"):
                continue
            for queue in range(2):
                self.lines.append(
                    line(str(irq_no), f"PCI-MSI 327680-edge      {iface}-TxRx-{queue}")
                )
                irq_no += 1
        self.lines.append(line("LOC", "Local timer interrupts"))
        self.lines.append(line("RES", "Rescheduling interrupts"))
        self.lines.append(line("CAL", "Function call interrupts"))
        self.lines.append(line("TLB", "TLB shootdowns"))

        self._by_irq: Dict[str, IrqLine] = {ln.irq: ln for ln in self.lines}
        self.softirqs: Dict[str, List[int]] = {
            name: [0] * ncpus for name in SOFTIRQ_NAMES
        }

    def irq(self, name: str) -> IrqLine:
        """Look up one IRQ line (KeyError surfaces programming errors)."""
        return self._by_irq[name]

    @property
    def total_interrupts(self) -> int:
        """Sum over all IRQ lines (the first field of /proc/stat intr)."""
        return sum(ln.total for ln in self.lines)

    @property
    def total_softirqs(self) -> int:
        return sum(sum(v) for v in self.softirqs.values())

    def tick(self, result: TickResult) -> None:
        """Advance interrupt counters from one scheduler tick."""
        dt = result.dt
        ncpus = self.config.total_cores
        hz_ticks = int(self.config.hz * dt)

        loc = self._by_irq["LOC"]
        for cpu in range(ncpus):
            # tickless idle: idle CPUs take far fewer local timer interrupts
            util = result.utilization.get(cpu, 0.0)
            loc.per_cpu[cpu] += max(1, int(hz_ticks * (0.08 + 0.92 * util)))
            self.softirqs["TIMER"][cpu] += max(1, int(hz_ticks * (0.08 + 0.92 * util)))
            self.softirqs["RCU"][cpu] += max(1, int(hz_ticks * 0.5 * (0.1 + 0.9 * util)))
            self.softirqs["SCHED"][cpu] += max(0, int(hz_ticks * util * 0.6))
            self.softirqs["HRTIMER"][cpu] += int(hz_ticks * 0.01)

        # Network interrupts: ~1 IRQ per 16KB of traffic, spread over queues.
        net_irqs = result.total.net_bytes // 16384
        queues = [ln for ln in self.lines if "-TxRx-" in ln.description]
        if queues and net_irqs:
            per_queue = net_irqs // len(queues)
            for i, q in enumerate(queues):
                cpu = i % ncpus
                q.per_cpu[cpu] += per_queue
                self.softirqs["NET_RX"][cpu] += per_queue
                self.softirqs["NET_TX"][cpu] += per_queue // 2

        # Disk interrupts: one per IO completion.
        disk_lines = [ln for ln in self.lines if "ahci" in ln.description]
        if disk_lines and result.total.io_ops:
            per_disk = result.total.io_ops // len(disk_lines)
            for i, d in enumerate(disk_lines):
                cpu = i % ncpus
                d.per_cpu[cpu] += per_disk
                self.softirqs["BLOCK"][cpu] += per_disk

        # Rescheduling IPIs follow context switches across CPUs.
        res = self._by_irq["RES"]
        switches = sum(s.voluntary_switches for _, s in result.task_samples)
        for cpu in range(ncpus):
            res.per_cpu[cpu] += switches // max(1, ncpus)

    def rows(self) -> List[Tuple[str, List[int], str]]:
        """(irq, per-cpu counts, description) rows for rendering."""
        return [(ln.irq, list(ln.per_cpu), ln.description) for ln in self.lines]
