"""A CFS-flavoured scheduler over the simulated CPU topology.

Each tick the scheduler grants CPU time to runnable tasks
(proportional-fair per CPU, respecting affinity and cpuset), converts the
grants into hardware activity via each task's workload, charges cgroups and
perf counters, and accumulates the per-CPU statistics that the leakage
channels render: ``/proc/stat``, ``/proc/loadavg``, ``/proc/schedstat``,
``/proc/sched_debug``, ``/proc/uptime``'s idle field, and cpuidle times.

The perf-accounting overhead model lives here because its costs are paid in
scheduler time: counter toggles on inter-cgroup switches, event wiring on
spawn, and per-event bookkeeping — see :class:`repro.kernel.perf.PerfTuning`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.errors import KernelError
from repro.kernel.cgroups import CgroupManager, CpuAcctState, CpusetState, MemoryState
from repro.kernel.config import HostConfig
from repro.kernel.perf import PerfSubsystem
from repro.kernel.process import Task, TaskState
from repro.kernel.activity import ActivitySample


@dataclass
class CpuStat:
    """Accumulated per-CPU time accounting (clock-tick style, ns here)."""

    user_ns: int = 0
    system_ns: int = 0
    idle_ns: int = 0
    iowait_ns: int = 0
    irq_ns: int = 0
    softirq_ns: int = 0
    nr_switches: int = 0
    #: schedstat: time tasks spent waiting on the runqueue
    wait_ns: int = 0
    #: schedstat: number of timeslices handed out
    timeslices: int = 0


@dataclass
class TickResult:
    """Everything one scheduler tick produced, for other subsystems."""

    dt: float
    #: per-task activity this tick
    task_samples: List[Tuple[Task, ActivitySample]] = field(default_factory=list)
    #: host-wide totals
    total: ActivitySample = field(default_factory=ActivitySample)
    #: per-CPU busy seconds this tick
    busy_seconds: Dict[int, float] = field(default_factory=dict)
    #: per-CPU utilization in [0,1]
    utilization: Dict[int, float] = field(default_factory=dict)
    #: per-CPU aggregated activity this tick
    cpu_samples: Dict[int, ActivitySample] = field(default_factory=dict)


class Scheduler:
    """Proportional-fair CPU time allocation with perf-overhead modelling."""

    def __init__(
        self,
        config: HostConfig,
        cgroups: CgroupManager,
        perf: PerfSubsystem,
        rng=None,
    ):
        from repro.sim.rng import DeterministicRNG

        self.config = config
        self.cgroups = cgroups
        self.perf = perf
        self._rng = rng or DeterministicRNG(seed=0)
        self.ncpus = config.total_cores
        self.frequency_hz = config.cpu.frequency_hz
        self.cpu_stats: Dict[int, CpuStat] = {c: CpuStat() for c in range(self.ncpus)}
        self.loadavg_1 = 0.0
        self.loadavg_5 = 0.0
        self.loadavg_15 = 0.0
        self._tasks: List[Task] = []
        self._placement: Dict[Task, int] = {}
        #: CPU-time debt (ns) charged to tasks for perf event setup at spawn
        self._spawn_debt_ns: Dict[Task, int] = {}
        self.total_forks = 0
        self.nr_switches_total = 0
        #: running sum of per-CPU idle time — kept alongside the per-CPU
        #: stats so ``Kernel.idle_seconds`` (the /proc/uptime sampling
        #: path) is O(1) instead of summing ``cpu_stats`` on every read
        self.idle_ns_total = 0
        #: /proc/sys/kernel/sched_domain/cpu#/domain0/max_newidle_lb_cost —
        #: a per-CPU cost estimate the kernel updates continuously, leaked
        #: host-globally (Table II lists it as a V=True channel)
        self.max_newidle_lb_cost: Dict[int, int] = {
            c: 12000 + 700 * c for c in range(self.ncpus)
        }

    # ------------------------------------------------------------------
    # task admission / placement

    def _allowed_cpus(self, task: Task) -> List[int]:
        allowed = set(range(self.ncpus))
        if task.affinity is not None:
            allowed &= set(task.affinity)
        cpuset = self.cgroups.hierarchy("cpuset").cgroup_of(task).state
        assert isinstance(cpuset, CpusetState)
        if cpuset.cpus is not None:
            allowed &= set(cpuset.cpus)
        if not allowed:
            raise KernelError(f"task {task.name!r} has an empty CPU mask")
        return sorted(allowed)

    def _cpu_load(self, cpu: int) -> float:
        return sum(
            t.workload.demand()
            for t, c in self._placement.items()
            if c == cpu and t.workload is not None
        )

    def add_task(self, task: Task) -> None:
        """Admit a task: pick the least-loaded allowed CPU."""
        if task in self._placement:
            raise KernelError(f"task already scheduled: {task}")
        allowed = self._allowed_cpus(task)
        cpu = min(allowed, key=self._cpu_load)
        self._placement[task] = cpu
        self._tasks.append(task)
        self.total_forks += 1
        # Spawning into a monitored cgroup wires the task into the cgroup's
        # perf events; the cost is paid out of the task's first grants.
        perf_cg = self.cgroups.hierarchy("perf_event").cgroup_of(task)
        if self.perf.is_monitored(perf_cg):
            self._spawn_debt_ns[task] = self.perf.tuning.spawn_ns

    def remove_task(self, task: Task) -> None:
        """Withdraw a (dead or stopped) task from scheduling."""
        self._placement.pop(task, None)
        self._spawn_debt_ns.pop(task, None)
        try:
            self._tasks.remove(task)
        except ValueError:
            raise KernelError(f"task not scheduled: {task}")

    def placement_of(self, task: Task) -> Optional[int]:
        """The CPU a task is currently placed on."""
        return self._placement.get(task)

    def tasks_on_cpu(self, cpu: int) -> List[Task]:
        """Tasks currently placed on ``cpu`` (for sched_debug rendering)."""
        return [t for t, c in self._placement.items() if c == cpu]

    @property
    def tasks(self) -> List[Task]:
        """All tasks known to the scheduler."""
        return list(self._tasks)

    def iter_tasks(self):
        """Iterate scheduled tasks without copying (hot-path accessor)."""
        return iter(self._tasks)

    def rebalance(self) -> None:
        """Re-place every task (cheap global rebalance after churn)."""
        tasks = list(self._tasks)
        self._placement.clear()
        for task in tasks:
            allowed = self._allowed_cpus(task)
            self._placement[task] = min(allowed, key=self._cpu_load)

    # ------------------------------------------------------------------
    # the tick

    def tick(self, dt: float) -> TickResult:
        """Advance all runnable tasks by ``dt`` seconds of virtual time."""
        if dt <= 0:
            raise KernelError(f"scheduler tick needs positive dt: {dt}")
        result = TickResult(dt=dt)
        perf_h = self.cgroups.hierarchy("perf_event")
        cpuacct_h = self.cgroups.hierarchy("cpuacct")
        memory_h = self.cgroups.hierarchy("memory")
        contention = self.perf.contention_slowdown()
        quota_scale = self._quota_scales(dt)

        nr_running = 0.0
        for cpu in range(self.ncpus):
            on_cpu = [
                t
                for t in self.tasks_on_cpu(cpu)
                if t.state is TaskState.RUNNING and t.workload is not None
                and not t.workload.finished
            ]
            demands = {
                t: t.workload.demand() * quota_scale.get(t, 1.0) for t in on_cpu
            }
            total_demand = sum(demands.values())
            nr_running += total_demand

            scale = 1.0 if total_demand <= 1.0 else 1.0 / total_demand
            idle_fraction = max(0.0, 1.0 - total_demand)
            busy_seconds = 0.0
            stat = self.cpu_stats[cpu]
            switches_this_cpu = 0
            cpu_sample = ActivitySample()

            for task in on_cpu:
                demand = demands[task]
                granted = demand * scale * dt
                if granted <= 0:
                    continue
                overhead_s = self._overhead_seconds(
                    task, granted, dt, demands, idle_fraction, perf_h, contention
                )
                useful = max(0.0, granted - overhead_s)
                sample = task.workload.consume(useful, dt, self.frequency_hz)
                # Overhead is busy (system) time even though it does no work.
                busy_ns = int(granted * 1e9)
                task.cpu_time_ns += busy_ns
                task.vruntime_ns += busy_ns
                task.rss_bytes = sample.rss_bytes

                system_ns = min(
                    int(busy_ns * 0.8),
                    int(sample.syscalls * 500) + int(overhead_s * 1e9),
                )
                stat.system_ns += system_ns
                stat.user_ns += busy_ns - system_ns

                # Context switches: voluntary from the workload; involuntary
                # preemptions when the CPU is oversubscribed.
                vol = sample.voluntary_switches
                invol = int(self.config.hz * dt) if total_demand > 1.0 else 0
                task.nvcsw += vol
                task.nivcsw += invol
                switches_this_cpu += vol + invol

                # waiting time while oversubscribed (for schedstat)
                stat.wait_ns += int(max(0.0, demand * dt - granted) * 1e9)
                stat.timeslices += max(1, vol + invol)

                self._charge(task, cpu, sample, busy_ns, cpuacct_h, perf_h, memory_h)
                result.task_samples.append((task, sample))
                result.total = result.total + sample
                cpu_sample = cpu_sample + sample
                busy_seconds += granted

            stat.nr_switches += switches_this_cpu
            self.nr_switches_total += switches_this_cpu
            idle_ns = int(max(0.0, dt - busy_seconds) * 1e9)
            stat.idle_ns += idle_ns
            self.idle_ns_total += idle_ns
            result.busy_seconds[cpu] = busy_seconds
            result.utilization[cpu] = min(1.0, busy_seconds / dt)
            result.cpu_samples[cpu] = cpu_sample

        self._update_loadavg(nr_running, dt)
        self._update_sched_domain_costs(result)
        self.perf.finish_tick(dt)
        self._reap_finished()
        return result

    def _update_sched_domain_costs(self, result: TickResult) -> None:
        """Drift max_newidle_lb_cost with per-CPU load, as CFS does.

        The kernel raises the cost estimate when idle balancing finds work
        (busy neighbours) and decays it ~1%/s otherwise; individual balance
        attempts measure wildly varying durations (cache state, lock
        contention), so the estimate is a noisy host-load-correlated
        random-walk — never a constant.
        """
        stream = self._rng.stream("newidle-cost")
        for cpu in range(self.ncpus):
            util = result.utilization.get(cpu, 0.0)
            cost = self.max_newidle_lb_cost[cpu]
            cost = int(cost * (1.0 - 0.01 * result.dt))
            cost += int(4000 * util * result.dt)
            cost += stream.randint(-120, 120) + int(util * stream.randint(0, 600))
            self.max_newidle_lb_cost[cpu] = max(2000, min(cost, 5_000_000))

    # ------------------------------------------------------------------
    # internals

    def _quota_scales(self, dt: float) -> Dict[Task, float]:
        """CFS bandwidth control: per-task demand scale from cpu quotas.

        For each cpu cgroup with a quota, aggregate its runnable demand
        host-wide; when it exceeds the quota, every member's demand is
        scaled down proportionally and the denied time is accounted as
        throttled.
        """
        from repro.kernel.cgroups import CpuQuotaState

        scales: Dict[Task, float] = {}
        cpu_h = self.cgroups.hierarchy("cpu")
        for cgroup in cpu_h.root.walk():
            state = cgroup.state
            assert isinstance(state, CpuQuotaState)
            if state.quota_cores is None or not cgroup.tasks:
                continue
            runnable = [
                t
                for t in cgroup.tasks
                if t.state is TaskState.RUNNING and t.workload is not None
                and not t.workload.finished
            ]
            total = sum(t.workload.demand() for t in runnable)
            if total <= state.quota_cores or total <= 0:
                continue
            scale = state.quota_cores / total
            for task in runnable:
                scales[task] = scale
            state.throttled_ns += int((total - state.quota_cores) * dt * 1e9)
        return scales

    def _overhead_seconds(
        self,
        task: Task,
        granted: float,
        dt: float,
        demands: Dict[Task, float],
        idle_fraction: float,
        perf_h,
        contention: float,
    ) -> float:
        """Perf-accounting overhead charged against one task's grant."""
        perf_cg = perf_h.cgroup_of(task)
        if not self.perf.is_monitored(perf_cg):
            return 0.0
        overhead = granted * contention

        # Pay off any perf-event spawn debt first.
        debt = self._spawn_debt_ns.pop(task, 0)
        if debt:
            overhead += debt / 1e9

        # Counter toggling on inter-cgroup switches: estimate the chance
        # that the context we switch to is outside our perf cgroup. Peers
        # in the same cgroup on this CPU absorb switches cheaply; idle
        # time and foreign tasks force a disable/enable pair.
        phase = task.workload.current_phase if task.workload else None
        if phase is not None and phase.voluntary_switches_per_sec > 0:
            same = sum(
                d
                for t, d in demands.items()
                if t is not task and perf_h.cgroup_of(t) is perf_cg
            )
            other = sum(
                d
                for t, d in demands.items()
                if t is not task and perf_h.cgroup_of(t) is not perf_cg
            )
            denom = same + other + idle_fraction
            p_inter = (other + idle_fraction) / denom if denom > 0 else 1.0
            switches = phase.voluntary_switches_per_sec * dt
            overhead += switches * p_inter * self.perf.tuning.toggle_ns / 1e9
        return min(overhead, granted)

    def _charge(
        self,
        task: Task,
        cpu: int,
        sample: ActivitySample,
        busy_ns: int,
        cpuacct_h,
        perf_h,
        memory_h,
    ) -> None:
        cpuacct = cpuacct_h.cgroup_of(task).state
        assert isinstance(cpuacct, CpuAcctState)
        cpuacct.charge(cpu, busy_ns)

        self.perf.charge(
            perf_h.cgroup_of(task),
            sample.cycles,
            sample.instructions,
            sample.cache_misses,
            sample.branch_misses,
        )

        mem_cg = memory_h.cgroup_of(task)
        mem_state = mem_cg.state
        assert isinstance(mem_state, MemoryState)
        usage = sum(t.rss_bytes for t in mem_cg.tasks)
        mem_state.set_usage(usage)

    def _update_loadavg(self, nr_running: float, dt: float) -> None:
        """Exponentially-damped load averages, as the kernel computes them."""
        import math

        for attr, period in (("loadavg_1", 60.0), ("loadavg_5", 300.0), ("loadavg_15", 900.0)):
            decay = math.exp(-dt / period)
            current = getattr(self, attr)
            setattr(self, attr, current * decay + nr_running * (1.0 - decay))

    def _reap_finished(self) -> None:
        for task in [t for t in self._tasks if t.workload is not None and t.workload.finished]:
            task.state = TaskState.SLEEPING
