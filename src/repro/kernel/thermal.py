"""Core temperature sensors behind
``/sys/devices/platform/coretemp.*/hwmon/hwmon*/temp*_input``.

Per-core Digital Temperature Sensor readings follow utilization with a
first-order thermal lag. The channel is host-global: a tenant who pins a
hot loop to a core with ``taskset`` raises a temperature every co-resident
container can read — the paper's example of *indirect* manipulation
(metric M = half-filled) and a classic thermal covert channel substrate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.errors import KernelError
from repro.kernel.scheduler import TickResult
from repro.sim.rng import DeterministicRNG


@dataclass
class CoreSensor:
    """One core's DTS reading."""

    core: int
    temp_c: float

    @property
    def millidegrees(self) -> int:
        """The integer millidegree value sysfs reports."""
        return int(self.temp_c * 1000)


class ThermalSubsystem:
    """First-order thermal model per core."""

    AMBIENT_C = 36.0
    #: °C above ambient at 100% sustained utilization
    FULL_LOAD_DELTA_C = 32.0
    #: thermal time constant (seconds)
    TAU_S = 12.0
    #: package-level coupling: neighbours heat each other
    COUPLING = 0.25

    #: sensor-noise sigma (°C per tick)
    NOISE_SIGMA = 0.3

    def __init__(self, ncpus: int, rng: DeterministicRNG, present: bool = True):
        self.present = present
        self._rng = rng
        #: tick cursor: draw ``n`` of ``temp-noise-{core}`` is the noise
        #: of tick ``n`` — index-addressed so the columnar engine can
        #: compute the same draws without visiting the stateful stream
        self._noise_calls = 0
        self.sensors: List[CoreSensor] = [
            CoreSensor(core=c, temp_c=self.AMBIENT_C) for c in range(ncpus)
        ]

    def sensor(self, core: int) -> CoreSensor:
        """The DTS of one core."""
        if not self.present:
            raise KernelError("no coretemp sensors on this host")
        try:
            return self.sensors[core]
        except IndexError:
            raise KernelError(f"no such core: {core}")

    def package_temp(self) -> float:
        """The package sensor (max of cores, as coretemp reports)."""
        return max(s.temp_c for s in self.sensors)

    def tick(self, result: TickResult) -> None:
        """Relax each core toward its utilization-driven target."""
        if not self.present:
            return
        dt = result.dt
        mean_util = (
            sum(result.utilization.values()) / len(self.sensors)
            if result.utilization
            else 0.0
        )
        alpha = min(1.0, dt / self.TAU_S)
        index = self._noise_calls
        self._noise_calls = index + 1
        for sensor in self.sensors:
            util = result.utilization.get(sensor.core, 0.0)
            effective = (1 - self.COUPLING) * util + self.COUPLING * mean_util
            target = self.AMBIENT_C + self.FULL_LOAD_DELTA_C * effective
            noise = self._rng.keyed(f"temp-noise-{sensor.core}").gauss(
                index, self.NOISE_SIGMA
            )
            sensor.temp_c += (target - sensor.temp_c) * alpha + noise * alpha
