"""Control groups: per-container resource accounting and control.

The defense's data-collection stage (Section V-B-1) hangs off two
controllers modelled here: *cpuacct* (accumulated CPU cycles per container)
and *perf_event* (retired instructions, cache misses, branch misses per
container). *net_prio* is modelled because its ``net_prio.ifpriomap`` file
is the paper's Case Study I leak; *cpuset* and *memory* bound container
resources.

Each controller is its own hierarchy, as in cgroup-v1 (which is what Docker
used at the paper's kernel version, 4.7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, Set

from repro.errors import KernelError
from repro.kernel.process import Task


@dataclass
class PerfCounters:
    """Hardware performance counters accumulated for a cgroup."""

    cycles: int = 0
    instructions: int = 0
    cache_misses: int = 0
    branch_misses: int = 0

    def add(self, cycles: int, instructions: int, cache_misses: int, branch_misses: int) -> None:
        """Accumulate one activity sample."""
        self.cycles += cycles
        self.instructions += instructions
        self.cache_misses += cache_misses
        self.branch_misses += branch_misses

    def snapshot(self) -> "PerfCounters":
        """An immutable-by-convention copy of the current values."""
        return PerfCounters(
            cycles=self.cycles,
            instructions=self.instructions,
            cache_misses=self.cache_misses,
            branch_misses=self.branch_misses,
        )

    def delta(self, earlier: "PerfCounters") -> "PerfCounters":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return PerfCounters(
            cycles=self.cycles - earlier.cycles,
            instructions=self.instructions - earlier.instructions,
            cache_misses=self.cache_misses - earlier.cache_misses,
            branch_misses=self.branch_misses - earlier.branch_misses,
        )


@dataclass
class CpuAcctState:
    """State of a *cpuacct* cgroup: accumulated CPU time per CPU."""

    usage_ns: int = 0
    per_cpu_ns: Dict[int, int] = field(default_factory=dict)

    def charge(self, cpu: int, ns: int) -> None:
        """Account ``ns`` nanoseconds of CPU time on ``cpu``."""
        self.usage_ns += ns
        self.per_cpu_ns[cpu] = self.per_cpu_ns.get(cpu, 0) + ns


@dataclass
class PerfEventState:
    """State of a *perf_event* cgroup.

    ``enabled`` is False on an unmodified kernel — per-cgroup performance
    accounting runs only when something (the defense's data-collection
    stage) creates the perf events. Enabling it is what introduces the
    inter-cgroup context-switch overhead measured in Table III.
    """

    counters: PerfCounters = field(default_factory=PerfCounters)
    enabled: bool = False

    def charge(self, cycles: int, instructions: int, cache_misses: int, branch_misses: int) -> None:
        """Accumulate counters if accounting is enabled."""
        if self.enabled:
            self.counters.add(cycles, instructions, cache_misses, branch_misses)


@dataclass
class NetPrioState:
    """State of a *net_prio* cgroup: priorities assigned per interface.

    Only explicitly-set priorities are stored; the pseudo-file *renderer*
    iterates the host's device list (the Case Study I bug), defaulting
    unset interfaces to priority 0 — so the stored map being per-cgroup
    does not prevent the leak.
    """

    prios: Dict[str, int] = field(default_factory=dict)

    def set_prio(self, ifname: str, prio: int) -> None:
        """Assign a priority to traffic leaving on ``ifname``."""
        if prio < 0:
            raise KernelError(f"negative net_prio priority: {prio}")
        self.prios[ifname] = prio


@dataclass
class MemoryState:
    """State of a *memory* cgroup."""

    limit_bytes: Optional[int] = None
    usage_bytes: int = 0
    max_usage_bytes: int = 0

    def set_usage(self, usage: int) -> None:
        """Update current usage, tracking the high-water mark."""
        self.usage_bytes = usage
        self.max_usage_bytes = max(self.max_usage_bytes, usage)


@dataclass
class CpusetState:
    """State of a *cpuset* cgroup: CPUs the group may run on."""

    cpus: Optional[FrozenSet[int]] = None


@dataclass
class CpuQuotaState:
    """State of a *cpu* cgroup: a CFS-bandwidth-style quota.

    ``quota_cores`` caps the group's aggregate CPU consumption in cores
    (the cfs_quota_us/cfs_period_us ratio); ``None`` means unlimited.
    ``throttled_ns`` accumulates the CPU time the cap denied — the
    ``nr_throttled``-style statistic the power-based throttler reports.
    """

    quota_cores: Optional[float] = None
    throttled_ns: int = 0

    def set_quota(self, cores: Optional[float]) -> None:
        """Set (or clear) the bandwidth cap."""
        if cores is not None and cores <= 0:
            raise KernelError(f"cpu quota must be positive: {cores}")
        self.quota_cores = cores


#: controller name -> state factory
_CONTROLLER_STATE = {
    "cpuacct": CpuAcctState,
    "perf_event": PerfEventState,
    "net_prio": NetPrioState,
    "memory": MemoryState,
    "cpuset": CpusetState,
    "cpu": CpuQuotaState,
}

CONTROLLERS = tuple(_CONTROLLER_STATE)


class Cgroup:
    """One node in one controller's hierarchy."""

    def __init__(self, controller: str, name: str, parent: Optional["Cgroup"]):
        if controller not in _CONTROLLER_STATE:
            raise KernelError(f"unknown cgroup controller: {controller}")
        self.controller = controller
        self.name = name
        self.parent = parent
        self.children: Dict[str, "Cgroup"] = {}
        self.tasks: Set[Task] = set()
        self.state = _CONTROLLER_STATE[controller]()

    @property
    def path(self) -> str:
        """Slash-separated path from the hierarchy root (root is '/')."""
        if self.parent is None:
            return "/"
        parts: List[str] = []
        node: Optional[Cgroup] = self
        while node is not None and node.parent is not None:
            parts.append(node.name)
            node = node.parent
        return "/" + "/".join(reversed(parts))

    def walk(self) -> Iterator["Cgroup"]:
        """Depth-first iteration over this subtree (self first)."""
        yield self
        for child in self.children.values():
            yield from child.walk()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Cgroup({self.controller}:{self.path})"


class Hierarchy:
    """One controller's cgroup tree plus task membership."""

    def __init__(self, controller: str):
        self.controller = controller
        self.root = Cgroup(controller, "", parent=None)
        self._membership: Dict[Task, Cgroup] = {}

    def create(self, path: str) -> Cgroup:
        """Create (or return) the cgroup at ``path`` ('/a/b' style)."""
        if not path.startswith("/"):
            raise KernelError(f"cgroup path must be absolute: {path!r}")
        node = self.root
        for part in [p for p in path.split("/") if p]:
            child = node.children.get(part)
            if child is None:
                child = Cgroup(self.controller, part, parent=node)
                node.children[part] = child
            node = child
        return node

    def lookup(self, path: str) -> Cgroup:
        """Return the cgroup at ``path``, raising if absent."""
        node = self.root
        for part in [p for p in path.split("/") if p]:
            try:
                node = node.children[part]
            except KeyError:
                raise KernelError(f"no such cgroup: {self.controller}:{path}")
        return node

    def attach(self, task: Task, cgroup: Cgroup) -> None:
        """Move ``task`` into ``cgroup`` (out of its previous group)."""
        if cgroup.controller != self.controller:
            raise KernelError(
                f"cgroup {cgroup} belongs to controller {cgroup.controller}, "
                f"not {self.controller}"
            )
        previous = self._membership.get(task)
        if previous is not None:
            previous.tasks.discard(task)
        cgroup.tasks.add(task)
        self._membership[task] = cgroup

    def cgroup_of(self, task: Task) -> Cgroup:
        """The cgroup a task belongs to (root if never attached)."""
        return self._membership.get(task, self.root)

    def detach(self, task: Task) -> None:
        """Remove a (dying) task from the hierarchy."""
        previous = self._membership.pop(task, None)
        if previous is not None:
            previous.tasks.discard(task)


class CgroupManager:
    """All controller hierarchies of one kernel."""

    def __init__(self) -> None:
        self.hierarchies: Dict[str, Hierarchy] = {
            name: Hierarchy(name) for name in CONTROLLERS
        }

    def hierarchy(self, controller: str) -> Hierarchy:
        """The hierarchy for ``controller``."""
        try:
            return self.hierarchies[controller]
        except KeyError:
            raise KernelError(f"unknown cgroup controller: {controller}")

    def create_group_set(self, name: str) -> Dict[str, Cgroup]:
        """Create a same-named cgroup under every controller.

        This is what the container runtime does per container (e.g.
        ``/docker/<id>`` under each controller in cgroup-v1).
        """
        return {
            controller: hierarchy.create(f"/{name}")
            for controller, hierarchy in self.hierarchies.items()
        }

    def attach_all(self, task: Task, groups: Dict[str, Cgroup]) -> None:
        """Attach a task to one cgroup per controller."""
        for controller, cgroup in groups.items():
            self.hierarchy(controller).attach(task, cgroup)

    def detach_all(self, task: Task) -> None:
        """Remove a task from every hierarchy."""
        for hierarchy in self.hierarchies.values():
            hierarchy.detach(task)
