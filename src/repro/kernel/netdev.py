"""Network devices and the NET namespace.

The device list is the subject of the paper's Case Study I: the
``net_prio.ifpriomap`` read handler calls ``for_each_netdev_rcu`` on
``&init_net`` — the *root* NET namespace — so a container reads the names
of every physical interface on the host even though its own NET namespace
holds only ``lo`` and a veth pair.

This module therefore keeps device lists per NET namespace and explicitly
exposes both the correct (namespaced) and the buggy (init_net) lookup;
which one a pseudo-file renderer uses is what decides whether it leaks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import KernelError
from repro.kernel.namespaces import Namespace, NamespaceType
from repro.kernel.scheduler import TickResult


@dataclass
class NetDevice:
    """One network interface."""

    name: str
    rx_bytes: int = 0
    tx_bytes: int = 0
    rx_packets: int = 0
    tx_packets: int = 0
    mtu: int = 1500


class NetSubsystem:
    """Per-NET-namespace device registry with a global ``init_net``."""

    def __init__(self, root_ns: Namespace, host_interfaces) -> None:
        if root_ns.ns_type is not NamespaceType.NET:
            raise KernelError(f"root namespace must be NET, got {root_ns.ns_type}")
        self._root_ns = root_ns
        self._devices: Dict[Namespace, List[NetDevice]] = {
            root_ns: [NetDevice(name=ifname) for ifname in host_interfaces]
        }

    @property
    def init_net(self) -> Namespace:
        """The root NET namespace (the kernel's ``init_net``)."""
        return self._root_ns

    def register_namespace(self, ns: Namespace) -> None:
        """Set up a fresh NET namespace with loopback + veth, like Docker."""
        if ns.ns_type is not NamespaceType.NET:
            raise KernelError(f"not a NET namespace: {ns}")
        if ns in self._devices:
            raise KernelError(f"NET namespace already registered: {ns}")
        self._devices[ns] = [NetDevice(name="lo"), NetDevice(name="eth0")]

    def devices_in(self, ns: Namespace) -> List[NetDevice]:
        """The *correct*, namespace-aware device lookup."""
        try:
            return list(self._devices[ns])
        except KeyError:
            raise KernelError(f"NET namespace not registered: {ns}")

    def for_each_netdev_init_net(self) -> List[NetDevice]:
        """The *buggy* lookup: iterate ``init_net`` regardless of caller.

        This mirrors ``read_priomap`` → ``for_each_netdev_rcu(&init_net)``
        — the root cause traced in Case Study I.
        """
        return list(self._devices[self._root_ns])

    def device(self, ns: Namespace, name: str) -> NetDevice:
        """One device in one namespace."""
        for dev in self._devices.get(ns, []):
            if dev.name == name:
                return dev
        raise KernelError(f"no device {name!r} in {ns}")

    def charge_traffic(self, ns: Namespace, nbytes: int) -> None:
        """Account traffic from a namespace's workloads.

        Container traffic leaves via the namespace's ``eth0`` (veth) and
        then crosses the host bridge and physical uplink, so host-side
        counters move too — which is how host ``/sys/class/net`` statistics
        leak co-resident activity.
        """
        if nbytes <= 0:
            return
        packets = max(1, nbytes // 1400)
        for dev in self._devices.get(ns, []):
            if dev.name == "eth0":
                dev.tx_bytes += nbytes // 2
                dev.rx_bytes += nbytes - nbytes // 2
                dev.tx_packets += packets // 2
                dev.rx_packets += packets - packets // 2
        if ns is not self._root_ns:
            for dev in self._devices[self._root_ns]:
                if dev.name in ("docker0", "eth0"):
                    dev.tx_bytes += nbytes // 2
                    dev.rx_bytes += nbytes - nbytes // 2
                    dev.tx_packets += packets // 2
                    dev.rx_packets += packets - packets // 2

    def tick(self, result: TickResult, task_ns_lookup) -> None:
        """Distribute this tick's traffic to the owning namespaces.

        ``task_ns_lookup`` maps a task to its NET namespace.
        """
        for task, sample in result.task_samples:
            if sample.net_bytes:
                self.charge_traffic(task_ns_lookup(task), sample.net_bytes)
