"""Loaded-module list behind ``/proc/modules``.

The module list is host-global and static in practice, which is why
Table II marks the channel U=V=M=False ("hard to exploit"): most servers in
one datacenter run the same image with the same modules, so the list leaks
host configuration without uniquely identifying a machine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import KernelError


@dataclass
class Module:
    """One kernel module entry."""

    name: str
    size: int
    refcount: int
    dependencies: Tuple[str, ...] = ()
    state: str = "Live"

    def render(self, base_address: int) -> str:
        """Format as one /proc/modules line."""
        deps = ",".join(self.dependencies) + "," if self.dependencies else "-"
        return (
            f"{self.name} {self.size} {self.refcount} {deps} "
            f"{self.state} 0x{base_address:016x}"
        )


class ModuleSubsystem:
    """The host's loaded-module table."""

    def __init__(self, modules: Tuple[Tuple[str, int, int], ...]):
        self._modules: List[Module] = [
            Module(name=name, size=size, refcount=refs) for name, size, refs in modules
        ]

    @property
    def modules(self) -> List[Module]:
        """All loaded modules in load order."""
        return list(self._modules)

    def find(self, name: str) -> Optional[Module]:
        """Look up a module by name."""
        for module in self._modules:
            if module.name == name:
                return module
        return None

    def load(self, name: str, size: int = 16384) -> Module:
        """Load a module (host-admin operation; containers cannot)."""
        if self.find(name) is not None:
            raise KernelError(f"module already loaded: {name}")
        module = Module(name=name, size=size, refcount=0)
        self._modules.insert(0, module)
        return module

    def unload(self, name: str) -> None:
        """Unload a module with zero references."""
        module = self.find(name)
        if module is None:
            raise KernelError(f"module not loaded: {name}")
        if module.refcount > 0:
            raise KernelError(f"module in use: {name} (refcount={module.refcount})")
        self._modules.remove(module)
