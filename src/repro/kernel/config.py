"""Host hardware and kernel configuration.

A :class:`HostConfig` fully describes one simulated physical server: CPU
model and topology, memory and NUMA layout, network devices, storage, which
hardware sensors exist (RAPL, coretemp), and the kernel/distro version
strings surfaced by ``/proc/version``.

Provider profiles (Section III-B of the paper, Table I) differ both in
masking policy *and* in hardware: e.g. a cloud on pre-Sandy-Bridge Intel or
AMD machines simply has no RAPL sysfs tree, so the ``energy_uj`` channel is
absent there regardless of policy. Hardware absence and policy masking are
therefore modelled independently.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

from repro.errors import KernelError


@dataclass(frozen=True)
class CpuSpec:
    """CPU package specification (one socket).

    ``supports_rapl`` tracks the paper's observation that RAPL exists only
    on Intel Sandy Bridge and later; ``supports_dts`` likewise for the
    Digital Temperature Sensor interface.
    """

    model_name: str = "Intel(R) Core(TM) i7-6700 CPU @ 3.40GHz"
    vendor_id: str = "GenuineIntel"
    cpu_family: int = 6
    model: int = 94
    stepping: int = 3
    frequency_mhz: float = 3400.0
    cores: int = 8
    cache_size_kb: int = 8192
    supports_rapl: bool = True
    supports_dts: bool = True

    @property
    def frequency_hz(self) -> float:
        """Clock frequency in Hz (cycles per second)."""
        return self.frequency_mhz * 1e6


#: CPU specs used by the provider profiles. The pre-Sandy-Bridge and AMD
#: entries exist so that Table I's "channel unavailable due to hardware"
#: cells arise for the same reason as in the paper.
INTEL_SKYLAKE = CpuSpec()
INTEL_XEON_CLOUD = CpuSpec(
    model_name="Intel(R) Xeon(R) CPU E5-2697A @ 3.40GHz",
    cpu_family=6,
    model=79,
    stepping=1,
    frequency_mhz=3400.0,
    cores=16,
    cache_size_kb=40960,
    supports_rapl=True,
    supports_dts=True,
)
INTEL_PRE_SANDY_BRIDGE = CpuSpec(
    model_name="Intel(R) Xeon(R) CPU X5570 @ 2.93GHz",
    cpu_family=6,
    model=26,
    stepping=5,
    frequency_mhz=2930.0,
    cores=8,
    supports_rapl=False,
    supports_dts=True,
)
AMD_OPTERON = CpuSpec(
    model_name="AMD Opteron(tm) Processor 6276",
    vendor_id="AuthenticAMD",
    cpu_family=21,
    model=1,
    stepping=2,
    frequency_mhz=2300.0,
    cores=8,
    cache_size_kb=2048,
    supports_rapl=False,
    supports_dts=False,
)


@dataclass(frozen=True)
class PowerModelParams:
    """Parameters of the host's *true* (hardware) power behaviour.

    These generate the ground-truth energy that RAPL reports. The defense's
    software model (``repro.defense.modeling``) must *learn* an
    approximation of this; it never reads these parameters directly.

    Units: energy in joules, counts in raw events.

    - ``core_idle_watts``: static power of the core domain at zero load.
    - ``energy_per_cycle``: dynamic core energy per busy CPU cycle.
    - ``energy_per_cache_miss``: core-domain stall energy per LLC miss.
    - ``energy_per_branch_miss``: pipeline-flush energy per branch miss.
    - ``dram_idle_watts``: DRAM background (refresh) power.
    - ``dram_energy_per_miss``: DRAM access energy per LLC miss.
    - ``uncore_watts``: constant package power outside core+DRAM (λ's
      physical counterpart in Formula 2).
    - ``noise_fraction``: multiplicative Gaussian measurement noise applied
      to RAPL readings, as fraction of the increment.
    """

    core_idle_watts: float = 6.0
    energy_per_cycle: float = 2.9e-9
    energy_per_cache_miss: float = 6.0e-9
    energy_per_branch_miss: float = 9.0e-9
    dram_idle_watts: float = 2.5
    dram_energy_per_miss: float = 5.1e-8
    uncore_watts: float = 4.5
    noise_fraction: float = 0.01


@dataclass(frozen=True)
class HostConfig:
    """Complete description of one simulated physical server."""

    hostname: str = "host-0"
    cpu: CpuSpec = field(default_factory=lambda: INTEL_SKYLAKE)
    packages: int = 1
    memory_mb: int = 16384
    numa_nodes: int = 1
    disks: Tuple[str, ...] = ("sda",)
    net_interfaces: Tuple[str, ...] = ("lo", "eth0", "eth1", "docker0")
    kernel_version: str = "4.7.0"
    gcc_version: str = "5.4.0 20160609"
    distribution: str = "Ubuntu 16.04"
    kernel_build: str = "#1 SMP"
    #: modules loaded at boot (name, size_bytes, refcount)
    modules: Tuple[Tuple[str, int, int], ...] = (
        ("xt_conntrack", 16384, 1),
        ("br_netfilter", 24576, 0),
        ("bridge", 126976, 1),
        ("stp", 16384, 1),
        ("llc", 16384, 2),
        ("overlay", 49152, 0),
        ("nf_nat", 24576, 2),
        ("nf_conntrack", 106496, 3),
        ("intel_rapl", 20480, 0),
        ("x86_pkg_temp_thermal", 16384, 0),
        ("coretemp", 16384, 0),
        ("ext4", 585728, 1),
        ("mbcache", 16384, 1),
        ("jbd2", 106496, 1),
    )
    power: PowerModelParams = field(default_factory=PowerModelParams)
    #: scheduler tick rate (Linux CONFIG_HZ)
    hz: int = 250

    def __post_init__(self) -> None:
        if self.packages < 1:
            raise KernelError(f"need at least one CPU package: {self.packages}")
        if self.cpu.cores < 1:
            raise KernelError(f"need at least one core: {self.cpu.cores}")
        if self.memory_mb < 64:
            raise KernelError(f"memory too small to boot: {self.memory_mb} MB")
        if self.numa_nodes < 1 or self.numa_nodes > self.packages * 4:
            raise KernelError(f"implausible NUMA node count: {self.numa_nodes}")

    @property
    def total_cores(self) -> int:
        """Total logical CPUs across all packages."""
        return self.packages * self.cpu.cores

    @property
    def memory_bytes(self) -> int:
        """Installed RAM in bytes."""
        return self.memory_mb * 1024 * 1024

    @property
    def has_rapl(self) -> bool:
        """Whether the RAPL powercap sysfs tree exists on this host."""
        return self.cpu.supports_rapl

    @property
    def has_coretemp(self) -> bool:
        """Whether the coretemp hwmon sysfs tree exists on this host."""
        return self.cpu.supports_dts
