"""Tasks and the process table.

A :class:`Task` is the simulated ``task_struct``: it carries a *host* pid,
one pid per enclosing PID namespace (Linux gives a process one pid in every
PID namespace on its ancestry chain), a command name, namespace
associations, CPU affinity, scheduling accounting, and — when the container
runtime attaches one — a workload that generates CPU activity each tick.

Task names matter here: several leakage channels (``/proc/sched_debug``,
``/proc/timer_list``, ``/proc/locks``) expose host-global tables keyed by
task name, which is what makes signature implantation (Section III-C) work.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterator, List, Optional, TYPE_CHECKING

from repro.errors import KernelError
from repro.kernel.namespaces import Namespace, NamespaceType

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.runtime.workload import Workload


class TaskState(enum.Enum):
    """Coarse task states (enough for scheduler and procfs rendering)."""

    RUNNING = "R"
    SLEEPING = "S"
    DEAD = "X"


@dataclass(eq=False)
class Task:
    """One simulated process/thread."""

    pid: int
    name: str
    namespaces: Dict[NamespaceType, Namespace]
    start_time: float
    #: pid as seen from each PID namespace on the ancestry chain
    ns_pids: Dict[Namespace, int] = field(default_factory=dict)
    state: TaskState = TaskState.RUNNING
    #: allowed CPUs; None means "all" (affinity is the `taskset` knob used
    #: by the paper's indirect-manipulation channels)
    affinity: Optional[FrozenSet[int]] = None
    workload: Optional["Workload"] = None
    #: accumulated CPU time in nanoseconds
    cpu_time_ns: int = 0
    #: voluntary / involuntary context switches
    nvcsw: int = 0
    nivcsw: int = 0
    #: scheduler vruntime proxy (for sched_debug rendering)
    vruntime_ns: int = 0
    #: resident memory footprint in bytes (driven by workload)
    rss_bytes: int = 0

    @property
    def pid_namespace(self) -> Namespace:
        """The PID namespace the task lives in."""
        return self.namespaces[NamespaceType.PID]

    def pid_in(self, pid_ns: Namespace) -> Optional[int]:
        """The task's pid as seen from ``pid_ns``.

        Returns ``None`` when the task is not visible from that namespace
        (i.e. ``pid_ns`` is not on the task's PID-namespace ancestry chain),
        which is exactly the visibility rule a real PID namespace enforces.
        """
        return self.ns_pids.get(pid_ns)

    def visible_from(self, pid_ns: Namespace) -> bool:
        """Whether the task appears in ``pid_ns``'s process listing."""
        return pid_ns in self.ns_pids

    @property
    def alive(self) -> bool:
        """Whether the task is still in the process table."""
        return self.state is not TaskState.DEAD

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Task(pid={self.pid}, name={self.name!r}, state={self.state.value})"


class ProcessTable:
    """Host-global process table with per-PID-namespace pid allocation."""

    def __init__(self) -> None:
        self._host_pids = itertools.count(1)
        self._ns_counters: Dict[Namespace, itertools.count] = {}
        self._tasks: Dict[int, Task] = {}

    def _next_pid_in(self, pid_ns: Namespace) -> int:
        counter = self._ns_counters.get(pid_ns)
        if counter is None:
            counter = itertools.count(1)
            self._ns_counters[pid_ns] = counter
        return next(counter)

    def spawn(
        self,
        name: str,
        namespaces: Dict[NamespaceType, Namespace],
        now: float,
        affinity: Optional[FrozenSet[int]] = None,
    ) -> Task:
        """Create a task inside the given namespace set.

        The task receives a pid in its own PID namespace and every ancestor
        PID namespace up to (and including) the root, mirroring
        ``alloc_pid`` in the kernel.
        """
        if NamespaceType.PID not in namespaces:
            raise KernelError(f"task {name!r} has no PID namespace")
        pid_ns = namespaces[NamespaceType.PID]

        ns_pids: Dict[Namespace, int] = {}
        chain: List[Namespace] = []
        ns: Optional[Namespace] = pid_ns
        while ns is not None:
            chain.append(ns)
            ns = ns.parent
        # Allocate from the innermost namespace outward; the root-namespace
        # pid is the host pid.
        for level in chain:
            ns_pids[level] = self._next_pid_in(level)
        host_pid = ns_pids[chain[-1]]

        task = Task(
            pid=host_pid,
            name=name,
            namespaces=dict(namespaces),
            start_time=now,
            ns_pids=ns_pids,
            affinity=affinity,
        )
        self._tasks[host_pid] = task
        return task

    def reap(self, task: Task) -> None:
        """Remove a dead task from the table."""
        if task.pid not in self._tasks:
            raise KernelError(f"task not in table: {task}")
        task.state = TaskState.DEAD
        del self._tasks[task.pid]

    def get(self, host_pid: int) -> Task:
        """Look up a live task by host pid."""
        try:
            return self._tasks[host_pid]
        except KeyError:
            raise KernelError(f"no such pid: {host_pid}")

    def __iter__(self) -> Iterator[Task]:
        return iter(list(self._tasks.values()))

    def __len__(self) -> int:
        return len(self._tasks)

    def tasks_visible_from(self, pid_ns: Namespace) -> List[Task]:
        """All tasks visible from a PID namespace (the ``/proc`` listing)."""
        return [t for t in self._tasks.values() if t.visible_from(pid_ns)]

    def find_by_name(self, name: str) -> List[Task]:
        """All live tasks with the given command name."""
        return [t for t in self._tasks.values() if t.name == name]
