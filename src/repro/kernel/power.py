"""The host's ground-truth power behaviour.

This is the "hardware": it converts each tick's activity into joules for
the core, DRAM, and package RAPL domains using the
:class:`repro.kernel.config.PowerModelParams` of the host. The defense's
*software* model (``repro.defense.modeling``) must learn an approximation
of this mapping from perf counters — it never sees these parameters.

The linearity structure is chosen to match the paper's measurements:
energy is linear in retired instructions *within* a workload (Figure 6,
slope set by the workload's IPC and miss mix) and DRAM energy is linear in
LLC misses across workloads (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import KernelError
from repro.kernel.config import HostConfig
from repro.kernel.scheduler import TickResult
from repro.kernel.activity import ActivitySample


@dataclass(frozen=True)
class EnergyBreakdown:
    """Joules consumed during one tick, by RAPL domain, per package."""

    core_j: float
    dram_j: float
    uncore_j: float

    @property
    def package_j(self) -> float:
        """Package = core + DRAM-controller + uncore, as RAPL sums it."""
        return self.core_j + self.dram_j + self.uncore_j


class PowerModel:
    """Activity → energy conversion for one host."""

    def __init__(self, config: HostConfig):
        self.config = config
        self.params = config.power
        self._cpu_to_package = {
            cpu: cpu // config.cpu.cores for cpu in range(config.total_cores)
        }

    def package_of(self, cpu: int) -> int:
        """Which package a CPU belongs to."""
        try:
            return self._cpu_to_package[cpu]
        except KeyError:
            raise KernelError(f"no such cpu: {cpu}")

    def energy_for_sample(self, sample: ActivitySample, dt: float) -> EnergyBreakdown:
        """Energy attributable to one activity sample (dynamic part only).

        Static (idle/uncore) power is per-package and added in
        :meth:`tick_energy`; this method is exposed separately because the
        accuracy evaluation (Figure 8) needs ground-truth active energy per
        container.
        """
        p = self.params
        core = (
            p.energy_per_cycle * sample.cycles
            + p.energy_per_cache_miss * sample.cache_misses
            + p.energy_per_branch_miss * sample.branch_misses
        )
        dram = p.dram_energy_per_miss * sample.cache_misses
        return EnergyBreakdown(core_j=core, dram_j=dram, uncore_j=0.0)

    def tick_energy(self, result: TickResult) -> Dict[int, EnergyBreakdown]:
        """Energy per package for one tick (static + dynamic)."""
        p = self.params
        dt = result.dt
        packages = self.config.packages
        core_j: List[float] = [p.core_idle_watts * dt] * packages
        dram_j: List[float] = [p.dram_idle_watts * dt] * packages
        uncore_j: List[float] = [p.uncore_watts * dt] * packages

        for cpu, sample in result.cpu_samples.items():
            pkg = self.package_of(cpu)
            dynamic = self.energy_for_sample(sample, dt)
            core_j[pkg] += dynamic.core_j
            dram_j[pkg] += dynamic.dram_j

        return {
            pkg: EnergyBreakdown(
                core_j=core_j[pkg], dram_j=dram_j[pkg], uncore_j=uncore_j[pkg]
            )
            for pkg in range(packages)
        }

    def idle_package_watts(self) -> float:
        """Package power of a completely idle package."""
        p = self.params
        return p.core_idle_watts + p.dram_idle_watts + p.uncore_watts
