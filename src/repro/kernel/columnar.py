"""Columnar host engine: cold hosts tick as numpy column sweeps.

PR 6 vectorized the *tenant* plane; this module vectorizes the *host*
plane. Every rack used to tick per-object Python :class:`Kernel`\\ s, so
rack counts capped at tens. The :class:`ColumnarHostEngine` splits a
fleet into **hot** hosts (full per-object fidelity, ticked exactly as
before) and **cold** hosts, whose externally observable per-tick outputs
— scheduler demand aggregation, per-core activity, ``power.tick_energy``
breakdowns, RAPL counter accumulation (with hardware-MSR wraparound) and
thermal sensor state — are computed as vectorized column sweeps keyed by
host index.

Bit-identity contract
---------------------
The engine is not an approximation of ``Kernel.tick``; it is the same
arithmetic, evaluated columnwise, plus **deferred replay** for the state
it does not mirror:

* A cold host *keeps* its fully booted :class:`Kernel` object; the
  engine merely defers its ticks, logging ``(t0, dt)`` barriers and the
  tenant-population operations (container creation, worker spawns and
  kills) that would have applied to it.
* Everything the outside world can observe *while the host is cold* is
  mirrored in columns with the exact IEEE-754 operation order of the
  scalar reference (``_TICK_STAGES`` in :mod:`repro.kernel.kernel`):
  sequential per-CPU demand folds in task order, the same ``int()``
  truncations of the workload consume path, the same per-package energy
  fold order, the same keyed RAPL/thermal noise draws by call index, and
  the same float-modulo counter wraparound.
* When something needs per-object fidelity — an attached RAPL observer
  or monitor, a procfs read, a scheduled fault targeting the host,
  attack exec/placement — :meth:`ensure_hot` **materializes** the host
  by replaying the logged barriers through the real ``Kernel.tick`` with
  the clock rewound (:meth:`VirtualClock.replay_window`). Nothing
  consumed the kernel's stateful RNG streams while it was cold, so the
  replay consumes exactly the draws the never-deferred run would have:
  the interior state (loadavg, schedstat, memory/filesystem/random
  subsystems, cpuacct, perf rates) comes out bit-identical *by
  construction*, and the column/scalar handoff is bitwise
  round-trippable in both directions.
* When the last observer releases (:meth:`observer_release`) and the
  host is eligible again, it is demoted back to columns by re-adopting
  the live kernel state.

Ordered float folds use ``np.add.at`` over a slot array sorted by
``(host, task position)``; ``ufunc.at`` is unbuffered and accumulates
repeated indices in element order, so each per-(host, CPU) fold happens
in task order exactly like the scalar loop. The golden equivalence suite
(``tests/datacenter/test_hostengine.py``) pins this bit for bit.

Eligibility
-----------
A host can go cold only when nothing about it needs the scalar path:
every task runs a single-phase unbounded constant workload with no
affinity/cpuset restriction, no cpu-quota cgroup is populated, no perf
cgroup is monitored, and the kernel has no tick listeners, subsystem
timings, or RAPL read hook. Heterogeneous hosts (config differing from
the fleet reference) simply stay hot forever — correct, just slower.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.kernel.kernel import Kernel
from repro.kernel.process import TaskState
from repro.kernel.thermal import ThermalSubsystem
from repro.sim.clock import VirtualClock
from repro.sim.rng import keyed_gauss_at, stream_key


def _config_signature(kernel: Kernel) -> tuple:
    """The config fields the column math depends on."""
    c = kernel.config
    return (
        c.total_cores,
        c.packages,
        c.cpu.cores,
        c.cpu.frequency_hz,
        c.has_rapl,
        c.has_coretemp,
        c.power,
    )


def _task_cold_eligible(kernel: Kernel, task) -> bool:
    """One task's veto on going cold (must be a constant, unrestricted load)."""
    workload = task.workload
    if workload is None or workload.finished:
        return False
    if task.state is not TaskState.RUNNING:
        return False
    if task.affinity is not None:
        return False
    if len(workload.phases) != 1 or workload.phases[0].duration is not None:
        return False
    cpuset = kernel.cgroups.hierarchy("cpuset").cgroup_of(task).state
    if cpuset.cpus is not None:
        return False
    return True


class ColumnarHostEngine:
    """Vectorized cold-host ticking with lazy hot-host materialization."""

    def __init__(
        self,
        kernels: Sequence[Kernel],
        engines: Sequence[object],
        clock: VirtualClock,
        power_config=None,
        population=None,
    ):
        from repro.datacenter.topology import ServerPowerConfig

        self.kernels: List[Kernel] = list(kernels)
        self.engines: List[object] = list(engines)
        if len(self.engines) != len(self.kernels):
            raise SimulationError("engines must match kernels 1:1")
        self.clock = clock
        self.power_config = power_config or ServerPowerConfig()
        self.population = None

        n = len(self.kernels)
        self.n = n
        ref = self.kernels[0]
        self._ref_sig = _config_signature(ref)
        self._C = ref.config.total_cores
        self._P = ref.config.packages
        self._cores_per_pkg = ref.config.cpu.cores
        self._freq = ref.config.cpu.frequency_hz
        self._params = ref.config.power
        self._has_rapl = ref.config.has_rapl
        self._has_coretemp = ref.config.has_coretemp
        C, P = self._C, self._P

        self.cold = np.zeros(n, dtype=bool)
        self._observers = np.zeros(n, dtype=np.int64)
        #: per-host mirror of ``kernel.ticks_taken`` while cold
        self._ticks = np.zeros(n, dtype=np.int64)
        self._fp = np.zeros(n, dtype=np.float64)
        self._wall = np.zeros(n, dtype=np.float64)
        self._cpu_demand = np.zeros((n, C), dtype=np.float64)
        self._scale = np.ones((n, C), dtype=np.float64)
        self._temps = np.zeros((n, C), dtype=np.float64)
        self._therm_calls = np.zeros(n, dtype=np.int64)
        self._temp_keys = np.zeros((n, C), dtype=np.uint64)
        self._rapl_core_uj = np.zeros((n, P), dtype=np.float64)
        self._rapl_dram_uj = np.zeros((n, P), dtype=np.float64)
        self._rapl_pkg_uj = np.zeros((n, P), dtype=np.float64)
        self._rapl_calls = np.zeros(n, dtype=np.int64)
        self._rapl_keys = np.zeros((n, P), dtype=np.uint64)
        self._rapl_range = float(0)
        self._adopt_t = np.zeros(n, dtype=np.float64)

        # task-mirror slots, flat and append-only (dead slots are masked
        # out and compacted when they dominate)
        cap = 64
        self._s_demand = np.zeros(cap, dtype=np.float64)
        self._s_ipc = np.zeros(cap, dtype=np.float64)
        self._s_cmr = np.zeros(cap, dtype=np.float64)
        self._s_bmr = np.zeros(cap, dtype=np.float64)
        self._s_host = np.zeros(cap, dtype=np.int64)
        self._s_cpu = np.zeros(cap, dtype=np.int64)
        self._s_alive = np.zeros(cap, dtype=bool)
        self._s_len = 0
        self._dead_slots = 0
        #: per-host slot ids in task order (the scalar ``_tasks`` mirror)
        self._host_slots: List[List[int]] = [[] for _ in range(n)]
        #: alive slots of cold hosts in (host, task position) order —
        #: the fold order of every order-sensitive float accumulation
        self._order: Optional[np.ndarray] = None
        self._order_dirty = True

        # deferred-replay log
        self._bar_t0: List[float] = []
        self._bar_dt: List[float] = []
        #: per-host closed participation ranges [start_seq, end_seq)
        self._ranges: List[List[Tuple[int, int]]] = [[] for _ in range(n)]
        self._run_start = np.full(n, -1, dtype=np.int64)
        #: per-host deferred tenant ops: (barrier_seq, kind, row, arg)
        self._ops: List[List[tuple]] = [[] for _ in range(n)]
        #: tenant rows on cold hosts: row -> mirror slot ids (LIFO)
        self._row_slots: Dict[int, List[int]] = {}
        self._row_has_container: Set[int] = set()

        self._kernel_index: Dict[int, int] = {
            id(k): i for i, k in enumerate(self.kernels)
        }

        # instrumentation
        self.materializations = 0
        self.demotions = 0
        self.cold_host_ticks = 0
        self.hot_host_ticks = 0

        if population is not None:
            self.bind_population(population)

    # ------------------------------------------------------------------
    # checkpoint plumbing

    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        state["_kernel_index"] = None  # id()-keyed; rebuilt on restore
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._kernel_index = {id(k): i for i, k in enumerate(self.kernels)}

    # ------------------------------------------------------------------
    # wiring

    def bind_population(self, population) -> None:
        """Attach the tenant population (column-to-column coupling).

        The population's host ordering must be the engine's: row
        ``h*k + j`` lives on ``self.kernels[h]``.
        """
        for h, kernel in enumerate(population._kernels):
            if kernel is not self.kernels[h]:
                raise SimulationError(
                    "population host order does not match the host engine"
                )
        self.population = population
        population.host_engine = self

    def adopt_all(self) -> int:
        """Adopt every currently eligible host; returns the cold count."""
        count = 0
        for i in range(self.n):
            if not self.cold[i] and self._eligible(i):
                self._adopt(i)
            if self.cold[i]:
                count += 1
        return count

    # ------------------------------------------------------------------
    # queries

    def is_cold(self, i: int) -> bool:
        return bool(self.cold[i])

    def index_of(self, kernel: Kernel) -> Optional[int]:
        return self._kernel_index.get(id(kernel))

    def cold_count(self) -> int:
        return int(self.cold.sum())

    def fingerprint(self, i: int) -> float:
        """Cold-host mirror of ``kernel.demand_fingerprint()``."""
        return float(self._fp[i])

    def wall_watts(self, i: int) -> float:
        """Cold-host mirror of ``topology.wall_power_watts(kernel)``."""
        return float(self._wall[i])

    def ticks_taken(self, i: int) -> int:
        return int(self._ticks[i])

    def row_has_container(self, row: int) -> bool:
        return row in self._row_has_container

    # ------------------------------------------------------------------
    # eligibility / adoption

    def _eligible(self, i: int) -> bool:
        kernel = self.kernels[i]
        if _config_signature(kernel) != self._ref_sig:
            return False
        if kernel.timings is not None or kernel.tick_listeners:
            return False
        if kernel.rapl_read_hook is not None:
            return False
        if kernel.perf._monitored:
            return False
        from repro.kernel.cgroups import CpuQuotaState

        for cgroup in kernel.cgroups.hierarchy("cpu").root.walk():
            state = cgroup.state
            if isinstance(state, CpuQuotaState):
                if state.quota_cores is not None and cgroup.tasks:
                    return False
        for task in kernel.scheduler.iter_tasks():
            if not _task_cold_eligible(kernel, task):
                return False
        if self.population is not None:
            k = self.population.k_per_host
            dirty = self.population._dirty
            if dirty[i * k : (i + 1) * k].any():
                return False
        return True

    def _new_slot(self, host: int, cpu: int, phase) -> int:
        slot = self._s_len
        if slot == len(self._s_demand):
            for name in (
                "_s_demand",
                "_s_ipc",
                "_s_cmr",
                "_s_bmr",
                "_s_host",
                "_s_cpu",
                "_s_alive",
            ):
                arr = getattr(self, name)
                grown = np.zeros(len(arr) * 2, dtype=arr.dtype)
                grown[: len(arr)] = arr
                setattr(self, name, grown)
        self._s_len = slot + 1
        self._s_demand[slot] = phase.cpu_demand
        self._s_ipc[slot] = phase.ipc
        self._s_cmr[slot] = phase.cache_miss_per_kinst
        self._s_bmr[slot] = phase.branch_miss_per_kinst
        self._s_host[slot] = host
        self._s_cpu[slot] = cpu
        self._s_alive[slot] = True
        self._host_slots[host].append(slot)
        self._order_dirty = True
        return slot

    def _adopt(self, i: int) -> None:
        """Snapshot one eligible host's live state into the columns."""
        from repro.datacenter.topology import wall_power_watts

        kernel = self.kernels[i]
        # clear any prior slot mirror of this host
        for slot in self._host_slots[i]:
            if self._s_alive[slot]:
                self._s_alive[slot] = False
                self._dead_slots += 1
        self._host_slots[i] = []
        placement = kernel.scheduler._placement
        for task in kernel.scheduler.iter_tasks():
            self._new_slot(i, placement[task], task.workload.phases[0])
        self._refold_host(i)

        self._ticks[i] = kernel.ticks_taken
        self._wall[i] = wall_power_watts(kernel, self.power_config)
        seed = kernel.rng.seed
        if self._has_coretemp:
            for c, sensor in enumerate(kernel.thermal.sensors):
                self._temps[i, c] = sensor.temp_c
                self._temp_keys[i, c] = stream_key(seed, f"temp-noise-{c}")
            self._therm_calls[i] = kernel.thermal._noise_calls
        if self._has_rapl:
            for p, pkg in enumerate(kernel.rapl.packages):
                self._rapl_core_uj[i, p] = pkg.core._energy_uj
                self._rapl_dram_uj[i, p] = pkg.dram._energy_uj
                self._rapl_pkg_uj[i, p] = pkg.package._energy_uj
                self._rapl_keys[i, p] = stream_key(seed, f"rapl-noise-{p}")
            self._rapl_calls[i] = kernel.rapl._noise_calls
            self._rapl_range = float(kernel.rapl.packages[0].package.max_energy_range_uj)

        self._adopt_t[i] = self.clock.now
        self._ranges[i] = []
        self._run_start[i] = -1
        self._ops[i] = []

        if self.population is not None:
            pop = self.population
            k = pop.k_per_host
            # map the row's live tasks onto the freshly scanned slots so
            # later cold kills pop the same LIFO order the scalar path
            # would; slot ids follow task order, so positions line up
            slot_of = {}
            pos = 0
            tasks_in_order = list(kernel.scheduler.iter_tasks())
            for task in tasks_in_order:
                slot_of[id(task)] = self._host_slots[i][pos]
                pos += 1
            for row in range(i * k, (i + 1) * k):
                self._row_slots[row] = [
                    slot_of[id(t)] for t in pop._tasks[row]
                ]
                if pop._containers[row] is not None:
                    self._row_has_container.add(row)
        self.cold[i] = True
        self._order_dirty = True

    def _refold_host(self, i: int) -> None:
        """Recompute the order-sensitive folds of one host.

        Mirrors ``kernel_demand_fingerprint`` (0.0-seeded fold in task
        order) and the scheduler's per-CPU ``sum(demands.values())``
        (int-0-seeded fold in task order) exactly.
        """
        C = self._C
        fp = 0.0
        totals = [0] * C
        for slot in self._host_slots[i]:
            if not self._s_alive[slot]:
                continue
            d = float(self._s_demand[slot])
            fp = fp + d
            c = int(self._s_cpu[slot])
            totals[c] = totals[c] + d
        self._fp[i] = fp
        for c in range(C):
            total = totals[c]
            self._cpu_demand[i, c] = total
            self._scale[i, c] = 1.0 if total <= 1.0 else 1.0 / total

    def _placement_for(self, i: int, demand_hint: float = 0.0) -> int:
        """Mirror of ``Scheduler.add_task`` placement for a cold host.

        Loads are refolded fresh per spawn, exactly like ``_cpu_load``:
        an int-0-seeded sequential sum over tasks in placement order.
        """
        C = self._C
        loads = [0] * C
        for slot in self._host_slots[i]:
            if not self._s_alive[slot]:
                continue
            c = int(self._s_cpu[slot])
            loads[c] = loads[c] + float(self._s_demand[slot])
        best = 0
        best_load = loads[0]
        for c in range(1, C):
            if loads[c] < best_load:
                best = c
                best_load = loads[c]
        return best

    # ------------------------------------------------------------------
    # cold tenant operations (called by the population's cold branch)

    def _log_op(self, i: int, op: tuple) -> None:
        self._ops[i].append((len(self._bar_t0),) + op)

    def cold_container(self, i: int, row: int, init_phase) -> None:
        """Defer a benign container creation (init task joins the mirror)."""
        cpu = self._placement_for(i)
        slot = self._new_slot(i, cpu, init_phase)
        self._row_slots.setdefault(row, [])
        self._row_has_container.add(row)
        d = float(init_phase.cpu_demand)
        self._fp[i] = self._fp[i] + d
        total = self._cpu_demand[i, cpu] + d
        self._cpu_demand[i, cpu] = total
        self._scale[i, cpu] = 1.0 if total <= 1.0 else 1.0 / total
        self._log_op(i, ("container", row, None))

    def cold_spawn(self, i: int, row: int, seq: int, phase) -> None:
        """Defer one worker spawn for a tenant row on a cold host."""
        cpu = self._placement_for(i)
        slot = self._new_slot(i, cpu, phase)
        self._row_slots.setdefault(row, []).append(slot)
        d = float(phase.cpu_demand)
        self._fp[i] = self._fp[i] + d
        total = self._cpu_demand[i, cpu] + d
        self._cpu_demand[i, cpu] = total
        self._scale[i, cpu] = 1.0 if total <= 1.0 else 1.0 / total
        self._log_op(i, ("spawn", row, seq))

    def cold_kill(self, i: int, row: int) -> float:
        """Defer one worker kill (LIFO); returns the worker's demand."""
        slot = self._row_slots[row].pop()
        demand = float(self._s_demand[slot])
        self._s_alive[slot] = False
        self._dead_slots += 1
        self._order_dirty = True
        # removing an interior element reorders every downstream partial
        # sum, so the host's folds are recomputed from scratch
        self._refold_host(i)
        self._log_op(i, ("kill", row, None))
        return demand

    # ------------------------------------------------------------------
    # materialization / demotion

    def ensure_hot(self, i: int) -> None:
        """Materialize host ``i``: replay deferred ticks through Kernel.tick."""
        if not self.cold[i]:
            return
        self.cold[i] = False
        self._order_dirty = True
        if self._run_start[i] >= 0:
            self._ranges[i].append((int(self._run_start[i]), len(self._bar_t0)))
            self._run_start[i] = -1
        kernel = self.kernels[i]
        ops = self._ops[i]
        oi = 0
        pop = self.population
        nbar = len(self._bar_t0)
        with self.clock.replay_window(float(self._adopt_t[i])):
            for a, b in self._ranges[i]:
                for seq in range(a, b):
                    t0 = self._bar_t0[seq]
                    dt = self._bar_dt[seq]
                    self.clock.sleep_until(t0)
                    while oi < len(ops) and ops[oi][0] <= seq:
                        self._replay_op(pop, ops[oi])
                        oi += 1
                    self.clock.sleep_until(t0 + dt)
                    kernel.tick(dt)
        # ops logged in the current (not yet ticked) iteration happen at
        # the present clock reading, after the window restores it
        while oi < len(ops):
            if ops[oi][0] < nbar:
                raise SimulationError(
                    f"deferred op outside any participation range: {ops[oi]}"
                )
            self._replay_op(pop, ops[oi])
            oi += 1
        if kernel.ticks_taken != int(self._ticks[i]):
            raise SimulationError(
                f"replay desync on host {i}: kernel at tick "
                f"{kernel.ticks_taken}, columns at {int(self._ticks[i])}"
            )
        if self._has_rapl and kernel.rapl._noise_calls != int(self._rapl_calls[i]):
            raise SimulationError(f"RAPL noise cursor desync on host {i}")
        if (
            self._has_coretemp
            and kernel.thermal._noise_calls != int(self._therm_calls[i])
        ):
            raise SimulationError(f"thermal noise cursor desync on host {i}")
        # release the host's cold bookkeeping
        for slot in self._host_slots[i]:
            if self._s_alive[slot]:
                self._s_alive[slot] = False
                self._dead_slots += 1
        self._host_slots[i] = []
        self._ranges[i] = []
        self._ops[i] = []
        if pop is not None:
            k = pop.k_per_host
            for row in range(i * k, (i + 1) * k):
                self._row_slots.pop(row, None)
                self._row_has_container.discard(row)
        self.materializations += 1

    def _replay_op(self, pop, op: tuple) -> None:
        _seq, kind, row, arg = op
        if pop is None:
            raise SimulationError("deferred tenant op with no population bound")
        if kind == "container":
            pop.replay_container(row)
        elif kind == "spawn":
            pop.replay_spawn(row, arg)
        elif kind == "kill":
            pop.replay_kill(row)
        else:  # pragma: no cover - defensive
            raise SimulationError(f"unknown deferred op kind: {kind}")

    def ensure_hot_kernel(self, kernel: Kernel) -> None:
        idx = self._kernel_index.get(id(kernel))
        if idx is not None:
            self.ensure_hot(idx)

    def materialize_all(self) -> None:
        for i in np.nonzero(self.cold)[0]:
            self.ensure_hot(int(i))

    def observer_acquire(self, i: int) -> None:
        """A per-object observer (monitor, walker) now watches host ``i``."""
        self.ensure_hot(i)
        self._observers[i] += 1

    def observer_release(self, i: int) -> None:
        """Release one observer; demote back to columns on the last one."""
        if self._observers[i] <= 0:
            raise SimulationError(f"observer refcount underflow on host {i}")
        self._observers[i] -= 1
        if self._observers[i] == 0:
            self.maybe_demote(i)

    def maybe_demote(self, i: int) -> bool:
        """Re-adopt host ``i`` into the columns if it is eligible again."""
        if self.cold[i] or self._observers[i] > 0:
            return False
        if not self._eligible(i):
            return False
        self._adopt(i)
        self.demotions += 1
        return True

    # ------------------------------------------------------------------
    # the tick

    def _rebuild_order(self) -> None:
        chunks = []
        for i in np.nonzero(self.cold)[0]:
            slots = [s for s in self._host_slots[i] if self._s_alive[s]]
            if slots:
                chunks.append(np.asarray(slots, dtype=np.int64))
        self._order = (
            np.concatenate(chunks) if chunks else np.zeros(0, dtype=np.int64)
        )
        self._order_dirty = False
        if self._dead_slots > 64 and self._dead_slots * 2 > self._s_len:
            self._compact_slots()

    def _compact_slots(self) -> None:
        """Drop dead slots, preserving per-host task order."""
        remap = np.full(self._s_len, -1, dtype=np.int64)
        alive = np.nonzero(self._s_alive[: self._s_len])[0]
        remap[alive] = np.arange(len(alive))
        for name in (
            "_s_demand",
            "_s_ipc",
            "_s_cmr",
            "_s_bmr",
            "_s_host",
            "_s_cpu",
            "_s_alive",
        ):
            arr = getattr(self, name)
            packed = np.zeros(max(64, len(alive) * 2), dtype=arr.dtype)
            packed[: len(alive)] = arr[alive]
            setattr(self, name, packed)
        self._s_len = len(alive)
        self._dead_slots = 0
        for i in range(self.n):
            self._host_slots[i] = [
                int(remap[s]) for s in self._host_slots[i] if remap[s] >= 0
            ]
        for row, slots in self._row_slots.items():
            self._row_slots[row] = [int(remap[s]) for s in slots if remap[s] >= 0]
        if self._order is not None:
            self._order = remap[self._order]

    def tick_all(self, dt: float, dark, t0: float) -> None:
        """Advance every non-dark host by ``dt``: hot scalars, cold columns.

        ``t0`` is the clock reading *before* the driver advanced it (the
        barrier time recorded for deferred replay); ``dark`` holds host
        indices that draw no power this tick (tripped racks, crashes).
        """
        cold = self.cold
        any_cold = cold.any()
        seq = len(self._bar_t0)
        if any_cold:
            self._bar_t0.append(float(t0))
            self._bar_dt.append(float(dt))
        # hot hosts: the per-object reference path, exactly as before
        for i in range(self.n):
            if not cold[i] and i not in dark:
                self.kernels[i].tick(dt)
                self.hot_host_ticks += 1
        if not any_cold:
            return

        part = cold.copy()
        if dark:
            for i in dark:
                part[i] = False
        # participation-run bookkeeping (vectorized; darkness is rare)
        opening = part & (self._run_start < 0)
        if opening.any():
            self._run_start[opening] = seq
        closing = cold & ~part & (self._run_start >= 0)
        if closing.any():
            for i in np.nonzero(closing)[0]:
                self._ranges[i].append((int(self._run_start[i]), seq))
                self._run_start[i] = -1
        if not part.any():
            return
        self.cold_host_ticks += int(part.sum())

        if self._order_dirty:
            self._rebuild_order()
        order = self._order
        n, C, P = self.n, self._C, self._P
        params = self._params

        # --- scheduler sweep (mirrors Scheduler.tick per-CPU loop) ----
        hosts = self._s_host[order]
        cpus = self._s_cpu[order]
        tgt = hosts * C + cpus
        d = self._s_demand[order]
        scale = self._scale.reshape(-1)[tgt]
        granted = (d * scale) * dt
        busy = np.zeros(n * C, dtype=np.float64)
        # ufunc.at is unbuffered: repeated targets accumulate in element
        # order, i.e. task order — the scalar busy_seconds fold
        np.add.at(busy, tgt, granted)
        cycles = (granted * self._freq).astype(np.int64)
        instructions = (cycles * self._s_ipc[order]).astype(np.int64)
        cache_misses = (instructions * self._s_cmr[order] / 1000.0).astype(np.int64)
        branch_misses = (instructions * self._s_bmr[order] / 1000.0).astype(np.int64)
        cyc = np.zeros(n * C, dtype=np.int64)
        cm = np.zeros(n * C, dtype=np.int64)
        bm = np.zeros(n * C, dtype=np.int64)
        np.add.at(cyc, tgt, cycles)
        np.add.at(cm, tgt, cache_misses)
        np.add.at(bm, tgt, branch_misses)
        busy = busy.reshape(n, C)
        util = np.minimum(1.0, busy / dt)

        # --- power.tick_energy (per-package sequential fold) ----------
        dyn_core = (
            params.energy_per_cycle * cyc
            + params.energy_per_cache_miss * cm
        ) + params.energy_per_branch_miss * bm
        dyn_dram = params.dram_energy_per_miss * cm
        dyn_core = dyn_core.reshape(n, C)
        dyn_dram = dyn_dram.reshape(n, C)
        core_j = np.full((n, P), params.core_idle_watts * dt, dtype=np.float64)
        dram_j = np.full((n, P), params.dram_idle_watts * dt, dtype=np.float64)
        uncore_j = params.uncore_watts * dt
        for c in range(C):
            p = c // self._cores_per_pkg
            core_j[:, p] = core_j[:, p] + dyn_core[:, c]
            dram_j[:, p] = dram_j[:, p] + dyn_dram[:, c]
        pkg_j = (core_j + dram_j) + uncore_j

        # --- wall power (topology.package_power_watts fold) -----------
        acc = 0 + pkg_j[:, 0]
        for p in range(1, P):
            acc = acc + pkg_j[:, p]
        wall = self.power_config.platform_base_watts + (
            self.power_config.package_scaling * (acc / dt)
        )
        self._wall[part] = wall[part]
        self._ticks[part] += 1

        # --- thermal (ThermalSubsystem.tick) --------------------------
        if self._has_coretemp:
            mean = 0 + util[:, 0]
            for c in range(1, C):
                mean = mean + util[:, c]
            mean = mean / C
            alpha = min(1.0, dt / ThermalSubsystem.TAU_S)
            coupling = ThermalSubsystem.COUPLING
            effective = (1 - coupling) * util + coupling * mean[:, None]
            target = (
                ThermalSubsystem.AMBIENT_C
                + ThermalSubsystem.FULL_LOAD_DELTA_C * effective
            )
            noise = keyed_gauss_at(
                self._temp_keys,
                self._therm_calls[:, None],
                ThermalSubsystem.NOISE_SIGMA,
            )
            temps = self._temps + (
                (target - self._temps) * alpha + noise * alpha
            )
            self._temps[part] = temps[part]
            self._therm_calls[part] += 1

        # --- RAPL accumulation (with MSR wraparound) -------------------
        if self._has_rapl:
            max_range = self._rapl_range
            for p in range(P):
                gauss = keyed_gauss_at(
                    self._rapl_keys[:, p],
                    self._rapl_calls,
                    params.noise_fraction,
                )
                noisy = np.maximum(0.5, 1.0 + gauss)
                new_core = np.remainder(
                    self._rapl_core_uj[:, p] + (core_j[:, p] * noisy) * 1e6,
                    max_range,
                )
                new_dram = np.remainder(
                    self._rapl_dram_uj[:, p] + (dram_j[:, p] * noisy) * 1e6,
                    max_range,
                )
                new_pkg = np.remainder(
                    self._rapl_pkg_uj[:, p] + (pkg_j[:, p] * noisy) * 1e6,
                    max_range,
                )
                self._rapl_core_uj[part, p] = new_core[part]
                self._rapl_dram_uj[part, p] = new_dram[part]
                self._rapl_pkg_uj[part, p] = new_pkg[part]
            self._rapl_calls[part] += 1

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        return {
            "hosts": self.n,
            "cold": self.cold_count(),
            "materializations": self.materializations,
            "demotions": self.demotions,
            "cold_host_ticks": self.cold_host_ticks,
            "hot_host_ticks": self.hot_host_ticks,
            "barriers": len(self._bar_t0),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ColumnarHostEngine(hosts={self.n}, cold={self.cold_count()}, "
            f"materializations={self.materializations})"
        )
