"""The simulated kernel: one object per physical host.

:class:`Kernel` owns every subsystem and advances them coherently each
tick. It exposes the operations the rest of the stack needs:

- process lifecycle (``spawn`` / ``kill``) with namespace and cgroup wiring,
- the tick loop that turns workload demand into scheduler grants, hardware
  activity, subsystem counters, and RAPL energy,
- the RAPL read path with a pluggable per-container hook — the seam where
  the defense's power-based namespace installs itself, exactly as the
  paper's modified driver replaces ``get_energy_counter``.
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, List, Optional

from repro.errors import KernelError
from repro.kernel.cgroups import Cgroup, CgroupManager
from repro.kernel.config import HostConfig
from repro.kernel.cpuidle import CpuIdleSubsystem
from repro.kernel.filesystem import FilesystemSubsystem
from repro.kernel.interrupts import InterruptSubsystem
from repro.kernel.locks import LockSubsystem
from repro.kernel.memory import MemorySubsystem
from repro.kernel.modules import ModuleSubsystem
from repro.kernel.namespaces import (
    Namespace,
    NamespaceRegistry,
    NamespaceType,
    root_namespace_set,
)
from repro.kernel.perf import PerfSubsystem, PerfTuning
from repro.kernel.power import PowerModel
from repro.kernel.process import ProcessTable, Task
from repro.kernel.random import RandomSubsystem
from repro.kernel.rapl import RaplDomain, RaplSubsystem
from repro.kernel.scheduler import Scheduler, TickResult
from repro.kernel.thermal import ThermalSubsystem
from repro.kernel.timers import TimerSubsystem
from repro.sim.clock import VirtualClock
from repro.sim.fastforward import (
    FastForwardEngine,
    kernel_demand_fingerprint,
    kernel_phase_horizon_s,
)
from repro.sim.faults import FaultInjector, FaultSchedule, KernelFaultState
from repro.sim.metrics import SimMetrics, SubsystemTimings, WallTimer
from repro.sim.rng import DeterministicRNG

#: the post-scheduler tick stages, in order. This tuple is the single
#: scalar reference semantics: both the plain and the wall-profiled tick
#: drive it, and the columnar host engine mirrors exactly this ordering.
_TICK_STAGES = (
    ("memory", lambda k, r, dt: k.memory.tick(r)),
    ("interrupts", lambda k, r, dt: k.interrupts.tick(r)),
    ("filesystem", lambda k, r, dt: k.filesystem.tick(r)),
    (
        "netdev",
        lambda k, r, dt: k.netdev.tick(
            r, lambda task: task.namespaces[NamespaceType.NET]
        ),
    ),
    ("cpuidle", lambda k, r, dt: k.cpuidle.tick(r)),
    ("thermal", lambda k, r, dt: k.thermal.tick(r)),
    ("timers", lambda k, r, dt: k.timers.tick(dt)),
    (
        "random",
        lambda k, r, dt: k.random.tick(
            dt, int(k.config.hz * k.config.total_cores * dt), r.total.syscalls
        ),
    ),
    ("power+rapl", lambda k, r, dt: k.rapl.accumulate(k.power.tick_energy(r))),
)

#: host daemons spawned at boot (name, cpu_demand)
_BOOT_DAEMONS = (
    ("systemd", 0.002),
    ("kthreadd", 0.001),
    ("rcu_sched", 0.002),
    ("kworker/0:1", 0.004),
    ("kworker/u16:0", 0.003),
    ("sshd", 0.001),
    ("dockerd", 0.008),
    ("containerd", 0.004),
    ("rsyslogd", 0.002),
    ("cron", 0.001),
)


class Kernel:
    """One booted simulated kernel."""

    def __init__(
        self,
        config: Optional[HostConfig] = None,
        clock: Optional[VirtualClock] = None,
        rng: Optional[DeterministicRNG] = None,
        perf_tuning: PerfTuning = PerfTuning(),
        spawn_daemons: bool = True,
    ):
        self.config = config or HostConfig()
        self.clock = clock or VirtualClock()
        self.rng = rng or DeterministicRNG(seed=0)
        self.boot_time = self.clock.now

        self.namespaces = NamespaceRegistry()
        self.processes = ProcessTable()
        self.cgroups = CgroupManager()
        self.perf = PerfSubsystem(self.cgroups, perf_tuning)
        self.scheduler = Scheduler(self.config, self.cgroups, self.perf, rng=self.rng)

        self.memory = MemorySubsystem(self.config, self.rng)
        self.interrupts = InterruptSubsystem(self.config)
        self.timers = TimerSubsystem(self.config.total_cores)
        self.locks = LockSubsystem()
        self.modules = ModuleSubsystem(self.config.modules)
        self.random = RandomSubsystem(self.rng)
        self.filesystem = FilesystemSubsystem(self.config.disks, self.rng)
        self.netdev = None  # set below; needs the root NET namespace
        self.cpuidle = CpuIdleSubsystem(self.config.total_cores)
        self.thermal = ThermalSubsystem(
            self.config.total_cores, self.rng, present=self.config.has_coretemp
        )
        self.power = PowerModel(self.config)
        self.rapl = RaplSubsystem(self.config, self.rng)

        from repro.kernel.netdev import NetSubsystem  # local import, cycle-free

        self.netdev = NetSubsystem(
            self.namespaces.root(NamespaceType.NET), self.config.net_interfaces
        )

        #: UTS payload for the root namespace
        self.namespaces.root(NamespaceType.UTS).payload["hostname"] = (
            self.config.hostname
        )

        #: the defense's interception point: (task, domain) -> energy_uj.
        #: ``None`` means the vanilla driver (host-global counter) serves
        #: every reader — the Case Study II leak.
        self.rapl_read_hook: Optional[Callable[[Optional[Task], RaplDomain], int]] = None

        #: hooks called after every tick (defense bookkeeping, tracers)
        self.tick_listeners: List[Callable[[TickResult], None]] = []

        #: active sensor/read faults (installed by a fault injector;
        #: ``None`` keeps every read path on the fault-free fast path)
        self.faults: Optional[KernelFaultState] = None

        self.last_tick: Optional[TickResult] = None
        self._ticks = 0

        #: optional per-subsystem wall-time profile; ``None`` keeps the
        #: tick on the uninstrumented fast path
        self.timings: Optional[SubsystemTimings] = None

        if spawn_daemons:
            self._spawn_boot_daemons()

    # ------------------------------------------------------------------
    # process lifecycle

    def spawn(
        self,
        name: str,
        namespaces: Optional[Dict[NamespaceType, Namespace]] = None,
        workload=None,
        affinity: Optional[FrozenSet[int]] = None,
        cgroup_set: Optional[Dict[str, Cgroup]] = None,
    ) -> Task:
        """Create a task, attach it to cgroups, and admit it for scheduling."""
        ns = namespaces or root_namespace_set(self.namespaces)
        task = self.processes.spawn(name, ns, now=self.clock.now, affinity=affinity)
        task.workload = workload
        if cgroup_set:
            self.cgroups.attach_all(task, cgroup_set)
        self.scheduler.add_task(task)
        return task

    def kill(self, task: Task) -> None:
        """Terminate a task: scheduler, cgroups, locks, process table."""
        if task.workload is not None:
            task.workload.stop()
        self.scheduler.remove_task(task)
        self.cgroups.detach_all(task)
        self.locks.release_owned_by(task.pid)
        self.processes.reap(task)

    def _spawn_boot_daemons(self) -> None:
        from repro.runtime.workload import constant

        for name, demand in _BOOT_DAEMONS:
            self.spawn(
                name,
                workload=constant(
                    f"daemon-{name}",
                    cpu_demand=demand,
                    ipc=1.0,
                    cache_miss_per_kinst=2.0,
                    branch_miss_per_kinst=3.0,
                    rss_mb=8.0,
                    syscalls_per_sec=40.0,
                    voluntary_switches_per_sec=20.0,
                    io_ops_per_sec=2.0,
                ),
            )

    # ------------------------------------------------------------------
    # the tick

    def tick(self, dt: float) -> TickResult:
        """Advance every subsystem by ``dt`` seconds of virtual time.

        The caller is responsible for advancing the shared
        :class:`VirtualClock` (a fleet driver ticks many kernels against
        one clock); :class:`Machine` wraps both for single-host use.
        """
        timings = self.timings
        if timings is None:
            result = self.scheduler.tick(dt)
            for _name, stage in _TICK_STAGES:
                stage(self, result, dt)
        else:
            import time

            pc = time.perf_counter
            t0 = pc()
            result = self.scheduler.tick(dt)
            timings.add("scheduler", pc() - t0)
            for name, stage in _TICK_STAGES:
                t0 = pc()
                stage(self, result, dt)
                timings.add(name, pc() - t0)
        self.last_tick = result
        self._ticks += 1
        for listener in self.tick_listeners:
            listener(result)
        return result

    # ------------------------------------------------------------------
    # derived quantities

    @property
    def ticks_taken(self) -> int:
        """How many ticks this kernel has executed since boot."""
        return self._ticks

    def next_phase_boundary_s(self) -> float:
        """Seconds until the earliest workload phase boundary (inf if none).

        A tick-coalescing driver must not step across a phase boundary,
        because the workload's activity vector changes there.
        """
        return kernel_phase_horizon_s(self)

    def demand_fingerprint(self) -> float:
        """Total runnable CPU demand — changes on any workload-set churn."""
        return kernel_demand_fingerprint(self)

    @property
    def uptime_seconds(self) -> float:
        """Seconds since boot (first field of /proc/uptime)."""
        return self.clock.now - self.boot_time

    @property
    def idle_seconds(self) -> float:
        """Aggregate idle seconds across CPUs (second field of /proc/uptime).

        Served from the scheduler's running total — this sits on the
        /proc/uptime sampling path, so it must stay O(1) in core count.
        """
        return self.scheduler.idle_ns_total / 1e9

    @property
    def btime(self) -> int:
        """Boot time as integer epoch seconds (/proc/stat btime)."""
        return int(self.boot_time)

    def read_energy_uj(self, domain: RaplDomain, reader: Optional[Task] = None) -> int:
        """The RAPL ``energy_uj`` read path.

        With no hook installed this is the vanilla driver: every reader —
        host or container — gets the host-global counter (the leak). The
        defense installs a hook that detects containerized readers and
        serves modelled, calibrated, per-container energy instead.
        """
        if not self.rapl.present:
            raise KernelError("RAPL not supported on this host")
        if self.rapl_read_hook is not None:
            value = self.rapl_read_hook(reader, domain)
        else:
            value = domain.energy_uj
        if self.faults is not None:
            # sensor faults live at the driver read seam, downstream of
            # any defense hook: a flaky MSR corrupts whatever is served
            value = self.faults.filter_energy_uj(self.clock.now, domain, value)
        return value

    def host_package_watts(self) -> float:
        """Instantaneous host package power from the last tick (debug aid).

        Averages over the last tick's ``dt`` — there is no trailing-window
        smoothing here (a ``window`` parameter existed once but was never
        honoured; callers wanting smoothing should average a trace).
        """
        if self.last_tick is None:
            return self.power.idle_package_watts() * self.config.packages
        per_pkg = self.power.tick_energy(self.last_tick)
        return sum(e.package_j for e in per_pkg.values()) / self.last_tick.dt


class Machine:
    """A single-host harness: one clock + one kernel + a run loop."""

    def __init__(
        self,
        config: Optional[HostConfig] = None,
        seed: int = 0,
        start_time: float = 0.0,
        perf_tuning: PerfTuning = PerfTuning(),
        spawn_daemons: bool = True,
    ):
        self.clock = VirtualClock(start=start_time)
        self.kernel = Kernel(
            config=config,
            clock=self.clock,
            rng=DeterministicRNG(seed=seed),
            perf_tuning=perf_tuning,
            spawn_daemons=spawn_daemons,
        )
        self.fastforward = FastForwardEngine()
        self.metrics: SimMetrics = self.fastforward.metrics
        #: deterministic fault replay (``None`` = perfect substrate)
        self.fault_injector: Optional[FaultInjector] = None

    def install_faults(
        self, schedule: FaultSchedule, seed: Optional[int] = None
    ) -> FaultInjector:
        """Attach a seeded fault injector to this machine.

        ``seed`` defaults to the schedule's own seed; faults become
        barrier events for the coalescing engine and sensor faults act on
        this kernel's read paths from the next :meth:`run` on.
        """
        if self.fault_injector is not None:
            raise KernelError("fault injector already installed")
        rng = DeterministicRNG(schedule.seed if seed is None else seed)
        self.fault_injector = FaultInjector(schedule, rng, kernels=[self.kernel])
        return self.fault_injector

    def run(self, seconds: float, dt: float = 1.0, on_tick=None, coalesce: bool = False) -> None:
        """Advance the machine by ``seconds`` in steps of ``dt``.

        ``on_tick(kernel, result)`` is called after every step; the last
        step is shortened if ``seconds`` is not a multiple of ``dt``.
        With ``coalesce=True`` phase-stable stretches are advanced in one
        large tick (see :mod:`repro.sim.fastforward`); ``on_tick`` then
        fires once per *executed* tick, not once per base ``dt``.

        With a fault injector installed, due faults apply before each
        tick is planned, fault boundaries bound coalesced steps, and a
        crashed machine stops ticking (virtual time still advances) until
        its scheduled reboot.
        """
        if seconds <= 0:
            raise KernelError(f"run needs positive duration: {seconds}")
        engine = self.fastforward
        injector = self.fault_injector
        with WallTimer(self.metrics):
            remaining = seconds
            while remaining > 1e-9:
                if injector is not None and injector.advance(self.clock.now):
                    engine.stability.reset()
                crashed = injector is not None and 0 in injector.crashed_now()
                if coalesce:
                    stable = engine.stability.observe(
                        (self.kernel.demand_fingerprint(), crashed)
                    )
                    horizon = self.clock.now + self.kernel.next_phase_boundary_s()
                    if injector is not None:
                        horizon = min(horizon, injector.next_barrier(self.clock.now))
                    step = engine.plan_step(
                        now=self.clock.now,
                        remaining=remaining,
                        base_dt=dt,
                        horizon=horizon,
                        stable=stable,
                    )
                else:
                    step = min(dt, remaining)
                self.clock.advance(step)
                if not crashed:
                    result = self.kernel.tick(step)
                    if on_tick is not None:
                        on_tick(self.kernel, result)
                self.metrics.record_tick(step, dt)
                remaining -= step
