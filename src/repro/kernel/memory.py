"""Memory management: NUMA nodes, zones, and the counters behind
``/proc/meminfo``, ``/proc/zoneinfo``, and the per-node sysfs files
(``numastat``, ``vmstat``, ``meminfo``).

None of these interfaces is namespaced in Linux 4.7, which is why they all
appear in Table I: a container reads the *host's* free-memory trajectory,
usable both as a co-residence trace (metric V) and as a covert channel
(metric M, indirectly — a tenant can allocate/release memory and watch
``MemFree`` move from another container).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from repro.errors import KernelError
from repro.kernel.config import HostConfig
from repro.kernel.scheduler import TickResult
from repro.sim.rng import DeterministicRNG

PAGE_SIZE = 4096


@dataclass
class Zone:
    """One memory zone within a NUMA node."""

    name: str
    managed_pages: int
    free_pages: int
    min_pages: int
    low_pages: int
    high_pages: int

    def spanned(self) -> int:
        """Spanned page count (== managed in this model)."""
        return self.managed_pages


@dataclass
class NumaNode:
    """One NUMA node: zones plus allocation statistics."""

    node_id: int
    zones: List[Zone] = field(default_factory=list)
    numa_hit: int = 0
    numa_miss: int = 0
    numa_foreign: int = 0
    interleave_hit: int = 0
    local_node: int = 0
    other_node: int = 0

    @property
    def total_pages(self) -> int:
        return sum(z.managed_pages for z in self.zones)

    @property
    def free_pages(self) -> int:
        return sum(z.free_pages for z in self.zones)


class MemorySubsystem:
    """Host-global memory accounting."""

    #: pages the kernel itself pins at boot (text, slabs, reserved)
    _KERNEL_RESERVED_FRACTION = 0.06

    def __init__(self, config: HostConfig, rng: DeterministicRNG):
        self.config = config
        self._rng = rng
        total_pages = config.memory_bytes // PAGE_SIZE
        self.total_pages = total_pages
        self.nodes: List[NumaNode] = []
        per_node = total_pages // config.numa_nodes
        for node_id in range(config.numa_nodes):
            node = NumaNode(node_id=node_id)
            if node_id == 0:
                dma = min(4096, per_node // 64)
                dma32 = min((4 * 1024 * 1024 * 1024) // PAGE_SIZE, per_node // 2)
                normal = per_node - dma - dma32
                layout = [("DMA", dma), ("DMA32", dma32), ("Normal", normal)]
            else:
                layout = [("Normal", per_node)]
            for name, pages in layout:
                if pages <= 0:
                    continue
                node.zones.append(
                    Zone(
                        name=name,
                        managed_pages=pages,
                        free_pages=pages,
                        min_pages=max(16, pages // 1024),
                        low_pages=max(20, pages // 820),
                        high_pages=max(24, pages // 683),
                    )
                )
            self.nodes.append(node)

        self._kernel_pages = int(total_pages * self._KERNEL_RESERVED_FRACTION)
        # Page cache state is host-specific: how much is cached and how
        # fast it churns depends on each machine's history, so two idle
        # hosts must NOT share a MemFree trajectory (trace-matching relies
        # on exactly this distinction).
        boot_stream = rng.stream("page-cache-boot")
        self.page_cache_pages = int(
            total_pages / 50 * boot_stream.uniform(0.7, 1.6)
        )
        self._cache_decay_rate = boot_stream.uniform(0.0012, 0.0030)
        self.task_rss_pages = 0
        self.buffers_pages = total_pages // 400
        self.slab_pages = total_pages // 100
        #: per-CPU pageset hot counts (zoneinfo's "pagesets" block) —
        #: genuinely fluctuating per-CPU free-page caches, refreshed per
        #: tick; these dominate zoneinfo's changing fields, which is why
        #: the channel ranks in Table II's V group instead of the
        #: accumulator group.
        self.pcp_count: Dict[int, int] = {
            cpu: 50 + (cpu * 13) % 80 for cpu in range(config.total_cores)
        }
        self._apply_usage()

    # ------------------------------------------------------------------

    @property
    def used_pages(self) -> int:
        """Pages not free (kernel + tasks + cache + buffers + slab)."""
        return (
            self._kernel_pages
            + self.task_rss_pages
            + self.page_cache_pages
            + self.buffers_pages
            + self.slab_pages
        )

    @property
    def free_pages(self) -> int:
        """Host-wide free page count (MemFree)."""
        return max(0, self.total_pages - self.used_pages)

    @property
    def mem_total_kb(self) -> int:
        return self.total_pages * PAGE_SIZE // 1024

    @property
    def mem_free_kb(self) -> int:
        return self.free_pages * PAGE_SIZE // 1024

    @property
    def mem_available_kb(self) -> int:
        """MemAvailable estimate: free + reclaimable cache."""
        reclaimable = self.page_cache_pages * 3 // 4 + self.buffers_pages
        return (self.free_pages + reclaimable) * PAGE_SIZE // 1024

    @property
    def cached_kb(self) -> int:
        return self.page_cache_pages * PAGE_SIZE // 1024

    @property
    def buffers_kb(self) -> int:
        return self.buffers_pages * PAGE_SIZE // 1024

    @property
    def slab_kb(self) -> int:
        return self.slab_pages * PAGE_SIZE // 1024

    # ------------------------------------------------------------------

    def tick(self, result: TickResult) -> None:
        """Advance memory state from one scheduler tick."""
        dt = result.dt
        pcp_stream = self._rng.stream("pcp-jitter")
        for cpu in self.pcp_count:
            busy = result.utilization.get(cpu, 0.0)
            drift = pcp_stream.randint(-9, 9) + int(busy * pcp_stream.randint(0, 20))
            self.pcp_count[cpu] = max(0, min(186, self.pcp_count[cpu] + drift))
        # resident memory of all live workloads
        rss_bytes = sum(sample.rss_bytes for _, sample in result.task_samples)
        self.task_rss_pages = rss_bytes // PAGE_SIZE

        # page cache follows IO: grows with reads/writes, slowly reclaimed
        io_pages = int(result.total.io_ops * 4)
        decay = int(self.page_cache_pages * min(0.2, self._cache_decay_rate * dt))
        jitter = int(
            self._rng.stream("page-cache-jitter").gauss(0.0, 1.0)
            * 160
            * max(1.0, dt)
        )
        floor = self.total_pages // 100
        ceiling = self.total_pages // 3
        self.page_cache_pages = max(
            floor, min(ceiling, self.page_cache_pages + io_pages - decay + jitter)
        )

        # NUMA counters: allocations proportional to instruction volume
        allocations = max(0, int(result.total.instructions / 50000)) + io_pages
        per_node = allocations // max(1, len(self.nodes))
        for node in self.nodes:
            local = int(per_node * 0.97)
            node.numa_hit += local
            node.local_node += local
            remote = per_node - local
            node.numa_miss += remote
            node.other_node += remote

        self._apply_usage()

    def _apply_usage(self) -> None:
        """Distribute the host-wide free page count across zones."""
        free = self.free_pages
        total = max(1, self.total_pages)
        for node in self.nodes:
            for zone in node.zones:
                share = zone.managed_pages / total
                zone.free_pages = max(zone.min_pages, int(free * share))

    def node(self, node_id: int) -> NumaNode:
        """Look up a NUMA node by id."""
        for node in self.nodes:
            if node.node_id == node_id:
                return node
        raise KernelError(f"no such NUMA node: {node_id}")
