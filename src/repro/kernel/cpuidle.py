"""cpuidle state accounting behind
``/sys/devices/system/cpu/cpu*/cpuidle/state*/{usage,time}``.

Idle-state residency counters are host-global accumulators unique to a
machine (Table II ranks them in the U=True group) and their deltas track
the host's instantaneous load — each idle entry bumps ``usage`` and the
microsecond ``time`` counter of whichever C-state the governor picked.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

from repro.errors import KernelError
from repro.kernel.scheduler import TickResult

#: (name, description, exit latency µs) of the modelled C-states
C_STATES = (
    ("POLL", "CPUIDLE CORE POLL IDLE", 0),
    ("C1", "MWAIT 0x00", 2),
    ("C1E", "MWAIT 0x01", 10),
    ("C3", "MWAIT 0x10", 70),
    ("C6", "MWAIT 0x20", 85),
)


@dataclass
class IdleState:
    """One C-state of one CPU."""

    name: str
    desc: str
    latency_us: int
    usage: int = 0
    time_us: int = 0


@dataclass
class CpuIdle:
    """All C-states of one CPU."""

    cpu: int
    states: List[IdleState] = field(default_factory=list)


class CpuIdleSubsystem:
    """Per-CPU idle-state residency accounting."""

    def __init__(self, ncpus: int):
        self.cpus: List[CpuIdle] = [
            CpuIdle(
                cpu=c,
                states=[
                    IdleState(name=n, desc=d, latency_us=lat) for n, d, lat in C_STATES
                ],
            )
            for c in range(ncpus)
        ]

    def cpu(self, cpu: int) -> CpuIdle:
        """Idle accounting for one CPU."""
        try:
            return self.cpus[cpu]
        except IndexError:
            raise KernelError(f"no such cpu: {cpu}")

    def tick(self, result: TickResult) -> None:
        """Distribute each CPU's idle time across C-states.

        Heuristic governor: a mostly-idle CPU sinks into deep C6; a loaded
        CPU's short idle gaps stay in shallow C1/C1E. This mirrors how the
        menu governor's choices correlate with load, which is what makes
        the deltas informative to an observer.
        """
        for idle in self.cpus:
            busy = result.busy_seconds.get(idle.cpu, 0.0)
            idle_s = max(0.0, result.dt - busy)
            if idle_s <= 0:
                continue
            util = result.utilization.get(idle.cpu, 0.0)
            if util < 0.05:
                split = {"C6": 0.92, "C3": 0.05, "C1E": 0.02, "C1": 0.01, "POLL": 0.0}
                entries_per_sec = 30.0
            elif util < 0.5:
                split = {"C6": 0.55, "C3": 0.25, "C1E": 0.12, "C1": 0.07, "POLL": 0.01}
                entries_per_sec = 300.0
            else:
                split = {"C6": 0.10, "C3": 0.25, "C1E": 0.35, "C1": 0.25, "POLL": 0.05}
                entries_per_sec = 1500.0
            for state in idle.states:
                share = split.get(state.name, 0.0)
                if share <= 0:
                    continue
                state.time_us += int(idle_s * share * 1e6)
                state.usage += max(1, int(entries_per_sec * idle_s * share))
