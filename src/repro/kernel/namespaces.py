"""Namespace machinery: the kernel's per-container view mechanism.

Linux virtualizes system resources through seven namespace types. A process
is associated with one namespace instance of each type; kernel code that is
"namespace aware" consults the calling process's namespace to present a
restricted view, while unaware code reads global state — the incomplete
coverage that produces every leakage channel in the paper.

This module provides the namespace registry; the per-subsystem *content* of
a namespace (e.g. the device list of a NET namespace) lives with the
subsystem, keyed by the namespace instance.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from repro.errors import KernelError


class NamespaceType(enum.Enum):
    """The namespace types of Linux 4.x, plus the paper's proposed POWER.

    ``POWER`` does not exist in any mainline kernel; it is the namespace the
    paper's defense introduces (Section V-B). A freshly booted kernel does
    not support it until :class:`repro.defense.powerns.PowerNamespaceDriver`
    is installed.
    """

    MNT = "mnt"
    UTS = "uts"
    PID = "pid"
    NET = "net"
    IPC = "ipc"
    USER = "user"
    CGROUP = "cgroup"
    POWER = "power"


#: Namespace types supported by an unmodified kernel.
VANILLA_TYPES = frozenset(t for t in NamespaceType if t is not NamespaceType.POWER)


@dataclass(eq=False)
class Namespace:
    """One namespace instance.

    ``inum`` mirrors the inode number a real kernel exposes via
    ``/proc/<pid>/ns/<type>``; two processes share a namespace iff they
    reference the same instance (and hence the same ``inum``).
    """

    ns_type: NamespaceType
    inum: int
    parent: Optional["Namespace"] = None
    #: free-form per-subsystem payload (e.g. hostname for UTS)
    payload: Dict[str, object] = field(default_factory=dict)

    @property
    def is_root(self) -> bool:
        """True for the initial (host) namespace of this type."""
        return self.parent is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        root = " root" if self.is_root else ""
        return f"Namespace({self.ns_type.value}:{self.inum}{root})"


class NamespaceRegistry:
    """Allocates namespace instances and tracks the root set.

    The registry also records which types the kernel *supports*; creating a
    namespace of an unsupported type raises, which is exactly what happens
    on a real kernel when userspace requests an unimplemented CLONE flag.
    """

    #: base for inode numbers, matching the look of real /proc/*/ns values
    _INUM_BASE = 4026531835

    def __init__(self) -> None:
        self._inums = itertools.count(self._INUM_BASE)
        self._supported = set(VANILLA_TYPES)
        self._roots: Dict[NamespaceType, Namespace] = {
            t: Namespace(ns_type=t, inum=next(self._inums)) for t in VANILLA_TYPES
        }

    @property
    def supported_types(self) -> frozenset:
        """Namespace types this kernel can create."""
        return frozenset(self._supported)

    def enable_type(self, ns_type: NamespaceType) -> Namespace:
        """Register support for a new namespace type (kernel 'patch').

        Used by the defense to install the POWER namespace. Returns the new
        root instance. Idempotent.
        """
        if ns_type in self._supported:
            return self._roots[ns_type]
        self._supported.add(ns_type)
        root = Namespace(ns_type=ns_type, inum=next(self._inums))
        self._roots[ns_type] = root
        return root

    def root(self, ns_type: NamespaceType) -> Namespace:
        """The initial (host) namespace of ``ns_type``."""
        try:
            return self._roots[ns_type]
        except KeyError:
            raise KernelError(f"namespace type not supported: {ns_type.value}")

    def create(self, ns_type: NamespaceType, parent: Optional[Namespace] = None) -> Namespace:
        """Create a child namespace (the CLONE_NEW* path)."""
        if ns_type not in self._supported:
            raise KernelError(f"namespace type not supported: {ns_type.value}")
        if parent is None:
            parent = self._roots[ns_type]
        if parent.ns_type is not ns_type:
            raise KernelError(
                f"parent namespace type mismatch: {parent.ns_type.value} != {ns_type.value}"
            )
        return Namespace(ns_type=ns_type, inum=next(self._inums), parent=parent)

    def roots(self) -> Iterator[Namespace]:
        """Iterate over all root namespaces."""
        return iter(self._roots.values())


def root_namespace_set(registry: NamespaceRegistry) -> Dict[NamespaceType, Namespace]:
    """The namespace association of a host (non-containerized) process."""
    return {t: registry.root(t) for t in registry.supported_types}
