"""File-lock table behind ``/proc/locks``.

``/proc/locks`` lists every POSIX/flock lock in the kernel with the holder's
*host* pid and the locked inode. Linux 4.7 prints the table host-globally
regardless of the reader's namespaces (this is one of the bugs the paper
reported; the fix became CVE-2017-5967-adjacent work in later kernels).
Tenants implant a recognizable lock (a crafted device:inode is visible via
the pid + file position pattern) and co-resident containers grep for it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import KernelError
from repro.kernel.process import Task


@dataclass
class LockEntry:
    """One row of /proc/locks."""

    lock_id: int
    lock_type: str  # "POSIX" | "FLOCK"
    mode: str  # "ADVISORY" | "MANDATORY"
    access: str  # "READ" | "WRITE"
    host_pid: int
    device: str  # "MAJOR:MINOR"
    inode: int
    start: int
    end: Optional[int]  # None renders as EOF

    def render(self) -> str:
        """Format as one /proc/locks line."""
        end = "EOF" if self.end is None else str(self.end)
        return (
            f"{self.lock_id}: {self.lock_type}  {self.mode}  {self.access} "
            f"{self.host_pid} 08:01:{self.inode} {self.start} {end}"
        )


class LockSubsystem:
    """Host-global file lock table."""

    def __init__(self) -> None:
        self._ids = itertools.count(1)
        self._entries: List[LockEntry] = []

    def acquire(
        self,
        task: Task,
        inode: int,
        lock_type: str = "POSIX",
        access: str = "WRITE",
        start: int = 0,
        end: Optional[int] = None,
    ) -> LockEntry:
        """Take a lock owned by ``task`` on the given inode."""
        if lock_type not in ("POSIX", "FLOCK"):
            raise KernelError(f"unknown lock type: {lock_type}")
        if access not in ("READ", "WRITE"):
            raise KernelError(f"unknown lock access: {access}")
        entry = LockEntry(
            lock_id=next(self._ids),
            lock_type=lock_type,
            mode="ADVISORY",
            access=access,
            host_pid=task.pid,
            device="08:01",
            inode=inode,
            start=start,
            end=end,
        )
        self._entries.append(entry)
        return entry

    def release(self, entry: LockEntry) -> None:
        """Drop a lock."""
        try:
            self._entries.remove(entry)
        except ValueError:
            raise KernelError(f"lock not held: {entry}")

    def release_owned_by(self, host_pid: int) -> int:
        """Drop all locks of a (dying) process; returns the count dropped."""
        owned = [e for e in self._entries if e.host_pid == host_pid]
        for entry in owned:
            self._entries.remove(entry)
        return len(owned)

    @property
    def entries(self) -> List[LockEntry]:
        """All current locks (host-global)."""
        return list(self._entries)

    def find_by_inode(self, inode: int) -> List[LockEntry]:
        """Probe the global table for an implanted inode signature."""
        return [e for e in self._entries if e.inode == inode]
