"""Simulated Linux kernel substrate.

This package models the kernel subsystems whose state the paper's leakage
channels expose: the scheduler, memory management, interrupts, timers, file
locks, the RNG, ext4, network devices, cpuidle, coretemp, and the Intel RAPL
energy counters — plus the container-enabling machinery (namespaces,
cgroups, perf_event) and a host power model that drives RAPL.

The central object is :class:`repro.kernel.kernel.Kernel`; everything else
hangs off it. The crucial design property, mirrored from Linux, is that each
subsystem keeps *host-global* state, and only some subsystems additionally
know how to present a *namespaced* view — exactly the incomplete coverage
the paper identifies as the root cause of the leaks.
"""

from repro.kernel.config import CpuSpec, HostConfig
from repro.kernel.kernel import Kernel

__all__ = ["Kernel", "HostConfig", "CpuSpec"]
