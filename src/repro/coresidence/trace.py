"""Snapshot-trace correlation: co-residence from time-varying channels.

Two containers record a channel (say ``MemFree``) once per second for a
minute, starting at the same time; matching traces mean they watched the
same physical memory fluctuate (Section III-C, the V metric's use). Works
even when every static identifier is masked — the CC5 scenario — provided
some host-coupled counter remains readable.
"""

from __future__ import annotations

import re
from typing import Callable, List, Sequence

from repro.analysis.traces import correlate
from repro.errors import AttackError, ReproError


def memfree_extractor(content: str) -> float:
    """Pull MemFree (kB) out of a /proc/meminfo rendering."""
    match = re.search(r"MemFree:\s+(\d+)\s*kB", content)
    if match is None:
        raise AttackError("no MemFree field in meminfo content")
    return float(match.group(1))


def first_number_extractor(content: str) -> float:
    """The first numeric token (entropy_avail, energy_uj, ...)."""
    match = re.search(r"-?\d+(?:\.\d+)?", content)
    if match is None:
        raise AttackError("no numeric field in channel content")
    return float(match.group(0))


class TraceCorrelator:
    """Simultaneous two-instance trace sampling + correlation."""

    def __init__(
        self,
        path: str = "/proc/meminfo",
        extractor: Callable[[str], float] = memfree_extractor,
        samples: int = 60,
        interval_s: float = 1.0,
        threshold: float = 0.9,
        warmup_s: float = 5.0,
    ):
        if samples < 3:
            raise AttackError(f"need at least 3 samples: {samples}")
        self.path = path
        self.extractor = extractor
        self.samples = samples
        self.interval_s = interval_s
        self.threshold = threshold
        #: settle time before sampling: correlated launch transients
        #: (instance startup allocations) would otherwise pollute both
        #: traces with a common artifact
        self.warmup_s = warmup_s

    def collect(self, cloud, instance_a, instance_b) -> tuple:
        """Sample both instances in lockstep; returns (trace_a, trace_b).

        Sampling advances the shared cloud clock, so the two reads of each
        round really happen at the same instant — the paper's "starting
        from the same time".
        """
        if self.warmup_s > 0:
            cloud.run(self.warmup_s, dt=self.interval_s)
        trace_a: List[float] = []
        trace_b: List[float] = []
        for _ in range(self.samples):
            trace_a.append(self._sample(instance_a))
            trace_b.append(self._sample(instance_b))
            cloud.run(self.interval_s, dt=self.interval_s)
        return trace_a, trace_b

    def _sample(self, instance) -> float:
        try:
            return self.extractor(instance.read(self.path))
        except ReproError as exc:
            raise AttackError(
                f"channel {self.path} unreadable while tracing: {exc}"
            ) from exc

    def score(self, trace_a: Sequence[float], trace_b: Sequence[float]) -> float:
        """Trace-match score in [0, 1]."""
        return correlate(trace_a, trace_b)

    def verify(self, cloud, instance_a, instance_b) -> bool:
        """Full check: sample then decide against the threshold."""
        trace_a, trace_b = self.collect(cloud, instance_a, instance_b)
        return self.score(trace_a, trace_b) >= self.threshold
