"""Signature implantation: the active co-residence verification.

A tenant starts a process with a uniquely crafted name and arms a timer
(or takes a file lock); the (name, pid) pair lands in the *host-global*
``/proc/timer_list`` / ``/proc/locks`` / ``/proc/sched_debug``, where any
co-resident container can grep for it. This is the method the paper used
for its CC1 experiment (Section IV-C).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional

from repro.errors import AttackError, ReproError
from repro.runtime.container import Container

_SIGNATURE_COUNTER = itertools.count(1)

#: channels an implant verifier can use, with the container-side plant op
#: and the probe path
_CHANNELS = {
    "timer_list": "/proc/timer_list",
    "locks": "/proc/locks",
    "sched_debug": "/proc/sched_debug",
}


@dataclass(frozen=True)
class Implant:
    """One planted signature."""

    signature: str
    channel: str
    probe_path: str


class ImplantVerifier:
    """Plant-and-probe co-residence verification."""

    def __init__(self, channel: str = "timer_list"):
        if channel not in _CHANNELS:
            raise AttackError(
                f"no implant strategy for channel {channel!r}; "
                f"choose one of {sorted(_CHANNELS)}"
            )
        self.channel = channel
        self.probe_path = _CHANNELS[channel]

    def plant(self, container: Container, signature: Optional[str] = None) -> Implant:
        """Plant a signature from inside ``container``."""
        if signature is None:
            signature = f"xsig{next(_SIGNATURE_COUNTER):06d}q"
        if self.channel == "timer_list":
            container.arm_timer(signature, delay_seconds=7200.0)
        elif self.channel == "locks":
            container.take_lock(
                inode=self._inode_for(signature), task_name=signature
            )
        else:  # sched_debug: the crafted task name itself is the signature
            from repro.runtime.workload import constant

            container.exec(
                signature,
                workload=constant(signature, cpu_demand=0.2, ipc=1.0),
            )
        return Implant(
            signature=signature, channel=self.channel, probe_path=self.probe_path
        )

    def probe(self, observer, implant: Implant) -> bool:
        """Check for the signature from another instance/container."""
        try:
            content = observer.read(implant.probe_path)
        except ReproError:
            return False
        if implant.channel == "locks":
            return f":{self._inode_for(implant.signature)} " in content
        return implant.signature in content

    @staticmethod
    def _inode_for(signature: str) -> int:
        """Deterministic inode encoding of a signature (locks channel)."""
        return sum(ord(c) * 131**i for i, c in enumerate(signature)) % 99_999_989
