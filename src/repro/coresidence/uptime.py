"""Boot-time proximity analysis from ``/proc/uptime`` (Section IV-C).

``/proc/uptime`` exposes (seconds since boot, aggregate idle seconds).
Servers in a datacenter rarely reboot, so similar uptimes mean the
machines were installed and powered on in the same maintenance window —
strong evidence of physical adjacency (same rack, same breaker) — while a
differing idle time proves the readers are *not* on the same machine.
The attacker uses this to aim instances at servers sharing a circuit.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import AttackError, ReproError


@dataclass(frozen=True)
class UptimeObservation:
    """One parsed /proc/uptime reading."""

    uptime_s: float
    idle_s: float

    def same_host(self, other: "UptimeObservation", tolerance_s: float = 0.5) -> bool:
        """Same machine iff both accumulated fields agree.

        Readings must be taken at the same instant; both uptime and the
        aggregate idle counter are then host-unique.
        """
        return (
            abs(self.uptime_s - other.uptime_s) <= tolerance_s
            and abs(self.idle_s - other.idle_s) <= tolerance_s * 16
        )


def read_uptime(instance) -> UptimeObservation:
    """Parse /proc/uptime from inside an instance/container."""
    try:
        content = instance.read("/proc/uptime")
    except ReproError as exc:
        raise AttackError(f"/proc/uptime unreadable: {exc}") from exc
    fields = content.split()
    if len(fields) < 2:
        raise AttackError(f"malformed uptime content: {content!r}")
    return UptimeObservation(uptime_s=float(fields[0]), idle_s=float(fields[1]))


def boot_proximity(
    a: UptimeObservation, b: UptimeObservation, window_s: float = 300.0
) -> bool:
    """Were the two hosts booted within one maintenance window?

    True for *distinct* machines (different idle trajectories) whose boot
    times fall within ``window_s`` of each other — the paper's heuristic
    for rack adjacency.
    """
    same_window = abs(a.uptime_s - b.uptime_s) <= window_s
    distinct_machines = not a.same_host(b)
    return same_window and distinct_machines
