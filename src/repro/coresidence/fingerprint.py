"""Static host fingerprints: Table II's group-1 channels.

``boot_id`` is a per-boot UUID identical for every container on a host;
``net_prio.ifpriomap`` leaks the host's interface list through the
Case Study I bug. Either alone identifies a machine; together they are
robust to one channel being masked.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ReproError


@dataclass(frozen=True)
class HostFingerprint:
    """Static identifiers read from inside one container."""

    boot_id: Optional[str]
    interface_list: Optional[str]

    @property
    def empty(self) -> bool:
        """True when every channel was masked (no identifier available)."""
        return self.boot_id is None and self.interface_list is None

    def matches(self, other: "HostFingerprint") -> bool:
        """Same-host verdict from the available identifiers.

        Comparison uses every identifier both sides managed to read; two
        empty fingerprints are *not* a match (no evidence is not
        evidence of co-residence).
        """
        comparable = []
        if self.boot_id is not None and other.boot_id is not None:
            comparable.append(self.boot_id == other.boot_id)
        if self.interface_list is not None and other.interface_list is not None:
            comparable.append(self.interface_list == other.interface_list)
        if not comparable:
            return False
        return all(comparable)


def _try_read(reader, path: str) -> Optional[str]:
    try:
        return reader.read(path)
    except ReproError:
        return None


def fingerprint_instance(instance) -> HostFingerprint:
    """Fingerprint the host of a cloud instance (or a bare container).

    ``instance`` needs only a ``read(path)`` method, so this works for
    :class:`repro.runtime.cloud.Instance` and
    :class:`repro.runtime.container.Container` alike.
    """
    boot_id = _try_read(instance, "/proc/sys/kernel/random/boot_id")
    ifpriomap = _try_read(instance, "/sys/fs/cgroup/net_prio/net_prio.ifpriomap")
    interface_list = None
    if ifpriomap is not None:
        # priorities are per-cgroup; only the leaked device names identify
        # the host
        interface_list = ",".join(
            line.split()[0] for line in ifpriomap.splitlines() if line.split()
        )
    return HostFingerprint(
        boot_id=boot_id.strip() if boot_id else None,
        interface_list=interface_list,
    )
