"""Co-residence detection toolkit (Section III-C / IV-C).

Four verification techniques, one orchestration loop:

- :mod:`repro.coresidence.fingerprint` — static host identifiers
  (boot_id, the ifpriomap device list).
- :mod:`repro.coresidence.implant` — crafted signatures planted into
  host-global tables (timer_list, locks, sched_debug).
- :mod:`repro.coresidence.trace` — simultaneous snapshot-trace matching of
  time-varying channels (MemFree et al.).
- :mod:`repro.coresidence.uptime` — boot-time proximity and idle-time
  distinctness from ``/proc/uptime``.
- :mod:`repro.coresidence.orchestrator` — the launch/verify/terminate loop
  that aggregates a tenant's instances onto one physical server.
"""

from repro.coresidence.fingerprint import HostFingerprint, fingerprint_instance
from repro.coresidence.implant import ImplantVerifier
from repro.coresidence.orchestrator import CoResidenceOrchestrator, OrchestrationResult
from repro.coresidence.trace import TraceCorrelator
from repro.coresidence.uptime import UptimeObservation, boot_proximity, read_uptime

__all__ = [
    "CoResidenceOrchestrator",
    "HostFingerprint",
    "ImplantVerifier",
    "OrchestrationResult",
    "TraceCorrelator",
    "UptimeObservation",
    "boot_proximity",
    "fingerprint_instance",
    "read_uptime",
]
