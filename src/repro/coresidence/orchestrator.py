"""The launch/verify/terminate loop that aggregates instances on one host.

"We repeatedly create container instances and terminate instances that are
not on the same physical server. By doing this, we succeed in deploying
three containers on the same server with trivial effort." (Section IV-C.)

The orchestrator is verifier-agnostic: it takes any callable deciding
whether two instances are co-resident, with the fingerprint comparison as
the default (a strong indicator channel alone is enough — the paper's
footnote 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.coresidence.fingerprint import fingerprint_instance
from repro.errors import AttackError, CapacityError, ReproError
from repro.runtime.cloud import ContainerCloud, Instance

Verifier = Callable[[ContainerCloud, Instance, Instance], bool]


def fingerprint_verifier(
    cloud: ContainerCloud, pivot: Instance, candidate: Instance
) -> bool:
    """Default verifier: compare static host fingerprints."""
    return fingerprint_instance(pivot).matches(fingerprint_instance(candidate))


@dataclass
class OrchestrationResult:
    """Outcome of one aggregation campaign."""

    instances: List[Instance] = field(default_factory=list)
    launches: int = 0
    terminations: int = 0
    elapsed_s: float = 0.0
    #: candidates discarded because the verifier's channel reads faulted
    verification_errors: int = 0

    @property
    def achieved(self) -> int:
        """Co-resident instances obtained (including the pivot)."""
        return len(self.instances)


class CoResidenceOrchestrator:
    """Aggregates a tenant's instances onto a single physical server."""

    def __init__(
        self,
        cloud: ContainerCloud,
        tenant: str = "attacker",
        verifier: Optional[Verifier] = None,
        settle_s: float = 1.0,
    ):
        self.cloud = cloud
        self.tenant = tenant
        self.verifier = verifier or fingerprint_verifier
        self.settle_s = settle_s

    def aggregate(self, target: int, max_launches: int = 100) -> OrchestrationResult:
        """Obtain ``target`` co-resident instances.

        Launches a pivot, then candidates; keeps candidates the verifier
        confirms co-resident with the pivot and terminates the rest.
        Raises :class:`AttackError` if the launch budget runs out first.
        """
        if target < 2:
            raise AttackError(f"aggregation target must be >= 2: {target}")
        start = self.cloud.clock.now
        result = OrchestrationResult()

        pivot = self.cloud.launch_instance(self.tenant)
        result.launches += 1
        result.instances.append(pivot)
        self.cloud.run(self.settle_s)

        while len(result.instances) < target:
            if result.launches >= max_launches:
                raise AttackError(
                    f"launch budget exhausted: {result.launches} launches "
                    f"yielded {len(result.instances)}/{target} co-resident "
                    f"instances"
                )
            try:
                candidate = self.cloud.launch_instance(self.tenant)
            except CapacityError:
                # free up by terminating nothing we own: the cloud is full
                # of other tenants; wait and retry
                self.cloud.run(10.0)
                continue
            result.launches += 1
            self.cloud.run(self.settle_s)
            try:
                co_resident = self.verifier(self.cloud, pivot, candidate)
            except ReproError:
                # a faulted leak channel can't confirm co-residence, so
                # the candidate is treated as a miss and recycled
                result.verification_errors += 1
                co_resident = False
            if co_resident:
                result.instances.append(candidate)
            else:
                self.cloud.terminate_instance(candidate)
                result.terminations += 1
        result.elapsed_s = self.cloud.clock.now - start
        return result
