"""Covert channels over leaked time-varying pseudo-files.

Table II's M=◐ cells mark channels a tenant can influence *indirectly* —
"an attacker can use taskset to bond a computing-intensive workload to a
specific core, and check the CPU utilization, power consumption, or
temperature from another container. Those entries could be exploited by
advanced attackers as covert channels to transmit signals."

This module weaponizes that observation: a :class:`CovertSender` inside
one container modulates pinned CPU load (on-off keying, one bit per
symbol period); a :class:`CovertReceiver` in a co-resident container
samples a leaked channel and demodulates by thresholding per-symbol
means. Works over any numeric leaked channel; the defaults use the
host-global load average of ``/proc/loadavg``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Callable, List, Sequence

from repro.errors import AttackError, ReproError
from repro.runtime.container import Container
from repro.runtime.workload import constant


def loadavg_extractor(content: str) -> float:
    """The 1-minute load average — too slow for fast symbols; use the
    running/total field instead, which reacts instantly."""
    match = re.match(r"^([\d.]+) [\d.]+ [\d.]+ (\d+)/\d+", content)
    if match is None:
        raise AttackError(f"malformed loadavg: {content!r}")
    return float(match.group(2))  # number of running tasks: host-global


def stat_busy_extractor(content: str) -> float:
    """Aggregate busy ticks from /proc/stat (differentiated by caller)."""
    first = content.splitlines()[0]
    fields = [int(x) for x in first.split()[1:]]
    return float(fields[0] + fields[2])


@dataclass(frozen=True)
class CovertConfig:
    """Modulation parameters shared by sender and receiver."""

    #: leaked channel to carry the signal
    path: str = "/proc/loadavg"
    extractor: Callable[[str], float] = loadavg_extractor
    #: seconds per transmitted bit
    symbol_period_s: float = 4.0
    #: receiver samples per symbol
    samples_per_symbol: int = 4
    #: sender load during a '1' symbol, in cores
    carrier_cores: int = 4

    @property
    def bits_per_second(self) -> float:
        return 1.0 / self.symbol_period_s


class CovertSender:
    """Transmits bits by modulating CPU load inside one container."""

    def __init__(self, container: Container, config: CovertConfig = CovertConfig()):
        self.container = container
        self.config = config

    def transmit(self, bits: Sequence[int], run) -> None:
        """Send ``bits``; ``run(seconds)`` advances the shared simulation.

        For each '1' symbol the sender runs ``carrier_cores`` hot tasks
        for one symbol period; for '0' it idles. The receiver must be
        sampling concurrently (drive both from the same ``run``).
        """
        for bit in bits:
            if bit not in (0, 1):
                raise AttackError(f"bits must be 0/1: {bit}")
            if bit:
                for i in range(self.config.carrier_cores):
                    self.container.exec(
                        f"carrier-{i}",
                        workload=constant(
                            "carrier",
                            cpu_demand=1.0,
                            ipc=2.0,
                            duration=self.config.symbol_period_s,
                        ),
                    )
                run(self.config.symbol_period_s)
                self.container.reap_finished()
            else:
                run(self.config.symbol_period_s)


class CovertReceiver:
    """Recovers bits from a leaked channel in a co-resident container."""

    def __init__(self, container: Container, config: CovertConfig = CovertConfig()):
        self.container = container
        self.config = config
        self.samples: List[float] = []

    def sample(self) -> None:
        """Take one channel reading (call between simulation steps)."""
        try:
            content = self.container.read(self.config.path)
        except ReproError as exc:
            raise AttackError(f"covert channel unreadable: {exc}") from exc
        self.samples.append(self.config.extractor(content))

    def demodulate(self, nbits: int) -> List[int]:
        """Threshold per-symbol means into bits.

        The threshold is the midpoint of the observed range, so the
        receiver needs at least one 0 and one 1 in the frame (standard
        preamble practice; the tests transmit framed patterns).
        """
        per_symbol = self.config.samples_per_symbol
        needed = nbits * per_symbol
        if len(self.samples) < needed:
            raise AttackError(
                f"not enough samples: have {len(self.samples)}, need {needed}"
            )
        window = self.samples[-needed:]
        means = [
            sum(window[i * per_symbol : (i + 1) * per_symbol]) / per_symbol
            for i in range(nbits)
        ]
        lo, hi = min(means), max(means)
        if hi - lo < 1e-9:
            return [0] * nbits  # no modulation seen
        threshold = (lo + hi) / 2.0
        return [1 if m > threshold else 0 for m in means]


def run_transfer(
    machine_run,
    sender: CovertSender,
    receiver: CovertReceiver,
    bits: Sequence[int],
) -> List[int]:
    """Drive a full framed transfer and return the received bits.

    ``machine_run(seconds)`` advances the shared simulation; the helper
    interleaves sender symbols with receiver sampling at the configured
    rate.
    """
    config = sender.config
    sample_gap = config.symbol_period_s / config.samples_per_symbol

    def run_and_sample(seconds: float) -> None:
        remaining = seconds
        while remaining > 1e-9:
            step = min(sample_gap, remaining)
            machine_run(step)
            receiver.sample()
            remaining -= step

    sender.transmit(bits, run_and_sample)
    return receiver.demodulate(len(bits))
