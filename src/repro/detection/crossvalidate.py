"""Cross-validation: the differential leak detector of Figure 1 (left).

The tool reads every pseudo-file in two execution contexts — an
unprivileged container and the host — *within the same instant* (no clock
advance between the paired reads), aligns by path, and diffs:

- identical content in both contexts ⇒ both readers reached the same
  global kernel data ⇒ **leak** (case ② of Figure 1);
- differing content ⇒ the kernel served namespaced views (case ①);
- a same-context double read that differs ⇒ the file is per-read volatile
  (e.g. ``/proc/sys/kernel/random/uuid``) and is excluded — identical
  pairs cannot be expected from it even when it leaks nothing.

The detector works purely from file contents; it never consults the
renderer's ``namespaced`` flag, which the test suite instead uses to
validate the detector's verdicts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.detection.walker import PseudoWalker, ReadOutcome
from repro.procfs.node import ReadContext
from repro.procfs.vfs import PseudoVFS
from repro.runtime.container import Container


class LeakClass(enum.Enum):
    """Verdict for one pseudo path."""

    LEAK = "leak"  # same global kernel data in both contexts
    NAMESPACED = "namespaced"  # container got a private view
    VOLATILE = "volatile"  # differs between two same-context reads
    MASKED = "masked"  # denied/hidden inside the container
    HOST_ONLY = "host-only"  # absent in the container view entirely


@dataclass(frozen=True)
class Verdict:
    """Cross-validation result for one path."""

    path: str
    leak_class: LeakClass
    channel: Optional[str]


@dataclass
class CrossValidationReport:
    """All verdicts of one run, with convenience accessors."""

    verdicts: Dict[str, Verdict] = field(default_factory=dict)

    def paths_in(self, leak_class: LeakClass) -> List[str]:
        """All paths with the given verdict, sorted."""
        return sorted(
            path for path, v in self.verdicts.items() if v.leak_class is leak_class
        )

    @property
    def leaks(self) -> List[str]:
        """Paths classified as leaking host data."""
        return self.paths_in(LeakClass.LEAK)

    def leaking_channels(self) -> List[str]:
        """Distinct channel ids with at least one leaking path, sorted."""
        return sorted(
            {
                v.channel
                for v in self.verdicts.values()
                if v.leak_class is LeakClass.LEAK and v.channel
            }
        )

    def verdict_for(self, path: str) -> Verdict:
        """The verdict of one path (KeyError if never walked)."""
        return self.verdicts[path]


class CrossValidator:
    """Pairs a host context with a container context and diffs the trees."""

    def __init__(self, vfs: PseudoVFS, container: Container):
        self.vfs = vfs
        self.container = container
        self.host_walker = PseudoWalker(vfs, ReadContext(kernel=vfs.kernel))
        self.container_walker = PseudoWalker(vfs, container.read_context())

    def run(self, paths: Optional[List[str]] = None) -> CrossValidationReport:
        """Walk both contexts and classify every path."""
        if paths is None:
            paths = [path for path, _ in self.vfs.walk()]
        report = CrossValidationReport()
        for path in paths:
            report.verdicts[path] = self._classify(path)
        return report

    def _classify(self, path: str) -> Verdict:
        host_first = self.host_walker.read_one(path)
        host_second = self.host_walker.read_one(path)
        inside = self.container_walker.read_one(path)
        channel = host_first.channel or inside.channel

        if inside.outcome is ReadOutcome.DENIED:
            return Verdict(path=path, leak_class=LeakClass.MASKED, channel=channel)
        if inside.outcome is ReadOutcome.ABSENT:
            return Verdict(path=path, leak_class=LeakClass.HOST_ONLY, channel=channel)
        if host_first.outcome is not ReadOutcome.OK:
            # readable inside but not on the host: treat as namespaced
            return Verdict(path=path, leak_class=LeakClass.NAMESPACED, channel=channel)
        if host_first.content != host_second.content:
            return Verdict(path=path, leak_class=LeakClass.VOLATILE, channel=channel)
        if host_first.content == inside.content:
            return Verdict(path=path, leak_class=LeakClass.LEAK, channel=channel)
        return Verdict(path=path, leak_class=LeakClass.NAMESPACED, channel=channel)
