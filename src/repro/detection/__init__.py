"""Leakage-channel detection: the paper's primary tooling.

- :mod:`repro.detection.walker` / :mod:`repro.detection.crossvalidate` —
  the cross-validation tool of Figure 1 (left): walk every pseudo-file in
  host and container contexts and diff.
- :mod:`repro.detection.channels` — the channel registry with Table I's
  metadata (leaked information, potential vulnerability classes).
- :mod:`repro.detection.inspector` — cloud inspection (Figure 1, right):
  probe provider instances and produce the Table I availability matrix.
- :mod:`repro.detection.metrics` — the U/V/M metrics and joint-entropy
  ranking of Table II.
"""

from repro.detection.channels import CHANNELS, Channel, channel_by_id
from repro.detection.crossvalidate import CrossValidator, LeakClass
from repro.detection.inspector import Availability, CloudInspector
from repro.detection.metrics import ChannelAssessment, ChannelAssessor

__all__ = [
    "Availability",
    "CHANNELS",
    "Channel",
    "ChannelAssessment",
    "ChannelAssessor",
    "CloudInspector",
    "CrossValidator",
    "LeakClass",
    "channel_by_id",
]
