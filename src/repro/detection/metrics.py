"""The U/V/M channel metrics and entropy ranking of Table II.

Every metric is measured *behaviourally*, never looked up:

- **U (uniqueness)** — can the channel uniquely identify a host? Three
  behavioural routes, matching the paper's three groups: a static
  identifier (equal across co-resident containers, stable over time,
  different across hosts), an implantable signature (the tenant writes a
  crafted name into the global table and another container finds it), or
  a unique accumulator (monotone counters whose trajectory is host-unique).
- **V (variation)** — do the contents change over time under normal host
  activity, enabling snapshot-trace matching?
- **M (manipulation)** — can a tenant implant data directly (●), only
  influence it indirectly through its own resource usage (◐), or not at
  all (○)?
- **entropy** — Formula 1's joint Shannon entropy over the channel's
  changing fields, used to rank the V-only group.
"""

from __future__ import annotations

import enum
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.entropy import field_entropy, quantize
from repro.detection.channels import CHANNELS, Channel, representative_paths
from repro.errors import ReproError
from repro.kernel.kernel import Machine
from repro.runtime.container import Container
from repro.runtime.engine import ContainerEngine
from repro.runtime.workload import constant, idle

_NUMBER = re.compile(r"-?\d+(?:\.\d+)?")


class Manipulation(enum.Enum):
    """The M metric's three levels."""

    DIRECT = "direct"  # ● implant crafted data
    INDIRECT = "indirect"  # ◐ influence via own resource usage
    NONE = "none"  # ○


class UniquenessGroup(enum.Enum):
    """Which of the paper's three U groups a channel falls into."""

    STATIC_ID = "static-id"
    IMPLANTABLE = "implantable"
    ACCUMULATOR = "accumulator"
    NOT_UNIQUE = "not-unique"


@dataclass(frozen=True)
class ChannelAssessment:
    """Table II's row for one channel."""

    channel_id: str
    unique: bool
    group: UniquenessGroup
    varies: bool
    manipulation: Manipulation
    entropy: float
    growth_rate: float

    @property
    def rank_key(self) -> Tuple[int, float]:
        """Sort key reproducing Table II's ordering (lower = higher rank)."""
        group_order = {
            UniquenessGroup.STATIC_ID: 0,
            UniquenessGroup.IMPLANTABLE: 1,
            UniquenessGroup.ACCUMULATOR: 2,
            UniquenessGroup.NOT_UNIQUE: 3,
        }
        if self.group is UniquenessGroup.ACCUMULATOR:
            tiebreak = -self.growth_rate
        elif self.group is UniquenessGroup.IMPLANTABLE:
            # richer implant surface first: sched_debug > timer_list > locks
            tiebreak = -self.entropy
        elif self.group is UniquenessGroup.NOT_UNIQUE:
            tiebreak = -self.entropy
            if not self.varies:
                return (4, 0.0)
        else:
            tiebreak = 0.0
        return (group_order[self.group], tiebreak)


# ----------------------------------------------------------------------
# implant strategies (the M=direct probes)


def _implant_timer(container: Container, signature: str) -> None:
    container.arm_timer(signature, delay_seconds=3600.0)


def _implant_lock(container: Container, signature: str) -> None:
    # encode the signature in the inode number
    container.take_lock(inode=abs(hash(signature)) % 10_000_000, task_name=signature)


def _implant_task_name(container: Container, signature: str) -> None:
    container.exec(signature, workload=idle())


def _find_lock_signature(content: str, signature: str) -> bool:
    inode = abs(hash(signature)) % 10_000_000
    return f":{inode} " in content


IMPLANTS: Dict[str, Tuple[Callable[[Container, str], None], Callable[[str, str], bool]]] = {
    "proc.timer_list": (_implant_timer, lambda text, sig: sig in text),
    "proc.locks": (_implant_lock, _find_lock_signature),
    "proc.sched_debug": (_implant_task_name, lambda text, sig: sig in text),
}


# ----------------------------------------------------------------------


def _tokens(content: str) -> List[float]:
    """All numeric tokens of a rendering, in order."""
    return [float(m.group(0)) for m in _NUMBER.finditer(content)]


class ChannelAssessor:
    """Measures U/V/M and entropy for every channel on a live testbed.

    The testbed is two simulated hosts: host A carries two co-resident
    containers plus fluctuating background activity (CPU, IO, network,
    timer/lock churn), host B provides the cross-host comparison.
    """

    def __init__(self, seed: int = 0, snapshots: int = 12, interval_s: float = 5.0):
        if snapshots < 4:
            raise ReproError(f"need at least 4 snapshots: {snapshots}")
        self.snapshots = snapshots
        self.interval_s = interval_s

        from repro.kernel.config import HostConfig

        self.machine_a = Machine(seed=seed)
        # Host B is a *different machine*: other NIC names, disk layout,
        # and RAM size, as two arbitrary servers in a fleet would be. The
        # cross-host leg of the U probe needs this hardware diversity
        # (e.g. ifpriomap is unique because interface lists differ).
        self.machine_b = Machine(
            seed=seed + 1,
            config=HostConfig(
                hostname="host-b",
                memory_mb=32768,
                net_interfaces=("lo", "ens1f0", "ens1f1", "docker0"),
                disks=("sda", "sdb"),
            ),
        )
        self.engine_a = ContainerEngine(self.machine_a.kernel)
        self.engine_b = ContainerEngine(self.machine_b.kernel)
        self.container_1 = self.engine_a.create(name="probe-1")
        self.container_2 = self.engine_a.create(name="probe-2")
        self.container_b = self.engine_b.create(name="probe-remote")
        self._implant_counter = 0
        self._start_background()

    def _start_background(self) -> None:
        """Host activity that makes time-varying channels actually vary."""
        for machine in (self.machine_a, self.machine_b):
            kernel = machine.kernel
            kernel.spawn(
                "bg-web",
                workload=constant(
                    "bg-web", cpu_demand=0.6, ipc=1.3, cache_miss_per_kinst=3.0,
                    branch_miss_per_kinst=4.0, rss_mb=300.0,
                    syscalls_per_sec=10_000.0, voluntary_switches_per_sec=2_000.0,
                    net_kbps=10_000.0, io_ops_per_sec=300.0,
                ),
            )
            kernel.spawn(
                "bg-batch",
                workload=constant(
                    "bg-batch", cpu_demand=0.8, ipc=1.9, cache_miss_per_kinst=6.0,
                    branch_miss_per_kinst=2.0, rss_mb=600.0, io_ops_per_sec=150.0,
                ),
            )
            # lock/timer churn: host daemons keep the global tables moving
            churner = kernel.spawn("bg-churn", workload=idle())
            lock = kernel.locks.acquire(churner, inode=42)

            def churn(kernel=kernel, churner=churner, state={"lock": lock, "n": 0}):
                def listener(result):
                    state["n"] += 1
                    if state["n"] % 7 == 0:
                        kernel.locks.release(state["lock"])
                        state["lock"] = kernel.locks.acquire(
                            churner, inode=42 + state["n"] % 5
                        )
                    if state["n"] % 5 == 0:
                        kernel.timers.arm(churner, delay_seconds=9.0)

                return listener

            kernel.tick_listeners.append(churn())

    # ------------------------------------------------------------------

    def _advance(self, seconds: float) -> None:
        self.machine_a.run(seconds, dt=1.0)
        self.machine_b.run(seconds, dt=1.0)

    def _read(self, container: Container, path: str) -> Optional[str]:
        try:
            return container.read(path)
        except ReproError:
            return None

    def _paths_for(self, channel: Channel) -> List[str]:
        return representative_paths(self.engine_a.vfs, channel)

    def _pick_path(self, channel: Channel) -> Optional[str]:
        """The channel path to probe: prefer one whose content moves.

        Multi-path channels mix live and dead files (``lo`` vs ``eth0``
        statistics, C-states never entered); assessing a dead file would
        understate the channel, so a quick two-read variation scan picks a
        live representative.
        """
        paths = self._paths_for(channel)
        if not paths:
            return None
        candidates = paths[:8]
        first = {p: self._read(self.container_1, p) for p in candidates}
        self._advance(self.interval_s)
        for path in candidates:
            if self._read(self.container_1, path) != first[path]:
                return path
        return candidates[0]

    def assess(self, channel: Channel) -> ChannelAssessment:
        """Measure one channel's Table II row."""
        path = self._pick_path(channel)
        if path is None:
            return ChannelAssessment(
                channel_id=channel.channel_id, unique=False,
                group=UniquenessGroup.NOT_UNIQUE, varies=False,
                manipulation=Manipulation.NONE, entropy=0.0, growth_rate=0.0,
            )

        # --- paired snapshots over time ---
        series_local: List[str] = []
        series_remote: List[str] = []
        for _ in range(self.snapshots):
            a = self._read(self.container_1, path)
            b = self._read(self.container_b, paths_b[0]) if (
                paths_b := representative_paths(self.engine_b.vfs, channel)
            ) else None
            series_local.append(a or "")
            series_remote.append(b or "")
            self._advance(self.interval_s)

        co_resident_equal = self._read(self.container_1, path) == self._read(
            self.container_2, path
        )
        cross_host_diff = series_local[0] != series_remote[0]

        varies = len(set(series_local)) > 1
        stable = not varies

        # --- implantation (M direct) ---
        direct = self._probe_implant(channel)

        # --- indirect influence ---
        indirect = False if direct else self._probe_indirect(channel, path)

        # --- accumulator analysis ---
        monotone, growth_rate = self._accumulator_stats(series_local)

        if direct:
            group = UniquenessGroup.IMPLANTABLE
            unique = True
        elif stable and co_resident_equal and cross_host_diff:
            group = UniquenessGroup.STATIC_ID
            unique = True
        elif varies and monotone and co_resident_equal and cross_host_diff:
            group = UniquenessGroup.ACCUMULATOR
            unique = True
        else:
            group = UniquenessGroup.NOT_UNIQUE
            unique = False

        manipulation = (
            Manipulation.DIRECT
            if direct
            else Manipulation.INDIRECT
            if indirect
            else Manipulation.NONE
        )
        entropy = self._entropy(series_local)
        return ChannelAssessment(
            channel_id=channel.channel_id,
            unique=unique,
            group=group,
            varies=varies,
            manipulation=manipulation,
            entropy=entropy,
            growth_rate=growth_rate,
        )

    def assess_all(self) -> List[ChannelAssessment]:
        """Assess every registered channel and sort into Table II order."""
        assessments = [self.assess(channel) for channel in CHANNELS]
        return sorted(assessments, key=lambda a: a.rank_key)

    # ------------------------------------------------------------------

    def _probe_implant(self, channel: Channel) -> bool:
        implant = IMPLANTS.get(channel.channel_id)
        if implant is None:
            return False
        implant_fn, finder = implant
        self._implant_counter += 1
        signature = f"cl-sig-{self._implant_counter:04d}x"
        implant_fn(self.container_1, signature)
        self._advance(1.0)
        paths = self._paths_for(channel)
        content = self._read(self.container_2, paths[0])
        return bool(content) and finder(content, signature)

    def _probe_indirect(self, channel: Channel, path: str) -> bool:
        """Does the tenant's own load shift how the channel moves?

        Observes the channel's per-field deltas over a rest window and
        over a window with the tenant's own heavy load running (the
        paper's ``taskset`` example), and reports influence when any
        field's rate of change differs markedly — in *either* direction:
        a loaded host accumulates idle time more slowly, which is just as
        much a signal as a counter accelerating.
        """
        before = self._read(self.container_1, path)
        self._advance(5.0)
        after_rest = self._read(self.container_1, path)
        if before is None or after_rest is None:
            return False
        rest_deltas = self._field_deltas(before, after_rest)

        # Four heavy tasks: enough load to shift slow-moving channels.
        for i in range(4):
            self.container_2.exec(
                f"influence-probe-{i}",
                workload=constant(
                    "influence", cpu_demand=1.0, ipc=2.5, cache_miss_per_kinst=10.0,
                    branch_miss_per_kinst=5.0, rss_mb=1024.0, io_ops_per_sec=2_000.0,
                    net_kbps=20_000.0, syscalls_per_sec=50_000.0, duration=5.0,
                ),
            )
        before_load = self._read(self.container_1, path)
        self._advance(5.0)
        after_load = self._read(self.container_1, path)
        self.container_2.reap_finished()
        if before_load is None or after_load is None:
            return False
        load_deltas = self._field_deltas(before_load, after_load)

        if rest_deltas is None or load_deltas is None or (
            len(rest_deltas) != len(load_deltas)
        ):
            # structure changed; fall back to whole-content comparison
            return (before != after_rest) != (before_load != after_load)
        for rest, load in zip(rest_deltas, load_deltas):
            scale = max(abs(rest), abs(load))
            if scale < 1e-12:
                continue
            if abs(load - rest) > 0.5 * scale and abs(load - rest) > 1e-9:
                return True
        return False

    @staticmethod
    def _field_deltas(before: str, after: str) -> Optional[List[float]]:
        """Per-field relative deltas between two snapshots."""
        ta, tb = _tokens(before), _tokens(after)
        if len(ta) != len(tb) or not ta:
            return None
        return [
            (y - x) / max(abs(x), abs(y), 1.0) for x, y in zip(ta, tb)
        ]

    def _accumulator_stats(self, series: Sequence[str]) -> Tuple[bool, float]:
        """Monotonicity + growth rate of the channel's changing fields."""
        token_rows = [_tokens(s) for s in series if s]
        if len(token_rows) < 3:
            return False, 0.0
        length = len(token_rows[0])
        if any(len(row) != length for row in token_rows) or length == 0:
            return False, 0.0
        columns = list(zip(*token_rows))
        changing = [col for col in columns if len(set(col)) > 1]
        if not changing:
            return False, 0.0
        nondecreasing = [
            col for col in changing
            if all(b >= a for a, b in zip(col, col[1:]))
        ]
        increasing = [
            col for col in nondecreasing
            if col[-1] > col[0]
        ]
        monotone = (
            len(nondecreasing) / len(changing) > 0.5 and len(increasing) > 0
        )
        if not increasing:
            return monotone, 0.0
        window = self.interval_s * (len(series) - 1)
        rates = [
            (col[-1] - col[0]) / max(abs(col[0]), 1.0) / window for col in increasing
        ]
        return monotone, max(rates)

    def _entropy(self, series: Sequence[str]) -> float:
        """Formula 1 over the channel's changing numeric fields."""
        token_rows = [_tokens(s) for s in series if s]
        if len(token_rows) < 2:
            return 0.0
        length = len(token_rows[0])
        if any(len(row) != length for row in token_rows) or length == 0:
            # structure changes between snapshots: hash whole contents
            return field_entropy([hash(s) for s in series])
        columns = list(zip(*token_rows))
        total = 0.0
        for col in columns:
            if len(set(col)) > 1:
                total += field_entropy(quantize(list(col)))
        return total
