"""The leakage-channel registry: Table I's rows as data.

Each :class:`Channel` carries the paper's metadata — what information the
file leaks and which vulnerability classes it feeds (co-residence, DoS,
info-leak) — plus a representative pseudo-path pattern used by the probes.
The *behavioural* properties (U/V/M, entropy) are never stored here; they
are measured by :mod:`repro.detection.metrics`.
"""

from __future__ import annotations

import fnmatch
from dataclasses import dataclass
from typing import Dict, List, Tuple


@dataclass(frozen=True)
class Channel:
    """One leakage channel (one row of Table I)."""

    channel_id: str
    #: the path as Table I prints it
    table_label: str
    #: glob over concrete pseudo paths belonging to this channel
    path_pattern: str
    leaked_information: str
    #: potential vulnerability classes (Table I columns)
    coresidence: bool
    dos: bool
    info_leak: bool
    #: channels that require hardware support to exist at all
    requires_rapl: bool = False
    requires_dts: bool = False

    def matches(self, path: str) -> bool:
        """Whether a concrete pseudo path belongs to this channel."""
        return fnmatch.fnmatchcase(path, self.path_pattern)


#: Table I, in the paper's row order.
CHANNELS: Tuple[Channel, ...] = (
    Channel(
        "proc.locks", "/proc/locks", "/proc/locks",
        "Files locked by the kernel", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.zoneinfo", "/proc/zoneinfo", "/proc/zoneinfo",
        "Physical RAM information", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.modules", "/proc/modules", "/proc/modules",
        "Loaded kernel modules information", coresidence=False, dos=False,
        info_leak=True,
    ),
    Channel(
        "proc.timer_list", "/proc/timer_list", "/proc/timer_list",
        "Configured clocks and timers", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.sched_debug", "/proc/sched_debug", "/proc/sched_debug",
        "Task scheduler behavior", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.softirqs", "/proc/softirqs", "/proc/softirqs",
        "Number of invoked softirq handler", coresidence=True, dos=True,
        info_leak=True,
    ),
    Channel(
        "proc.uptime", "/proc/uptime", "/proc/uptime",
        "Up and idle time", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.version", "/proc/version", "/proc/version",
        "Kernel, gcc, distribution version", coresidence=False, dos=False,
        info_leak=True,
    ),
    Channel(
        "proc.stat", "/proc/stat", "/proc/stat",
        "Kernel activities", coresidence=True, dos=True, info_leak=True,
    ),
    Channel(
        "proc.meminfo", "/proc/meminfo", "/proc/meminfo",
        "Memory information", coresidence=True, dos=True, info_leak=True,
    ),
    Channel(
        "proc.loadavg", "/proc/loadavg", "/proc/loadavg",
        "CPU and IO utilization over time", coresidence=True, dos=False,
        info_leak=True,
    ),
    Channel(
        "proc.interrupts", "/proc/interrupts", "/proc/interrupts",
        "Number of interrupts per IRQ", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.cpuinfo", "/proc/cpuinfo", "/proc/cpuinfo",
        "CPU information", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.schedstat", "/proc/schedstat", "/proc/schedstat",
        "Schedule statistics", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.sys.fs.dentry-state", "/proc/sys/fs/*", "/proc/sys/fs/dentry-state",
        "File system information", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.sys.fs.inode-nr", "/proc/sys/fs/*", "/proc/sys/fs/inode-nr",
        "File system information", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.sys.fs.file-nr", "/proc/sys/fs/*", "/proc/sys/fs/file-nr",
        "File system information", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.sys.kernel.random.boot_id", "/proc/sys/kernel/random/*",
        "/proc/sys/kernel/random/boot_id",
        "Random number generation info", coresidence=True, dos=False,
        info_leak=True,
    ),
    Channel(
        "proc.sys.kernel.random.entropy_avail", "/proc/sys/kernel/random/*",
        "/proc/sys/kernel/random/entropy_avail",
        "Random number generation info", coresidence=True, dos=False,
        info_leak=True,
    ),
    Channel(
        "proc.sys.kernel.sched_domain", "/proc/sys/kernel/sched_domain/*",
        "/proc/sys/kernel/sched_domain/cpu*/domain0/max_newidle_lb_cost",
        "Schedule domain info", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "proc.fs.ext4.mb_groups", "/proc/fs/ext4/*",
        "/proc/fs/ext4/*/mb_groups",
        "Ext4 file system info", coresidence=True, dos=False, info_leak=True,
    ),
    Channel(
        "sys.fs.cgroup.net_prio.ifpriomap", "/sys/fs/cgroup/net_prio/*",
        "/sys/fs/cgroup/net_prio/net_prio.ifpriomap",
        "Priorities assigned to traffic", coresidence=True, dos=False,
        info_leak=True,
    ),
    Channel(
        "sys.devices.system.node.numastat", "/sys/devices/*",
        "/sys/devices/system/node/node*/numastat",
        "System device information", coresidence=True, dos=True, info_leak=True,
    ),
    Channel(
        "sys.devices.system.node.vmstat", "/sys/devices/*",
        "/sys/devices/system/node/node*/vmstat",
        "System device information", coresidence=True, dos=True, info_leak=True,
    ),
    Channel(
        "sys.devices.system.node.meminfo", "/sys/devices/*",
        "/sys/devices/system/node/node*/meminfo",
        "System device information", coresidence=True, dos=True, info_leak=True,
    ),
    Channel(
        "sys.devices.system.cpu.cpuidle.usage", "/sys/devices/*",
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/usage",
        "System device information", coresidence=True, dos=True, info_leak=True,
    ),
    Channel(
        "sys.devices.system.cpu.cpuidle.time", "/sys/devices/*",
        "/sys/devices/system/cpu/cpu*/cpuidle/state*/time",
        "System device information", coresidence=True, dos=True, info_leak=True,
    ),
    Channel(
        "sys.devices.platform.coretemp.temp_input", "/sys/devices/*",
        "/sys/devices/platform/coretemp.*/hwmon/hwmon*/temp*_input",
        "System device information", coresidence=True, dos=True, info_leak=True,
        requires_dts=True,
    ),
    Channel(
        "sys.class.powercap.energy_uj", "/sys/class/*",
        "/sys/class/powercap/intel-rapl*/energy_uj",
        "System device information", coresidence=True, dos=True, info_leak=True,
        requires_rapl=True,
    ),
    Channel(
        "sys.class.net.statistics", "/sys/class/*",
        "/sys/class/net/*/statistics/*",
        "System device information", coresidence=False, dos=True, info_leak=True,
    ),
)

_BY_ID: Dict[str, Channel] = {c.channel_id: c for c in CHANNELS}


def channel_by_id(channel_id: str) -> Channel:
    """Look up a channel by its stable id (KeyError for typos)."""
    return _BY_ID[channel_id]


def channels_for_path(path: str) -> List[Channel]:
    """All registered channels a concrete path belongs to."""
    return [c for c in CHANNELS if c.matches(path)]


def representative_paths(vfs, channel: Channel) -> List[str]:
    """Concrete paths of one channel present on a given host's VFS."""
    return [
        path
        for path, node in vfs.walk()
        if node.channel == channel.channel_id and channel.matches(path)
    ]
