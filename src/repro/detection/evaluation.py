"""Ranked evaluation service: NDCG@k scoring of the channel ranking.

``bench_table2_ranking`` used to pin the detector against one
hand-built fixture — the paper-faithful cloud. This module turns that
into a statistical harness: the detector's channel-severity ranking
(:meth:`ChannelAssessor.assess_all` order) is scored with NDCG@k
against ground-truth severity grades across thousands of seeded
randomized *cloud profiles* — perturbed masking policies (channels
randomly made unavailable), measurement noise on entropy/growth, and
occasional sensor-grade misclassifications that genuinely demote a
channel.

Ground truth comes from the paper's Table II groups: static identifiers
are the strongest co-residence beacons, implantable channels next, then
accumulators, then varying-but-not-unique channels; inert channels are
irrelevant. Any ranking that orders the groups correctly is perfect
(intra-group order carries equal relevance), so the unperturbed
paper-faithful profile scores exactly 1.0 — the CI gate in
``benchmarks/bench_table2_ranking.py`` pins that, plus a floor on the
mean NDCG@10 over the randomized sweep (``BENCH_ranking.json``).

The harness perturbs one real base assessment rather than re-running
the assessor per profile: the assessor's probing is the expensive,
already-tested part; what the sweep exercises is the *ranking metric*
under channel availability and signal noise.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.detection.metrics import UniquenessGroup

#: ground-truth severity grade per Table II group (varying not-unique
#: channels still leak a little; inert channels are irrelevant)
GROUP_RELEVANCE = {
    UniquenessGroup.STATIC_ID: 5.0,
    UniquenessGroup.IMPLANTABLE: 4.0,
    UniquenessGroup.ACCUMULATOR: 3.0,
    UniquenessGroup.NOT_UNIQUE: 1.0,
}

_GROUP_ORDER = {
    UniquenessGroup.STATIC_ID: 0,
    UniquenessGroup.IMPLANTABLE: 1,
    UniquenessGroup.ACCUMULATOR: 2,
    UniquenessGroup.NOT_UNIQUE: 3,
}


def rank_key(
    group: UniquenessGroup, varies: bool, entropy: float, growth_rate: float
) -> Tuple[int, float]:
    """The detector's Table II sort key over perturbable signal values.

    Mirrors :meth:`ChannelAssessment.rank_key` exactly, but as a free
    function so the harness can re-rank under perturbed observations.
    """
    if group is UniquenessGroup.ACCUMULATOR:
        tiebreak = -growth_rate
    elif group is UniquenessGroup.IMPLANTABLE:
        tiebreak = -entropy
    elif group is UniquenessGroup.NOT_UNIQUE:
        if not varies:
            return (4, 0.0)
        tiebreak = -entropy
    else:
        tiebreak = 0.0
    return (_GROUP_ORDER[group], tiebreak)


@dataclass(frozen=True)
class ChannelSignal:
    """One channel's detector-visible signal in the base cloud."""

    channel_id: str
    group: UniquenessGroup
    varies: bool
    entropy: float
    growth_rate: float

    @classmethod
    def from_assessment(cls, assessment) -> "ChannelSignal":
        return cls(
            channel_id=assessment.channel_id,
            group=assessment.group,
            varies=assessment.varies,
            entropy=assessment.entropy,
            growth_rate=assessment.growth_rate,
        )

    @property
    def relevance(self) -> float:
        """Ground-truth severity grade (0 for inert channels)."""
        if self.group is UniquenessGroup.NOT_UNIQUE and not self.varies:
            return 0.0
        return GROUP_RELEVANCE[self.group]


@dataclass(frozen=True)
class CloudProfile:
    """One randomized cloud: what the detector saw and could rank."""

    seed: int
    #: detector's severity ranking over the available channels
    ranking: Tuple[str, ...]
    #: channels this cloud's masking policy removed (unrankable)
    masked: Tuple[str, ...]
    #: channels whose uniqueness the perturbed probe failed to see
    misclassified: Tuple[str, ...]


def dcg(gains: Iterable[float]) -> float:
    """Discounted cumulative gain with the standard log2 discount."""
    return sum(
        gain / math.log2(position + 2.0)
        for position, gain in enumerate(gains)
    )


def ndcg_at_k(
    ranking: Sequence[str], relevance: Dict[str, float], k: int
) -> float:
    """NDCG@k of ``ranking`` against graded ``relevance``.

    Gains use the exponential form ``2^grade - 1``, so burying a
    static-id beacon costs far more than swapping two accumulators.
    Returns 1.0 when nothing relevant exists to rank (an empty ideal
    is vacuously matched).
    """
    if k < 1:
        raise ValueError(f"k must be positive: {k}")
    gains = [
        2.0 ** relevance.get(channel_id, 0.0) - 1.0
        for channel_id in ranking[:k]
    ]
    ideal = sorted(
        (2.0 ** grade - 1.0 for grade in relevance.values()), reverse=True
    )[:k]
    idcg = dcg(ideal)
    if idcg <= 0.0:
        return 1.0
    return dcg(gains) / idcg


@dataclass
class EvaluationReport:
    """Summary statistics of one randomized NDCG sweep."""

    profiles: int
    k: int
    mean: float
    percentiles: Dict[str, float]
    perfect_fraction: float
    worst: List[dict]

    def as_dict(self) -> dict:
        return {
            "profiles": self.profiles,
            "k": self.k,
            "mean_ndcg": self.mean,
            "percentiles": dict(self.percentiles),
            "perfect_fraction": self.perfect_fraction,
            "worst_profiles": [dict(w) for w in self.worst],
        }


class EvaluationService:
    """NDCG@k scoring of the detector ranking over randomized clouds.

    ``signals`` is the base assessment (one per channel); each seeded
    profile perturbs it — masking policy removal with probability
    ``mask_probability``, lognormal noise of scale ``signal_noise`` on
    entropy/growth tiebreaks, and a ``misclassify_probability`` chance
    per channel that the probe misses its uniqueness entirely (the
    observation degrades to varying-not-unique). Masked channels are
    excluded from both the ranking and the ideal: the policy removed
    them, so the detector is not penalized for not ranking them.
    """

    def __init__(
        self,
        signals: Sequence[ChannelSignal],
        mask_probability: float = 0.15,
        misclassify_probability: float = 0.05,
        signal_noise: float = 0.25,
    ):
        if not signals:
            raise ValueError("evaluation needs at least one channel signal")
        self.signals = list(signals)
        self.mask_probability = mask_probability
        self.misclassify_probability = misclassify_probability
        self.signal_noise = signal_noise

    @classmethod
    def from_assessments(cls, assessments, **kwargs) -> "EvaluationService":
        return cls(
            [ChannelSignal.from_assessment(a) for a in assessments], **kwargs
        )

    def ground_truth(self) -> Dict[str, float]:
        """Channel id -> severity grade for the full channel set."""
        return {s.channel_id: s.relevance for s in self.signals}

    # ------------------------------------------------------------ profiles

    def paper_profile(self) -> CloudProfile:
        """The unperturbed paper-faithful cloud (every channel visible)."""
        ranked = sorted(
            self.signals,
            key=lambda s: (
                rank_key(s.group, s.varies, s.entropy, s.growth_rate),
                s.channel_id,
            ),
        )
        return CloudProfile(
            seed=-1,
            ranking=tuple(s.channel_id for s in ranked),
            masked=(),
            misclassified=(),
        )

    def profile(self, seed: int) -> CloudProfile:
        """One seeded randomized cloud profile (deterministic per seed)."""
        rng = random.Random(seed)
        masked: List[str] = []
        available: List[ChannelSignal] = []
        for signal in self.signals:
            if rng.random() < self.mask_probability:
                masked.append(signal.channel_id)
            else:
                available.append(signal)
        if not available:
            # a policy that masks everything leaves nothing to rank;
            # keep the first channel so the profile stays well-formed
            available.append(self.signals[0])
            masked.remove(self.signals[0].channel_id)
        misclassified: List[str] = []
        observed: List[Tuple[tuple, str]] = []
        for signal in available:
            entropy = signal.entropy
            growth = signal.growth_rate
            if entropy > 0.0:
                entropy *= math.exp(self.signal_noise * rng.gauss(0.0, 1.0))
            if growth > 0.0:
                growth *= math.exp(self.signal_noise * rng.gauss(0.0, 1.0))
            group, varies = signal.group, signal.varies
            if (
                group is not UniquenessGroup.NOT_UNIQUE
                and rng.random() < self.misclassify_probability
            ):
                # the probe missed the uniqueness/implant signal: the
                # channel observes as a varying non-unique file
                group, varies = UniquenessGroup.NOT_UNIQUE, True
                misclassified.append(signal.channel_id)
            observed.append(
                (rank_key(group, varies, entropy, growth), signal.channel_id)
            )
        observed.sort()
        return CloudProfile(
            seed=seed,
            ranking=tuple(channel_id for _, channel_id in observed),
            masked=tuple(masked),
            misclassified=tuple(misclassified),
        )

    # ------------------------------------------------------------- scoring

    def score(self, profile: CloudProfile, k: int = 10) -> float:
        """NDCG@k of one profile against the availability-restricted ideal."""
        truth = self.ground_truth()
        masked = set(profile.masked)
        relevance = {
            channel_id: grade
            for channel_id, grade in truth.items()
            if channel_id not in masked
        }
        return ndcg_at_k(profile.ranking, relevance, k)

    def sweep(
        self,
        profiles: int = 1000,
        k: int = 10,
        seed0: int = 1,
        worst_n: int = 10,
    ) -> EvaluationReport:
        """Score ``profiles`` seeded clouds; summarize the distribution."""
        if profiles < 1:
            raise ValueError(f"sweep needs at least one profile: {profiles}")
        scored: List[Tuple[float, CloudProfile]] = []
        for i in range(profiles):
            profile = self.profile(seed0 + i)
            scored.append((self.score(profile, k=k), profile))
        values = sorted(score for score, _ in scored)

        def pct(q: float) -> float:
            return values[min(len(values) - 1, int(q * len(values)))]

        scored.sort(key=lambda pair: (pair[0], pair[1].seed))
        worst = [
            {
                "seed": profile.seed,
                "ndcg": score,
                "masked": list(profile.masked),
                "misclassified": list(profile.misclassified),
            }
            for score, profile in scored[:worst_n]
        ]
        return EvaluationReport(
            profiles=profiles,
            k=k,
            mean=sum(values) / len(values),
            percentiles={
                "p5": pct(0.05),
                "p25": pct(0.25),
                "p50": pct(0.50),
                "p75": pct(0.75),
                "min": values[0],
                "max": values[-1],
            },
            perfect_fraction=sum(1 for v in values if v >= 1.0 - 1e-12)
            / len(values),
            worst=worst,
        )
