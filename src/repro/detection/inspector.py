"""Cloud inspection: Figure 1 (right) — produce the Table I matrix.

For each provider, launch an instance and probe every registered channel
from inside it. A channel is *available* (●) when the tenant reads the
same bytes the host kernel would serve, *partial* (◐) when the tenant
reads a transformed/restricted view that still derives from host state,
and *masked/absent* (○) when the read errors or the hardware lacks the
interface.

The partial/full distinction uses experimenter-side ground truth (a
host-context read on the same simulated kernel), mirroring the paper's
manual analysis of CC5's customized files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from repro.detection.channels import CHANNELS, Channel, representative_paths
from repro.detection.walker import PseudoWalker, ReadOutcome
from repro.procfs.node import ReadContext
from repro.runtime.cloud import ContainerCloud


class Availability(enum.Enum):
    """One Table I cell."""

    FULL = "●"
    PARTIAL = "◐"
    MASKED = "○"


@dataclass
class InspectionReport:
    """Channel availability for one provider."""

    provider: str
    cells: Dict[str, Availability] = field(default_factory=dict)

    def available_channels(self) -> List[str]:
        """Channel ids fully available to tenants."""
        return sorted(
            cid for cid, a in self.cells.items() if a is Availability.FULL
        )

    def masked_channels(self) -> List[str]:
        """Channel ids masked or absent."""
        return sorted(
            cid for cid, a in self.cells.items() if a is Availability.MASKED
        )


class CloudInspector:
    """Probes provider clouds and builds the Table I availability matrix."""

    def __init__(self, tenant: str = "inspector"):
        self.tenant = tenant

    def inspect(self, cloud: ContainerCloud) -> InspectionReport:
        """Launch one probe instance and classify every channel."""
        instance = cloud.launch_instance(self.tenant)
        cloud.run(2.0, dt=1.0)  # let counters move before probing
        report = InspectionReport(provider=cloud.profile.name)
        host = cloud.host_of(instance)
        vfs = host.engine.vfs
        host_walker = PseudoWalker(vfs, ReadContext(kernel=host.kernel))
        tenant_walker = PseudoWalker(vfs, instance.container.read_context())

        for channel in CHANNELS:
            report.cells[channel.channel_id] = self._probe(
                channel, vfs, host_walker, tenant_walker
            )
        cloud.terminate_instance(instance)
        return report

    def _probe(
        self,
        channel: Channel,
        vfs,
        host_walker: PseudoWalker,
        tenant_walker: PseudoWalker,
    ) -> Availability:
        paths = representative_paths(vfs, channel)
        if not paths:
            # hardware on this provider lacks the interface entirely
            return Availability.MASKED
        verdicts: List[Availability] = []
        for path in paths:
            host_entry = host_walker.read_one(path)
            tenant_entry = tenant_walker.read_one(path)
            if tenant_entry.outcome is not ReadOutcome.OK:
                verdicts.append(Availability.MASKED)
            elif (
                host_entry.outcome is ReadOutcome.OK
                and host_entry.content == tenant_entry.content
            ):
                verdicts.append(Availability.FULL)
            else:
                verdicts.append(Availability.PARTIAL)
        if all(v is Availability.MASKED for v in verdicts):
            return Availability.MASKED
        if all(v is Availability.FULL for v in verdicts):
            return Availability.FULL
        return Availability.PARTIAL


def inspect_all(
    clouds: Dict[str, ContainerCloud]
) -> Dict[str, InspectionReport]:
    """Inspect several providers (the full Table I sweep)."""
    inspector = CloudInspector()
    return {name: inspector.inspect(cloud) for name, cloud in clouds.items()}


def format_table1(reports: Dict[str, InspectionReport]) -> str:
    """Render the availability matrix as the paper's Table I."""
    providers = sorted(reports)
    header = f"{'Leakage Channels':<42}" + "".join(
        f"{p:>6}" for p in providers
    )
    lines = [header, "-" * len(header)]
    for channel in CHANNELS:
        row = f"{channel.table_label:<42}"
        for provider in providers:
            cell = reports[provider].cells[channel.channel_id]
            row += f"{cell.value:>6}"
        lines.append(row)
    return "\n".join(lines)
