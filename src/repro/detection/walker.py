"""The pseudo-file walker: enumerate + read in a given execution context.

One half of the Figure 1 cross-validation tool. A walker bound to a
context (host shell or container) recursively lists everything under
``/proc`` and ``/sys`` and reads each file, recording errors as outcomes
rather than failing the walk (masked files are data, not crashes).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import (
    FileNotFoundPseudoError,
    PermissionDeniedError,
    TransientReadError,
)
from repro.procfs.node import ReadContext
from repro.procfs.vfs import PseudoVFS


class ReadOutcome(enum.Enum):
    """What happened when a path was read."""

    OK = "ok"
    DENIED = "denied"  # EACCES from a masking policy
    ABSENT = "absent"  # ENOENT (hidden, or hardware not present)
    ERROR = "error"  # EIO (transient sensor/backing-store fault)


@dataclass(frozen=True)
class WalkEntry:
    """One file's read result in one context."""

    path: str
    outcome: ReadOutcome
    content: Optional[str]
    channel: Optional[str]


class PseudoWalker:
    """Recursive reader of a pseudo-filesystem in one context."""

    def __init__(self, vfs: PseudoVFS, ctx: ReadContext):
        self.vfs = vfs
        self.ctx = ctx

    def read_one(self, path: str) -> WalkEntry:
        """Read a single path, converting policy errors into outcomes."""
        try:
            node = self.vfs.lookup(path)
        except FileNotFoundPseudoError:
            return WalkEntry(path=path, outcome=ReadOutcome.ABSENT, content=None,
                             channel=None)
        try:
            content = self.vfs.read(path, self.ctx)
        except TransientReadError:
            return WalkEntry(
                path=path, outcome=ReadOutcome.ERROR, content=None,
                channel=node.channel,
            )
        except PermissionDeniedError:
            return WalkEntry(
                path=path, outcome=ReadOutcome.DENIED, content=None,
                channel=node.channel,
            )
        except FileNotFoundPseudoError:
            return WalkEntry(
                path=path, outcome=ReadOutcome.ABSENT, content=None,
                channel=node.channel,
            )
        return WalkEntry(
            path=path, outcome=ReadOutcome.OK, content=content, channel=node.channel
        )

    def walk(self, paths: Optional[List[str]] = None) -> Dict[str, WalkEntry]:
        """Read every path (default: the full tree) in this context."""
        if paths is None:
            paths = [path for path, _ in self.vfs.walk()]
        return {path: self.read_one(path) for path in paths}
