"""Power estimation without RAPL (Section VII-A).

"If power data is not directly available, advanced attackers will try to
approximate the power status based on the resource utilization
information, such as the CPU and memory utilization, which is still
available in the identified information leakages."

This module implements that advanced attacker: a power proxy built from
``/proc/stat`` (host CPU busy time) and ``/proc/meminfo`` (memory churn),
usable on providers whose hardware has no RAPL (the paper's CC4) or who
masked the powercap tree but left the classic status files open. The
estimate feeds the same :class:`repro.attack.monitor.CrestDetector` as
the RAPL watt series.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import AttackError, ReproError


@dataclass
class _StatSnapshot:
    """Parsed totals from one /proc/stat read."""

    busy_ticks: int
    idle_ticks: int


def _parse_stat(content: str) -> _StatSnapshot:
    first = content.splitlines()[0]
    if not first.startswith("cpu "):
        raise AttackError(f"unexpected /proc/stat header: {first!r}")
    fields = [int(x) for x in first.split()[1:]]
    if len(fields) < 4:
        raise AttackError(f"truncated /proc/stat cpu line: {first!r}")
    user, nice, system, idle = fields[:4]
    iowait = fields[4] if len(fields) > 4 else 0
    return _StatSnapshot(busy_ticks=user + nice + system, idle_ticks=idle + iowait)


def _parse_memfree_kb(content: str) -> int:
    match = re.search(r"MemFree:\s+(\d+) kB", content)
    if match is None:
        raise AttackError("no MemFree in /proc/meminfo")
    return int(match.group(1))


class UtilizationPowerEstimator:
    """A relative power proxy from /proc/stat and /proc/meminfo.

    Produces ``estimate = cpu_utilization + memory_churn_weight ·
    normalized_memory_churn`` per sampling interval. The scale is
    arbitrary (it is *not* watts) — crest detection only needs the
    *pattern*, which is exactly the paper's point: hiding RAPL without
    hiding the utilization files leaves the attack viable.
    """

    STAT = "/proc/stat"
    MEMINFO = "/proc/meminfo"

    def __init__(self, instance, memory_churn_weight: float = 0.3):
        self.instance = instance
        self.memory_churn_weight = memory_churn_weight
        self._last_stat: Optional[_StatSnapshot] = None
        self._last_memfree_kb: Optional[int] = None
        self._last_time: Optional[float] = None
        self.estimates: List[float] = []
        self.times: List[float] = []

    def available(self) -> bool:
        """Whether the utilization channels are readable."""
        try:
            self.instance.read(self.STAT)
            self.instance.read(self.MEMINFO)
            return True
        except ReproError:
            return False

    def sample(self, now: float) -> Optional[float]:
        """One reading; returns the load estimate since the last sample."""
        try:
            stat = _parse_stat(self.instance.read(self.STAT))
            memfree_kb = _parse_memfree_kb(self.instance.read(self.MEMINFO))
        except ReproError as exc:
            raise AttackError(f"utilization channels unreadable: {exc}") from exc

        if self._last_stat is None or self._last_time is None:
            self._last_stat = stat
            self._last_memfree_kb = memfree_kb
            self._last_time = now
            return None
        if now <= self._last_time:
            raise AttackError(f"estimator sampled twice at t={now}")

        busy = stat.busy_ticks - self._last_stat.busy_ticks
        idle = stat.idle_ticks - self._last_stat.idle_ticks
        total = busy + idle
        utilization = busy / total if total > 0 else 0.0

        churn_kb = abs(memfree_kb - (self._last_memfree_kb or memfree_kb))
        dt = now - self._last_time
        # normalize churn to "fraction of a GB per second"
        churn = min(1.0, churn_kb / dt / (1024.0 * 1024.0))

        estimate = utilization + self.memory_churn_weight * churn
        self._last_stat = stat
        self._last_memfree_kb = memfree_kb
        self._last_time = now
        self.estimates.append(estimate)
        self.times.append(now)
        return estimate
