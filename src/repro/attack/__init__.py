"""The synergistic power attack (Section IV).

- :mod:`repro.attack.monitor` — RAPL-channel power monitoring and crest
  detection (near-zero CPU, hence near-zero billing cost).
- :mod:`repro.attack.virus` — power-virus workloads.
- :mod:`repro.attack.strategies` — continuous, periodic, and synergistic
  attack strategies over a datacenter simulation.
- :mod:`repro.attack.campaign` — the full orchestrated campaign: aggregate
  co-resident instances, then strike every server's crest at once.
"""

from repro.attack.estimator import UtilizationPowerEstimator
from repro.attack.monitor import CrestDetector, RaplPowerMonitor
from repro.attack.strategies import (
    AttackOutcome,
    ContinuousAttack,
    PeriodicAttack,
    SynergisticAttack,
)
from repro.attack.campaign import CampaignResult, SynergisticCampaign
from repro.attack.virus import power_virus

__all__ = [
    "AttackOutcome",
    "CampaignResult",
    "ContinuousAttack",
    "CrestDetector",
    "PeriodicAttack",
    "RaplPowerMonitor",
    "SynergisticAttack",
    "SynergisticCampaign",
    "UtilizationPowerEstimator",
    "power_virus",
]
