"""Power viruses: workloads crafted to maximize power draw.

Ganesan et al.'s SYMPO/MAMPO (cited in Section IV-A) use genetic search to
find instruction mixes that burn more power than any stress benchmark; the
profiles here encode the result of that search in activity-vector space —
a saturated pipeline plus heavy DRAM traffic — without re-running it.
"""

from __future__ import annotations

from typing import Optional

from repro.runtime.benchmarks import power_virus  # re-export: canonical virus
from repro.runtime.workload import Workload, constant

__all__ = ["power_virus", "moderate_virus", "stress_ng_like"]


def moderate_virus(duration: Optional[float] = None) -> Workload:
    """A stealthier virus: Prime95-class power, less obviously synthetic.

    Used when the attacker wants spikes that blend into benign compute
    (Section IV-B's stealthiness concern).
    """
    return constant(
        "prime-attack",
        cpu_demand=1.0,
        ipc=2.6,
        cache_miss_per_kinst=0.1,
        branch_miss_per_kinst=0.3,
        rss_mb=30.0,
        duration=duration,
    )


def stress_ng_like(duration: Optional[float] = None) -> Workload:
    """A stress(1)-style memory hog: the baseline the paper's power
    viruses are measured against."""
    return constant(
        "stress-attack",
        cpu_demand=1.0,
        ipc=0.6,
        cache_miss_per_kinst=25.0,
        branch_miss_per_kinst=2.0,
        rss_mb=1024.0,
        duration=duration,
    )
