"""The full synergistic campaign: orchestration + timing (Section IV-C).

Combines the toolkit: aggregate co-resident instances with the
leakage-based orchestrator (and the uptime boot-proximity heuristic for
rack adjacency), arm per-server RAPL monitors, and superimpose synchronized
bursts on benign crests to overload a shared branch circuit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.attack.strategies import AttackOutcome, SynergisticAttack
from repro.coresidence.fingerprint import fingerprint_instance
from repro.coresidence.uptime import read_uptime
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import AttackError, CapacityError, ReproError
from repro.runtime.cloud import Instance


@dataclass
class CampaignResult:
    """End-to-end campaign outcome."""

    servers_covered: int
    launches: int
    coverage_elapsed_s: float
    attack: Optional[AttackOutcome] = None
    #: instance_id -> (uptime, idle) observed during reconnaissance
    reconnaissance: Dict[str, tuple] = field(default_factory=dict)
    #: instances whose /proc/uptime read failed during reconnaissance
    recon_failures: int = 0
    #: candidates discarded because their fingerprint reads faulted
    blind_fingerprints: int = 0
    #: fleet fault-injection counters observed over the campaign window
    fault_stats: Dict[str, float] = field(default_factory=dict)


class SynergisticCampaign:
    """Cover target servers with instances, then strike their crests."""

    def __init__(
        self,
        sim: DatacenterSimulation,
        tenant: str = "attacker",
        cores_per_instance: int = 4,
    ):
        self.sim = sim
        self.tenant = tenant
        self.cores = cores_per_instance

    def cover_servers(
        self, target_servers: int, max_launches: int = 200
    ) -> List[Instance]:
        """Obtain one instance on each of ``target_servers`` distinct hosts.

        Distinctness is verified purely through leaked channels: a new
        instance whose fingerprint matches an already-held one is
        co-resident with it and gets terminated.
        """
        cloud = self.sim.cloud
        start = cloud.clock.now
        held: List[Instance] = []
        held_prints: List = []
        launches = 0
        self._blind_fingerprints = 0
        while len(held) < target_servers:
            if launches >= max_launches:
                raise AttackError(
                    f"launch budget exhausted: covered {len(held)}/"
                    f"{target_servers} servers in {launches} launches"
                )
            try:
                candidate = cloud.launch_instance(self.tenant)
            except CapacityError:
                cloud.run(10.0)
                continue
            launches += 1
            cloud.run(1.0)
            try:
                print_ = fingerprint_instance(candidate)
            except ReproError:
                print_ = None
            if print_ is None or print_.empty:
                # every identity channel faulted or masked: an empty
                # fingerprint matches nothing, so keeping the candidate
                # could double-cover a host — discard it and relaunch
                self._blind_fingerprints += 1
                cloud.terminate_instance(candidate)
                continue
            if any(print_.matches(existing) for existing in held_prints):
                cloud.terminate_instance(candidate)
            else:
                held.append(candidate)
                held_prints.append(print_)
        self._launches = launches
        self._coverage_elapsed = cloud.clock.now - start
        return held

    def reconnoiter(self, instances: List[Instance]) -> Dict[str, tuple]:
        """Read /proc/uptime everywhere: the boot-proximity intelligence.

        An instance whose read faults is skipped and counted (the
        campaign proceeds with partial intelligence); only losing the
        channel on *every* instance — a masked provider, not a transient
        fault — fails loudly.
        """
        observations = {}
        self._recon_failures = 0
        for instance in instances:
            try:
                obs = read_uptime(instance)
            except ReproError:
                self._recon_failures += 1
                continue
            observations[instance.instance_id] = (obs.uptime_s, obs.idle_s)
        if instances and not observations:
            raise AttackError(
                f"reconnaissance blind: all {len(instances)} uptime reads "
                f"failed (channel masked by the provider?)"
            )
        return observations

    def execute(
        self,
        target_servers: int,
        attack_duration_s: float = 3000.0,
        burst_s: float = 30.0,
        cooldown_s: float = 600.0,
        max_launches: int = 200,
        settle_s: float = 300.0,
    ) -> CampaignResult:
        """The whole campaign: cover, reconnoiter, monitor, strike."""
        instances = self.cover_servers(target_servers, max_launches=max_launches)
        recon = self.reconnoiter(instances)
        result = CampaignResult(
            servers_covered=len(instances),
            launches=self._launches,
            coverage_elapsed_s=self._coverage_elapsed,
            reconnaissance=recon,
            recon_failures=self._recon_failures,
            blind_fingerprints=self._blind_fingerprints,
        )
        if settle_s > 0:
            self.sim.run(settle_s)  # let monitors see the benign baseline
        attack = SynergisticAttack(
            self.sim,
            instances,
            burst_s=burst_s,
            cooldown_s=cooldown_s,
            cores_per_instance=self.cores,
        )
        result.attack = attack.run(attack_duration_s)
        result.fault_stats = self.sim.fault_report()
        return result
