"""RAPL-channel power monitoring from inside a container.

The monitor reads ``energy_uj`` through the leaked sysfs interface,
differentiates successive readings into watts (handling MSR wraparound),
and feeds a crest detector. Reading a pseudo-file costs effectively no CPU
— the property that makes the synergistic attack nearly free to aim
(Section IV-B).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional, Tuple

from repro.errors import AttackError, ReproError
from repro.kernel.rapl import MAX_ENERGY_RANGE_UJ, unwrap_delta

#: the RAPL package-0 energy counter, as mounted in a container
DEFAULT_ENERGY_PATH = "/sys/class/powercap/intel-rapl:0/energy_uj"


class RaplPowerMonitor:
    """Watt series derived from a container-visible RAPL counter.

    The monitor survives a flaky channel instead of aborting a campaign
    (degradation contract in ``docs/faults.md``): a failed read opens a
    *gap* and backs off in virtual time (doubling up to ``max_backoff_s``)
    rather than raising; a gap longer than ``max_gap_s`` — or a reading
    whose implied power exceeds ``max_plausible_watts`` (garbage values,
    spurious wraparounds) — re-primes the differentiator and discards the
    sample. ``degradation()`` summarizes what was lost.
    """

    def __init__(
        self,
        instance,
        path: str = DEFAULT_ENERGY_PATH,
        backoff_base_s: float = 1.0,
        max_backoff_s: float = 30.0,
        max_gap_s: float = 120.0,
        max_plausible_watts: float = 50_000.0,
    ):
        self.instance = instance
        self.path = path
        self.backoff_base_s = backoff_base_s
        self.max_backoff_s = max_backoff_s
        self.max_gap_s = max_gap_s
        self.max_plausible_watts = max_plausible_watts
        self._last_uj: Optional[int] = None
        self._last_time: Optional[float] = None
        self.watts: List[float] = []
        self.times: List[float] = []
        #: closed (gap_start, gap_end) windows where no sample landed
        self.gaps: List[Tuple[float, float]] = []
        self.faulted_reads = 0
        self.discarded_samples = 0
        self._gap_start: Optional[float] = None
        self._retry_at = float("-inf")
        self._backoff_s = 0.0

    def available(self) -> bool:
        """Whether the RAPL channel is readable from this instance."""
        try:
            self.instance.read(self.path)
            return True
        except ReproError:
            return False

    def degradation(self) -> dict:
        """Summary of samples lost to channel faults."""
        open_gap = 0.0
        if self._gap_start is not None and self._last_time is not None:
            open_gap = max(0.0, self._last_time - self._gap_start)
        return {
            "faulted_reads": self.faulted_reads,
            "discarded_samples": self.discarded_samples,
            "gap_count": len(self.gaps) + (1 if self._gap_start is not None else 0),
            "gap_seconds": sum(b - a for a, b in self.gaps) + open_gap,
        }

    def _open_gap(self, now: float) -> None:
        if self._gap_start is None:
            self._gap_start = now

    def _close_gap(self, now: float) -> None:
        if self._gap_start is not None:
            self.gaps.append((self._gap_start, now))
            self._gap_start = None

    def _reprime(self, raw: int, now: float) -> None:
        self._last_uj, self._last_time = raw, now

    def sample(self, now: float) -> Optional[float]:
        """Take one reading; returns watts since the previous sample.

        The first call primes the differentiator and returns ``None``;
        so do calls that hit a faulted channel (the gap is recorded).
        Re-sampling at the monitor's last timestamp is an idempotent
        no-op returning the previous value; only time moving *backwards*
        is an error.
        """
        if self._last_time is not None and now <= self._last_time:
            if now == self._last_time:
                return self.watts[-1] if self.watts else None
            raise AttackError(
                f"monitor time went backwards: t={now} after t={self._last_time}"
            )
        if now < self._retry_at:
            return None  # backing off after a failed read
        try:
            raw = int(self.instance.read(self.path).strip())
        except ReproError:
            self.faulted_reads += 1
            self._open_gap(now)
            self._backoff_s = min(
                self.max_backoff_s, max(self.backoff_base_s, 2.0 * self._backoff_s)
            )
            self._retry_at = now + self._backoff_s
            return None
        self._backoff_s = 0.0
        self._retry_at = float("-inf")
        if self._last_uj is None or self._last_time is None:
            self._close_gap(now)
            self._reprime(raw, now)
            return None
        dt = now - self._last_time
        if self._gap_start is not None and dt > self.max_gap_s:
            # the outage outlived the differentiator's usable baseline
            self.discarded_samples += 1
            self._close_gap(now)
            self._reprime(raw, now)
            return None
        self._close_gap(now)
        delta = unwrap_delta(raw, self._last_uj, MAX_ENERGY_RANGE_UJ)
        watts = delta / 1e6 / dt
        self._reprime(raw, now)
        if watts > self.max_plausible_watts:
            # garbage value or spurious wrap: not physical power
            self.discarded_samples += 1
            return None
        self.watts.append(watts)
        self.times.append(now)
        return watts


class ShardMonitorHandle:
    """Driver-side proxy for a monitor living inside a shard worker.

    In parallel fleet mode the monitor object (e.g.
    :class:`RaplPowerMonitor`) is built *inside* the shard worker that
    owns the monitored instance's host — it reads its local kernel's
    RAPL channel directly, like Deterland-style co-located observers.
    The driver holds this handle: :meth:`sample` returns the worker-side
    reading for the current virtual instant (piggybacked on the run's
    final commit, or fetched with an explicit sample frame), and
    :meth:`degradation` pulls the worker monitor's loss summary. The
    handle quacks like the monitor it proxies, so strategies use the two
    interchangeably.
    """

    def __init__(self, engine, observer_id: str, instance_id: str):
        self.engine = engine
        self.observer_id = observer_id
        self.instance_id = instance_id

    def available(self) -> bool:
        """Handles only exist for channels that probed available."""
        return True

    def sample(self, now: float) -> Optional[float]:
        """The shard-resident monitor's reading at the current instant."""
        return self.engine.observer_sample(self.observer_id, now)

    def degradation(self) -> dict:
        """The shard-resident monitor's degradation summary."""
        return self.engine.observer_degradation(self.observer_id)

    def release(self) -> None:
        """Tear down the worker-side monitor and free its observer slot.

        The slot returns to the engine's free list for the next campaign;
        the handle is dead afterwards (sampling it raises in the worker).
        """
        self.engine.release_observer(self.observer_id)


@dataclass
class CrestDetector:
    """Online crest detection over a trailing watt window.

    A sample is a crest when it reaches the top ``threshold_fraction`` of
    the band observed over the last ``window`` samples, and the band is
    wide enough (``min_band_watts``) to be signal rather than noise.

    This sits on the attacker's hottest loop (one call per monitor sample
    for hours of virtual time), so the window is a ``deque(maxlen=...)``
    and the band comes from monotonic min/max queues — O(1) amortized per
    sample instead of the O(window) scan-and-``pop(0)`` of a plain list.
    """

    window: int = 300
    threshold_fraction: float = 0.75
    min_band_watts: float = 5.0
    _history: Deque[float] = field(default_factory=deque, repr=False)
    #: monotonic (sample_index, watts) queues: _min_q ascending watts,
    #: _max_q descending watts; the front of each is the window min/max
    _min_q: Deque[Tuple[int, float]] = field(default_factory=deque, repr=False)
    _max_q: Deque[Tuple[int, float]] = field(default_factory=deque, repr=False)
    _count: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.window < 1:
            raise AttackError(f"detector window must be >= 1: {self.window}")
        self._history = deque(self._history, maxlen=self.window)

    def observe(self, watts: float) -> bool:
        """Feed one sample; returns True when it qualifies as a crest."""
        self._history.append(watts)  # maxlen evicts the oldest sample
        index = self._count
        self._count += 1
        oldest = index - self.window  # indices <= oldest have aged out
        while self._min_q and self._min_q[-1][1] >= watts:
            self._min_q.pop()
        self._min_q.append((index, watts))
        if self._min_q[0][0] <= oldest:
            self._min_q.popleft()
        while self._max_q and self._max_q[-1][1] <= watts:
            self._max_q.pop()
        self._max_q.append((index, watts))
        if self._max_q[0][0] <= oldest:
            self._max_q.popleft()

        if len(self._history) < max(10, self.window // 10):
            return False  # not enough context yet
        lo = self._min_q[0][1]
        hi = self._max_q[0][1]
        if hi - lo < self.min_band_watts:
            return False
        return watts >= lo + self.threshold_fraction * (hi - lo)

    @property
    def band(self) -> tuple:
        """(low, high) of the current trailing window."""
        if not self._history:
            return (0.0, 0.0)
        return (self._min_q[0][1], self._max_q[0][1])
