"""Attack strategies: continuous, periodic, and synergistic (Section IV).

All three drive the same attacker assets — container instances on target
servers — and differ only in *when* they burn: continuously (maximum cost,
maximum detectability), on a blind timer (the paper's Figure 3 baseline),
or triggered by the leaked power signal at benign crests (the synergistic
attack). Outcomes record spike heights, trial counts, and the attacker's
utilization-based bill, reproducing the paper's effect/cost comparison.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from time import perf_counter
from typing import Callable, Dict, List, Optional

from repro.attack.monitor import CrestDetector, RaplPowerMonitor, ShardMonitorHandle
from repro.attack.virus import power_virus
from repro.datacenter.simulation import DatacenterSimulation
from repro.errors import AttackError
from repro.runtime.cloud import Instance
from repro.runtime.workload import Workload
from repro.sim.fastforward import DriverHorizon


@dataclass
class AttackOutcome:
    """What one attack run achieved and cost."""

    strategy: str
    duration_s: float
    trials: int = 0
    peak_watts: float = 0.0
    background_peak_watts: float = 0.0
    attacker_cpu_seconds: float = 0.0
    bill_dollars: float = 0.0
    breaker_tripped: bool = False
    spike_watts: List[float] = field(default_factory=list)
    #: fault-injection and graceful-degradation counters observed during
    #: the run (empty when the fleet ran fault-free); see docs/faults.md
    degradation: Dict[str, float] = field(default_factory=dict)

    @property
    def amplification_watts(self) -> float:
        """Spike height over the benign-only peak."""
        return self.peak_watts - self.background_peak_watts


class _StrategyBase:
    """Shared driver plumbing for the three strategies."""

    name = "base"

    def __init__(
        self,
        sim: DatacenterSimulation,
        instances: List[Instance],
        virus_factory: Callable[[float], Workload] = power_virus,
        burst_s: float = 30.0,
        cores_per_instance: int = 4,
    ):
        if not instances:
            raise AttackError("attack needs at least one controlled instance")
        self.sim = sim
        self.instances = instances
        self.virus_factory = virus_factory
        self.burst_s = burst_s
        self.cores = cores_per_instance
        #: the execution mode the strategy was built for: the parallel
        #: engine when the sim already runs sharded, else None (serial).
        #: Bursts, reaps, bills, and monitors are wired for that mode at
        #: construction, so run() refuses a sim that switched since.
        self._par = sim._parallel
        #: absolute time of this strategy's next scheduled action; the
        #: sim's fast-forward engine must not coalesce a tick across it.
        #: It is pure driver-side state, so the parallel engine may fold
        #: it into the merged horizon (DriverHorizon marks it safe).
        self._next_event = math.inf
        sim.horizon_sources.append(DriverHorizon(self.next_event_horizon))

    def next_event_horizon(self, now: float) -> float:
        """Absolute virtual time of the strategy's next decision point."""
        return max(self._next_event, now)

    def _trace(self):
        """The sim's tracer when tracing is live, else ``None``.

        Attack spans land on the ``attack`` track and carry sim-time
        intervals only, so serial and parallel campaigns (bit-identical
        by the golden contract) emit identical span timelines.
        """
        tracer = self.sim.tracer
        if tracer is not None and tracer.enabled:
            return tracer
        return None

    def _check_mode(self) -> None:
        if self._par is not self.sim._parallel:
            raise AttackError(
                "the simulation changed execution mode after this strategy"
                " was built; construct strategies after the first parallel"
                " run (or keep the simulation serial)"
            )

    def _burst(self) -> None:
        """Start one power burst on every controlled instance."""
        for instance in self.instances:
            for core in range(self.cores):
                self.sim.exec_in_instance(
                    instance, f"pv-{core}", self.virus_factory, self.burst_s
                )

    def _reap(self) -> None:
        for instance in self.instances:
            self.sim.reap_instance(instance)

    def _billed(self) -> float:
        tenants = {i.tenant for i in self.instances}
        return sum(self.sim.tenant_bill(t) for t in tenants)

    def _cpu_seconds(self) -> float:
        return self.sim.instances_cpu_seconds(self.instances)

    def _degradation(self) -> Dict[str, float]:
        """Fault/degradation counters for the outcome (fleet-wide view)."""
        return dict(self.sim.fault_report())

    def _finish(self, outcome: AttackOutcome, window_start: float) -> AttackOutcome:
        trace = self.sim.aggregate_trace.window(window_start, self.sim.now + 1)
        outcome.peak_watts = trace.peak if len(trace) else 0.0
        outcome.attacker_cpu_seconds = self._cpu_seconds()
        outcome.bill_dollars = self._billed()
        outcome.breaker_tripped = self.sim.any_breaker_tripped()
        outcome.degradation = self._degradation()
        return outcome


class ContinuousAttack(_StrategyBase):
    """Burn everywhere, all the time: catches every crest, costs the most."""

    name = "continuous"

    def run(self, duration_s: float, dt: float = 1.0, coalesce: bool = False) -> AttackOutcome:
        """Run viruses for the whole window.

        ``coalesce`` lets the fleet fast-forward between events; the
        breaker-knee guard keeps overloaded stretches at base ``dt``.
        """
        self._check_mode()
        tracer = self._trace()
        start = self.sim.now
        outcome = AttackOutcome(strategy=self.name, duration_s=duration_s)
        elapsed = 0.0
        while elapsed < duration_s:
            if tracer is not None:
                b_t0, b_w0 = self.sim.now, perf_counter()
            self._burst()
            outcome.trials += 1
            window = min(self.burst_s, duration_s - elapsed)
            self._next_event = self.sim.now + window
            self.sim.run(window, dt=dt, coalesce=coalesce)
            self._reap()
            if tracer is not None:
                tracer.add_span(
                    "attack.burst",
                    b_t0,
                    self.sim.now,
                    perf_counter() - b_w0,
                    track="attack",
                    trial=outcome.trials,
                )
            elapsed = self.sim.now - start
        self._next_event = math.inf
        return self._finish(outcome, start)


class PeriodicAttack(_StrategyBase):
    """The blind baseline of Figure 3: a burst every ``period_s``."""

    name = "periodic"

    def __init__(self, *args, period_s: float = 300.0, **kwargs):
        super().__init__(*args, **kwargs)
        if period_s <= self.burst_s:
            raise AttackError(
                f"period {period_s}s must exceed burst {self.burst_s}s"
            )
        self.period_s = period_s

    def run(self, duration_s: float, dt: float = 1.0, coalesce: bool = False) -> AttackOutcome:
        """Fire on the timer, record each spike.

        With ``coalesce=True`` the quiet stretches between bursts — the
        bulk of the schedule — fast-forward; bursts themselves stay at
        base ``dt`` via the breaker-knee guard.
        """
        self._check_mode()
        tracer = self._trace()
        start = self.sim.now
        outcome = AttackOutcome(strategy=self.name, duration_s=duration_s)
        elapsed = 0.0
        while elapsed < duration_s:
            if tracer is not None:
                b_t0, b_w0 = self.sim.now, perf_counter()
            self._burst()
            outcome.trials += 1
            self._next_event = self.sim.now + self.burst_s
            self.sim.run(self.burst_s, dt=dt, coalesce=coalesce)
            spike = self.sim.aggregate_trace.window(
                self.sim.now - self.burst_s, self.sim.now + 1
            )
            if len(spike):
                outcome.spike_watts.append(spike.peak)
            self._reap()
            if tracer is not None:
                tracer.add_span(
                    "attack.burst",
                    b_t0,
                    self.sim.now,
                    perf_counter() - b_w0,
                    track="attack",
                    trial=outcome.trials,
                    spike=spike.peak if len(spike) else 0.0,
                )
            idle = min(self.period_s - self.burst_s, duration_s - (self.sim.now - start))
            if idle > 0:
                self._next_event = self.sim.now + idle
                self.sim.run(idle, dt=dt, coalesce=coalesce)
            elapsed = self.sim.now - start
        self._next_event = math.inf
        return self._finish(outcome, start)


class SynergisticAttack(_StrategyBase):
    """The paper's attack: monitor the leaked RAPL signal, strike crests."""

    name = "synergistic"

    def __init__(
        self,
        *args,
        detector_factory: Callable[[], CrestDetector] = CrestDetector,
        cooldown_s: float = 600.0,
        max_trials: Optional[int] = None,
        learn_s: float = 0.0,
        monitor_factory: Callable = RaplPowerMonitor,
        resume_key: Optional[str] = None,
        **kwargs,
    ):
        super().__init__(*args, **kwargs)
        self.cooldown_s = cooldown_s
        self.max_trials = max_trials
        #: "learn the crests and troughs of the power consumption pattern"
        #: (Section IV-A): observe this long before the first strike, so
        #: the crest detector's band reflects the real range instead of a
        #: short prefix.
        self.learn_s = learn_s
        #: checkpoint/resume participation (``docs/resilience.md``): with
        #: a key set, the strategy contributes its driver-side campaign
        #: state to every checkpoint manifest and, on a resumed sim that
        #: restored such a manifest, reconstructs itself from it instead
        #: of re-attaching monitors (the restored shard workers already
        #: hold them).
        self.resume_key = resume_key
        restored = (
            self.sim.restored_extras.get(resume_key)
            if resume_key is not None
            else None
        )
        #: the leaked signal source: RAPL by default, or the Section
        #: VII-A utilization estimator on hosts without RAPL. In parallel
        #: mode each monitor is built *inside* the shard worker owning
        #: the instance's host (it reads its local kernel's channel) and
        #: the dict holds driver-side handles instead.
        self.monitors: Dict[str, object] = {}
        self._monitors_unavailable = 0
        #: campaign state promoted to attributes so a checkpoint taken at
        #: a mid-campaign safepoint can capture it (None while no
        #: campaign is live)
        self._outcome: Optional[AttackOutcome] = None
        self._campaign_start = 0.0
        self._last_burst = -1e18
        self._restored_campaign: Optional[dict] = None
        if restored is not None:
            if self._par is None:
                raise AttackError(
                    "restored campaign state requires the parallel engine"
                    " (resume the simulation before building the strategy)"
                )
            # the restored shard workers hold this campaign's monitors
            # already (they rode the snapshots); rebuild only the
            # driver-side handles and detector state
            for instance_id, observer_id in restored["observers"].items():
                self.monitors[instance_id] = ShardMonitorHandle(
                    self._par, observer_id, instance_id
                )
            self._monitors_unavailable = restored["monitors_unavailable"]
            self.detector = restored["detector"]
            self._restored_campaign = restored["campaign"]
        else:
            for instance in self.instances:
                if self._par is not None:
                    observer_id = self._par.attach_monitor(
                        instance.instance_id, monitor_factory
                    )
                    if observer_id is None:
                        self._monitors_unavailable += 1
                        continue
                    self.monitors[instance.instance_id] = ShardMonitorHandle(
                        self._par, observer_id, instance.instance_id
                    )
                    continue
                monitor = monitor_factory(instance)
                if not monitor.available():
                    # a masked or currently-faulted channel degrades
                    # coverage; only losing *every* channel kills the
                    # attack
                    self._monitors_unavailable += 1
                    continue
                self.monitors[instance.instance_id] = monitor
            # One detector over the *sum* of the per-server RAPL signals:
            # the attacker cares about the load on the shared power feed,
            # so the trigger is a crest of the aggregate, not of any
            # single machine.
            self.detector = detector_factory()
        if not self.monitors:
            raise AttackError(
                "no instance can read the leaked signal channel; "
                "synergistic attack needs the leak"
            )
        if resume_key is not None:
            self.sim.checkpoint_extras[resume_key] = self._checkpoint_state

    def _checkpoint_state(self) -> dict:
        """Driver-side campaign state for the checkpoint manifest.

        Captured only at safepoints (top of a campaign iteration), where
        the loop state is exactly these four scalars plus the detector;
        worker-side monitor state rides the shard snapshots.
        """
        state = {
            "observers": {
                instance_id: handle.observer_id
                for instance_id, handle in self.monitors.items()
            },
            "monitors_unavailable": self._monitors_unavailable,
            "detector": self.detector,
            "campaign": None,
        }
        if self._outcome is not None:
            state["campaign"] = {
                "start": self._campaign_start,
                "trials": self._outcome.trials,
                "spikes": list(self._outcome.spike_watts),
                "last_burst": self._last_burst,
            }
        return state

    def _aggregate_sample(self) -> Optional[float]:
        watts = [m.sample(self.sim.now) for m in self.monitors.values()]
        live = [w for w in watts if w is not None]
        if len(live) < len(watts):
            # priming or a monitor in fault backoff: a partial sum would
            # skew the detector band, so skip this sampling period
            return None
        return sum(live)

    def _degradation(self) -> Dict[str, float]:
        report = super()._degradation()
        if self._monitors_unavailable:
            report["monitors-unavailable"] = self._monitors_unavailable
        for monitor in self.monitors.values():
            summary = getattr(monitor, "degradation", None)
            if summary is None:
                continue
            for key, value in summary().items():
                name = f"monitor-{key.replace('_', '-')}"
                report[name] = report.get(name, 0) + value
        return report

    def run(self, duration_s: float, dt: float = 1.0, coalesce: bool = False) -> AttackOutcome:
        """Sample every step; burst when the aggregate power crests.

        The monitoring loop itself cannot be coalesced — the attacker
        needs a RAPL delta every ``dt`` to see crests, so the strategy's
        event horizon is always one sampling period out. ``coalesce``
        only lets the engine tighten the burst windows' bookkeeping.

        In parallel mode the shard-resident monitors are *armed* around
        each monitoring tick: the final commit of the tick samples them
        worker-side at exactly the instant a serial strategy would call
        ``monitor.sample()``, and the readings come back through the
        shared-memory plane's observer slots. Burst windows run disarmed
        (serial code does not sample during a burst); the post-burst
        re-prime goes through an explicit sample frame that flushes the
        queued reap first, preserving the serial reap-then-sample order.
        """
        self._check_mode()
        tracer = self._trace()
        par = self._par
        observer_ids = (
            tuple(handle.observer_id for handle in self.monitors.values())
            if par is not None
            else ()
        )
        # a resumed sim replays already-covered windows as no-ops; drain
        # them at the monitoring cadence (burst_s is a dt multiple, so
        # the replay cursor lands exactly on the checkpoint time)
        while self.sim.replaying:
            self.sim.run(dt, dt=dt, coalesce=coalesce)
        restored = self._restored_campaign
        self._restored_campaign = None
        outcome = AttackOutcome(strategy=self.name, duration_s=duration_s)
        if restored is not None:
            # mid-campaign checkpoint: pick the loop up where the golden
            # run stood at the snapshot instant (the recon span is
            # already in the restored tracer timeline)
            start = restored["start"]
            outcome.trials = restored["trials"]
            outcome.spike_watts = list(restored["spikes"])
            self._last_burst = restored["last_burst"]
        else:
            start = self.sim.now
            self._last_burst = -1e18
            if tracer is not None and self.learn_s > 0:
                # the Section IV-A learning phase is a fixed sim-time
                # window known up front; record it as one recon span
                tracer.add_span(
                    "attack.recon",
                    start,
                    start + min(self.learn_s, duration_s),
                    0.0,
                    track="attack",
                    learn_s=self.learn_s,
                )
        self._outcome = outcome
        self._campaign_start = start
        while self.sim.now - start < duration_s:
            self.sim.checkpoint_safepoint()
            if tracer is not None:
                m_t0, m_w0 = self.sim.now, perf_counter()
            self._next_event = self.sim.now + dt
            if par is not None:
                par.arm_observation(observer_ids)
            self.sim.run(dt, dt=dt, coalesce=coalesce)
            if par is not None:
                par.disarm_observation()
            aggregate = self._aggregate_sample()
            is_crest = aggregate is not None and self.detector.observe(aggregate)
            if tracer is not None:
                tracer.add_span(
                    "attack.monitor",
                    m_t0,
                    self.sim.now,
                    perf_counter() - m_w0,
                    track="attack",
                    crest=is_crest,
                )
            armed = self.sim.now - start >= self.learn_s
            trials_left = (
                self.max_trials is None or outcome.trials < self.max_trials
            )
            if (
                is_crest
                and armed
                and trials_left
                and self.sim.now - self._last_burst >= self.cooldown_s
            ):
                if tracer is not None:
                    b_t0, b_w0 = self.sim.now, perf_counter()
                self._burst()
                outcome.trials += 1
                self._last_burst = self.sim.now
                self._next_event = self.sim.now + self.burst_s
                self.sim.run(self.burst_s, dt=dt, coalesce=coalesce)
                spike = self.sim.aggregate_trace.window(
                    self.sim.now - self.burst_s, self.sim.now + 1
                )
                if len(spike):
                    outcome.spike_watts.append(spike.peak)
                self._reap()
                # re-prime monitors: our own burst polluted the series
                for monitor in self.monitors.values():
                    monitor.sample(self.sim.now)
                if tracer is not None:
                    tracer.add_span(
                        "attack.burst",
                        b_t0,
                        self.sim.now,
                        perf_counter() - b_w0,
                        track="attack",
                        trial=outcome.trials,
                        spike=spike.peak if len(spike) else 0.0,
                    )
        self._next_event = math.inf
        self._outcome = None
        return self._finish(outcome, start)

    def release_monitors(self) -> None:
        """Retire this campaign's monitors and reclaim their resources.

        In parallel mode every shard-resident monitor is torn down and
        its telemetry-plane observer slot returns to the engine's free
        list, so rotating campaigns (new strategy per epoch over fresh
        instances) recycle a bounded slot pool instead of exhausting the
        ``max(16, 2*S)`` observer capacity. Serial monitors are simply
        dropped. The strategy cannot sample after this; call it once the
        campaign (and any degradation reporting) is finished.
        """
        for monitor in self.monitors.values():
            release = getattr(monitor, "release", None)
            if release is not None:
                release()
        self.monitors = {}
