"""Exception hierarchy for the ContainerLeaks reproduction.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SimulationError(ReproError):
    """A simulation invariant was violated (e.g. time moved backwards)."""


class KernelError(ReproError):
    """A simulated-kernel operation failed (bad pid, missing subsystem...)."""


class PseudoFileError(KernelError):
    """A pseudo-filesystem operation failed."""


class PermissionDeniedError(PseudoFileError):
    """Read access to a pseudo file was denied by a masking policy.

    This mirrors the ``EACCES`` a real container sees when AppArmor or a
    read-only/unreadable mount masks a ``/proc`` or ``/sys`` entry.
    """

    def __init__(self, path: str):
        super().__init__(f"permission denied: {path}")
        self.path = path


class FileNotFoundPseudoError(PseudoFileError):
    """The pseudo path does not exist in the mounted view (``ENOENT``)."""

    def __init__(self, path: str):
        super().__init__(f"no such file or directory: {path}")
        self.path = path


class TransientReadError(PseudoFileError):
    """A pseudo-file read failed transiently (``EIO``).

    Real ``/proc``/``/sys`` reads occasionally fail on live hosts — a
    sensor glitches, a device resets, a race in the kernel returns -EIO.
    The fault-injection subsystem (:mod:`repro.sim.faults`) raises this
    for scheduled sensor/read faults; consumers are expected to retry or
    degrade rather than abort (see ``docs/faults.md``).
    """

    def __init__(self, path: str):
        super().__init__(f"transient read failure (EIO): {path}")
        self.path = path


class ContainerError(ReproError):
    """A container-runtime operation failed."""


class CloudError(ReproError):
    """A cloud-level operation (placement, tenancy, billing) failed."""


class CapacityError(CloudError):
    """The cloud has no server with room for the requested instance."""


class DefenseError(ReproError):
    """A defense-subsystem operation failed (modelling, calibration...)."""


class AttackError(ReproError):
    """An attack-toolkit operation failed (no channel, no co-residence...)."""
