"""Circuit breakers with an inverse-time (thermal) trip curve.

"The tripping condition of a circuit breaker depends on the strength and
duration of a power spike" (Section II-C). The standard thermal-magnetic
model captures exactly that: a magnetic element trips instantly on gross
overload, and a thermal element integrates the square of the overload
ratio so that small overloads take minutes and large ones seconds — which
is why a short synergistic spike succeeds where a slightly lower sustained
load would be caught by rack-level power capping first.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import SimulationError


class BreakerState(enum.Enum):
    """Breaker status."""

    CLOSED = "closed"  # conducting normally
    TRIPPED = "tripped"  # opened by overload; downstream servers are dark


@dataclass
class CircuitBreaker:
    """One branch circuit breaker.

    Parameters
    ----------
    rated_watts:
        Continuous rating. Loads at or below this never trip.
    instant_trip_ratio:
        Overload ratio (load/rated) at which the magnetic element opens
        within one evaluation step.
    thermal_capacity:
        The thermal element trips once ``∫(r² − 1) dt`` exceeds this, for
        overload ratio r > 1. With the default 90, a 25% overload trips in
        ~160 s and a 50% overload in ~72 s — minute-scale for small
        overloads, matching the paper's observation that rack power
        capping (also minute-scale) cannot pre-empt a sharp spike.
    """

    name: str
    rated_watts: float
    instant_trip_ratio: float = 2.0
    thermal_capacity: float = 90.0
    state: BreakerState = BreakerState.CLOSED
    thermal_accumulator: float = 0.0
    tripped_at: float = field(default=float("nan"))
    trip_count: int = 0

    def __post_init__(self) -> None:
        if self.rated_watts <= 0:
            raise SimulationError(f"breaker rating must be positive: {self.rated_watts}")
        if self.instant_trip_ratio <= 1.0:
            raise SimulationError(
                f"instant trip ratio must exceed 1.0: {self.instant_trip_ratio}"
            )

    @property
    def tripped(self) -> bool:
        return self.state is BreakerState.TRIPPED

    def observe(self, watts: float, dt: float, now: float) -> BreakerState:
        """Feed one interval of load; returns the (possibly new) state."""
        if dt <= 0:
            raise SimulationError(f"breaker observation needs positive dt: {dt}")
        if watts < 0:
            raise SimulationError(f"negative load: {watts}")
        if self.state is BreakerState.TRIPPED:
            return self.state

        ratio = watts / self.rated_watts
        if ratio >= self.instant_trip_ratio:
            self._trip(now)
            return self.state

        if ratio > 1.0:
            self.thermal_accumulator += (ratio * ratio - 1.0) * dt
            if self.thermal_accumulator >= self.thermal_capacity:
                self._trip(now)
        else:
            # the element cools when the load drops back under rating
            cooling = (1.0 - ratio * ratio) * dt * 0.5
            self.thermal_accumulator = max(0.0, self.thermal_accumulator - cooling)
        return self.state

    def _trip(self, now: float) -> None:
        self.state = BreakerState.TRIPPED
        self.tripped_at = now
        self.trip_count += 1

    def force_trip(self, now: float) -> None:
        """Open the breaker regardless of load (chaos/operator action).

        Idempotent on an already-tripped breaker.
        """
        if self.state is BreakerState.TRIPPED:
            return
        self._trip(now)

    def reset(self) -> None:
        """Close a tripped breaker (operator action after an outage)."""
        if self.state is not BreakerState.TRIPPED:
            raise SimulationError(f"breaker {self.name} is not tripped")
        self.state = BreakerState.CLOSED
        self.thermal_accumulator = 0.0

    def seconds_to_trip(self, watts: float) -> float:
        """Predicted time-to-trip at a constant load (∞ if never)."""
        ratio = watts / self.rated_watts
        if ratio >= self.instant_trip_ratio:
            return 0.0
        if ratio <= 1.0:
            return float("inf")
        remaining = self.thermal_capacity - self.thermal_accumulator
        return remaining / (ratio * ratio - 1.0)
