"""Datacenter power infrastructure: servers → racks → PDUs → breakers.

Models the facility side of the paper's threat: power oversubscription,
inverse-time circuit breakers, benign tenant load with diurnal swings, and
the wall-power accounting that decides whether a synergistic power spike
trips a branch breaker (Section II-C, Figures 2–4).
"""

from repro.datacenter.breaker import BreakerState, CircuitBreaker
from repro.datacenter.topology import Rack, ServerPowerConfig, wall_power_watts
from repro.datacenter.tenants import DiurnalTenantDriver
from repro.datacenter.simulation import DatacenterSimulation, PowerTrace

__all__ = [
    "BreakerState",
    "CircuitBreaker",
    "DatacenterSimulation",
    "DiurnalTenantDriver",
    "PowerTrace",
    "Rack",
    "ServerPowerConfig",
    "wall_power_watts",
]
